#![warn(missing_docs)]
//! # smp-bcc — parallel biconnected components for shared memory
//!
//! A Rust reproduction of Cong & Bader, *An Experimental Study of
//! Parallel Biconnected Components Algorithms on Symmetric
//! Multiprocessors (SMPs)* (IPDPS 2005): the sequential Tarjan baseline
//! plus the three parallel pipelines the paper studies (TV-SMP, TV-opt,
//! TV-filter) on top of from-scratch SMP implementations of the
//! underlying primitives (prefix sums, list ranking, sample sort,
//! Shiloach–Vishkin connectivity, BFS and work-stealing spanning trees,
//! Euler tours, tree computations).
//!
//! ## Quick start
//!
//! ```
//! use smp_bcc::{bcc, Algorithm, GraphBuilder};
//!
//! // A triangle and a pendant edge: one block + one bridge.
//! let g = GraphBuilder::new(4)
//!     .edges([(0, 1), (1, 2), (2, 0), (2, 3)])
//!     .build()
//!     .unwrap();
//! let result = bcc(&g, Algorithm::TvFilter);
//! assert_eq!(result.num_components, 2);
//! assert_eq!(result.articulation_points(&g), vec![2]);
//! assert_eq!(result.bridges(&g), vec![3]); // edge index of (2,3)
//! ```
//!
//! For explicit control over thread count, ranker, and telemetry use
//! the [`BccConfig`] builder; each run returns the labels plus a
//! structured [`PhaseReport`]:
//!
//! ```
//! use smp_bcc::{Algorithm, BccConfig, Pool};
//! use smp_bcc::graph::gen;
//!
//! let g = gen::random_connected(10_000, 40_000, 42);
//! let pool = Pool::new(4);
//! let run = BccConfig::new(Algorithm::TvOpt).run(&pool, &g).unwrap();
//! println!(
//!     "{} components in {:?} (imbalance {:.2})",
//!     run.result.num_components, run.report.total, run.report.imbalance
//! );
//! ```
//!
//! Once the components are known, the [`query`] engine serves
//! connectivity-under-failure questions from a build-once index:
//!
//! ```
//! use smp_bcc::query::Failure;
//! use smp_bcc::{BiconnectivityIndex, Pool};
//! use smp_bcc::graph::gen;
//!
//! let g = gen::two_cliques_sharing_vertex(4); // cut vertex 3
//! let pool = Pool::new(2);
//! let idx = BiconnectivityIndex::from_graph(&pool, &g).unwrap();
//! assert!(idx.same_block(0, 3) && !idx.same_block(0, 5));
//! assert!(!idx.survives_failure(0, 5, Failure::Vertex(3)));
//! ```
//!
//! To keep answering while the graph changes, the [`serve`] layer runs
//! that index as a daemon: sharded stores, a pool of reader threads
//! over an MPMC queue, and a single batching writer, with per-answer
//! latency and snapshot-lag histograms (see `examples/live_queries.rs`
//! and `docs/ALGORITHMS.md` §12).

pub use bcc_connectivity as connectivity;
pub use bcc_core as algorithms;
pub use bcc_euler as euler;
pub use bcc_graph as graph;
pub use bcc_primitives as primitives;
pub use bcc_query as query;
pub use bcc_serve as serve;
pub use bcc_smp as smp;

pub use bcc_core::{
    double_bfs_upper_bound, Algorithm, BccConfig, BccError, BccResult, BccRun, PhaseReport,
    PhaseTimes, Ranker, Step, StepReport,
};
pub use bcc_graph::{Csr, Edge, Graph, GraphBuilder, GraphData, MappedCsr};
pub use bcc_query::{BiconnectivityIndex, IndexStore};
pub use bcc_smp::{Pool, Telemetry, TelemetrySnapshot};

/// One-call convenience API: runs `alg` on `g` with a machine-sized
/// pool, handling disconnected inputs transparently.
pub fn bcc(g: &Graph, alg: Algorithm) -> BccResult {
    let pool = Pool::machine();
    BccConfig::new(alg)
        .run_any(&pool, g)
        .expect("per-component driver accepts any graph")
        .result
}

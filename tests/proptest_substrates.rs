//! Property-based tests across the substrate crates: random trees (via
//! Prüfer-like random attachment), connectivity on arbitrary edge sets,
//! Euler-tour invariants, and the label-invariance of the biconnected
//! components partition under vertex renaming.

use proptest::prelude::*;
use smp_bcc::connectivity::seq::components_union_find;
use smp_bcc::connectivity::sv::connected_components;
use smp_bcc::euler::{euler_tour_classic, tour::assert_valid_tour, tree_computations, Ranker};
use smp_bcc::graph::gen;
use smp_bcc::{bcc, Algorithm, BccConfig, Edge, GraphBuilder, Pool};

fn arbitrary_edge_set() -> impl Strategy<Value = (u32, Vec<Edge>)> {
    (
        2u32..60,
        proptest::collection::vec((0u32..60, 0u32..60), 0..150),
    )
        .prop_map(|(n, pairs)| {
            let g = GraphBuilder::new(n)
                .lenient()
                .edges(pairs.into_iter().map(|(a, b)| Edge::new(a % n, b % n)))
                .build()
                .unwrap();
            (n, g.edges().to_vec())
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn sv_matches_union_find_on_arbitrary_edge_sets(
        (n, edges) in arbitrary_edge_set(),
        p in 1usize..5,
    ) {
        let pool = Pool::new(p);
        let got = connected_components(&pool, n, &edges);
        let want = components_union_find(n, &edges);
        prop_assert_eq!(got.num_components, want.count);
        // The recorded forest must reconnect exactly the same partition.
        let forest: Vec<Edge> = got.tree_edges.iter().map(|&i| edges[i as usize]).collect();
        let via_forest = components_union_find(n, &forest);
        for v in 0..n as usize {
            for w in 0..n as usize {
                prop_assert_eq!(
                    want.label[v] == want.label[w],
                    via_forest.label[v] == via_forest.label[w]
                );
            }
        }
    }

    #[test]
    fn classic_euler_tours_on_random_trees(
        n in 2u32..200,
        seed in any::<u64>(),
        root_pick in any::<u32>(),
        p in 1usize..4,
    ) {
        let tree = gen::random_tree(n, seed);
        let root = root_pick % n;
        let pool = Pool::new(p);
        let tour = euler_tour_classic(&pool, n, tree.edges().to_vec(), root, Ranker::HelmanJaja);
        assert_valid_tour(&tour, root);
        let info = tree_computations(&pool, &tour, root);
        // Sum of (size(v) - 1) over children-of-root equals n - 1... the
        // simplest global invariants:
        prop_assert_eq!(info.size[root as usize], n);
        let total_depth: u64 = info.depth.iter().map(|&d| d as u64).sum();
        // Sum of sizes = sum over v of (#ancestors incl. self) = n + total depth.
        let total_size: u64 = info.size.iter().map(|&s| s as u64).sum();
        prop_assert_eq!(total_size, n as u64 + total_depth);
    }

    #[test]
    fn bcc_partition_is_label_invariant(
        n in 4u32..40,
        extra in 0usize..60,
        seed in any::<u64>(),
        perm_seed in any::<u64>(),
    ) {
        use rand::prelude::*;
        let m = ((n as usize - 1) + extra).min(gen::max_edges(n));
        let g = gen::random_connected(n, m, seed);
        let mut perm: Vec<u32> = (0..n).collect();
        perm.shuffle(&mut StdRng::seed_from_u64(perm_seed));
        let h = g.relabel(&perm);

        // Edge order is preserved by relabel, so the canonical per-edge
        // partitions must be identical vectors.
        let rg = bcc(&g, Algorithm::Sequential);
        let rh = bcc(&h, Algorithm::Sequential);
        prop_assert_eq!(&rg.edge_comp, &rh.edge_comp);
        prop_assert_eq!(rg.num_components, rh.num_components);

        // Articulation points map through the permutation.
        let mut ag: Vec<u32> = rg
            .articulation_points(&g)
            .iter()
            .map(|&v| perm[v as usize])
            .collect();
        ag.sort_unstable();
        let ah = rh.articulation_points(&h);
        prop_assert_eq!(ag, ah);
    }

    #[test]
    fn parallel_partition_label_invariant_too(
        n in 4u32..30,
        extra in 0usize..40,
        seed in any::<u64>(),
    ) {
        use rand::prelude::*;
        let m = ((n as usize - 1) + extra).min(gen::max_edges(n));
        let g = gen::random_connected(n, m, seed);
        let mut perm: Vec<u32> = (0..n).collect();
        perm.shuffle(&mut StdRng::seed_from_u64(seed ^ 0xabcdef));
        let h = g.relabel(&perm);
        let pool = Pool::new(2);
        let cfg = BccConfig::new(Algorithm::TvFilter);
        let rg = cfg.run(&pool, &g).unwrap().result;
        let rh = cfg.run(&pool, &h).unwrap().result;
        prop_assert_eq!(rg.edge_comp, rh.edge_comp);
    }
}

//! Property-based integration tests: random graphs from proptest
//! strategies, checked against the independent cycle-enumeration oracle
//! and structural invariants.

use proptest::prelude::*;
use smp_bcc::algorithms::verify::{
    articulation_points, articulation_points_oracle, assert_classes_biconnected, bcc_oracle_small,
    bridges, canonicalize_edge_labels,
};
use smp_bcc::graph::gen;
use smp_bcc::{bcc, Algorithm, BccConfig, Edge, Graph, GraphBuilder, Pool};

/// Strategy: small arbitrary simple graphs (possibly disconnected).
fn small_graph() -> impl Strategy<Value = Graph> {
    (
        3u32..9,
        proptest::collection::vec((0u32..9, 0u32..9), 0..18),
    )
        .prop_map(|(n, pairs)| {
            let edges = pairs
                .into_iter()
                .map(|(a, b)| Edge::new(a % n, b % n))
                .collect::<Vec<_>>();
            GraphBuilder::new(n).lenient().edges(edges).build().unwrap()
        })
}

/// Strategy: connected random graphs of moderate size.
fn connected_graph() -> impl Strategy<Value = Graph> {
    (10u32..120, 0usize..300, any::<u64>()).prop_map(|(n, extra, seed)| {
        let m = ((n as usize - 1) + extra).min(gen::max_edges(n));
        gen::random_connected(n, m, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sequential_matches_cycle_oracle(g in small_graph()) {
        let mut want = bcc_oracle_small(&g);
        let kw = canonicalize_edge_labels(&mut want);
        let got = bcc(&g, Algorithm::Sequential);
        prop_assert_eq!(kw, got.num_components);
        prop_assert_eq!(want, got.edge_comp);
    }

    #[test]
    fn parallel_algorithms_match_oracle_on_connected_small(g in small_graph()) {
        prop_assume!(smp_bcc::graph::validate::is_connected(&g) && g.m() > 0);
        let mut want = bcc_oracle_small(&g);
        canonicalize_edge_labels(&mut want);
        let pool = Pool::new(3);
        for alg in [Algorithm::TvSmp, Algorithm::TvOpt, Algorithm::TvFilter] {
            let r = BccConfig::new(alg).run(&pool, &g).unwrap().result;
            prop_assert_eq!(&want, &r.edge_comp, "{}", alg.name());
        }
    }

    #[test]
    fn partitions_are_structurally_biconnected(g in connected_graph()) {
        let pool = Pool::new(2);
        let r = BccConfig::new(Algorithm::TvFilter).run(&pool, &g).unwrap().result;
        assert_classes_biconnected(&g, &r.edge_comp);
    }

    #[test]
    fn articulation_points_match_removal_oracle(g in connected_graph()) {
        let pool = Pool::new(2);
        let r = BccConfig::new(Algorithm::TvOpt).run(&pool, &g).unwrap().result;
        let mut got = articulation_points(&g, &r.edge_comp);
        got.sort_unstable();
        prop_assert_eq!(got, articulation_points_oracle(&g));
    }

    #[test]
    fn bridge_endpoints_behave_like_bridges(g in connected_graph()) {
        // Removing a bridge edge disconnects the graph; removing a
        // non-bridge edge does not.
        let pool = Pool::new(2);
        let r = BccConfig::new(Algorithm::TvFilter).run(&pool, &g).unwrap().result;
        let bridge_set: std::collections::HashSet<u32> =
            bridges(&g, &r.edge_comp).into_iter().collect();
        for i in 0..g.m().min(20) {
            let h = g.edge_subgraph(|j| j != i);
            // Edge i is a bridge iff its endpoints are separated once it
            // is removed.
            let separated = endpoints_separated(&h, g.edges()[i]);
            prop_assert_eq!(bridge_set.contains(&(i as u32)), separated,
                "edge {} bridge status", i);
        }
    }

    #[test]
    fn num_components_bounds(g in connected_graph()) {
        let pool = Pool::new(2);
        let r = BccConfig::new(Algorithm::TvFilter).run(&pool, &g).unwrap().result;
        // Between 1 and m components; exactly m iff the graph is a tree.
        prop_assert!(r.num_components >= 1);
        prop_assert!((r.num_components as usize) <= g.m());
        if g.m() == g.n() as usize - 1 {
            prop_assert_eq!(r.num_components as usize, g.m());
        }
    }
}

/// True iff `e`'s endpoints are disconnected in `h` (= e was a bridge).
fn endpoints_separated(h: &Graph, e: Edge) -> bool {
    use smp_bcc::Csr;
    let csr = Csr::build(h);
    let mut seen = vec![false; h.n() as usize];
    let mut stack = vec![e.u];
    seen[e.u as usize] = true;
    while let Some(v) = stack.pop() {
        if v == e.v {
            return false;
        }
        for &w in csr.neighbors(v) {
            if !seen[w as usize] {
                seen[w as usize] = true;
                stack.push(w);
            }
        }
    }
    true
}

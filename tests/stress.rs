//! Heavy stress tests — `cargo test -- --ignored` to run.
//!
//! These exercise oversubscription (more threads than cores), large
//! instances, and long barrier sequences; they are excluded from the
//! default run to keep CI fast.

use smp_bcc::graph::gen;
use smp_bcc::{bcc, Algorithm, BccConfig, Pool};

#[test]
#[ignore = "heavy: large instance"]
fn half_million_vertex_pipeline() {
    let g = gen::random_connected(500_000, 2_000_000, 1);
    let base = bcc(&g, Algorithm::Sequential);
    let pool = Pool::new(4);
    for alg in [Algorithm::TvOpt, Algorithm::TvFilter] {
        let r = BccConfig::new(alg).run(&pool, &g).unwrap().result;
        assert_eq!(r.num_components, base.num_components, "{}", alg.name());
        assert_eq!(r.edge_comp, base.edge_comp);
    }
}

#[test]
#[ignore = "heavy: oversubscription"]
fn sixteen_threads_on_few_cores() {
    let g = gen::random_connected(50_000, 200_000, 2);
    let base = bcc(&g, Algorithm::Sequential);
    let pool = Pool::new(16);
    for alg in [Algorithm::TvSmp, Algorithm::TvOpt, Algorithm::TvFilter] {
        let r = BccConfig::new(alg).run(&pool, &g).unwrap().result;
        assert_eq!(r.edge_comp, base.edge_comp, "{}", alg.name());
    }
}

#[test]
#[ignore = "heavy: barrier soak"]
fn barrier_soak_many_episodes() {
    use std::sync::atomic::{AtomicU64, Ordering};
    let pool = Pool::new(8);
    let counter = AtomicU64::new(0);
    pool.run(|ctx| {
        for _ in 0..50_000 {
            counter.fetch_add(1, Ordering::Relaxed);
            ctx.barrier();
        }
    });
    assert_eq!(counter.load(Ordering::Relaxed), 8 * 50_000);
}

#[test]
#[ignore = "heavy: repeated runs shake out races"]
fn determinism_soak() {
    let g = gen::random_connected(30_000, 120_000, 3);
    let pool = Pool::new(8);
    let first = BccConfig::new(Algorithm::TvFilter)
        .run(&pool, &g)
        .unwrap()
        .result;
    for round in 0..20 {
        let r = BccConfig::new(Algorithm::TvFilter)
            .run(&pool, &g)
            .unwrap()
            .result;
        assert_eq!(r.edge_comp, first.edge_comp, "round {round}");
    }
}

#[test]
#[ignore = "heavy: dense paper-adjacent instance"]
fn dense_instance_end_to_end() {
    let g = gen::dense_percent(1_500, 0.8, 4);
    let base = bcc(&g, Algorithm::Sequential);
    assert_eq!(base.num_components, 1);
    let pool = Pool::new(4);
    let r = BccConfig::new(Algorithm::TvFilter)
        .run(&pool, &g)
        .unwrap()
        .result;
    assert_eq!(r.edge_comp, base.edge_comp);
    // The filter must cap the effective edge set.
    assert!(r.stats.effective_edges <= 2 * (g.n() as usize - 1));
}

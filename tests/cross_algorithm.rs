//! Cross-crate integration: all four algorithms must produce identical
//! canonical partitions on every input family, at every thread count.

use smp_bcc::graph::gen;
use smp_bcc::{bcc, Algorithm, BccConfig, Graph, Pool};

fn check_all(g: &Graph, threads: &[usize]) {
    let base = bcc(g, Algorithm::Sequential);
    for &p in threads {
        let pool = Pool::new(p);
        for alg in [Algorithm::TvSmp, Algorithm::TvOpt, Algorithm::TvFilter] {
            let r = BccConfig::new(alg)
                .run(&pool, g)
                .unwrap_or_else(|e| panic!("{} p={p}: {e}", alg.name()))
                .result;
            assert_eq!(
                r.num_components,
                base.num_components,
                "{} p={p} component count",
                alg.name()
            );
            assert_eq!(r.edge_comp, base.edge_comp, "{} p={p} labels", alg.name());
        }
    }
}

#[test]
fn random_graphs_many_seeds_and_densities() {
    for seed in 0..12u64 {
        let n = 150 + (seed as u32 * 37) % 200;
        for mult in [1usize, 3, 8] {
            let m = (n as usize - 1)
                .max(mult * n as usize)
                .min(gen::max_edges(n));
            let g = gen::random_connected(n, m, seed);
            check_all(&g, &[1, 3]);
        }
    }
}

#[test]
fn thread_count_sweep_on_one_instance() {
    let g = gen::random_connected(1_000, 5_000, 7);
    check_all(&g, &[1, 2, 3, 4, 6, 8]);
}

#[test]
fn trees_forests_of_bridges() {
    for seed in 0..4u64 {
        let g = gen::random_tree(500, seed);
        check_all(&g, &[1, 4]);
        let base = bcc(&g, Algorithm::Sequential);
        assert_eq!(base.num_components as usize, g.m());
    }
}

#[test]
fn biconnected_inputs_single_component() {
    check_all(&gen::cycle(257), &[1, 4]);
    check_all(&gen::torus(9, 11), &[1, 4]);
    check_all(&gen::complete(40), &[1, 4]);
    check_all(&gen::wheel(50), &[1, 4]);
    check_all(&gen::ladder(40), &[1, 4]);
    check_all(&gen::hypercube(8), &[1, 4]);
    check_all(&gen::complete_bipartite(12, 17), &[1, 4]);
    for g in [
        gen::torus(9, 11),
        gen::wheel(50),
        gen::ladder(40),
        gen::hypercube(8),
        gen::complete_bipartite(12, 17),
    ] {
        assert_eq!(bcc(&g, Algorithm::Sequential).num_components, 1);
    }
}

#[test]
fn barbell_has_two_blocks_plus_bridges() {
    let g = gen::barbell(6, 4);
    check_all(&g, &[1, 3]);
    let base = bcc(&g, Algorithm::Sequential);
    assert_eq!(base.num_components, 2 + 4);
}

#[test]
fn pathological_chain_for_bfs_diameter() {
    // The paper's pathological case for TV-filter: a chain (d = O(n)).
    let g = gen::path(5_000);
    check_all(&g, &[1, 4]);
}

#[test]
fn dense_woo_sahni_style_instances() {
    for pct in [0.7f64, 0.9] {
        let g = gen::dense_percent(120, pct, 3);
        assert!(smp_bcc::graph::validate::is_connected(&g));
        check_all(&g, &[1, 4]);
        assert_eq!(bcc(&g, Algorithm::Sequential).num_components, 1);
    }
}

#[test]
fn medium_random_instance_exercises_parallel_paths() {
    // Above the sequential-fallback thresholds of BFS/traversal/CSR.
    let g = gen::random_connected(30_000, 120_000, 5);
    check_all(&g, &[4]);
}

#[test]
fn repeated_runs_are_deterministic() {
    let g = gen::random_connected(400, 1200, 9);
    let pool = Pool::new(4);
    let r1 = BccConfig::new(Algorithm::TvFilter)
        .run(&pool, &g)
        .unwrap()
        .result;
    for _ in 0..5 {
        let r2 = BccConfig::new(Algorithm::TvFilter)
            .run(&pool, &g)
            .unwrap()
            .result;
        assert_eq!(r1.edge_comp, r2.edge_comp);
    }
}

//! Integration tests for the extensions beyond the paper's core:
//! ranker variants, the synchronous Awerbuch–Shiloach algorithm, the
//! double-BFS counting corollary, parallel derived outputs, and R-MAT
//! workloads through the per-component driver.

use smp_bcc::algorithms::verify::{
    articulation_points, articulation_points_par, bridges, bridges_par,
};
use smp_bcc::connectivity::as_sync::awerbuch_shiloach;
use smp_bcc::connectivity::seq::components_union_find;
use smp_bcc::euler::Ranker;
use smp_bcc::graph::gen;
use smp_bcc::{bcc, double_bfs_upper_bound, Algorithm, BccConfig, Pool};

#[test]
fn tv_smp_ranker_variants_agree() {
    let g = gen::random_connected(600, 2400, 3);
    let base = bcc(&g, Algorithm::Sequential);
    for p in [1, 4] {
        let pool = Pool::new(p);
        for ranker in [Ranker::Sequential, Ranker::Wyllie, Ranker::HelmanJaja] {
            let r = BccConfig::new(Algorithm::TvSmp)
                .ranker(ranker)
                .run(&pool, &g)
                .unwrap()
                .result;
            assert_eq!(r.edge_comp, base.edge_comp, "{ranker:?} p={p}");
        }
    }
}

#[test]
fn awerbuch_shiloach_agrees_with_union_find_at_scale() {
    let g = gen::rmat(13, 40_000, 0.45, 0.25, 0.15, 9);
    let oracle = components_union_find(g.n(), g.edges());
    for p in [1, 4] {
        let pool = Pool::new(p);
        let r = awerbuch_shiloach(&pool, g.n(), g.edges());
        assert_eq!(r.num_components, oracle.count, "p={p}");
    }
}

#[test]
fn rmat_graphs_through_per_component_driver() {
    for seed in 0..3u64 {
        let g = gen::rmat(10, 3000, 0.57, 0.19, 0.19, seed);
        let base = bcc(&g, Algorithm::Sequential);
        for alg in [Algorithm::TvSmp, Algorithm::TvOpt, Algorithm::TvFilter] {
            let pool = Pool::new(3);
            let r = BccConfig::new(alg).run_any(&pool, &g).unwrap().result;
            assert_eq!(r.edge_comp, base.edge_comp, "{} seed={seed}", alg.name());
        }
    }
}

#[test]
fn double_bfs_bound_via_facade() {
    let pool = Pool::new(2);
    let g = gen::random_connected(400, 1600, 5);
    let truth = bcc(&g, Algorithm::Sequential).num_components;
    let bound = double_bfs_upper_bound(&pool, &g).unwrap();
    assert!(bound >= truth);
    // At the paper's density the bound is exact for this seed.
    assert_eq!(bound, truth);
}

#[test]
fn parallel_derivations_match_on_big_instance() {
    let g = gen::random_connected(5_000, 12_000, 8);
    let r = bcc(&g, Algorithm::TvFilter);
    let pool = Pool::new(4);
    let mut seq_art = articulation_points(&g, &r.edge_comp);
    seq_art.sort_unstable();
    assert_eq!(articulation_points_par(&pool, &g, &r.edge_comp), seq_art);
    assert_eq!(
        bridges_par(&pool, &g, &r.edge_comp),
        bridges(&g, &r.edge_comp)
    );
}

#[test]
fn block_cut_tree_and_two_ecc_from_parallel_results() {
    use smp_bcc::algorithms::{two_edge_connected_components, BlockCutTree};
    let g = gen::barbell(5, 3);
    let pool = Pool::new(3);
    let r = BccConfig::new(Algorithm::TvFilter)
        .run(&pool, &g)
        .unwrap()
        .result;
    let t = BlockCutTree::build(&g, &r);
    assert_eq!(t.num_blocks, 2 + 3); // two cliques + three bridges
    assert_eq!(t.articulation.len(), 4); // both clique gates + 2 path vertices
                                         // Tree property.
    assert_eq!(t.edges.len() as u32, t.num_nodes() - 1);

    let l = two_edge_connected_components(&pool, &g, &r);
    let mut classes = l.clone();
    classes.sort_unstable();
    classes.dedup();
    // Two clique classes + 2 singleton path vertices.
    assert_eq!(classes.len(), 4);
}

#[test]
fn lca_consistent_with_bcc_ancestry() {
    use smp_bcc::connectivity::bfs::bfs_tree_seq;
    use smp_bcc::euler::{dfs_euler_tour, tree_computations, LcaIndex};
    use smp_bcc::Csr;
    let tree = gen::random_tree(500, 11);
    let pool = Pool::new(2);
    let csr = Csr::build(&tree);
    let bfs = bfs_tree_seq(&csr, 0);
    let tour = dfs_euler_tour(&pool, tree.n(), tree.edges().to_vec(), &bfs.parent, 0);
    let info = tree_computations(&pool, &tour, 0);
    let lca = LcaIndex::build(&pool, &info);
    // is_ancestor(a, d) <=> lca(a, d) == a.
    for u in (0..500u32).step_by(17) {
        for v in (0..500u32).step_by(23) {
            assert_eq!(info.is_ancestor(u, v), lca.lca(u, v) == u, "({u},{v})");
        }
    }
}

#[test]
fn schmidt_cross_checks_the_pipeline_at_scale() {
    use smp_bcc::algorithms::chain_decomposition;
    // 20k vertices — far beyond the brute-force oracles' reach.
    let g = gen::random_connected(20_000, 50_000, 13);
    let pool = Pool::new(4);
    let r = BccConfig::new(Algorithm::TvFilter)
        .run(&pool, &g)
        .unwrap()
        .result;
    let d = chain_decomposition(&g);
    let mut art = r.articulation_points(&g);
    art.sort_unstable();
    assert_eq!(art, d.articulation);
    assert_eq!(r.bridges(&g), d.bridges);
    // Consistency: biconnected iff exactly one block and no cut vertices.
    assert_eq!(d.is_biconnected(), r.num_components == 1 && art.is_empty());
}

#[test]
fn facade_one_call_api_handles_everything() {
    // Disconnected, self-contained call with machine pool.
    let g = gen::rmat(9, 1200, 0.5, 0.2, 0.2, 1);
    let r = bcc(&g, Algorithm::TvFilter);
    let base = bcc(&g, Algorithm::Sequential);
    assert_eq!(r.edge_comp, base.edge_comp);
    assert_eq!(r.num_components, base.num_components);
}

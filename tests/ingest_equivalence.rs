//! Out-of-core ingest equivalence: for every generator family, the
//! biconnected-components labeling computed from an mmap-backed
//! `.bccsr` graph must be bit-for-bit identical to the one computed
//! from the in-memory build — across every algorithm, since the
//! storage backend sits below the whole pipeline.

use smp_bcc::graph::gen;
use smp_bcc::{Algorithm, BccConfig, Graph, MappedCsr, Pool};

fn family_instances() -> Vec<(&'static str, Graph)> {
    vec![
        ("random-sparse", gen::random_connected(300, 1200, 42)),
        ("geo", gen::geometric(300, 12.0, 300, 42)),
        ("torus", gen::torus(17, 17)),
        ("cycle-chain", gen::cycle_chain(36, 8, 42)),
        ("random-tree", gen::random_tree(200, 42)),
        ("two-cliques", gen::two_cliques_sharing_vertex(9)),
    ]
}

#[test]
fn mapped_and_in_memory_builds_label_identically_on_every_family() {
    let dir = std::env::temp_dir().join(format!("bcc-ingest-eq-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let pool = Pool::new(4);
    for (name, g) in family_instances() {
        let path = dir.join(format!("{name}.bccsr"));
        g.save_bccsr(&path).unwrap();
        let mapped = MappedCsr::open_graph(&path).unwrap();
        assert!(mapped.is_mapped());
        assert_eq!(mapped.edges(), g.edges(), "{name}: edge list differs");
        for alg in Algorithm::ALL {
            let mem = BccConfig::new(alg).run_any(&pool, &g).unwrap().result;
            let disk = BccConfig::new(alg).run_any(&pool, &mapped).unwrap().result;
            assert_eq!(
                mem.num_components,
                disk.num_components,
                "{name}/{}: component counts differ",
                alg.name()
            );
            assert_eq!(
                mem.edge_comp,
                disk.edge_comp,
                "{name}/{}: labelings differ",
                alg.name()
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

//! Integration tests for the §4 filtering machinery: the size bound on
//! the reduced edge set, the lemmas' structural claims, and the paper's
//! "corollary" about counting components via double BFS (including a
//! counterexample we found while reproducing — see EXPERIMENTS.md).

use smp_bcc::connectivity::bfs::bfs_tree_seq;
use smp_bcc::connectivity::sv::connected_components;
use smp_bcc::graph::gen;
use smp_bcc::{bcc, Algorithm, BccConfig, Csr, Edge, Graph, GraphBuilder, Pool};

/// T ∪ F for `g` via BFS tree + SV forest — mirrors tv_filter's
/// filtering step.
fn reduced_edge_count(g: &Graph) -> usize {
    let csr = Csr::build(g);
    let bfs = bfs_tree_seq(&csr, 0);
    assert_eq!(bfs.reached, g.n());
    let mut in_tree = vec![false; g.m()];
    for &e in &bfs.tree_edge_ids() {
        in_tree[e as usize] = true;
    }
    let nontree: Vec<Edge> = g
        .edges()
        .iter()
        .enumerate()
        .filter(|(i, _)| !in_tree[*i])
        .map(|(_, &e)| e)
        .collect();
    let pool = Pool::new(1);
    let forest = connected_components(&pool, g.n(), &nontree);
    (g.n() as usize - 1) + forest.tree_edges.len()
}

#[test]
fn reduced_set_is_at_most_2n_minus_2() {
    for seed in 0..6u64 {
        for mult in [2usize, 5, 12] {
            let n = 300u32;
            let m = (mult * n as usize).min(gen::max_edges(n));
            let g = gen::random_connected(n, m, seed);
            let r = reduced_edge_count(&g);
            assert!(
                r <= 2 * (n as usize - 1),
                "reduced {r} > 2(n-1) for m={m} seed={seed}"
            );
            // The paper: at least max(m - 2(n-1), 0) edges are filtered.
            assert!(m - r >= m.saturating_sub(2 * (n as usize - 1)));
        }
    }
}

#[test]
fn sparse_graphs_filter_nothing_much() {
    // A tree reduces to itself.
    let g = gen::random_tree(200, 1);
    assert_eq!(reduced_edge_count(&g), 199);
}

#[test]
fn bfs_tree_nontree_edges_span_at_most_one_level() {
    // Lemma 1's precondition: in a BFS tree, no nontree edge joins an
    // ancestor/descendant pair (they'd be ≥ 2 levels apart).
    for seed in 0..4u64 {
        let g = gen::random_connected(500, 2500, seed);
        let csr = Csr::build(&g);
        let bfs = bfs_tree_seq(&csr, 0);
        let mut in_tree = vec![false; g.m()];
        for &e in &bfs.tree_edge_ids() {
            in_tree[e as usize] = true;
        }
        for (i, e) in g.edges().iter().enumerate() {
            if in_tree[i] {
                continue;
            }
            let du = bfs.level[e.u as usize] as i64;
            let dv = bfs.level[e.v as usize] as i64;
            assert!((du - dv).abs() <= 1, "nontree edge {e:?} spans 2+ levels");
        }
    }
}

/// The paper's "immediate corollary" claims the number of components of
/// the spanning forest F of G − T equals the number of biconnected
/// components. This theta-graph counterexample shows the claim needs a
/// caveat: a single biconnected component's nontree edges can split
/// into several components of G − T under a valid BFS tree.
#[test]
fn double_bfs_counting_corollary_has_a_counterexample() {
    // Theta graph: a—x—b, a—y—b, a—z—b (vertices a=0, b=1, x=2, y=3, z=4).
    let g = GraphBuilder::new(5)
        .edges([(0, 2), (2, 1), (0, 3), (3, 1), (0, 4), (4, 1)])
        .build()
        .unwrap();
    assert_eq!(
        bcc(&g, Algorithm::Sequential).num_components,
        1,
        "theta graph is biconnected"
    );

    // A valid BFS tree from root x=2: levels x=0; a,b=1; y,z=2, with y
    // attached via a and z attached via b.
    let tree: Vec<Edge> = vec![
        Edge::new(0, 2), // a - x
        Edge::new(2, 1), // x - b
        Edge::new(0, 3), // a - y
        Edge::new(4, 1), // b - z
    ];
    // Check it is a BFS tree: every edge spans <= 1 level.
    let level = [1u32, 1, 0, 2, 2]; // a, b, x, y, z
    for e in g.edges() {
        assert!(level[e.u as usize].abs_diff(level[e.v as usize]) <= 1);
    }
    let tree_keys: std::collections::HashSet<u64> = tree.iter().map(|e| e.key()).collect();
    let nontree: Vec<Edge> = g
        .edges()
        .iter()
        .filter(|e| !tree_keys.contains(&e.key()))
        .copied()
        .collect();
    assert_eq!(nontree.len(), 2); // (3,1) = y-b and (0,4) = a-z

    // The two nontree edges share no vertex: two components of G − T,
    // yet the graph has ONE biconnected component.
    let pool = Pool::new(1);
    let f = connected_components(&pool, 5, &nontree);
    let non_isolated_components = f.tree_edges.len(); // each forest edge = one 2-vertex comp here
    assert_eq!(non_isolated_components, 2);
    // TV-filter itself remains correct: it keeps both forest edges.
}

#[test]
fn tv_filter_correct_on_the_counterexample_family() {
    // Generalized theta graphs with k internal paths.
    for k in 3u32..8 {
        let n = 2 + k;
        let mut edges = vec![];
        for i in 0..k {
            edges.push((0, 2 + i));
            edges.push((2 + i, 1));
        }
        let g = GraphBuilder::new(n).edges(edges).build().unwrap();
        let base = bcc(&g, Algorithm::Sequential);
        assert_eq!(base.num_components, 1);
        for p in [1, 3] {
            let pool = Pool::new(p);
            let r = BccConfig::new(Algorithm::TvFilter)
                .run(&pool, &g)
                .unwrap()
                .result;
            assert_eq!(r.edge_comp, base.edge_comp, "k={k} p={p}");
        }
    }
}

//! Quickstart: find biconnected components, articulation points, and
//! bridges of a small hand-built graph with every algorithm.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use smp_bcc::{Algorithm, BccConfig, GraphBuilder, Pool};

fn main() {
    // The classic lecture example: two triangles joined by a bridge,
    // with a pendant vertex.
    //
    //   0 --- 1        4 --- 5
    //    \   /          \   /
    //     \ /   bridge   \ /
    //      2 ----------- 3 --- 6
    //
    let g = GraphBuilder::new(7)
        .edges([
            (0, 1),
            (1, 2),
            (2, 0), // triangle A
            (2, 3), // bridge
            (3, 4),
            (4, 5),
            (5, 3), // triangle B
            (3, 6), // pendant bridge
        ])
        .build()
        .unwrap();

    let pool = Pool::machine();
    println!("graph: n = {}, m = {}", g.n(), g.m());
    println!("pool:  {} threads\n", pool.threads());

    for alg in Algorithm::ALL {
        let r = BccConfig::new(alg)
            .run(&pool, &g)
            .expect("connected input")
            .result;
        println!(
            "{:<11} {} biconnected components",
            alg.name(),
            r.num_components
        );
        println!("            edge -> component: ");
        for (i, e) in g.edges().iter().enumerate() {
            println!("              {:?} -> {}", e, r.edge_comp[i]);
        }
        println!(
            "            articulation points: {:?}",
            r.articulation_points(&g)
        );
        let bridge_edges: Vec<_> = r
            .bridges(&g)
            .iter()
            .map(|&i| g.edges()[i as usize])
            .collect();
        println!("            bridges: {bridge_edges:?}\n");
    }

    println!("All five algorithms produce the identical canonical partition.");
}

//! Fault-tolerant network design — the paper's motivating application.
//!
//! Builds a synthetic two-tier network (a biconnected backbone ring of
//! core routers with redundant chords, plus access trees hanging off
//! it), finds its biconnected components, and reports exactly where a
//! single router or link failure would partition the network: the
//! articulation points and bridges.
//!
//! ```text
//! cargo run --release --example network_resilience [backbone] [sites] [hosts_per_site] [seed]
//! ```

use rand::prelude::*;
use smp_bcc::{biconnected_components, Algorithm, Edge, Graph, Pool};

fn build_network(backbone: u32, sites: u32, hosts_per_site: u32, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<Edge> = Vec::new();

    // Core: a ring of `backbone` routers...
    for i in 0..backbone {
        edges.push(Edge::new(i, (i + 1) % backbone));
    }
    // ...with random redundant chords (making the core 2-connected with
    // margin).
    for _ in 0..backbone {
        let a = rng.gen_range(0..backbone);
        let b = rng.gen_range(0..backbone);
        if a != b && (a + 1) % backbone != b && (b + 1) % backbone != a {
            edges.push(Edge::new(a, b));
        }
    }

    // Aggregation: each site uplinks to ONE core router (a deliberate
    // single point of failure) and fans out a host tree.
    let mut next = backbone;
    for _ in 0..sites {
        let uplink = rng.gen_range(0..backbone);
        let site_router = next;
        next += 1;
        edges.push(Edge::new(uplink, site_router));
        // Hosts attach to the site router or to an earlier host (a
        // random tree).
        let first_host = next;
        for h in 0..hosts_per_site {
            let host = next;
            next += 1;
            let attach = if h == 0 {
                site_router
            } else {
                rng.gen_range(first_host..host)
            };
            edges.push(Edge::new(attach, host));
        }
        // Occasionally add a redundant second uplink — those sites will
        // NOT show up as failure domains.
        if rng.gen_bool(0.3) {
            let second = rng.gen_range(0..backbone);
            if second != uplink {
                edges.push(Edge::new(second, site_router));
            }
        }
    }

    let n = next;
    Graph::from_edges_lenient(n, edges)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg = |i: usize, default: u32| -> u32 {
        args.get(i).and_then(|s| s.parse().ok()).unwrap_or(default)
    };
    let backbone = arg(1, 24);
    let sites = arg(2, 40);
    let hosts = arg(3, 12);
    let seed = arg(4, 7) as u64;

    let g = build_network(backbone, sites, hosts, seed);
    println!(
        "network: {} nodes, {} links ({} core, {} sites x {} hosts)\n",
        g.n(),
        g.m(),
        backbone,
        sites,
        hosts
    );

    let pool = Pool::machine();
    let r = biconnected_components(&pool, &g, Algorithm::TvFilter).expect("connected");

    let arts = r.articulation_points(&g);
    let bridges = r.bridges(&g);
    println!("biconnected components: {}", r.num_components);
    println!(
        "single-point-of-failure routers (articulation points): {}",
        arts.len()
    );
    println!(
        "single-point-of-failure links (bridges): {}\n",
        bridges.len()
    );

    // Classify the failure domains.
    let core_arts = arts.iter().filter(|&&v| v < backbone).count();
    let site_arts = arts
        .iter()
        .filter(|&&v| v >= backbone && is_site_router(v, backbone, hosts))
        .count();
    println!("  core routers that are cut vertices:  {core_arts}");
    println!("  site routers that are cut vertices:  {site_arts}");
    println!(
        "  host-tree cut vertices:               {}",
        arts.len() - core_arts - site_arts
    );

    // The biggest block should be the redundant core.
    let mut block_sizes = std::collections::HashMap::new();
    for &c in &r.edge_comp {
        *block_sizes.entry(c).or_insert(0usize) += 1;
    }
    let largest = block_sizes.values().copied().max().unwrap_or(0);
    println!(
        "\nlargest biconnected block: {largest} links (the redundant core + dual-homed sites)"
    );
    println!("time: {:?} on {} threads", r.phases.total, pool.threads());
}

/// Site routers are the first vertex of each (1 + hosts) block after the
/// backbone.
fn is_site_router(v: u32, backbone: u32, hosts_per_site: u32) -> bool {
    (v - backbone).is_multiple_of(1 + hosts_per_site)
}

//! Fault-tolerant network analysis — the paper's motivating
//! application, served through the query engine.
//!
//! Builds a synthetic two-tier network (a biconnected backbone ring of
//! core routers with redundant chords, plus access trees hanging off
//! it), indexes it once with [`bcc_query::BiconnectivityIndex`], and
//! then does what a monitoring system does all day:
//!
//! 1. point queries — which routers are single points of failure, who
//!    survives a given router/link going down, which cut routers stand
//!    between two hosts;
//! 2. a pool-parallel batch — failure impact for thousands of host
//!    pairs at once;
//! 3. a failure injection — severs an uplink through the epoch-based
//!    [`bcc_query::IndexStore`] and queries the freshly published
//!    snapshot while the old epoch stays valid.
//!
//! ```text
//! cargo run --release --example network_resilience [backbone] [sites] [hosts_per_site] [seed]
//! ```

use rand::prelude::*;
use smp_bcc::query::{Failure, IndexStore, Query, QueryBatch};
use smp_bcc::{Edge, Graph, GraphBuilder, Pool};

fn build_network(backbone: u32, sites: u32, hosts_per_site: u32, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<Edge> = Vec::new();

    // Core: a ring of `backbone` routers...
    for i in 0..backbone {
        edges.push(Edge::new(i, (i + 1) % backbone));
    }
    // ...with random redundant chords (making the core 2-connected with
    // margin).
    for _ in 0..backbone {
        let a = rng.gen_range(0..backbone);
        let b = rng.gen_range(0..backbone);
        if a != b && (a + 1) % backbone != b && (b + 1) % backbone != a {
            edges.push(Edge::new(a, b));
        }
    }

    // Aggregation: each site uplinks to ONE core router (a deliberate
    // single point of failure) and fans out a host tree.
    let mut next = backbone;
    for _ in 0..sites {
        let uplink = rng.gen_range(0..backbone);
        let site_router = next;
        next += 1;
        edges.push(Edge::new(uplink, site_router));
        // Hosts attach to the site router or to an earlier host (a
        // random tree).
        let first_host = next;
        for h in 0..hosts_per_site {
            let host = next;
            next += 1;
            let attach = if h == 0 {
                site_router
            } else {
                rng.gen_range(first_host..host)
            };
            edges.push(Edge::new(attach, host));
        }
        // Occasionally add a redundant second uplink — those sites will
        // NOT show up as failure domains.
        if rng.gen_bool(0.3) {
            let second = rng.gen_range(0..backbone);
            if second != uplink {
                edges.push(Edge::new(second, site_router));
            }
        }
    }

    let n = next;
    GraphBuilder::new(n).lenient().edges(edges).build().unwrap()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg = |i: usize, default: u32| -> u32 {
        args.get(i).and_then(|s| s.parse().ok()).unwrap_or(default)
    };
    let backbone = arg(1, 24);
    let sites = arg(2, 40);
    let hosts = arg(3, 12);
    let seed = arg(4, 7) as u64;

    let g = build_network(backbone, sites, hosts, seed);
    let n = g.n();
    println!(
        "network: {} nodes, {} links ({} core, {} sites x {} hosts)\n",
        n,
        g.m(),
        backbone,
        sites,
        hosts
    );

    // ---- Build once ----------------------------------------------------
    let pool = Pool::machine();
    let t0 = std::time::Instant::now();
    let store = IndexStore::new(pool.clone(), g).expect("index build");
    let snap = store.load();
    println!(
        "index built in {:?} on {} threads (epoch {})",
        t0.elapsed(),
        pool.threads(),
        snap.epoch
    );
    let arts = snap.index.articulation_points();
    println!("biconnected components: {}", snap.index.num_blocks());
    println!(
        "single-point-of-failure routers (articulation points): {}",
        arts.len()
    );
    println!(
        "single-point-of-failure links (bridges): {}\n",
        snap.index.num_bridges()
    );

    // ---- Point queries -------------------------------------------------
    // Two hosts on different sites: what stands between them?
    let host_a = backbone + 1; // first host of site 0
    let host_b = backbone + (1 + hosts) + 1; // first host of site 1
    println!("hosts {host_a} and {host_b} (different sites):");
    println!(
        "  same block?            {}",
        snap.index.same_block(host_a, host_b)
    );
    let cut = snap.index.vertex_cut_between(host_a, host_b);
    println!("  routers between them:  {} cut vertices", cut.len());
    if let Some(&worst) = cut.first() {
        println!(
            "  surviving failure of router {worst}? {}",
            snap.index
                .survives_failure(host_a, host_b, Failure::Vertex(worst))
        );
    }
    println!(
        "  surviving a core ring link loss? {}\n",
        snap.index
            .survives_failure(host_a, host_b, Failure::Edge(0, 1))
    );

    // ---- Batch: failure impact over many host pairs --------------------
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBA7C4);
    let mut batch = QueryBatch::new();
    let probe = arts.first().copied().unwrap_or(0);
    for _ in 0..50_000 {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        batch.push(Query::SurvivesFailure(u, v, Failure::Vertex(probe)));
    }
    let t1 = std::time::Instant::now();
    let answers = batch.run(&pool, &snap.index);
    let dt = t1.elapsed();
    let survivors = answers.iter().filter(|a| a.as_bool()).count();
    println!(
        "batch: {} random pairs vs failure of router {probe}: {:.1}% survive",
        batch.len(),
        100.0 * survivors as f64 / batch.len() as f64
    );
    println!(
        "       answered in {:?} ({:.1}M queries/s on {} threads)\n",
        dt,
        batch.len() as f64 / dt.as_secs_f64() / 1e6,
        pool.threads()
    );

    // ---- Failure injection through the store ---------------------------
    // Sever site 0's uplink: the first edge out of the backbone.
    let site0 = backbone;
    let uplink = snap
        .graph
        .edges()
        .iter()
        .find(|e| e.u.max(e.v) == site0)
        .copied()
        .expect("site 0 has an uplink");
    let mut txn = store.begin();
    txn.remove(uplink.u, uplink.v);
    let t2 = std::time::Instant::now();
    let after = txn.commit().expect("rebuild");
    println!(
        "injected failure of uplink ({}, {}): rebuilt epoch {} in {:?}",
        uplink.u,
        uplink.v,
        after.epoch,
        t2.elapsed()
    );
    println!(
        "  commit rebuilt {} of {} components ({} vertices, {:.0}% of the index reused)",
        after.stats.components_rebuilt,
        after.stats.components_rebuilt + after.stats.components_reused,
        after.stats.vertices_rebuilt,
        100.0 * after.stats.reused_fraction
    );
    println!(
        "  host {host_a} reaches the core now?   {}",
        after.index.connected(host_a, 0)
    );
    println!(
        "  ...but the epoch-{} snapshot still answers from before: {}",
        snap.epoch,
        snap.index.connected(host_a, 0)
    );
}

//! Demonstrates the paper's §4 insight: TV-filter discards
//! non-essential edges, so steps 4–6 run on at most 2(n−1) edges no
//! matter how dense the input. On dense graphs the win is dramatic.
//!
//! ```text
//! cargo run --release --example dense_filtering [n] [seed]
//! ```

use smp_bcc::graph::gen;
use smp_bcc::{Algorithm, BccConfig, Pool};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2_000);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);

    let pool = Pool::machine();
    println!("n = {n}, {} threads\n", pool.threads());
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>8}",
        "m", "TV-opt", "TV-filter", "Sequential", "ratio"
    );

    // Sweep density from sparse (m = 2n) toward dense (m = n log n and
    // beyond): the filter's advantage grows with density because it
    // caps the effective edge count at 2(n-1).
    let densities: &[usize] = &[2, 4, 8, 16, 32];
    for &d in densities {
        let m = (n as usize * d).min(gen::max_edges(n));
        let g = gen::random_connected(n, m, seed);

        let opt = BccConfig::new(Algorithm::TvOpt)
            .run(&pool, &g)
            .unwrap()
            .result;
        let filter = BccConfig::new(Algorithm::TvFilter)
            .run(&pool, &g)
            .unwrap()
            .result;
        let seq = BccConfig::new(Algorithm::Sequential)
            .run(&pool, &g)
            .unwrap()
            .result;
        assert_eq!(opt.edge_comp, filter.edge_comp, "algorithms must agree");
        assert_eq!(opt.edge_comp, seq.edge_comp);

        let ratio = opt.phases.total.as_secs_f64() / filter.phases.total.as_secs_f64();
        println!(
            "{:>10} {:>12.3?} {:>12.3?} {:>12.3?} {:>7.2}x",
            m, opt.phases.total, filter.phases.total, seq.phases.total, ratio
        );
    }

    println!(
        "\nTV-filter considers at most 2(n-1) = {} edges in its Low-high /",
        2 * (n - 1)
    );
    println!("Label-edge / Connected-components steps regardless of m.");
}

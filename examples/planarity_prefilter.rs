//! Planarity prefiltering — the paper's second motivating application
//! (§1: biconnected components are "used in graph planarity testing").
//!
//! A graph is planar iff every biconnected component is planar, so
//! planarity testers decompose into blocks first and test each block
//! independently (smaller instances, parallelizable). This example runs
//! the decomposition and applies the cheap Euler-formula screens per
//! block:
//!
//! * a block with `m > 3n - 6` edges is certainly non-planar;
//! * bridges and cycles are trivially planar;
//! * everything else is "needs a real planarity test" — the point is
//!   how much of the graph the decomposition settles for free.
//!
//! ```text
//! cargo run --release --example planarity_prefilter [n] [m] [seed]
//! ```

use smp_bcc::{Algorithm, BccConfig, Pool};
use std::collections::HashMap;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(50_000);
    let m: usize = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3 * n as usize / 2);
    let seed: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(11);

    // A sparse random graph: mostly trees and small blocks.
    let g = smp_bcc::graph::gen::random_gnm(n, m, seed);
    let pool = Pool::machine();
    let r = BccConfig::new(Algorithm::TvFilter)
        .run_any(&pool, &g)
        .expect("per-component driver accepts any graph")
        .result;

    // Per-block vertex and edge counts.
    let mut block_edges: HashMap<u32, usize> = HashMap::new();
    let mut block_vertices: HashMap<u32, std::collections::HashSet<u32>> = HashMap::new();
    for (i, e) in g.edges().iter().enumerate() {
        let c = r.edge_comp[i];
        *block_edges.entry(c).or_default() += 1;
        let set = block_vertices.entry(c).or_default();
        set.insert(e.u);
        set.insert(e.v);
    }

    let mut trivially_planar = 0usize; // bridges and cycles
    let mut euler_nonplanar = 0usize; // m > 3n - 6
    let mut needs_full_test = 0usize;
    let mut largest_pending = 0usize;
    for (c, &me) in &block_edges {
        let nv = block_vertices[c].len();
        if me == 1 || me == nv {
            // Bridge (1 edge) or a single cycle (m == n in a block).
            trivially_planar += 1;
        } else if me > 3 * nv.saturating_sub(2) {
            // m > 3n - 6 (rewritten to dodge underflow for tiny blocks).
            euler_nonplanar += 1;
        } else {
            needs_full_test += 1;
            largest_pending = largest_pending.max(me);
        }
    }

    println!("graph: n = {}, m = {}", g.n(), g.m());
    println!("biconnected components: {}", r.num_components);
    println!("  trivially planar (bridges + cycles): {trivially_planar}");
    println!("  certainly non-planar (m > 3n - 6):   {euler_nonplanar}");
    println!("  need a full planarity test:          {needs_full_test}");
    println!("  largest pending block:               {largest_pending} edges");
    println!(
        "\nThe decomposition settles {:.1}% of the blocks without running a\n\
         planarity algorithm at all, and the remaining tests are independent\n\
         (one per block) — exactly why planarity testers start with BCC.",
        100.0 * (trivially_planar + euler_nonplanar) as f64 / (r.num_components.max(1) as f64)
    );
    println!("decomposition time: {:?}", r.phases.total);
}

//! A miniature of the paper's Fig. 3 from the public API: execution
//! time of the three parallel TV algorithms on a random graph, swept
//! over thread counts.
//!
//! ```text
//! cargo run --release --example scaling_study [n] [m] [max_threads]
//! ```

use smp_bcc::graph::gen;
use smp_bcc::serve::{
    component_grid, run_workload, Daemon, Mode, Profile, ServeConfig, ShardedStore, WorkloadConfig,
};
use smp_bcc::{Algorithm, BccConfig, Pool, Telemetry};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(100_000);
    let m: usize = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4 * n as usize);
    let max_p: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(8);

    println!("random connected graph: n = {n}, m = {m}");
    let g = gen::random_connected(n, m, 42);

    let seq = BccConfig::new(Algorithm::Sequential)
        .run(&Pool::new(1), &g)
        .unwrap()
        .result;
    println!(
        "Sequential (Tarjan): {:?}  [{} components]\n",
        seq.phases.total, seq.num_components
    );

    println!(
        "{:>4} {:>12} {:>12} {:>12}   (speedup vs sequential)",
        "p", "TV-SMP", "TV-opt", "TV-filter"
    );
    let mut p = 1;
    let mut traversal_note = String::new();
    while p <= max_p {
        let pool = Pool::new(p);
        let mut cells = Vec::new();
        for alg in [Algorithm::TvSmp, Algorithm::TvOpt, Algorithm::TvFilter] {
            let r = BccConfig::new(alg).run(&pool, &g).unwrap().result;
            assert_eq!(r.edge_comp, seq.edge_comp, "{} must agree", alg.name());
            let speedup = seq.phases.total.as_secs_f64() / r.phases.total.as_secs_f64();
            cells.push(format!("{:>8.0?}({speedup:4.2})", r.phases.total));
            if alg == Algorithm::TvFilter {
                // Largest thread count wins (the loop ascends).
                traversal_note = format!(
                    "TV-filter traversal work at p = {p}: BFS ran {} levels \
                     ({} bottom-up, schedule {}); spanning-forest SV took {} \
                     round(s), step-6 SV {} round(s).",
                    r.stats.bfs_levels,
                    r.stats.bfs_bottom_up_levels,
                    r.stats.bfs_directions,
                    r.stats.sv_rounds_spanning,
                    r.stats.sv_rounds_cc,
                );
            }
        }
        println!("{:>4} {} {} {}", p, cells[0], cells[1], cells[2]);
        p *= 2;
    }
    println!("\n{traversal_note}");

    println!(
        "\nNote: on a machine with few physical cores the speedup curves are\n\
         flat; the *relative ordering* (TV-SMP slowest, TV-filter fastest on\n\
         non-sparse inputs) is the paper's reproducible shape."
    );

    // ---- Snapshot lag under churn --------------------------------------
    // The serving layer reports staleness through the same `Telemetry`
    // sink the pipelines use, so a batch run and a daemon run read
    // uniformly. Sweep reader counts over a churn-heavy workload and
    // print the lag stats straight from the shared sink.
    let serve_n = (n / 10).clamp(1_200, 100_000);
    println!("\nsnapshot lag under churn (90/10 read/update, closed loop, n = {serve_n}):");
    let g = component_grid(serve_n, 8, 42);
    println!(
        "{:>4} {:>12} {:>16} {:>14} {:>12}",
        "p", "queries/s", "lag mean(commits)", "lag max", "age mean"
    );
    let mut p = 1;
    while p <= max_p {
        let sink = Arc::new(Telemetry::new(p));
        let store = Arc::new(ShardedStore::new(&Pool::new(p), &g, 4).unwrap());
        let daemon = Daemon::spawn(
            store,
            ServeConfig::builder()
                .readers(p)
                .telemetry(Arc::clone(&sink))
                .flush_interval(Duration::from_millis(1))
                .build(),
        );
        let report = run_workload(
            daemon,
            &WorkloadConfig {
                profile: Profile::ChurnHeavy,
                mode: Mode::Closed,
                duration: Duration::from_millis(400),
                parts: 8,
                seed: 42,
            },
        );
        if let Some(e) = &report.serve.writer_error {
            panic!("writer failed at p = {p}: {e}");
        }
        let lag = sink.snapshot();
        assert_eq!(lag.snapshot_lag_samples, report.serve.answered);
        println!(
            "{:>4} {:>12.0} {:>17.3} {:>14} {:>12.1?}",
            p,
            report.queries_per_sec(),
            lag.snapshot_lag_mean_commits(),
            lag.snapshot_lag_commits_max,
            lag.snapshot_lag_mean_wall(),
        );
        p *= 2;
    }
}

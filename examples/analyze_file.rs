//! Command-line graph analyzer: read a graph from a text file (or
//! generate one), report its biconnected structure, and optionally
//! write the per-edge component labels back out.
//!
//! ```text
//! cargo run --release --example analyze_file -- <graph.txt> [out.txt]
//! cargo run --release --example analyze_file -- --demo
//! ```
//!
//! File format (`#` comments allowed):
//!
//! ```text
//! p <n> <m>
//! e <u> <v>
//! ```

use smp_bcc::graph::{gen, io};
use smp_bcc::{Algorithm, BccConfig, Pool};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let g = match args.first().map(String::as_str) {
        Some("--demo") | None => {
            eprintln!(
                "(no file given: analyzing a demo R-MAT graph; pass a path to analyze your own)"
            );
            gen::rmat(12, 20_000, 0.57, 0.19, 0.19, 42)
        }
        Some(path) => {
            let file = std::fs::File::open(path).unwrap_or_else(|e| {
                eprintln!("cannot open {path}: {e}");
                std::process::exit(1);
            });
            io::load_text(file).unwrap_or_else(|e| {
                eprintln!("cannot parse {path}: {e}");
                std::process::exit(1);
            })
        }
    };

    let pool = Pool::machine();
    let r = BccConfig::new(Algorithm::TvFilter)
        .run_any(&pool, &g)
        .expect("per-component driver accepts any graph")
        .result;

    let arts = r.articulation_points(&g);
    let bridges = r.bridges(&g);
    let connected = smp_bcc::graph::validate::count_components(&g);

    println!("vertices:               {}", g.n());
    println!("edges:                  {}", g.m());
    println!("connected components:   {connected}");
    println!("biconnected components: {}", r.num_components);
    println!("articulation points:    {}", arts.len());
    println!("bridges:                {}", bridges.len());

    // Block size distribution.
    let mut sizes = std::collections::HashMap::new();
    for &c in &r.edge_comp {
        *sizes.entry(c).or_insert(0usize) += 1;
    }
    let mut hist: Vec<usize> = sizes.values().copied().collect();
    hist.sort_unstable_by(|a, b| b.cmp(a));
    println!("largest blocks (edges): {:?}", &hist[..hist.len().min(8)]);
    println!("analysis time:          {:?}", r.phases.total);

    if let Some(out_path) = args.get(1).filter(|_| args[0] != "--demo") {
        let mut out = std::io::BufWriter::new(std::fs::File::create(out_path).unwrap());
        writeln!(out, "# edge_index u v component").unwrap();
        for (i, e) in g.edges().iter().enumerate() {
            writeln!(out, "{} {} {} {}", i, e.u, e.v, r.edge_comp[i]).unwrap();
        }
        println!("wrote per-edge labels to {out_path}");
    }
}

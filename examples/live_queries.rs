//! Live biconnectivity serving — an in-process [`smp_bcc::serve`]
//! daemon answering resilience queries while link failures stream in.
//!
//! Builds a multi-component graph (rings with redundant chords),
//! shards it across per-component [`smp_bcc::IndexStore`]s, and spawns
//! the daemon: reader threads answering from lock-free snapshots, one
//! writer thread group-committing edge updates. The main thread then
//! plays operator-under-fire for a few seconds — toggling chord
//! failures through the update queue while firing connectivity and
//! survives-failure queries — and prints the SLO view a monitoring
//! system would alert on: latency p50/p99/p999 and how stale (in
//! commits and in wall time) the answered snapshots were.
//!
//! ```text
//! cargo run --release --example live_queries [n] [parts] [shards] [readers] [secs] [seed]
//! ```

use smp_bcc::query::{EdgeUpdate, Failure, Query};
use smp_bcc::serve::{component_grid, Daemon, Request, ServeConfig, ShardedStore};
use smp_bcc::Pool;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg = |i: usize, default: u64| -> u64 {
        args.get(i).and_then(|s| s.parse().ok()).unwrap_or(default)
    };
    let n = arg(1, 20_000) as u32;
    let parts = arg(2, 8) as u32;
    let shards = arg(3, 4) as usize;
    let readers = arg(4, 2) as usize;
    let secs = arg(5, 2);
    let seed = arg(6, 42);

    // ---- Build and shard the index ------------------------------------
    let pool = Pool::machine();
    let g = component_grid(n, parts, seed);
    println!(
        "graph: {} vertices, {} edges in {parts} components",
        g.n(),
        g.m()
    );
    let t0 = Instant::now();
    let store = Arc::new(ShardedStore::new(&pool, &g, shards).expect("index build"));
    println!(
        "sharded store: {} shards built in {:?} on {} threads\n",
        store.num_shards(),
        t0.elapsed(),
        pool.threads()
    );

    // ---- Spawn the daemon ---------------------------------------------
    let daemon = Daemon::spawn(
        Arc::clone(&store),
        ServeConfig::builder()
            .readers(readers)
            .batch_max(32)
            .flush_interval(Duration::from_millis(1))
            .build(),
    );
    println!("daemon up: {readers} readers + {shards} writers, streaming for {secs}s...");

    // ---- Stream failures while querying --------------------------------
    // Each component is a contiguous ring `lo..hi`; we fail and restore
    // the chord (lo, lo + span/2) — a redundant link, so the component
    // stays connected but its block structure flips.
    let span = n / parts;
    let deadline = Instant::now() + Duration::from_secs(secs);
    let mut rng = seed | 1;
    let mut step = |m: u64| {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (rng >> 33) % m
    };
    let mut offered_queries = 0u64;
    let mut offered_updates = 0u64;
    let mut link_down = vec![false; parts as usize];
    while Instant::now() < deadline {
        let c = step(parts as u64) as u32;
        let lo = c * span;
        let mid = lo + span / 2;

        // One link event per round: fail or restore component c's chord.
        let update = if link_down[c as usize] {
            EdgeUpdate::Insert(lo, mid)
        } else {
            EdgeUpdate::Remove(lo, mid)
        };
        link_down[c as usize] = !link_down[c as usize];
        if daemon.submit(Request::Update { id: 0, update }).is_err() {
            break;
        }
        offered_updates += 1;

        // A burst of resilience queries, mostly against the component
        // under churn (the interesting case for snapshot lag).
        for _ in 0..64 {
            let u = lo + step(span as u64) as u32;
            let v = lo + step(span as u64) as u32;
            let q = match step(4) {
                0 => Query::Connected(u, v),
                1 => Query::SameBlock(u, v),
                2 => Query::SurvivesFailure(u, v, Failure::Edge(lo, lo + 1)),
                _ => Query::SurvivesFailure(u, v, Failure::Vertex(mid)),
            };
            if daemon.submit(Request::Query { id: 0, query: q }).is_err() {
                break;
            }
            offered_queries += 1;
        }
    }

    // ---- Report ---------------------------------------------------------
    let report = daemon.shutdown();
    if let Some(e) = &report.writer_error {
        eprintln!("writer failed: {e}");
        std::process::exit(1);
    }
    assert_eq!(report.answered + report.query_errors, offered_queries);
    assert_eq!(report.updates_applied, offered_updates);

    let lat = &report.latency;
    println!(
        "\nanswered {} queries ({} positive)",
        report.answered, report.positive
    );
    println!(
        "latency:  p50 {:?}  p99 {:?}  p999 {:?}  max {:?}",
        lat.quantile_duration(0.50),
        lat.quantile_duration(0.99),
        lat.quantile_duration(0.999),
        Duration::from_nanos(lat.max()),
    );
    println!(
        "snapshot lag: p50 {} / p99 {} / max {} commits behind; age p99 {:?}",
        report.lag_commits.quantile(0.50),
        report.lag_commits.quantile(0.99),
        report.lag_commits.max(),
        report.lag_wall.quantile_duration(0.99),
    );
    println!(
        "writer:   {} link events in {} commits ({} cross-shard migrations), commit p99 {:?}",
        report.updates_applied,
        report.commits,
        report.migrations,
        report.commit_latency.quantile_duration(0.99),
    );
}

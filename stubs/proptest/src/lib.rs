//! Offline stand-in for `proptest`.
//!
//! The container building this workspace has no network and no cargo
//! registry cache, so the real `proptest` cannot be fetched. This crate
//! implements the subset its callers use — the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map`/`prop_flat_map`, range /
//! tuple / [`strategy::Just`] / [`arbitrary::any`] strategies,
//! [`collection::vec`], `prop_assert*!`, `prop_assume!`, and
//! [`test_runner::ProptestConfig`] — with deterministic sampling seeded
//! per test name and **no shrinking**: a failing case panics with the
//! sampled inputs left to the assertion message.

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// A strategy generating `f(value)`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// A strategy generating from the strategy `f(value)` returns.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Integer types usable as `lo..hi` strategy bounds.
    pub trait UniformInt: Copy {
        /// Uniform draw from `[lo, hi)`.
        fn uniform(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
    }

    macro_rules! impl_uniform_int {
        ($($t:ty),*) => {$(
            impl UniformInt for $t {
                fn uniform(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                    assert!(lo < hi, "strategy range must be non-empty");
                    let span = (hi as i128 - lo as i128) as u128;
                    lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*};
    }
    impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: UniformInt> Strategy for std::ops::Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::uniform(rng, self.start, self.end)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64()
        }
    }
    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 32) as u32
        }
    }
    impl Arbitrary for u16 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 48) as u16
        }
    }
    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as usize
        }
    }
    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }
    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as i64
        }
    }
    impl Arbitrary for i32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 32) as u32 as i32
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::{Strategy, UniformInt};
    use crate::test_runner::TestRng;

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// A `Vec` of `element` draws with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                usize::uniform(rng, self.len.start, self.len.end)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Config, RNG, and the rejection token behind `prop_assume!`.
pub mod test_runner {
    /// Per-test configuration (the `cases` knob is the one the
    /// workspace uses).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per test.
        pub cases: u32,
        /// Bail after this many `prop_assume!` rejections.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_global_rejects: 4096,
            }
        }
    }

    /// Returned (via `Err`) by `prop_assume!` when a case is discarded.
    #[derive(Clone, Copy, Debug)]
    pub struct Rejected;

    /// Deterministic splitmix64 RNG, seeded from the test name so every
    /// test sees a stable stream across runs.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for the named test.
        pub fn for_test(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Everything call sites import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines `#[test]` functions over sampled inputs.
///
/// Supports the real macro's surface as used in this workspace: an
/// optional `#![proptest_config(expr)]` header and one or more
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( #[test] fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < cfg.cases {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::Rejected> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err(_) => {
                            rejected += 1;
                            assert!(
                                rejected < cfg.max_global_rejects,
                                "{}: too many prop_assume! rejections ({rejected})",
                                stringify!($name),
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition, reporting the sampled case on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality, reporting the sampled case on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality, reporting the sampled case on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Discards the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy as _;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -5i64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn tuples_and_vecs_compose(
            (n, v) in (1usize..8, crate::collection::vec(0u32..100, 0..50)),
            flag in any::<bool>(),
        ) {
            prop_assert!(n >= 1 && n < 8);
            prop_assert!(v.len() < 50);
            prop_assert!(v.iter().all(|&x| x < 100));
            let _ = flag;
        }

        #[test]
        fn assume_discards_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn flat_map_threads_dependent_bounds() {
        let strat = (2u32..10).prop_flat_map(|n| (Just(n), 0..n));
        let mut rng = crate::test_runner::TestRng::for_test("flat_map");
        for _ in 0..200 {
            let (n, below) = strat.sample(&mut rng);
            assert!(below < n);
        }
    }

    #[test]
    fn prop_map_transforms() {
        let strat = (0u32..5).prop_map(|x| x * 10);
        let mut rng = crate::test_runner::TestRng::for_test("map");
        for _ in 0..50 {
            assert_eq!(strat.sample(&mut rng) % 10, 0);
        }
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! This container has no network access and no cargo registry cache, so
//! the real `rand` cannot be fetched. This crate implements exactly the
//! API subset the workspace uses — `StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_bool, gen_range}`, `SliceRandom::{shuffle, choose}` —
//! on top of a splitmix64 generator. Streams are deterministic per seed
//! but differ from real `rand 0.8` output; seeds baked into tests were
//! re-checked against this generator.

/// The subset of `rand::rngs` the workspace touches.
pub mod rngs {
    pub use crate::StdRng;
}

/// Everything call sites import via `use rand::prelude::*`.
pub mod prelude {
    pub use crate::{Rng, SeedableRng, SliceRandom, StdRng};
}

/// A deterministic 64-bit generator (splitmix64 core).
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

/// Seeding entry point, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types producible by `Rng::gen`.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw(rng: &mut StdRng) -> Self;
}

impl Standard for u64 {
    fn draw(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn draw(rng: &mut StdRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn draw(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut StdRng) -> Self {
        // 53 mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Types usable as `gen_range` bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_in(rng: &mut StdRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
        lo + f64::draw(rng) * (hi - lo)
    }
}

/// Range forms accepted by `gen_range` (one blanket impl per range kind
/// so integer literals unify with the expected output type).
pub trait UniformRange<T> {
    /// Bounds as a half-open `[lo, hi)` pair.
    fn lo_hi(self) -> (T, T);
}

impl<T: SampleUniform> UniformRange<T> for std::ops::Range<T> {
    fn lo_hi(self) -> (T, T) {
        (self.start, self.end)
    }
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Access to the underlying generator.
    fn rng_mut(&mut self) -> &mut StdRng;

    /// A uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self.rng_mut())
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self.rng_mut()) < p
    }

    /// A uniform draw from a half-open range.
    fn gen_range<T: SampleUniform, R: UniformRange<T>>(&mut self, range: R) -> T {
        let (lo, hi) = range.lo_hi();
        T::sample_in(self.rng_mut(), lo, hi)
    }
}

impl Rng for StdRng {
    fn rng_mut(&mut self) -> &mut StdRng {
        self
    }
}

/// The subset of `rand::seq::SliceRandom` the workspace uses.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle(&mut self, rng: &mut StdRng);

    /// A uniformly chosen element, `None` on an empty slice.
    fn choose<'a>(&'a self, rng: &mut StdRng) -> Option<&'a Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle(&mut self, rng: &mut StdRng) {
        for i in (1..self.len()).rev() {
            let j = rng.next_u64() as usize % (i + 1);
            self.swap(i, j);
        }
    }

    fn choose<'a>(&'a self, rng: &mut StdRng) -> Option<&'a T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.next_u64() as usize % self.len()])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut StdRng::seed_from_u64(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seed 3 must actually permute");
    }

    #[test]
    fn f64_draws_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }
}

//! Offline stand-in for `criterion`.
//!
//! The container building this workspace cannot fetch crates, so this
//! crate supplies the API subset the benches use — `Criterion`,
//! `benchmark_group` with `sample_size` / `throughput` /
//! `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark runs a short fixed schedule
//! (one warm-up pass, then a handful of timed passes) and prints the
//! best observed time; there is no statistical analysis. The point is
//! that `cargo bench` and `cargo test` compile and execute the bench
//! targets quickly, not that the numbers rival real criterion.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Timed passes per benchmark (after one warm-up pass).
const PASSES: u32 = 3;

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Unit attached to a group's measurements for per-element reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one parameterized benchmark within a group.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new<S: Into<String>, P: Display>(name: S, parameter: P) -> Self {
        BenchmarkId {
            full: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id rendered as just the parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// Runs the closure under test repeatedly and records the elapsed time.
pub struct Bencher {
    best: Duration,
}

impl Bencher {
    /// Times `routine`, keeping the best of a few passes.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        let mut best = Duration::MAX;
        for _ in 0..PASSES {
            let start = Instant::now();
            black_box(routine());
            best = best.min(start.elapsed());
        }
        self.best = best;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count (accepted, ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measured throughput unit for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Caps measurement wall time (accepted, ignored).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn record(&self, id: &str, best: Duration) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if !best.is_zero() => {
                format!("  ({:.1} Melem/s)", n as f64 / best.as_secs_f64() / 1e6)
            }
            Some(Throughput::Bytes(n)) if !best.is_zero() => {
                format!(
                    "  ({:.1} MiB/s)",
                    n as f64 / best.as_secs_f64() / (1 << 20) as f64
                )
            }
            _ => String::new(),
        };
        println!(
            "bench {}/{id}: best of {PASSES} = {best:?}{rate}",
            self.name
        );
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            best: Duration::ZERO,
        };
        f(&mut b);
        self.record(&id.into_benchmark_id().full, b.best);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            best: Duration::ZERO,
        };
        f(&mut b, input);
        self.record(&id.full, b.best);
        self
    }

    /// Ends the group (accepted for API parity; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Conversions accepted where a benchmark id is expected.
pub trait IntoBenchmarkId {
    /// The canonical id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            full: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { full: self }
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            best: Duration::ZERO,
        };
        f(&mut b);
        println!("bench {id}: best of {PASSES} = {:?}", b.best);
        self
    }
}

/// Bundles benchmark functions into one runner, like real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10)
                .throughput(Throughput::Elements(100))
                .bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
            g.bench_with_input(BenchmarkId::new("param", 8), &8usize, |b, &p| {
                b.iter(|| black_box(p * 2))
            });
            g.finish();
            ran += 1;
        }
        assert_eq!(ran, 1);
    }

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("top-level", |b| b.iter(|| black_box(1)));
    }

    criterion_group!(demo_group, sample_bench);

    #[test]
    fn macros_expand_to_runnables() {
        demo_group();
    }
}

//! Offline stand-in for `crossbeam-deque`.
//!
//! Implements the `Worker` / `Stealer` / `Steal` API subset the
//! work-stealing spanning tree uses, over an `Arc<Mutex<VecDeque>>`.
//! Semantics match the original (LIFO owner pops, FIFO steals); only
//! the lock-freedom is sacrificed, which costs throughput, not
//! correctness.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Owner handle of a work-stealing deque.
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

/// Thief handle of a [`Worker`]'s deque.
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

/// Outcome of a steal attempt.
pub enum Steal<T> {
    /// One item was stolen.
    Success(T),
    /// The deque was empty.
    Empty,
    /// Transient contention; try again.
    Retry,
}

impl<T> Worker<T> {
    /// A new deque whose owner pops in LIFO order.
    pub fn new_lifo() -> Self {
        Worker {
            queue: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// A thief handle sharing this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }

    /// Pushes onto the owner end.
    pub fn push(&self, item: T) {
        self.queue.lock().unwrap().push_back(item);
    }

    /// Pops from the owner end (LIFO).
    pub fn pop(&self) -> Option<T> {
        self.queue.lock().unwrap().pop_back()
    }

    /// True when the deque holds no items.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().unwrap().is_empty()
    }
}

impl<T> Stealer<T> {
    /// Steals one item from the victim end (FIFO).
    pub fn steal(&self) -> Steal<T> {
        match self.queue.try_lock() {
            Ok(mut q) => match q.pop_front() {
                Some(item) => Steal::Success(item),
                None => Steal::Empty,
            },
            Err(std::sync::TryLockError::WouldBlock) => Steal::Retry,
            Err(std::sync::TryLockError::Poisoned(_)) => Steal::Empty,
        }
    }

    /// True when the deque holds no items.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().unwrap().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_lifo_thief_is_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert!(matches!(s.steal(), Steal::Success(1)));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert!(w.pop().is_none());
        assert!(matches!(s.steal(), Steal::Empty));
    }

    #[test]
    fn concurrent_producers_and_thieves_conserve_items() {
        let w = Worker::new_lifo();
        for i in 0..10_000u32 {
            w.push(i);
        }
        let taken = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = w.stealer();
                let taken = &taken;
                scope.spawn(move || loop {
                    match s.steal() {
                        Steal::Success(_) => {
                            taken.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        Steal::Empty => break,
                        Steal::Retry => std::thread::yield_now(),
                    }
                });
            }
        });
        assert_eq!(taken.load(std::sync::atomic::Ordering::Relaxed), 10_000);
    }
}

//! Word-level and SIMD add-scan kernels.
//!
//! The Helman–JáJá substrate is memory-bound: prefix sums, compaction
//! and histogramming each stream every element once, so the only wins
//! left are instruction-level — breaking the scan's loop-carried
//! dependency chain and cutting bytes moved per element. This module
//! holds the specialized block kernels the [`crate::scan::ScanElem`]
//! implementations for `u32`/`u64` (and their same-layout siblings
//! `i32`/`i64`/`usize`/`isize`) dispatch to:
//!
//! * **Tiled scalar** ([`scan_add_u32_tiled`] and friends) — always
//!   available, stable Rust. An 8-element tile computes its pairwise
//!   partial sums as an independent tree, so the carried dependency
//!   advances by *one* add per 8 elements instead of one per element
//!   (~3× the ILP of the naive loop).
//! * **SSE2 / AVX2 / AVX-512F** (behind the `simd` cargo feature,
//!   `x86_64` only) — in-register prefix sums: shift-and-add within
//!   the vector, one store per 4–16 elements. The in-vector prefix
//!   *and* the broadcast of its total are computed off the carried
//!   chain (they depend only on the load), so the loop-carried
//!   dependency is a single vector add per iteration — `carry +=
//!   total` — not the shuffle latency of re-broadcasting the stored
//!   result. The 32-bit AVX2 path deliberately stays on 128-bit
//!   registers (two unrolled xmm chains): every in-register scan is
//!   bottlenecked on the shuffle port, and 128-bit shuffles dual-issue
//!   on recent cores where 256-bit cross-lane permutes all contend on
//!   one port. AVX-512F uses `valignd`/`valignq` lane shifts, which
//!   need no cross-lane fix-up at all. Selected at runtime with
//!   `is_x86_feature_detected!`; every entry point falls back to the
//!   tiled kernel transparently, so behavior is identical on every
//!   platform and build.
//!
//! All kernels use wrapping arithmetic (the [`crate::scan::ScanElem`]
//! contract for integers) and are exact drop-ins for the scalar loop:
//! the proptest suite pins each one against the generic oracle, driving
//! the dispatched *and* the fallback path in the same run.

/// Which vector path the dispatched kernels take on this host/build:
/// `"avx2"`, `"sse2"`, or `"scalar"` (non-x86_64, or the `simd` feature
/// disabled). Recorded in the `prims` BENCH cells so committed numbers
/// say what they measured.
pub fn simd_level() -> &'static str {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return "avx512";
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return "avx2";
        }
        if std::arch::is_x86_feature_detected!("sse2") {
            return "sse2";
        }
    }
    "scalar"
}

/// Inclusive add-scan of `a` seeded with `carry`; returns the final
/// running sum. Runtime-dispatched: AVX-512F → AVX2 → SSE2 → tiled
/// scalar.
#[inline]
pub fn scan_add_u32(a: &mut [u32], carry: u32) -> u32 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return unsafe { x86::scan_add_u32_avx512(a, carry) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return unsafe { x86::scan_add_u32_avx2(a, carry) };
        }
        if std::arch::is_x86_feature_detected!("sse2") {
            return unsafe { x86::scan_add_u32_sse2(a, carry) };
        }
    }
    scan_add_u32_tiled(a, carry)
}

/// Exclusive add-scan of `a` seeded with `carry` (`a[i] := carry +
/// sum(a[..i])`); returns the inclusive total. Runtime-dispatched.
#[inline]
pub fn scan_add_u32_excl(a: &mut [u32], carry: u32) -> u32 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return unsafe { x86::scan_add_u32_excl_avx512(a, carry) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return unsafe { x86::scan_add_u32_excl_avx2(a, carry) };
        }
        if std::arch::is_x86_feature_detected!("sse2") {
            return unsafe { x86::scan_add_u32_excl_sse2(a, carry) };
        }
    }
    scan_add_u32_excl_tiled(a, carry)
}

/// Inclusive add-scan over `u64`; runtime-dispatched (AVX-512F → AVX2
/// → tiled — two-lane SSE2 does not pay for itself on 64-bit
/// elements).
#[inline]
pub fn scan_add_u64(a: &mut [u64], carry: u64) -> u64 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return unsafe { x86::scan_add_u64_avx512(a, carry) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return unsafe { x86::scan_add_u64_avx2(a, carry) };
        }
    }
    scan_add_u64_tiled(a, carry)
}

/// Exclusive add-scan over `u64`; runtime-dispatched.
#[inline]
pub fn scan_add_u64_excl(a: &mut [u64], carry: u64) -> u64 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            return unsafe { x86::scan_add_u64_excl_avx512(a, carry) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return unsafe { x86::scan_add_u64_excl_avx2(a, carry) };
        }
    }
    scan_add_u64_excl_tiled(a, carry)
}

macro_rules! tiled_scan {
    ($incl:ident, $excl:ident, $t:ty) => {
        /// Tiled scalar inclusive add-scan: 8-element tiles whose
        /// pairwise partials form an independent tree, so the carried
        /// dependency advances one add per tile instead of one per
        /// element. Stable Rust, every platform; the dispatch fallback.
        pub fn $incl(a: &mut [$t], carry: $t) -> $t {
            let mut c = carry;
            let mut tiles = a.chunks_exact_mut(8);
            for tile in &mut tiles {
                let [a0, a1, a2, a3, a4, a5, a6, a7]: [$t; 8] = tile.try_into().unwrap();
                // Off-chain pairwise tree (independent of `c`).
                let t01 = a0.wrapping_add(a1);
                let t23 = a2.wrapping_add(a3);
                let t45 = a4.wrapping_add(a5);
                let t67 = a6.wrapping_add(a7);
                let t03 = t01.wrapping_add(t23);
                let t47 = t45.wrapping_add(t67);
                let total = t03.wrapping_add(t47);
                // Each store is at most two adds off the carry.
                tile[0] = c.wrapping_add(a0);
                tile[1] = c.wrapping_add(t01);
                tile[2] = c.wrapping_add(t01).wrapping_add(a2);
                tile[3] = c.wrapping_add(t03);
                tile[4] = c.wrapping_add(t03).wrapping_add(a4);
                tile[5] = c.wrapping_add(t03).wrapping_add(t45);
                tile[6] = c.wrapping_add(t03).wrapping_add(t45).wrapping_add(a6);
                tile[7] = c.wrapping_add(total);
                c = c.wrapping_add(total);
            }
            for x in tiles.into_remainder() {
                c = c.wrapping_add(*x);
                *x = c;
            }
            c
        }

        /// Tiled scalar exclusive add-scan (same tile structure, stores
        /// shifted by one); returns the inclusive total.
        pub fn $excl(a: &mut [$t], carry: $t) -> $t {
            let mut c = carry;
            let mut tiles = a.chunks_exact_mut(8);
            for tile in &mut tiles {
                let [a0, a1, a2, a3, a4, a5, a6, _a7]: [$t; 8] = tile.try_into().unwrap();
                let t01 = a0.wrapping_add(a1);
                let t23 = a2.wrapping_add(a3);
                let t45 = a4.wrapping_add(a5);
                let t67 = a6.wrapping_add(tile[7]);
                let t03 = t01.wrapping_add(t23);
                let t47 = t45.wrapping_add(t67);
                let total = t03.wrapping_add(t47);
                tile[0] = c;
                tile[1] = c.wrapping_add(a0);
                tile[2] = c.wrapping_add(t01);
                tile[3] = c.wrapping_add(t01).wrapping_add(a2);
                tile[4] = c.wrapping_add(t03);
                tile[5] = c.wrapping_add(t03).wrapping_add(a4);
                tile[6] = c.wrapping_add(t03).wrapping_add(t45);
                tile[7] = c.wrapping_add(t03).wrapping_add(t45).wrapping_add(a6);
                c = c.wrapping_add(total);
            }
            for x in tiles.into_remainder() {
                let v = *x;
                *x = c;
                c = c.wrapping_add(v);
            }
            c
        }
    };
}

tiled_scan!(scan_add_u32_tiled, scan_add_u32_excl_tiled, u32);
tiled_scan!(scan_add_u64_tiled, scan_add_u64_excl_tiled, u64);

/// x86_64 vector kernels, compiled only under the `simd` feature. Each
/// is an `unsafe fn` whose safety contract is "the annotated target
/// feature is available" — upheld by the `is_x86_feature_detected!`
/// dispatch above (and by the tests, which gate direct calls the same
/// way).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub mod x86 {
    use std::arch::x86_64::*;

    /// One 4-lane `u32` in-register inclusive prefix (2 shifts + 2
    /// adds) and its broadcast total — both independent of the running
    /// carry.
    #[inline(always)]
    unsafe fn prefix4_u32(x: __m128i) -> (__m128i, __m128i) {
        let mut x = x;
        x = _mm_add_epi32(x, _mm_slli_si128(x, 4));
        x = _mm_add_epi32(x, _mm_slli_si128(x, 8));
        (x, _mm_shuffle_epi32(x, 0b11_11_11_11))
    }

    /// The shared body of the 128-bit `u32` scans, unrolled two
    /// vectors per iteration. Both prefixes and both totals are
    /// computed off the carried chain; per 8 elements the chain
    /// advances by a single `paddd` (`c += t0 + t1`, with `t0 + t1`
    /// pre-added off-chain), and the second store's carry is one add
    /// off it. `EXCL` stores the prefix shifted one lane left (the
    /// exclusive scan) without changing the op count.
    ///
    /// Why 128-bit: in-register scans bottleneck on the shuffle port,
    /// and 128-bit shuffles dual-issue on recent cores where 256-bit
    /// cross-lane permutes all contend on one port. Compiled once with
    /// SSE2 codegen and once with AVX2 (VEX, three-operand) via the
    /// wrappers below.
    macro_rules! scan_u32_x128_body {
        ($a:ident, $carry:ident, $excl:literal) => {{
            let a = $a;
            let mut c = _mm_set1_epi32($carry as i32);
            let n8 = a.len() / 8 * 8;
            let mut i = 0;
            while i < n8 {
                let p0 = a.as_mut_ptr().add(i).cast::<__m128i>();
                let p1 = a.as_mut_ptr().add(i + 4).cast::<__m128i>();
                let (x0, t0) = prefix4_u32(_mm_loadu_si128(p0));
                let (x1, t1) = prefix4_u32(_mm_loadu_si128(p1));
                let t01 = _mm_add_epi32(t0, t1);
                let (s0, s1) = if $excl {
                    (_mm_slli_si128(x0, 4), _mm_slli_si128(x1, 4))
                } else {
                    (x0, x1)
                };
                _mm_storeu_si128(p0, _mm_add_epi32(s0, c));
                _mm_storeu_si128(p1, _mm_add_epi32(s1, _mm_add_epi32(c, t0)));
                c = _mm_add_epi32(c, t01);
                i += 8;
            }
            let mut carry = _mm_cvtsi128_si32(c) as u32;
            if $excl {
                for x in &mut a[n8..] {
                    let v = *x;
                    *x = carry;
                    carry = carry.wrapping_add(v);
                }
            } else {
                for x in &mut a[n8..] {
                    carry = carry.wrapping_add(*x);
                    *x = carry;
                }
            }
            carry
        }};
    }

    /// SSE2 inclusive add-scan over two unrolled 4-lane `u32` chains;
    /// the loop-carried dependency is one `paddd` per 8 elements.
    ///
    /// # Safety
    /// Requires SSE2 (guaranteed on x86_64, but kept explicit so the
    /// dispatch contract is uniform).
    #[target_feature(enable = "sse2")]
    pub unsafe fn scan_add_u32_sse2(a: &mut [u32], carry: u32) -> u32 {
        scan_u32_x128_body!(a, carry, false)
    }

    /// SSE2 exclusive add-scan: the inclusive prefix shifted one lane
    /// left in-register, so the store count does not change.
    ///
    /// # Safety
    /// Requires SSE2.
    #[target_feature(enable = "sse2")]
    pub unsafe fn scan_add_u32_excl_sse2(a: &mut [u32], carry: u32) -> u32 {
        scan_u32_x128_body!(a, carry, true)
    }

    /// AVX2 inclusive `u32` add-scan: the same 128-bit two-chain body
    /// as [`scan_add_u32_sse2`], recompiled with VEX three-operand
    /// codegen (saves the SSE2 register-copy instructions). 256-bit
    /// registers lose here — see the module docs.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn scan_add_u32_avx2(a: &mut [u32], carry: u32) -> u32 {
        scan_u32_x128_body!(a, carry, false)
    }

    /// AVX2 exclusive `u32` add-scan ([`scan_add_u32_excl_sse2`] under
    /// VEX codegen).
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn scan_add_u32_excl_avx2(a: &mut [u32], carry: u32) -> u32 {
        scan_u32_x128_body!(a, carry, true)
    }

    /// The shared body of the AVX-512F scans: 16 `u32` lanes per
    /// vector, prefix via `valignd` lane shifts (no cross-lane fix-up
    /// pass), total broadcast off the carried chain.
    macro_rules! scan_u32_z_body {
        ($a:ident, $carry:ident, $excl:literal) => {{
            // Peel a scalar head up to the next 64-byte boundary: the
            // loop loads and stores through the same pointer, so one
            // peel keeps every 512-bit access inside a single cache
            // line (unaligned Vec data would split nearly all of them).
            let mut head_carry: u32 = $carry;
            let head = (($a.as_ptr() as usize).wrapping_neg() & 63) / 4;
            let head = head.min($a.len());
            if $excl {
                for x in &mut $a[..head] {
                    let v = *x;
                    *x = head_carry;
                    head_carry = head_carry.wrapping_add(v);
                }
            } else {
                for x in &mut $a[..head] {
                    head_carry = head_carry.wrapping_add(*x);
                    *x = head_carry;
                }
            }
            let a = &mut $a[head..];
            let mut c = _mm512_set1_epi32(head_carry as i32);
            let zero = _mm512_setzero_si512();
            let bcast15 = _mm512_set1_epi32(15);
            let n16 = a.len() / 16 * 16;
            let mut i = 0;
            while i < n16 {
                let p = a.as_mut_ptr().add(i).cast::<__m512i>();
                let mut x = _mm512_loadu_si512(p.cast());
                x = _mm512_add_epi32(x, _mm512_alignr_epi32(x, zero, 16 - 1));
                x = _mm512_add_epi32(x, _mm512_alignr_epi32(x, zero, 16 - 2));
                x = _mm512_add_epi32(x, _mm512_alignr_epi32(x, zero, 16 - 4));
                x = _mm512_add_epi32(x, _mm512_alignr_epi32(x, zero, 16 - 8));
                let total = _mm512_permutexvar_epi32(bcast15, x);
                let s = if $excl {
                    _mm512_alignr_epi32(x, zero, 16 - 1)
                } else {
                    x
                };
                _mm512_storeu_si512(p.cast(), _mm512_add_epi32(s, c));
                c = _mm512_add_epi32(c, total);
                i += 16;
            }
            let mut carry = _mm_cvtsi128_si32(_mm512_castsi512_si128(c)) as u32;
            if $excl {
                for x in &mut a[n16..] {
                    let v = *x;
                    *x = carry;
                    carry = carry.wrapping_add(v);
                }
            } else {
                for x in &mut a[n16..] {
                    carry = carry.wrapping_add(*x);
                    *x = carry;
                }
            }
            carry
        }};
    }

    /// AVX-512F inclusive add-scan over 16 `u32` lanes: 4 `valignd`
    /// shift-adds per vector, one broadcast, one carried `vpaddd`.
    ///
    /// # Safety
    /// Requires AVX-512F.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn scan_add_u32_avx512(a: &mut [u32], carry: u32) -> u32 {
        scan_u32_z_body!(a, carry, false)
    }

    /// AVX-512F exclusive add-scan over 16 `u32` lanes.
    ///
    /// # Safety
    /// Requires AVX-512F.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn scan_add_u32_excl_avx512(a: &mut [u32], carry: u32) -> u32 {
        scan_u32_z_body!(a, carry, true)
    }

    /// A 16-lane `u64` inclusive prefix over a *pair* of vectors,
    /// treated as one Hillis-Steele ladder: rungs 1/2/4 use
    /// cross-vector `valignq` (the second vector pulls the first's top
    /// lanes instead of zeros), and rung 8 degenerates to a plain
    /// lane-aligned add of the first vector's finished prefix — no
    /// shuffle. One total broadcast serves all 16 lanes. That is 7
    /// shuffle-port ops per 16 elements, versus 8 for two independent
    /// 8-lane prefixes.
    #[inline(always)]
    unsafe fn prefix16_u64(
        v0: __m512i,
        v1: __m512i,
        zero: __m512i,
        bcast7: __m512i,
    ) -> (__m512i, __m512i, __m512i) {
        let y0 = _mm512_alignr_epi64(v0, zero, 8 - 1);
        let y1 = _mm512_alignr_epi64(v1, v0, 8 - 1);
        let a0 = _mm512_add_epi64(v0, y0);
        let a1 = _mm512_add_epi64(v1, y1);
        let y0 = _mm512_alignr_epi64(a0, zero, 8 - 2);
        let y1 = _mm512_alignr_epi64(a1, a0, 8 - 2);
        let b0 = _mm512_add_epi64(a0, y0);
        let b1 = _mm512_add_epi64(a1, y1);
        let y0 = _mm512_alignr_epi64(b0, zero, 8 - 4);
        let y1 = _mm512_alignr_epi64(b1, b0, 8 - 4);
        let x0 = _mm512_add_epi64(b0, y0);
        let x1 = _mm512_add_epi64(_mm512_add_epi64(b1, y1), x0);
        let t = _mm512_permutexvar_epi64(bcast7, x1);
        (x0, x1, t)
    }

    /// The shared body of the AVX-512F `u64` scans: 8 lanes, `valignq`
    /// shifts, unrolled two vectors per iteration so the two prefix
    /// chains overlap (each is a serial shift-add ladder; one alone
    /// leaves the shuffle port idle between rungs).
    macro_rules! scan_u64_z_body {
        ($a:ident, $carry:ident, $excl:literal) => {{
            // Same scalar head peel as the u32 body: align the
            // load/store stream to 64 bytes so 512-bit accesses stop
            // splitting cache lines.
            let mut head_carry: u64 = $carry;
            let head = (($a.as_ptr() as usize).wrapping_neg() & 63) / 8;
            let head = head.min($a.len());
            if $excl {
                for x in &mut $a[..head] {
                    let v = *x;
                    *x = head_carry;
                    head_carry = head_carry.wrapping_add(v);
                }
            } else {
                for x in &mut $a[..head] {
                    head_carry = head_carry.wrapping_add(*x);
                    *x = head_carry;
                }
            }
            let a = &mut $a[head..];
            let mut c = _mm512_set1_epi64(head_carry as i64);
            let zero = _mm512_setzero_si512();
            let bcast7 = _mm512_set1_epi64(7);
            let n32 = a.len() / 32 * 32;
            let mut i = 0;
            while i < n32 {
                let p0 = a.as_mut_ptr().add(i).cast::<__m512i>();
                let p1 = a.as_mut_ptr().add(i + 8).cast::<__m512i>();
                let p2 = a.as_mut_ptr().add(i + 16).cast::<__m512i>();
                let p3 = a.as_mut_ptr().add(i + 24).cast::<__m512i>();
                let (x0, x1, t01) = prefix16_u64(
                    _mm512_loadu_si512(p0.cast()),
                    _mm512_loadu_si512(p1.cast()),
                    zero,
                    bcast7,
                );
                let (x2, x3, t23) = prefix16_u64(
                    _mm512_loadu_si512(p2.cast()),
                    _mm512_loadu_si512(p3.cast()),
                    zero,
                    bcast7,
                );
                let (s0, s1, s2, s3) = if $excl {
                    (
                        _mm512_alignr_epi64(x0, zero, 8 - 1),
                        _mm512_alignr_epi64(x1, x0, 8 - 1),
                        _mm512_alignr_epi64(x2, zero, 8 - 1),
                        _mm512_alignr_epi64(x3, x2, 8 - 1),
                    )
                } else {
                    (x0, x1, x2, x3)
                };
                let c2 = _mm512_add_epi64(c, t01);
                _mm512_storeu_si512(p0.cast(), _mm512_add_epi64(s0, c));
                _mm512_storeu_si512(p1.cast(), _mm512_add_epi64(s1, c));
                _mm512_storeu_si512(p2.cast(), _mm512_add_epi64(s2, c2));
                _mm512_storeu_si512(p3.cast(), _mm512_add_epi64(s3, c2));
                c = _mm512_add_epi64(c2, t23);
                i += 32;
            }
            let mut carry = _mm_cvtsi128_si64(_mm512_castsi512_si128(c)) as u64;
            if $excl {
                for x in &mut a[n32..] {
                    let v = *x;
                    *x = carry;
                    carry = carry.wrapping_add(v);
                }
            } else {
                for x in &mut a[n32..] {
                    carry = carry.wrapping_add(*x);
                    *x = carry;
                }
            }
            carry
        }};
    }

    /// AVX-512F inclusive add-scan over 8 `u64` lanes.
    ///
    /// # Safety
    /// Requires AVX-512F.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn scan_add_u64_avx512(a: &mut [u64], carry: u64) -> u64 {
        scan_u64_z_body!(a, carry, false)
    }

    /// AVX-512F exclusive add-scan over 8 `u64` lanes.
    ///
    /// # Safety
    /// Requires AVX-512F.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn scan_add_u64_excl_avx512(a: &mut [u64], carry: u64) -> u64 {
        scan_u64_z_body!(a, carry, true)
    }

    /// AVX2 inclusive add-scan over 4 `u64` lanes.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn scan_add_u64_avx2(a: &mut [u64], carry: u64) -> u64 {
        let mut c = _mm256_set1_epi64x(carry as i64);
        let hi_mask = _mm256_setr_epi64x(0, 0, -1, -1);
        let n4 = a.len() / 4 * 4;
        let mut i = 0;
        while i < n4 {
            let p = a.as_mut_ptr().add(i).cast::<__m256i>();
            let mut x = _mm256_loadu_si256(p);
            x = _mm256_add_epi64(x, _mm256_slli_si256(x, 8));
            let lo_total = _mm256_permute4x64_epi64(x, 0b01_01_01_01);
            x = _mm256_add_epi64(x, _mm256_and_si256(lo_total, hi_mask));
            let total = _mm256_permute4x64_epi64(x, 0b11_11_11_11);
            _mm256_storeu_si256(p, _mm256_add_epi64(x, c));
            c = _mm256_add_epi64(c, total);
            i += 4;
        }
        let mut carry = _mm_cvtsi128_si64(_mm256_castsi256_si128(c)) as u64;
        for x in &mut a[n4..] {
            carry = carry.wrapping_add(*x);
            *x = carry;
        }
        carry
    }

    /// AVX2 exclusive add-scan over 4 `u64` lanes.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn scan_add_u64_excl_avx2(a: &mut [u64], carry: u64) -> u64 {
        let mut c = _mm256_set1_epi64x(carry as i64);
        let hi_mask = _mm256_setr_epi64x(0, 0, -1, -1);
        let keep_tail = _mm256_setr_epi64x(0, -1, -1, -1);
        let n4 = a.len() / 4 * 4;
        let mut i = 0;
        while i < n4 {
            let p = a.as_mut_ptr().add(i).cast::<__m256i>();
            let mut x = _mm256_loadu_si256(p);
            x = _mm256_add_epi64(x, _mm256_slli_si256(x, 8));
            let lo_total = _mm256_permute4x64_epi64(x, 0b01_01_01_01);
            x = _mm256_add_epi64(x, _mm256_and_si256(lo_total, hi_mask));
            let total = _mm256_permute4x64_epi64(x, 0b11_11_11_11);
            let shifted = _mm256_and_si256(_mm256_permute4x64_epi64(x, 0b10_01_00_00), keep_tail);
            _mm256_storeu_si256(p, _mm256_add_epi64(shifted, c));
            c = _mm256_add_epi64(c, total);
            i += 4;
        }
        let mut carry = _mm_cvtsi128_si64(_mm256_castsi256_si128(c)) as u64;
        for x in &mut a[n4..] {
            let v = *x;
            *x = carry;
            carry = carry.wrapping_add(v);
        }
        carry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle_incl(v: &[u64], carry: u64) -> (Vec<u64>, u64) {
        let mut acc = carry;
        let out: Vec<u64> = v
            .iter()
            .map(|&x| {
                acc = acc.wrapping_add(x);
                acc
            })
            .collect();
        (out, acc)
    }

    #[test]
    fn tiled_kernels_match_oracle_at_every_length() {
        for n in 0..40 {
            let v: Vec<u64> = (0..n as u64).map(|i| i * 7 + 1).collect();
            let (want, want_c) = oracle_incl(&v, 5);

            let mut a = v.clone();
            assert_eq!(scan_add_u64_tiled(&mut a, 5), want_c, "incl n={n}");
            assert_eq!(a, want);

            let mut e = v.clone();
            assert_eq!(scan_add_u64_excl_tiled(&mut e, 5), want_c, "excl n={n}");
            for i in 0..n {
                let prev = if i == 0 { 5 } else { want[i - 1] };
                assert_eq!(e[i], prev, "excl n={n} i={i}");
            }

            let v32: Vec<u32> = v.iter().map(|&x| x as u32).collect();
            let mut a32 = v32.clone();
            let c32 = scan_add_u32_tiled(&mut a32, 5);
            assert_eq!(c32, want_c as u32);
            assert_eq!(a32, want.iter().map(|&x| x as u32).collect::<Vec<_>>());
            let mut e32 = v32;
            assert_eq!(scan_add_u32_excl_tiled(&mut e32, 5), want_c as u32);
            assert_eq!(e32, e.iter().map(|&x| x as u32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn dispatch_matches_tiled() {
        let v: Vec<u32> = (0..1000u32).map(|i| i.wrapping_mul(2654435761)).collect();
        let mut a = v.clone();
        let mut b = v.clone();
        assert_eq!(scan_add_u32(&mut a, 9), scan_add_u32_tiled(&mut b, 9));
        assert_eq!(a, b);
        let v64: Vec<u64> = v.iter().map(|&x| u64::from(x) << 16).collect();
        let mut a = v64.clone();
        let mut b = v64;
        assert_eq!(
            scan_add_u64_excl(&mut a, 9),
            scan_add_u64_excl_tiled(&mut b, 9)
        );
        assert_eq!(a, b);
    }

    #[test]
    fn wrapping_overflow_is_identical_across_kernels() {
        let v: Vec<u32> = vec![u32::MAX; 100];
        let mut a = v.clone();
        let mut b = v;
        assert_eq!(scan_add_u32(&mut a, 3), scan_add_u32_tiled(&mut b, 3));
        assert_eq!(a, b);
    }

    #[test]
    fn simd_level_is_one_of_the_known_tiers() {
        assert!(matches!(
            simd_level(),
            "avx512" | "avx2" | "sse2" | "scalar"
        ));
    }
}

#![warn(missing_docs)]
//! Fundamental parallel primitives for symmetric multiprocessors.
//!
//! The Tarjan–Vishkin biconnected-components pipeline is built from the
//! classic PRAM toolbox; this crate provides SMP adaptations of every
//! primitive the paper names in §1:
//!
//! | primitive | module | SMP algorithm |
//! |-----------|--------|---------------|
//! | prefix sum | [`scan`] | Helman–JáJá block scan: local sums → p-scan → rescan |
//! | pointer jumping / list ranking | [`list_rank`] | Wyllie's jumping **and** Helman–JáJá sampled sublists |
//! | sorting | [`sort`] | Helman–JáJá parallel sample sort, plus LSD radix sort |
//! | compaction | [`compact`] | scan-based stream compaction |
//! | reductions | [`reduce`] | block-parallel sum/min/max |
//!
//! Every primitive takes a [`bcc_smp::Pool`] and works for any thread
//! count `p >= 1`; the `p = 1` path degenerates to the straightforward
//! sequential loop (so parallel overheads are purely algorithmic, as the
//! paper's analysis assumes).

pub mod compact;
pub mod kernels;
pub mod list_rank;
pub mod reduce;
pub mod rmq;
pub mod scan;
pub mod sort;

pub use compact::{compact_indices, compact_indices_ws, compact_with, compact_with_ws};
pub use list_rank::{
    list_rank_hj, list_rank_hj_ws, list_rank_seq, list_rank_seq_ws, list_rank_wyllie,
    list_rank_wyllie_ws,
};
pub use reduce::{par_max, par_min, par_sum_u64};
pub use rmq::{Extremum, RangeMinMaxTable, RangeTable};
pub use scan::{
    exclusive_scan_par, exclusive_scan_par_ws, exclusive_scan_seq, inclusive_scan_par,
    inclusive_scan_par_ws, inclusive_scan_seq,
};
pub use sort::{
    par_radix_sort_u64, par_radix_sort_u64_ws, par_sample_sort, par_sample_sort_by_key,
    par_sample_sort_by_key_ws,
};

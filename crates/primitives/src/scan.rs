//! Prefix sums (scans), sequential and block-parallel.
//!
//! The parallel scan is the Helman–JáJá SMP formulation: each thread
//! scans its block locally, thread 0 scans the p block totals, and a
//! second parallel sweep adds each block's offset. Two barriers, O(n/p +
//! p) time per thread — the building block the paper uses to replace list
//! ranking wherever the data is already in traversal order.

use bcc_smp::{BccWorkspace, Ctx, Pool, SharedSlice};

/// Trait for scannable element types (associative op with identity).
pub trait ScanElem: Copy + Send + Sync {
    /// Identity element of the scan operator.
    const ZERO: Self;
    /// The associative combine operator.
    fn combine(self, other: Self) -> Self;
}

macro_rules! impl_scan_elem_for_int {
    ($($t:ty),*) => {$(
        impl ScanElem for $t {
            const ZERO: Self = 0;
            #[inline]
            fn combine(self, other: Self) -> Self {
                self.wrapping_add(other)
            }
        }
    )*};
}
impl_scan_elem_for_int!(u8, u16, u32, u64, usize, i32, i64, isize);

/// In-place sequential inclusive scan: `a[i] = a[0] + ... + a[i]`.
pub fn inclusive_scan_seq<T: ScanElem>(a: &mut [T]) {
    let mut acc = T::ZERO;
    for x in a.iter_mut() {
        acc = acc.combine(*x);
        *x = acc;
    }
}

/// In-place sequential exclusive scan: `a[i] = a[0] + ... + a[i-1]`.
/// Returns the total (the inclusive sum of all elements).
pub fn exclusive_scan_seq<T: ScanElem>(a: &mut [T]) -> T {
    let mut acc = T::ZERO;
    for x in a.iter_mut() {
        let v = *x;
        *x = acc;
        acc = acc.combine(v);
    }
    acc
}

/// In-place parallel inclusive scan over `a` using `pool`.
pub fn inclusive_scan_par<T: ScanElem>(pool: &Pool, a: &mut [T]) {
    scan_par_impl(pool, a, true);
}

/// In-place parallel exclusive scan over `a`; returns the total.
///
/// ```
/// use bcc_primitives::scan::exclusive_scan_par;
/// use bcc_smp::Pool;
///
/// let pool = Pool::new(2);
/// let mut a = vec![3u32, 1, 4, 1, 5];
/// let total = exclusive_scan_par(&pool, &mut a);
/// assert_eq!(a, vec![0, 3, 4, 8, 9]);
/// assert_eq!(total, 14);
/// ```
pub fn exclusive_scan_par<T: ScanElem>(pool: &Pool, a: &mut [T]) -> T {
    scan_par_impl(pool, a, false)
}

/// [`inclusive_scan_par`] with the O(p) block-totals scratch taken from
/// (and returned to) `ws`.
pub fn inclusive_scan_par_ws<T: ScanElem + 'static>(pool: &Pool, a: &mut [T], ws: &BccWorkspace) {
    scan_par_ws_impl(pool, a, true, ws);
}

/// [`exclusive_scan_par`] with the O(p) block-totals scratch taken from
/// (and returned to) `ws`; returns the total.
pub fn exclusive_scan_par_ws<T: ScanElem + 'static>(
    pool: &Pool,
    a: &mut [T],
    ws: &BccWorkspace,
) -> T {
    scan_par_ws_impl(pool, a, false, ws)
}

fn scan_seq_impl<T: ScanElem>(a: &mut [T], inclusive: bool) -> T {
    if inclusive {
        let total = a.iter().fold(T::ZERO, |acc, &x| acc.combine(x));
        inclusive_scan_seq(a);
        total
    } else {
        exclusive_scan_seq(a)
    }
}

fn scan_par_impl<T: ScanElem>(pool: &Pool, a: &mut [T], inclusive: bool) -> T {
    let n = a.len();
    let p = pool.threads();
    if p == 1 || n < 2 * p {
        return scan_seq_impl(a, inclusive);
    }
    let mut block_totals = vec![T::ZERO; p + 1];
    scan_par_body(pool, a, inclusive, &mut block_totals)
}

fn scan_par_ws_impl<T: ScanElem + 'static>(
    pool: &Pool,
    a: &mut [T],
    inclusive: bool,
    ws: &BccWorkspace,
) -> T {
    let n = a.len();
    let p = pool.threads();
    if p == 1 || n < 2 * p {
        return scan_seq_impl(a, inclusive);
    }
    let mut block_totals = ws.take_filled(p + 1, T::ZERO);
    let total = scan_par_body(pool, a, inclusive, &mut block_totals);
    ws.give(block_totals);
    total
}

fn scan_par_body<T: ScanElem>(
    pool: &Pool,
    a: &mut [T],
    inclusive: bool,
    block_totals: &mut [T],
) -> T {
    let n = a.len();
    let p = pool.threads();
    debug_assert_eq!(block_totals.len(), p + 1);
    let a_s = SharedSlice::new(a);
    let totals_s = SharedSlice::new(block_totals);

    pool.run(|ctx: &Ctx| {
        let r = ctx.block_range(n);
        // Phase 1: local inclusive scan of own block.
        let block = unsafe { a_s.slice_mut(r.start, r.end) };
        let mut acc = T::ZERO;
        for x in block.iter_mut() {
            acc = acc.combine(*x);
            *x = acc;
        }
        unsafe { totals_s.write(ctx.tid() + 1, acc) };
        ctx.barrier();
        // Phase 2: thread 0 scans the p block totals.
        if ctx.is_leader() {
            let totals = unsafe { totals_s.slice_mut(0, p + 1) };
            let mut acc = T::ZERO;
            for t in totals.iter_mut() {
                acc = acc.combine(*t);
                *t = acc;
            }
        }
        ctx.barrier();
        // Phase 3: add own block's offset; convert to exclusive if asked.
        let offset = totals_s.get(ctx.tid());
        let block = unsafe { a_s.slice_mut(r.start, r.end) };
        if inclusive {
            for x in block.iter_mut() {
                *x = offset.combine(*x);
            }
        } else {
            // Shift right within the block: a[i] := offset + incl[i-1].
            let mut prev = T::ZERO;
            for x in block.iter_mut() {
                let incl = *x;
                *x = offset.combine(prev);
                prev = incl;
            }
        }
    });

    block_totals[p]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn oracle_inclusive(a: &[u64]) -> Vec<u64> {
        let mut acc = 0u64;
        a.iter()
            .map(|&x| {
                acc = acc.wrapping_add(x);
                acc
            })
            .collect()
    }

    #[test]
    fn seq_inclusive_small() {
        let mut a = vec![1u32, 2, 3, 4];
        inclusive_scan_seq(&mut a);
        assert_eq!(a, vec![1, 3, 6, 10]);
    }

    #[test]
    fn seq_exclusive_small() {
        let mut a = vec![1u32, 2, 3, 4];
        let total = exclusive_scan_seq(&mut a);
        assert_eq!(a, vec![0, 1, 3, 6]);
        assert_eq!(total, 10);
    }

    #[test]
    fn ws_variants_match_plain_and_reuse_scratch() {
        let pool = Pool::new(4);
        let ws = BccWorkspace::new();
        for round in 0..3 {
            let mut a: Vec<u64> = (0..1000).map(|i| i * 3 + round).collect();
            let mut b = a.clone();
            inclusive_scan_par(&pool, &mut a);
            inclusive_scan_par_ws(&pool, &mut b, &ws);
            assert_eq!(a, b);
            let mut c: Vec<u64> = (0..1000).map(|i| i + round).collect();
            let mut d = c.clone();
            let t0 = exclusive_scan_par(&pool, &mut c);
            let t1 = exclusive_scan_par_ws(&pool, &mut d, &ws);
            assert_eq!((c, t0), (d, t1));
        }
        let s = ws.stats();
        assert_eq!(s.misses, 1, "one scratch buffer, reused thereafter");
        assert_eq!(s.hits, 5);
    }

    #[test]
    fn empty_slices_are_fine() {
        let pool = Pool::new(4);
        let mut a: Vec<u32> = vec![];
        inclusive_scan_par(&pool, &mut a);
        assert_eq!(exclusive_scan_par(&pool, &mut a), 0);
        assert!(a.is_empty());
    }

    #[test]
    fn par_matches_seq_on_fixed_cases() {
        for p in [1, 2, 3, 4, 7] {
            let pool = Pool::new(p);
            for n in [0usize, 1, 2, 5, 16, 100, 1001] {
                let base: Vec<u64> = (0..n as u64).map(|i| i * 7 + 1).collect();

                let mut inc = base.clone();
                inclusive_scan_par(&pool, &mut inc);
                assert_eq!(inc, oracle_inclusive(&base), "inclusive p={p} n={n}");

                let mut exc = base.clone();
                let total = exclusive_scan_par(&pool, &mut exc);
                let oracle = oracle_inclusive(&base);
                let expect_total = oracle.last().copied().unwrap_or(0);
                assert_eq!(total, expect_total, "total p={p} n={n}");
                for i in 0..n {
                    let want = if i == 0 { 0 } else { oracle[i - 1] };
                    assert_eq!(exc[i], want, "exclusive p={p} n={n} i={i}");
                }
            }
        }
    }

    proptest! {
        #[test]
        fn par_inclusive_equals_oracle(v in proptest::collection::vec(0u64..1_000_000, 0..500),
                                       p in 1usize..6) {
            let pool = Pool::new(p);
            let mut a = v.clone();
            inclusive_scan_par(&pool, &mut a);
            prop_assert_eq!(a, oracle_inclusive(&v));
        }

        #[test]
        fn par_exclusive_shifts_inclusive(v in proptest::collection::vec(0u64..1_000_000, 1..500),
                                          p in 1usize..6) {
            let pool = Pool::new(p);
            let mut a = v.clone();
            let total = exclusive_scan_par(&pool, &mut a);
            let inc = oracle_inclusive(&v);
            prop_assert_eq!(total, *inc.last().unwrap());
            prop_assert_eq!(a[0], 0);
            for i in 1..v.len() {
                prop_assert_eq!(a[i], inc[i - 1]);
            }
        }
    }
}

//! Prefix sums (scans), sequential and block-parallel.
//!
//! The parallel scan is the Helman–JáJá SMP formulation: each thread
//! scans its block locally, thread 0 scans the p block totals, and a
//! second parallel sweep adds each block's offset. Two barriers, O(n/p +
//! p) time per thread — the building block the paper uses to replace list
//! ranking wherever the data is already in traversal order.

use bcc_smp::{BccWorkspace, Ctx, Pool, SharedSlice};

/// Trait for scannable element types (associative op with identity).
///
/// The three block-kernel methods have straightforward generic defaults
/// (the naive carried loop) and exist so concrete types can substitute
/// vectorized kernels on stable Rust — no specialization feature
/// needed. `u32`/`u64` override them with the tiled/SIMD kernels in
/// [`crate::kernels`]; `i32`/`i64`/`usize`/`isize` delegate to those
/// (two's-complement wrapping add is bit-identical across same-width
/// signedness, and `usize` is `u64` on every 64-bit target). Every
/// scan entry point in this module — sequential, parallel, `_ws` —
/// routes its per-block work through these hooks.
pub trait ScanElem: Copy + Send + Sync {
    /// Identity element of the scan operator.
    const ZERO: Self;
    /// The associative combine operator.
    fn combine(self, other: Self) -> Self;

    /// In-place inclusive scan of `a` seeded with `carry`
    /// (`a[i] := carry ⊕ a[0] ⊕ … ⊕ a[i]`); returns the final
    /// running value.
    #[inline]
    fn scan_block(a: &mut [Self], carry: Self) -> Self {
        let mut acc = carry;
        for x in a.iter_mut() {
            acc = acc.combine(*x);
            *x = acc;
        }
        acc
    }

    /// In-place exclusive scan of `a` seeded with `carry`
    /// (`a[i] := carry ⊕ a[0] ⊕ … ⊕ a[i-1]`); returns the inclusive
    /// total.
    #[inline]
    fn scan_block_exclusive(a: &mut [Self], carry: Self) -> Self {
        let mut acc = carry;
        for x in a.iter_mut() {
            let v = *x;
            *x = acc;
            acc = acc.combine(v);
        }
        acc
    }

    /// Reduce `a` under the combine operator (no stores). Used by the
    /// parallel exclusive scan's first phase, which only needs block
    /// totals — skipping the phase-1 stores halves its write traffic.
    #[inline]
    fn sum_block(a: &[Self]) -> Self {
        a.iter().fold(Self::ZERO, |acc, &x| acc.combine(x))
    }
}

macro_rules! impl_scan_elem_for_int {
    ($($t:ty),*) => {$(
        impl ScanElem for $t {
            const ZERO: Self = 0;
            #[inline]
            fn combine(self, other: Self) -> Self {
                self.wrapping_add(other)
            }
        }
    )*};
}
impl_scan_elem_for_int!(u8, u16);

/// Implement `ScanElem` for a type that is layout- and
/// wrap-add-compatible with `$k` (`u32` or `u64`), routing the block
/// kernels through [`crate::kernels`] via an in-place slice cast.
macro_rules! impl_scan_elem_via_kernel {
    ($t:ty => $k:ty, $incl:path, $excl:path) => {
        impl ScanElem for $t {
            const ZERO: Self = 0;
            #[inline]
            fn combine(self, other: Self) -> Self {
                self.wrapping_add(other)
            }
            #[inline]
            fn scan_block(a: &mut [Self], carry: Self) -> Self {
                // Same size/alignment and wrapping-add bit pattern.
                let ka =
                    unsafe { std::slice::from_raw_parts_mut(a.as_mut_ptr().cast::<$k>(), a.len()) };
                $incl(ka, carry as $k) as Self
            }
            #[inline]
            fn scan_block_exclusive(a: &mut [Self], carry: Self) -> Self {
                let ka =
                    unsafe { std::slice::from_raw_parts_mut(a.as_mut_ptr().cast::<$k>(), a.len()) };
                $excl(ka, carry as $k) as Self
            }
            #[inline]
            fn sum_block(a: &[Self]) -> Self {
                // Wrapping sum has no carried store; the tiled reduce is
                // just an unrolled fold, which the compiler already
                // produces from this shape.
                let mut acc: $k = 0;
                for &x in a {
                    acc = acc.wrapping_add(x as $k);
                }
                acc as Self
            }
        }
    };
}

impl_scan_elem_via_kernel!(u32 => u32, crate::kernels::scan_add_u32, crate::kernels::scan_add_u32_excl);
impl_scan_elem_via_kernel!(i32 => u32, crate::kernels::scan_add_u32, crate::kernels::scan_add_u32_excl);
impl_scan_elem_via_kernel!(u64 => u64, crate::kernels::scan_add_u64, crate::kernels::scan_add_u64_excl);
impl_scan_elem_via_kernel!(i64 => u64, crate::kernels::scan_add_u64, crate::kernels::scan_add_u64_excl);

#[cfg(target_pointer_width = "64")]
impl_scan_elem_via_kernel!(usize => u64, crate::kernels::scan_add_u64, crate::kernels::scan_add_u64_excl);
#[cfg(target_pointer_width = "64")]
impl_scan_elem_via_kernel!(isize => u64, crate::kernels::scan_add_u64, crate::kernels::scan_add_u64_excl);

#[cfg(not(target_pointer_width = "64"))]
impl_scan_elem_for_int!(usize, isize);

/// In-place sequential inclusive scan: `a[i] = a[0] + ... + a[i]`.
pub fn inclusive_scan_seq<T: ScanElem>(a: &mut [T]) {
    T::scan_block(a, T::ZERO);
}

/// In-place sequential exclusive scan: `a[i] = a[0] + ... + a[i-1]`.
/// Returns the total (the inclusive sum of all elements).
pub fn exclusive_scan_seq<T: ScanElem>(a: &mut [T]) -> T {
    T::scan_block_exclusive(a, T::ZERO)
}

/// In-place parallel inclusive scan over `a` using `pool`.
pub fn inclusive_scan_par<T: ScanElem>(pool: &Pool, a: &mut [T]) {
    scan_par_impl(pool, a, true);
}

/// In-place parallel exclusive scan over `a`; returns the total.
///
/// ```
/// use bcc_primitives::scan::exclusive_scan_par;
/// use bcc_smp::Pool;
///
/// let pool = Pool::new(2);
/// let mut a = vec![3u32, 1, 4, 1, 5];
/// let total = exclusive_scan_par(&pool, &mut a);
/// assert_eq!(a, vec![0, 3, 4, 8, 9]);
/// assert_eq!(total, 14);
/// ```
pub fn exclusive_scan_par<T: ScanElem>(pool: &Pool, a: &mut [T]) -> T {
    scan_par_impl(pool, a, false)
}

/// [`inclusive_scan_par`] with the O(p) block-totals scratch taken from
/// (and returned to) `ws`.
pub fn inclusive_scan_par_ws<T: ScanElem + 'static>(pool: &Pool, a: &mut [T], ws: &BccWorkspace) {
    scan_par_ws_impl(pool, a, true, ws);
}

/// [`exclusive_scan_par`] with the O(p) block-totals scratch taken from
/// (and returned to) `ws`; returns the total.
pub fn exclusive_scan_par_ws<T: ScanElem + 'static>(
    pool: &Pool,
    a: &mut [T],
    ws: &BccWorkspace,
) -> T {
    scan_par_ws_impl(pool, a, false, ws)
}

fn scan_seq_impl<T: ScanElem>(a: &mut [T], inclusive: bool) -> T {
    if inclusive {
        T::scan_block(a, T::ZERO)
    } else {
        T::scan_block_exclusive(a, T::ZERO)
    }
}

fn scan_par_impl<T: ScanElem>(pool: &Pool, a: &mut [T], inclusive: bool) -> T {
    let n = a.len();
    let p = pool.threads();
    if p == 1 || n < 2 * p {
        return scan_seq_impl(a, inclusive);
    }
    let mut block_totals = vec![T::ZERO; p + 1];
    scan_par_body(pool, a, inclusive, &mut block_totals)
}

fn scan_par_ws_impl<T: ScanElem + 'static>(
    pool: &Pool,
    a: &mut [T],
    inclusive: bool,
    ws: &BccWorkspace,
) -> T {
    let n = a.len();
    let p = pool.threads();
    if p == 1 || n < 2 * p {
        return scan_seq_impl(a, inclusive);
    }
    let mut block_totals = ws.take_filled(p + 1, T::ZERO);
    let total = scan_par_body(pool, a, inclusive, &mut block_totals);
    ws.give(block_totals);
    total
}

fn scan_par_body<T: ScanElem>(
    pool: &Pool,
    a: &mut [T],
    inclusive: bool,
    block_totals: &mut [T],
) -> T {
    let n = a.len();
    let p = pool.threads();
    debug_assert_eq!(block_totals.len(), p + 1);
    let a_s = SharedSlice::new(a);
    let totals_s = SharedSlice::new(block_totals);

    pool.run(|ctx: &Ctx| {
        let r = ctx.block_range(n);
        // Phase 1: block total. The inclusive scan stores the local
        // prefixes now (phase 3 just adds the offset); the exclusive
        // scan only reduces — its phase 3 rescans from the original
        // values, which halves phase-1 write traffic.
        let block = unsafe { a_s.slice_mut(r.start, r.end) };
        let total = if inclusive {
            T::scan_block(block, T::ZERO)
        } else {
            T::sum_block(block)
        };
        unsafe { totals_s.write(ctx.tid() + 1, total) };
        ctx.barrier();
        // Phase 2: thread 0 scans the p block totals.
        if ctx.is_leader() {
            let totals = unsafe { totals_s.slice_mut(0, p + 1) };
            T::scan_block(totals, T::ZERO);
        }
        ctx.barrier();
        // Phase 3: apply own block's offset.
        let offset = totals_s.get(ctx.tid());
        let block = unsafe { a_s.slice_mut(r.start, r.end) };
        if inclusive {
            for x in block.iter_mut() {
                *x = offset.combine(*x);
            }
        } else {
            T::scan_block_exclusive(block, offset);
        }
    });

    block_totals[p]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn oracle_inclusive(a: &[u64]) -> Vec<u64> {
        let mut acc = 0u64;
        a.iter()
            .map(|&x| {
                acc = acc.wrapping_add(x);
                acc
            })
            .collect()
    }

    #[test]
    fn seq_inclusive_small() {
        let mut a = vec![1u32, 2, 3, 4];
        inclusive_scan_seq(&mut a);
        assert_eq!(a, vec![1, 3, 6, 10]);
    }

    #[test]
    fn seq_exclusive_small() {
        let mut a = vec![1u32, 2, 3, 4];
        let total = exclusive_scan_seq(&mut a);
        assert_eq!(a, vec![0, 1, 3, 6]);
        assert_eq!(total, 10);
    }

    #[test]
    fn ws_variants_match_plain_and_reuse_scratch() {
        let pool = Pool::new(4);
        let ws = BccWorkspace::new();
        for round in 0..3 {
            let mut a: Vec<u64> = (0..1000).map(|i| i * 3 + round).collect();
            let mut b = a.clone();
            inclusive_scan_par(&pool, &mut a);
            inclusive_scan_par_ws(&pool, &mut b, &ws);
            assert_eq!(a, b);
            let mut c: Vec<u64> = (0..1000).map(|i| i + round).collect();
            let mut d = c.clone();
            let t0 = exclusive_scan_par(&pool, &mut c);
            let t1 = exclusive_scan_par_ws(&pool, &mut d, &ws);
            assert_eq!((c, t0), (d, t1));
        }
        let s = ws.stats();
        assert_eq!(s.misses, 1, "one scratch buffer, reused thereafter");
        assert_eq!(s.hits, 5);
    }

    #[test]
    fn empty_slices_are_fine() {
        let pool = Pool::new(4);
        let mut a: Vec<u32> = vec![];
        inclusive_scan_par(&pool, &mut a);
        assert_eq!(exclusive_scan_par(&pool, &mut a), 0);
        assert!(a.is_empty());
    }

    #[test]
    fn par_matches_seq_on_fixed_cases() {
        for p in [1, 2, 3, 4, 7] {
            let pool = Pool::new(p);
            for n in [0usize, 1, 2, 5, 16, 100, 1001] {
                let base: Vec<u64> = (0..n as u64).map(|i| i * 7 + 1).collect();

                let mut inc = base.clone();
                inclusive_scan_par(&pool, &mut inc);
                assert_eq!(inc, oracle_inclusive(&base), "inclusive p={p} n={n}");

                let mut exc = base.clone();
                let total = exclusive_scan_par(&pool, &mut exc);
                let oracle = oracle_inclusive(&base);
                let expect_total = oracle.last().copied().unwrap_or(0);
                assert_eq!(total, expect_total, "total p={p} n={n}");
                for i in 0..n {
                    let want = if i == 0 { 0 } else { oracle[i - 1] };
                    assert_eq!(exc[i], want, "exclusive p={p} n={n} i={i}");
                }
            }
        }
    }

    proptest! {
        #[test]
        fn par_inclusive_equals_oracle(v in proptest::collection::vec(0u64..1_000_000, 0..500),
                                       p in 1usize..6) {
            let pool = Pool::new(p);
            let mut a = v.clone();
            inclusive_scan_par(&pool, &mut a);
            prop_assert_eq!(a, oracle_inclusive(&v));
        }

        #[test]
        fn par_exclusive_shifts_inclusive(v in proptest::collection::vec(0u64..1_000_000, 1..500),
                                          p in 1usize..6) {
            let pool = Pool::new(p);
            let mut a = v.clone();
            let total = exclusive_scan_par(&pool, &mut a);
            let inc = oracle_inclusive(&v);
            prop_assert_eq!(total, *inc.last().unwrap());
            prop_assert_eq!(a[0], 0);
            for i in 1..v.len() {
                prop_assert_eq!(a[i], inc[i - 1]);
            }
        }
    }
}

//! List ranking: positions of nodes in a linked list.
//!
//! Given a successor array describing a NIL-terminated linked list over
//! all `n` nodes, compute for every node its distance from the head
//! (`rank[head] = 0`). List ranking is the workhorse that turns an Euler
//! tour (a linked list of arcs) into an array of tour positions — and it
//! is exactly the primitive TV-opt engineers *away* (replacing it with
//! prefix sums over a DFS-order tour), so both variants live here for the
//! paper's ablation.
//!
//! Three implementations:
//! * [`list_rank_seq`] — the obvious O(n) walk; the baseline every
//!   parallel version must beat.
//! * [`list_rank_wyllie`] — Wyllie's pointer jumping, O(n log n) work,
//!   the PRAM textbook algorithm used by TV-SMP's emulation.
//! * [`list_rank_hj`] — Helman–JáJá sampled sublists, O(n) work: `s`
//!   splitters partition the list into sublists walked sequentially in
//!   parallel, a p-sized chain of sublist lengths is scanned by thread 0,
//!   and a second sweep adds offsets.

use bcc_smp::workspace::{alloc_cap, alloc_filled, give_opt};
use bcc_smp::{BccWorkspace, Pool, SharedSlice, NIL};

/// Sequential list ranking. `succ[i]` is the successor of node `i`
/// (`NIL` terminates). Every node must be on the single list starting at
/// `head`. Returns `rank` with `rank[head] == 0`.
pub fn list_rank_seq(succ: &[u32], head: u32) -> Vec<u32> {
    list_rank_seq_impl(succ, head, None)
}

/// [`list_rank_seq`] with the rank array taken from `ws` (the caller
/// owns it).
pub fn list_rank_seq_ws(succ: &[u32], head: u32, ws: &BccWorkspace) -> Vec<u32> {
    list_rank_seq_impl(succ, head, Some(ws))
}

fn list_rank_seq_impl(succ: &[u32], head: u32, ws: Option<&BccWorkspace>) -> Vec<u32> {
    let n = succ.len();
    let mut rank = alloc_filled(ws, n, NIL);
    if n == 0 {
        return rank;
    }
    let mut u = head;
    let mut r = 0u32;
    let mut visited = 0usize;
    while u != NIL {
        assert!(
            rank[u as usize] == NIL,
            "cycle detected in list at node {u}"
        );
        rank[u as usize] = r;
        r += 1;
        visited += 1;
        u = succ[u as usize];
    }
    assert_eq!(
        visited, n,
        "list must cover all {n} nodes (covered {visited})"
    );
    rank
}

/// Wyllie's pointer-jumping list ranking (O(n log n) work).
///
/// Synchronous PRAM semantics are emulated with double buffering and a
/// barrier per jumping round.
pub fn list_rank_wyllie(pool: &Pool, succ: &[u32], head: u32) -> Vec<u32> {
    list_rank_wyllie_impl(pool, succ, head, None)
}

/// [`list_rank_wyllie`] with all four jumping buffers and the returned
/// rank array taken from `ws` (scratch is given back; the caller owns
/// the result).
pub fn list_rank_wyllie_ws(pool: &Pool, succ: &[u32], head: u32, ws: &BccWorkspace) -> Vec<u32> {
    list_rank_wyllie_impl(pool, succ, head, Some(ws))
}

fn list_rank_wyllie_impl(
    pool: &Pool,
    succ: &[u32],
    head: u32,
    ws: Option<&BccWorkspace>,
) -> Vec<u32> {
    let n = succ.len();
    if n == 0 {
        return vec![];
    }
    debug_assert!((head as usize) < n);

    // dist[i] = number of hops from i to the tail; next[i] jumps ahead.
    let mut next_a: Vec<u32> = alloc_cap(ws, n);
    next_a.extend_from_slice(succ);
    let mut next_b: Vec<u32> = alloc_filled(ws, n, NIL);
    let mut dist_a: Vec<u32> = alloc_cap(ws, n);
    dist_a.extend(succ.iter().map(|&s| u32::from(s != NIL)));
    let mut dist_b: Vec<u32> = alloc_filled(ws, n, 0);

    let rounds = usize::BITS - (n - 1).leading_zeros().min(usize::BITS - 1); // ceil(log2 n)
    for _ in 0..rounds.max(1) {
        {
            let na = SharedSlice::new(&mut next_a);
            let nb = SharedSlice::new(&mut next_b);
            let da = SharedSlice::new(&mut dist_a);
            let db = SharedSlice::new(&mut dist_b);
            pool.run(|ctx| {
                for i in ctx.block_range(n) {
                    let nx = na.get(i);
                    if nx != NIL {
                        unsafe {
                            db.write(i, da.get(i) + da.get(nx as usize));
                            nb.write(i, na.get(nx as usize));
                        }
                    } else {
                        unsafe {
                            db.write(i, da.get(i));
                            nb.write(i, NIL);
                        }
                    }
                }
            });
        }
        std::mem::swap(&mut next_a, &mut next_b);
        std::mem::swap(&mut dist_a, &mut dist_b);
    }

    // dist_a[i] is now distance-to-tail; rank-from-head = (n-1) - dist.
    let total = dist_a[head as usize];
    assert_eq!(
        total as usize,
        n - 1,
        "head must reach the tail through all nodes"
    );
    let mut rank = alloc_filled(ws, n, 0u32);
    {
        let d = SharedSlice::new(&mut dist_a);
        let r = SharedSlice::new(&mut rank);
        pool.run(|ctx| {
            for i in ctx.block_range(n) {
                unsafe { r.write(i, (n as u32 - 1) - d.get(i)) };
            }
        });
    }
    give_opt(ws, next_a);
    give_opt(ws, next_b);
    give_opt(ws, dist_a);
    give_opt(ws, dist_b);
    rank
}

/// Helman–JáJá sampled list ranking (O(n) work).
///
/// ```
/// use bcc_primitives::list_rank::list_rank_hj;
/// use bcc_smp::{Pool, NIL};
///
/// // The list 2 -> 0 -> 1 (1 is the tail).
/// let succ = vec![1, NIL, 0];
/// let ranks = list_rank_hj(&Pool::new(2), &succ, 2);
/// assert_eq!(ranks, vec![1, 2, 0]);
/// ```
///
/// `s ≈ 8·p` splitters (always including the head) cut the list into
/// sublists. Each sublist is walked sequentially by the thread owning its
/// splitter; sublist lengths form a tiny list that thread 0 scans; a
/// second parallel walk writes final ranks.
pub fn list_rank_hj(pool: &Pool, succ: &[u32], head: u32) -> Vec<u32> {
    list_rank_hj_impl(pool, succ, head, None)
}

/// [`list_rank_hj`] with all scratch and the returned rank array taken
/// from `ws` (scratch is given back; the caller owns the result).
pub fn list_rank_hj_ws(pool: &Pool, succ: &[u32], head: u32, ws: &BccWorkspace) -> Vec<u32> {
    list_rank_hj_impl(pool, succ, head, Some(ws))
}

fn list_rank_hj_impl(pool: &Pool, succ: &[u32], head: u32, ws: Option<&BccWorkspace>) -> Vec<u32> {
    let n = succ.len();
    if n == 0 {
        return vec![];
    }
    let p = pool.threads();
    if p == 1 || n < 4 * p {
        return list_rank_seq_impl(succ, head, ws);
    }
    let mut rank = alloc_filled(ws, n, NIL);

    // Deterministic splitter choice: head plus every stride-th node *by
    // index*. Indices are uncorrelated with list positions for the lists
    // we rank (Euler tours of arbitrary trees), giving balanced expected
    // sublist lengths as in the randomized original.
    let s = (8 * p).min(n);
    let stride = n / s;
    let mut is_splitter = alloc_filled(ws, n, false);
    let mut splitters: Vec<u32> = alloc_cap(ws, s + 1);
    is_splitter[head as usize] = true;
    splitters.push(head);
    for k in 0..s {
        let v = (k * stride) as u32;
        if !is_splitter[v as usize] {
            is_splitter[v as usize] = true;
            splitters.push(v);
        }
    }
    let ns = splitters.len();
    // splitter_id[v] for splitter nodes.
    let mut splitter_id = alloc_filled(ws, n, NIL);
    for (j, &v) in splitters.iter().enumerate() {
        splitter_id[v as usize] = j as u32;
    }

    // Per-splitter: length of its sublist and the id of the next splitter.
    let mut sub_len = alloc_filled(ws, ns, 0u32);
    let mut next_split = alloc_filled(ws, ns, NIL);

    {
        let rank_s = SharedSlice::new(&mut rank);
        let len_s = SharedSlice::new(&mut sub_len);
        let nxt_s = SharedSlice::new(&mut next_split);
        let splitters = &splitters;
        let is_splitter = &is_splitter;
        let splitter_id = &splitter_id;
        pool.run(|ctx| {
            // Pass 1: walk own sublists recording local ranks.
            for j in ctx.block_range(ns) {
                let start = splitters[j];
                unsafe { rank_s.write(start as usize, 0) };
                let mut local = 1u32;
                let mut u = succ[start as usize];
                while u != NIL && !is_splitter[u as usize] {
                    unsafe { rank_s.write(u as usize, local) };
                    local += 1;
                    u = succ[u as usize];
                }
                unsafe {
                    len_s.write(j, local);
                    nxt_s.write(
                        j,
                        if u == NIL {
                            NIL
                        } else {
                            splitter_id[u as usize]
                        },
                    );
                }
            }
        });
    }

    // Thread 0 work (tiny, O(s)): scan the splitter chain from the head.
    let mut offset = alloc_filled(ws, ns, NIL);
    {
        let mut j = 0u32; // head's splitter id is 0 by construction
        let mut acc = 0u32;
        let mut seen = 0usize;
        while j != NIL {
            assert!(offset[j as usize] == NIL, "splitter chain has a cycle");
            offset[j as usize] = acc;
            acc += sub_len[j as usize];
            seen += 1;
            j = next_split[j as usize];
        }
        assert_eq!(seen, ns, "all splitters must be reachable from head");
        assert_eq!(acc as usize, n, "sublists must cover the whole list");
    }

    // Pass 2: add offsets.
    {
        let rank_s = SharedSlice::new(&mut rank);
        let splitters = &splitters;
        let is_splitter = &is_splitter;
        let offset = &offset;
        pool.run(|ctx| {
            for j in ctx.block_range(ns) {
                let off = offset[j];
                let start = splitters[j];
                unsafe { rank_s.write(start as usize, off) };
                let mut local = 1u32;
                let mut u = succ[start as usize];
                while u != NIL && !is_splitter[u as usize] {
                    unsafe { rank_s.write(u as usize, off + local) };
                    local += 1;
                    u = succ[u as usize];
                }
            }
        });
    }

    give_opt(ws, is_splitter);
    give_opt(ws, splitters);
    give_opt(ws, splitter_id);
    give_opt(ws, sub_len);
    give_opt(ws, next_split);
    give_opt(ws, offset);
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    /// Builds a list over 0..n whose traversal order is `perm`.
    fn list_from_order(perm: &[u32]) -> (Vec<u32>, u32) {
        let n = perm.len();
        let mut succ = vec![NIL; n];
        for w in perm.windows(2) {
            succ[w[0] as usize] = w[1];
        }
        (succ, perm.first().copied().unwrap_or(NIL))
    }

    fn random_perm(n: usize, seed: u64) -> Vec<u32> {
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.shuffle(&mut StdRng::seed_from_u64(seed));
        perm
    }

    #[test]
    fn seq_identity_list() {
        let succ = vec![1, 2, 3, NIL];
        let rank = list_rank_seq(&succ, 0);
        assert_eq!(rank, vec![0, 1, 2, 3]);
    }

    #[test]
    fn seq_reversed_list() {
        let succ = vec![NIL, 0, 1, 2];
        let rank = list_rank_seq(&succ, 3);
        assert_eq!(rank, vec![3, 2, 1, 0]);
    }

    #[test]
    fn singleton_list() {
        let succ = vec![NIL];
        assert_eq!(list_rank_seq(&succ, 0), vec![0]);
        let pool = Pool::new(3);
        assert_eq!(list_rank_wyllie(&pool, &succ, 0), vec![0]);
        assert_eq!(list_rank_hj(&pool, &succ, 0), vec![0]);
    }

    #[test]
    fn empty_list() {
        let pool = Pool::new(2);
        assert!(list_rank_seq(&[], 0).is_empty());
        assert!(list_rank_wyllie(&pool, &[], 0).is_empty());
        assert!(list_rank_hj(&pool, &[], 0).is_empty());
    }

    #[test]
    fn wyllie_matches_seq_random() {
        for p in [1, 2, 4] {
            let pool = Pool::new(p);
            for n in [2usize, 3, 17, 64, 257, 1000] {
                let perm = random_perm(n, n as u64 * 31 + p as u64);
                let (succ, head) = list_from_order(&perm);
                let want = list_rank_seq(&succ, head);
                let got = list_rank_wyllie(&pool, &succ, head);
                assert_eq!(got, want, "wyllie p={p} n={n}");
            }
        }
    }

    #[test]
    fn hj_matches_seq_random() {
        for p in [1, 2, 3, 5] {
            let pool = Pool::new(p);
            for n in [2usize, 16, 63, 64, 500, 2048] {
                let perm = random_perm(n, n as u64 * 7 + p as u64);
                let (succ, head) = list_from_order(&perm);
                let want = list_rank_seq(&succ, head);
                let got = list_rank_hj(&pool, &succ, head);
                assert_eq!(got, want, "hj p={p} n={n}");
            }
        }
    }

    #[test]
    fn hj_handles_adversarial_in_order_list() {
        // List traversal order equals index order: all splitters cut at
        // regular positions — degenerate but must still be correct.
        let n = 999;
        let perm: Vec<u32> = (0..n as u32).collect();
        let (succ, head) = list_from_order(&perm);
        let pool = Pool::new(4);
        assert_eq!(list_rank_hj(&pool, &succ, head), list_rank_seq(&succ, head));
    }

    #[test]
    #[should_panic]
    fn seq_detects_cycle() {
        let succ = vec![1, 0];
        let _ = list_rank_seq(&succ, 0);
    }

    #[test]
    #[should_panic]
    fn seq_detects_uncovered_nodes() {
        let succ = vec![1, NIL, NIL]; // node 2 unreachable
        let _ = list_rank_seq(&succ, 0);
    }
}

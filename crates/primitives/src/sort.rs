//! Parallel sorting: Helman–JáJá sample sort and LSD radix sort.
//!
//! TV-SMP needs a sort twice: to pair anti-parallel arcs (cross pointers
//! for the Euler tour) and to group arcs by source vertex (circular
//! adjacency). The paper uses the Helman–JáJá sample sort; we provide it
//! plus an LSD radix sort on packed `u64` keys, which the bench crate
//! compares as an ablation.

use bcc_smp::{BccWorkspace, Ctx, Pool, SharedSlice};

/// Oversampling factor for splitter selection.
const OVERSAMPLE: usize = 32;

/// Parallel sample sort, in place, ascending by `Ord`.
///
/// ```
/// use bcc_primitives::sort::par_sample_sort;
/// use bcc_smp::Pool;
///
/// let mut a = vec![5u64, 2, 9, 1];
/// par_sample_sort(&Pool::new(2), &mut a);
/// assert_eq!(a, vec![1, 2, 5, 9]);
/// ```
pub fn par_sample_sort<T: Copy + Ord + Send + Sync + 'static>(pool: &Pool, a: &mut [T]) {
    par_sample_sort_by_key(pool, a, |x| *x)
}

/// Parallel sample sort, in place, ascending by `key(x)` (stable between
/// equal keys is *not* guaranteed).
pub fn par_sample_sort_by_key<T, K, F>(pool: &Pool, a: &mut [T], key: F)
where
    T: Copy + Send + Sync + 'static,
    K: Ord + Copy + Send + Sync,
    F: Fn(&T) -> K + Sync,
{
    par_sample_sort_by_key_impl(pool, a, key, None)
}

/// [`par_sample_sort_by_key`] with the O(n) double-buffer taken from
/// (and returned to) `ws`.
pub fn par_sample_sort_by_key_ws<T, K, F>(pool: &Pool, a: &mut [T], key: F, ws: &BccWorkspace)
where
    T: Copy + Send + Sync + 'static,
    K: Ord + Copy + Send + Sync,
    F: Fn(&T) -> K + Sync,
{
    par_sample_sort_by_key_impl(pool, a, key, Some(ws))
}

fn par_sample_sort_by_key_impl<T, K, F>(pool: &Pool, a: &mut [T], key: F, ws: Option<&BccWorkspace>)
where
    T: Copy + Send + Sync + 'static,
    K: Ord + Copy + Send + Sync,
    F: Fn(&T) -> K + Sync,
{
    let n = a.len();
    let p = pool.threads();
    if p == 1 || n < 4 * p * OVERSAMPLE {
        a.sort_unstable_by_key(|x| key(x));
        return;
    }

    // Phase 1: local sorts + sample gathering.
    let mut samples: Vec<K> = Vec::new();
    {
        let a_s = SharedSlice::new(a);
        let per_thread: Vec<Vec<K>> = pool.run_map(|ctx: &Ctx| {
            let r = ctx.block_range(n);
            let block = unsafe { a_s.slice_mut(r.start, r.end) };
            block.sort_unstable_by_key(|x| key(x));
            // Evenly spaced samples from the sorted block.
            let mut local = Vec::with_capacity(OVERSAMPLE);
            if !block.is_empty() {
                for k in 0..OVERSAMPLE {
                    let idx = (k * block.len()) / OVERSAMPLE;
                    local.push(key(&block[idx]));
                }
            }
            local
        });
        for mut s in per_thread {
            samples.append(&mut s);
        }
    }
    samples.sort_unstable();
    // p-1 splitters at regular sample positions.
    let splitters: Vec<K> = (1..p).map(|b| samples[(b * samples.len()) / p]).collect();

    // Block boundaries (same partition `block_range` used above).
    let block_starts: Vec<usize> = (0..=p)
        .map(|t| {
            if t == p {
                n
            } else {
                bcc_smp::pool::block_range(t, p, n).start
            }
        })
        .collect();

    // Phase 2: bucket b owns keys in [splitters[b-1], splitters[b]).
    // Each bucket-thread finds its slice of every sorted block by binary
    // search, then copies and sorts.
    // Filled with copies of a[0] (n > 0 past the early return) so the
    // buffer is initialized — every slot is overwritten by the scatter.
    let mut out: Vec<T> = match ws {
        Some(ws) => ws.take(n),
        None => Vec::with_capacity(n),
    };
    out.resize(n, a[0]);
    let mut bucket_sizes = vec![0usize; p + 1];
    {
        let a_ro: &[T] = a;
        let key = &key;
        let splitters = &splitters;
        let block_starts = &block_starts;
        // Pre-compute each bucket's per-block ranges and sizes.
        let ranges: Vec<Vec<(usize, usize)>> = pool.run_map(|ctx: &Ctx| {
            let b = ctx.tid();
            let mut rs = Vec::with_capacity(p);
            for j in 0..p {
                let block = &a_ro[block_starts[j]..block_starts[j + 1]];
                let lo = if b == 0 {
                    0
                } else {
                    block.partition_point(|x| key(x) < splitters[b - 1])
                };
                let hi = if b == p - 1 {
                    block.len()
                } else {
                    block.partition_point(|x| key(x) < splitters[b])
                };
                rs.push((block_starts[j] + lo, block_starts[j] + hi));
            }
            rs
        });
        for (b, rs) in ranges.iter().enumerate() {
            bucket_sizes[b + 1] = rs.iter().map(|&(lo, hi)| hi - lo).sum();
        }
        for b in 0..p {
            bucket_sizes[b + 1] += bucket_sizes[b];
        }
        debug_assert_eq!(bucket_sizes[p], n);

        let out_s = SharedSlice::new(&mut out);
        let bucket_sizes = &bucket_sizes;
        let ranges = &ranges;
        pool.run(|ctx: &Ctx| {
            let b = ctx.tid();
            let mut cursor = bucket_sizes[b];
            for &(lo, hi) in &ranges[b] {
                for (k, item) in a_ro[lo..hi].iter().enumerate() {
                    unsafe { out_s.write(cursor + k, *item) };
                }
                cursor += hi - lo;
            }
            // The bucket is a concatenation of <= p sorted runs; a final
            // local sort keeps the code simple (runs are nearly sorted,
            // pdqsort handles this well).
            let bucket = unsafe { out_s.slice_mut(bucket_sizes[b], bucket_sizes[b + 1]) };
            bucket.sort_unstable_by_key(|x| key(x));
        });
    }

    // Phase 3: copy back in parallel.
    {
        let a_s = SharedSlice::new(a);
        let out_ro: &[T] = &out;
        pool.run(|ctx: &Ctx| {
            let r = ctx.block_range(n);
            let dst = unsafe { a_s.slice_mut(r.start, r.end) };
            dst.copy_from_slice(&out_ro[r]);
        });
    }
    if let Some(ws) = ws {
        ws.give(out);
    }
}

/// Parallel LSD radix sort of `u64` keys (8 passes of 8 bits), stable.
///
/// Each pass: per-thread 256-bin histograms over block-partitioned input,
/// a (256 × p) exclusive scan by thread 0 in bin-major order (stability),
/// then a scatter with per-thread cursors.
pub fn par_radix_sort_u64(pool: &Pool, a: &mut [u64]) {
    par_radix_sort_u64_impl(pool, a, None)
}

/// [`par_radix_sort_u64`] with the O(n) double-buffer and O(256·p)
/// histogram taken from (and returned to) `ws`.
pub fn par_radix_sort_u64_ws(pool: &Pool, a: &mut [u64], ws: &BccWorkspace) {
    par_radix_sort_u64_impl(pool, a, Some(ws))
}

fn par_radix_sort_u64_impl(pool: &Pool, a: &mut [u64], ws: Option<&BccWorkspace>) {
    let n = a.len();
    let p = pool.threads();
    if p == 1 || n < 1 << 14 {
        a.sort_unstable();
        return;
    }
    const BINS: usize = 256;
    let (mut buf, mut hist): (Vec<u64>, Vec<usize>) = match ws {
        Some(ws) => (ws.take_filled(n, 0), ws.take_filled(BINS * p, 0)),
        None => (vec![0u64; n], vec![0usize; BINS * p]),
    };

    // Skip passes whose byte is constant across the array (common when
    // keys are packed (u,v) pairs with small vertex counts).
    let all_or: u64 = a.iter().fold(0, |acc, &x| acc | x);

    let mut src_is_a = true;
    for pass in 0..8 {
        let shift = pass * 8;
        if (all_or >> shift) & 0xFF == 0 && pass > 0 {
            continue;
        }
        hist.iter_mut().for_each(|h| *h = 0);
        {
            let (src, dst): (&mut [u64], &mut [u64]) = if src_is_a {
                (a, &mut buf)
            } else {
                (&mut buf, a)
            };
            let src_s = SharedSlice::new(src);
            let dst_s = SharedSlice::new(dst);
            let hist_s = SharedSlice::new(&mut hist);
            pool.run(|ctx: &Ctx| {
                let t = ctx.tid();
                let r = ctx.block_range(n);
                // Histogram own block. Four interleaved histograms break
                // the store-to-load forwarding dependency on same-bin
                // streaks (sorted or low-entropy bytes otherwise
                // serialize every increment on one counter), and the
                // 4-wide unroll keeps four loads in flight down a
                // purely sequential, prefetch-friendly stream.
                let block: &[u64] = unsafe { src_s.slice_mut(r.start, r.end) };
                let mut local = [[0usize; BINS]; 4];
                let mut quads = block.chunks_exact(4);
                for q in &mut quads {
                    local[0][((q[0] >> shift) & 0xFF) as usize] += 1;
                    local[1][((q[1] >> shift) & 0xFF) as usize] += 1;
                    local[2][((q[2] >> shift) & 0xFF) as usize] += 1;
                    local[3][((q[3] >> shift) & 0xFF) as usize] += 1;
                }
                for &x in quads.remainder() {
                    local[0][((x >> shift) & 0xFF) as usize] += 1;
                }
                let [l0, l1, l2, l3] = &local;
                for (b, (&c0, (&c1, (&c2, &c3)))) in
                    l0.iter().zip(l1.iter().zip(l2.iter().zip(l3))).enumerate()
                {
                    unsafe { hist_s.write(b * ctx.threads() + t, c0 + c1 + c2 + c3) };
                }
                ctx.barrier();
                // Thread 0: exclusive scan in bin-major order => stable.
                if ctx.is_leader() {
                    let h = unsafe { hist_s.slice_mut(0, BINS * ctx.threads()) };
                    crate::scan::exclusive_scan_seq(h);
                }
                ctx.barrier();
                // Scatter with per-thread cursors.
                let mut cursors = [0usize; BINS];
                for (b, c) in cursors.iter_mut().enumerate() {
                    *c = hist_s.get(b * ctx.threads() + t);
                }
                for i in r {
                    let x = src_s.get(i);
                    let b = ((x >> shift) & 0xFF) as usize;
                    unsafe { dst_s.write(cursors[b], x) };
                    cursors[b] += 1;
                }
            });
        }
        src_is_a = !src_is_a;
    }
    if !src_is_a {
        a.copy_from_slice(&buf);
    }
    if let Some(ws) = ws {
        ws.give(buf);
        ws.give(hist);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn random_u64s(n: usize, seed: u64, max: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0..max)).collect()
    }

    #[test]
    fn sample_sort_small_and_large() {
        for p in [1, 2, 4, 6] {
            let pool = Pool::new(p);
            for n in [0usize, 1, 2, 10, 1000, 20_000] {
                let mut a = random_u64s(n, n as u64 + p as u64, u64::MAX);
                let mut want = a.clone();
                want.sort_unstable();
                par_sample_sort(&pool, &mut a);
                assert_eq!(a, want, "p={p} n={n}");
            }
        }
    }

    #[test]
    fn sample_sort_many_duplicates() {
        let pool = Pool::new(4);
        let mut a = random_u64s(50_000, 99, 8); // only 8 distinct keys
        let mut want = a.clone();
        want.sort_unstable();
        par_sample_sort(&pool, &mut a);
        assert_eq!(a, want);
    }

    #[test]
    fn sample_sort_already_sorted_and_reversed() {
        let pool = Pool::new(4);
        let mut asc: Vec<u64> = (0..30_000).collect();
        let want = asc.clone();
        par_sample_sort(&pool, &mut asc);
        assert_eq!(asc, want);

        let mut desc: Vec<u64> = (0..30_000).rev().collect();
        par_sample_sort(&pool, &mut desc);
        assert_eq!(desc, want);
    }

    #[test]
    fn sample_sort_by_key_orders_pairs() {
        let pool = Pool::new(3);
        let mut rng = StdRng::seed_from_u64(7);
        let mut pairs: Vec<(u32, u32)> = (0..25_000).map(|i| (rng.gen_range(0..1000), i)).collect();
        par_sample_sort_by_key(&pool, &mut pairs, |&(k, _)| k);
        for w in pairs.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        // All payloads still present exactly once.
        let mut payloads: Vec<u32> = pairs.iter().map(|&(_, v)| v).collect();
        payloads.sort_unstable();
        assert!(payloads.iter().enumerate().all(|(i, &v)| v == i as u32));
    }

    #[test]
    fn radix_sort_matches_std() {
        for p in [1, 2, 4] {
            let pool = Pool::new(p);
            for n in [0usize, 1, 100, 1 << 14, 100_000] {
                let mut a = random_u64s(n, 3 * n as u64 + p as u64, u64::MAX);
                let mut want = a.clone();
                want.sort_unstable();
                par_radix_sort_u64(&pool, &mut a);
                assert_eq!(a, want, "p={p} n={n}");
            }
        }
    }

    #[test]
    fn radix_sort_small_key_range_uses_pass_skip() {
        let pool = Pool::new(4);
        let mut a = random_u64s(60_000, 5, 1 << 16); // only 2 live bytes
        let mut want = a.clone();
        want.sort_unstable();
        par_radix_sort_u64(&pool, &mut a);
        assert_eq!(a, want);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn sample_sort_equals_std(v in proptest::collection::vec(any::<u64>(), 0..4000),
                                  p in 1usize..5) {
            let pool = Pool::new(p);
            let mut a = v.clone();
            let mut want = v;
            want.sort_unstable();
            par_sample_sort(&pool, &mut a);
            prop_assert_eq!(a, want);
        }

        #[test]
        fn radix_sort_equals_std(v in proptest::collection::vec(any::<u64>(), 0..4000),
                                 p in 1usize..5) {
            let pool = Pool::new(p);
            let mut a = v.clone();
            let mut want = v;
            want.sort_unstable();
            par_radix_sort_u64(&pool, &mut a);
            prop_assert_eq!(a, want);
        }
    }
}

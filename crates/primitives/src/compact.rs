//! Popcount-based stream compaction over bitmap flags.
//!
//! The paper's Alg. 1 discovers auxiliary-graph edges into a sparse 3m
//! slot array and "compacts L' into G' using prefix sums"; this module is
//! that step: keep the elements satisfying a predicate, preserving order,
//! with work split across the pool.
//!
//! The flag array is a [`Bitmap`], not a `u32` per element — 32× less
//! flag traffic — and the prefix sum over flags collapses to one
//! `popcnt` per 64 elements: each thread popcounts the words it owns
//! (word-aligned partitioning, plain stores, no atomics), an O(p) scan
//! of the per-thread counts yields block offsets, and the scatter walks
//! set bits with [`Bitmap::for_each_one_in`]. Two pool dispatches
//! instead of three (flag+count fuses what used to be flag then scan),
//! the predicate runs exactly once per element, and the output is
//! written once per slot through spare capacity — no fill-then-overwrite
//! pass. The pre-PR u32-flag path survives in [`reference`] as the bench
//! baseline and test oracle.

use bcc_smp::{BccWorkspace, Bitmap, Ctx, Pool, SharedSlice};
use std::mem::MaybeUninit;

/// Flag pass fused with the count: each thread owns whole bitmap words
/// ([`Bitmap::word_range_of`] partitioning), evaluates `keep` exactly
/// once per element while packing its words, and popcounts as it goes.
/// On return `counts[t]` is the number of kept elements before thread
/// `t`'s block and `counts[p]` the grand total.
fn flag_and_count<F>(pool: &Pool, n: usize, flags: &Bitmap, counts: &mut [u64], keep: F)
where
    F: Fn(usize) -> bool + Sync,
{
    debug_assert_eq!(counts.len(), pool.threads() + 1);
    counts[0] = 0;
    let counts_s = SharedSlice::new(counts);
    pool.run(|ctx: &Ctx| {
        let words = ctx.block_range_of(Bitmap::word_range_of(0..n));
        let mut local = 0u64;
        for w in words {
            let hi = (w * 64 + 64).min(n);
            let mut bits = 0u64;
            for i in w * 64..hi {
                bits |= u64::from(keep(i)) << (i % 64);
            }
            flags.store_word_unsync(w, bits);
            local += u64::from(bits.count_ones());
        }
        unsafe { counts_s.write(ctx.tid() + 1, local) };
    });
    crate::scan::inclusive_scan_seq(counts);
}

/// Scatter pass: thread `t` starts its cursor at `counts[t]` and walks
/// its own words' set bits, writing `emit(i)` once per kept element
/// into `out`'s spare capacity (then `set_len` publishes them).
fn scatter<T, G>(pool: &Pool, n: usize, flags: &Bitmap, counts: &[u64], out: &mut Vec<T>, emit: G)
where
    T: Copy + Send + Sync,
    G: Fn(usize) -> T + Sync,
{
    let total = counts[pool.threads()] as usize;
    debug_assert!(out.is_empty());
    let spare = &mut out.spare_capacity_mut()[..total];
    let out_s = SharedSlice::new(spare);
    pool.run(|ctx: &Ctx| {
        let words = ctx.block_range_of(Bitmap::word_range_of(0..n));
        let mut cursor = counts[ctx.tid()] as usize;
        flags.for_each_one_in(words.start * 64..words.end * 64, |i| {
            unsafe { out_s.write(cursor, MaybeUninit::new(emit(i))) };
            cursor += 1;
        });
        debug_assert_eq!(cursor, counts[ctx.tid() + 1] as usize);
    });
    // SAFETY: every slot in 0..total was written exactly once — the
    // cursors partition 0..total by construction of `counts`.
    unsafe { out.set_len(total) };
}

/// Returns the elements `a[i]` for which `keep(i, a[i])` is true, in
/// order, using the parallel flag+popcount → scatter pipeline.
///
/// ```
/// use bcc_primitives::compact::compact_with;
/// use bcc_smp::Pool;
///
/// let evens = compact_with(&Pool::new(2), &[1u32, 2, 3, 4], |_, &x| x % 2 == 0);
/// assert_eq!(evens, vec![2, 4]);
/// ```
pub fn compact_with<T, F>(pool: &Pool, a: &[T], keep: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(usize, &T) -> bool + Sync,
{
    let n = a.len();
    if n == 0 {
        return vec![];
    }
    let flags = Bitmap::new(n);
    let mut counts = vec![0u64; pool.threads() + 1];
    flag_and_count(pool, n, &flags, &mut counts, |i| keep(i, &a[i]));
    let total = counts[pool.threads()] as usize;
    let mut out: Vec<T> = Vec::with_capacity(total);
    if total > 0 {
        scatter(pool, n, &flags, &counts, &mut out, |i| a[i]);
    }
    out
}

/// [`compact_with`] with every buffer drawn from `ws`: the bitmap lines
/// and count scratch are returned to the arena before this function
/// returns, and the *output* vector is also taken from `ws` — the
/// caller owns it and decides when (whether) to give it back.
pub fn compact_with_ws<T, F>(pool: &Pool, a: &[T], keep: F, ws: &BccWorkspace) -> Vec<T>
where
    T: Copy + Send + Sync + 'static,
    F: Fn(usize, &T) -> bool + Sync,
{
    let n = a.len();
    if n == 0 {
        return ws.take(0);
    }
    let flags = Bitmap::new_in(n, ws);
    let mut counts: Vec<u64> = ws.take_filled(pool.threads() + 1, 0);
    flag_and_count(pool, n, &flags, &mut counts, |i| keep(i, &a[i]));
    let total = counts[pool.threads()] as usize;
    let mut out: Vec<T> = ws.take(total);
    if total > 0 {
        scatter(pool, n, &flags, &counts, &mut out, |i| a[i]);
    }
    flags.recycle(ws);
    ws.give(counts);
    out
}

/// Returns the *indices* `i` with `flag(i)` true, in ascending order.
pub fn compact_indices<F>(pool: &Pool, n: usize, flag: F) -> Vec<u32>
where
    F: Fn(usize) -> bool + Sync,
{
    if n == 0 {
        return vec![];
    }
    let flags = Bitmap::new(n);
    let mut counts = vec![0u64; pool.threads() + 1];
    flag_and_count(pool, n, &flags, &mut counts, &flag);
    let total = counts[pool.threads()] as usize;
    let mut out: Vec<u32> = Vec::with_capacity(total);
    if total > 0 {
        scatter(pool, n, &flags, &counts, &mut out, |i| i as u32);
    }
    out
}

/// [`compact_indices`] with scratch and output drawn from `ws` (the
/// caller owns the returned vector).
pub fn compact_indices_ws<F>(pool: &Pool, n: usize, flag: F, ws: &BccWorkspace) -> Vec<u32>
where
    F: Fn(usize) -> bool + Sync,
{
    if n == 0 {
        return ws.take(0);
    }
    let flags = Bitmap::new_in(n, ws);
    let mut counts: Vec<u64> = ws.take_filled(pool.threads() + 1, 0);
    flag_and_count(pool, n, &flags, &mut counts, &flag);
    let total = counts[pool.threads()] as usize;
    let mut out: Vec<u32> = ws.take(total);
    if total > 0 {
        scatter(pool, n, &flags, &counts, &mut out, |i| i as u32);
    }
    flags.recycle(ws);
    ws.give(counts);
    out
}

/// The pre-PR scan-flag compaction, frozen verbatim as the `prims`
/// bench baseline and a differential-test oracle. Known costs the live
/// path removes: a `u32` flag per element, a full parallel scan over
/// those flags, the predicate evaluated twice per kept element, and a
/// fill-then-overwrite of the output. Do not "fix" or use it outside
/// benches/tests.
pub mod reference {
    use crate::scan::exclusive_scan_par;
    use bcc_smp::{Pool, SharedSlice};

    /// Pre-PR [`compact_with`](super::compact_with): u32 flags → scan →
    /// re-evaluating scatter.
    pub fn compact_with_scan<T, F>(pool: &Pool, a: &[T], keep: F) -> Vec<T>
    where
        T: Copy + Send + Sync,
        F: Fn(usize, &T) -> bool + Sync,
    {
        let n = a.len();
        if n == 0 {
            return vec![];
        }
        // Flags as u32 for the scan.
        let mut pos = vec![0u32; n];
        {
            let pos_s = SharedSlice::new(&mut pos);
            pool.run(|ctx| {
                for i in ctx.block_range(n) {
                    unsafe { pos_s.write(i, u32::from(keep(i, &a[i]))) };
                }
            });
        }
        let total = exclusive_scan_par(pool, &mut pos) as usize;
        let mut out: Vec<T> = Vec::with_capacity(total);
        if total == 0 {
            return out;
        }
        out.resize(total, a[0]);
        {
            let out_s = SharedSlice::new(&mut out);
            let pos_ro: &[u32] = &pos;
            pool.run(|ctx| {
                for i in ctx.block_range(n) {
                    if keep(i, &a[i]) {
                        unsafe { out_s.write(pos_ro[i] as usize, a[i]) };
                    }
                }
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn keeps_evens_in_order() {
        let pool = Pool::new(4);
        let a: Vec<u32> = (0..1000).collect();
        let out = compact_with(&pool, &a, |_, &x| x % 2 == 0);
        assert_eq!(out.len(), 500);
        assert!(out.iter().enumerate().all(|(i, &x)| x == 2 * i as u32));
    }

    #[test]
    fn empty_input_and_empty_output() {
        let pool = Pool::new(3);
        let none: Vec<u32> = vec![];
        assert!(compact_with(&pool, &none, |_, _| true).is_empty());
        let a = vec![1u32, 2, 3];
        assert!(compact_with(&pool, &a, |_, _| false).is_empty());
        assert!(compact_indices(&pool, 0, |_| true).is_empty());
    }

    #[test]
    fn keep_all_is_identity() {
        let pool = Pool::new(2);
        let a: Vec<u64> = (0..777).map(|i| i * 3).collect();
        assert_eq!(compact_with(&pool, &a, |_, _| true), a);
    }

    #[test]
    fn indices_of_multiples() {
        let pool = Pool::new(4);
        let idx = compact_indices(&pool, 100, |i| i % 7 == 0);
        assert_eq!(
            idx,
            (0..100)
                .filter(|i| i % 7 == 0)
                .map(|i| i as u32)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn predicate_runs_exactly_once_per_element() {
        let pool = Pool::new(4);
        let a: Vec<u32> = (0..5000).collect();
        let calls = AtomicUsize::new(0);
        let out = compact_with(&pool, &a, |_, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x % 3 == 0
        });
        assert_eq!(out.len(), a.iter().filter(|&&x| x % 3 == 0).count());
        assert_eq!(calls.load(Ordering::Relaxed), a.len());
        calls.store(0, Ordering::Relaxed);
        let idx = compact_indices(&pool, a.len(), |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i % 3 == 0
        });
        assert_eq!(idx.len(), out.len());
        assert_eq!(calls.load(Ordering::Relaxed), a.len());
    }

    #[test]
    fn ws_variants_match_plain() {
        let pool = Pool::new(4);
        let ws = bcc_smp::BccWorkspace::new();
        let a: Vec<u32> = (0..2000).map(|i| i * 7 % 613).collect();
        for _ in 0..2 {
            let got = compact_with_ws(&pool, &a, |_, &x| x % 3 == 0, &ws);
            assert_eq!(got, compact_with(&pool, &a, |_, &x| x % 3 == 0));
            ws.give(got);
            let idx = compact_indices_ws(&pool, a.len(), |i| a[i].is_multiple_of(5), &ws);
            assert_eq!(
                idx,
                compact_indices(&pool, a.len(), |i| a[i].is_multiple_of(5))
            );
            ws.give(idx);
        }
        let s = ws.stats();
        assert_eq!(s.misses + s.hits, 12, "3 takes per ws call");
        assert!(s.misses <= 3, "second round must be all hits, got {s:?}");
    }

    proptest! {
        #[test]
        fn matches_iterator_filter(v in proptest::collection::vec(any::<u32>(), 0..800),
                                   p in 1usize..5) {
            let pool = Pool::new(p);
            let got = compact_with(&pool, &v, |_, &x| x % 3 == 1);
            let want: Vec<u32> = v.iter().copied().filter(|&x| x % 3 == 1).collect();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn matches_frozen_scan_reference(v in proptest::collection::vec(any::<u32>(), 0..800),
                                         m in 1u32..7, p in 1usize..5) {
            let pool = Pool::new(p);
            let got = compact_with(&pool, &v, |_, &x| x % m == 0);
            let want = reference::compact_with_scan(&pool, &v, |_, &x| x % m == 0);
            prop_assert_eq!(got, want);
        }
    }
}

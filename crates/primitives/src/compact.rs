//! Scan-based stream compaction.
//!
//! The paper's Alg. 1 discovers auxiliary-graph edges into a sparse 3m
//! slot array and "compacts L' into G' using prefix sums"; this module is
//! that step: keep the elements satisfying a predicate, preserving order,
//! with work split across the pool.

use crate::scan::{exclusive_scan_par, exclusive_scan_par_ws};
use bcc_smp::{BccWorkspace, Pool, SharedSlice};

/// Returns the elements `a[i]` for which `keep(i, a[i])` is true, in
/// order, using a parallel flag → scan → scatter pipeline.
///
/// ```
/// use bcc_primitives::compact::compact_with;
/// use bcc_smp::Pool;
///
/// let evens = compact_with(&Pool::new(2), &[1u32, 2, 3, 4], |_, &x| x % 2 == 0);
/// assert_eq!(evens, vec![2, 4]);
/// ```
pub fn compact_with<T, F>(pool: &Pool, a: &[T], keep: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(usize, &T) -> bool + Sync,
{
    let n = a.len();
    if n == 0 {
        return vec![];
    }
    // Flags as u32 for the scan.
    let mut pos = vec![0u32; n];
    {
        let pos_s = SharedSlice::new(&mut pos);
        pool.run(|ctx| {
            for i in ctx.block_range(n) {
                unsafe { pos_s.write(i, u32::from(keep(i, &a[i]))) };
            }
        });
    }
    let total = exclusive_scan_par(pool, &mut pos) as usize;
    let mut out: Vec<T> = Vec::with_capacity(total);
    if total == 0 {
        return out;
    }
    out.resize(total, a[0]);
    {
        let out_s = SharedSlice::new(&mut out);
        let pos_ro: &[u32] = &pos;
        pool.run(|ctx| {
            for i in ctx.block_range(n) {
                if keep(i, &a[i]) {
                    unsafe { out_s.write(pos_ro[i] as usize, a[i]) };
                }
            }
        });
    }
    out
}

/// [`compact_with`] with every buffer drawn from `ws`: the flag/scan
/// scratch is returned to the arena before this function returns, and
/// the *output* vector is also taken from `ws` — the caller owns it and
/// decides when (whether) to give it back.
pub fn compact_with_ws<T, F>(pool: &Pool, a: &[T], keep: F, ws: &BccWorkspace) -> Vec<T>
where
    T: Copy + Send + Sync + 'static,
    F: Fn(usize, &T) -> bool + Sync,
{
    let n = a.len();
    if n == 0 {
        return ws.take(0);
    }
    let mut pos: Vec<u32> = ws.take_filled(n, 0);
    {
        let pos_s = SharedSlice::new(&mut pos);
        pool.run(|ctx| {
            for i in ctx.block_range(n) {
                unsafe { pos_s.write(i, u32::from(keep(i, &a[i]))) };
            }
        });
    }
    let total = exclusive_scan_par_ws(pool, &mut pos, ws) as usize;
    let mut out: Vec<T> = ws.take(total);
    if total == 0 {
        ws.give(pos);
        return out;
    }
    out.resize(total, a[0]);
    {
        let out_s = SharedSlice::new(&mut out);
        let pos_ro: &[u32] = &pos;
        pool.run(|ctx| {
            for i in ctx.block_range(n) {
                if keep(i, &a[i]) {
                    unsafe { out_s.write(pos_ro[i] as usize, a[i]) };
                }
            }
        });
    }
    ws.give(pos);
    out
}

/// Returns the *indices* `i` with `flag(i)` true, in ascending order.
pub fn compact_indices<F>(pool: &Pool, n: usize, flag: F) -> Vec<u32>
where
    F: Fn(usize) -> bool + Sync,
{
    let mut pos = vec![0u32; n];
    {
        let pos_s = SharedSlice::new(&mut pos);
        pool.run(|ctx| {
            for i in ctx.block_range(n) {
                unsafe { pos_s.write(i, u32::from(flag(i))) };
            }
        });
    }
    let total = exclusive_scan_par(pool, &mut pos) as usize;
    let mut out = vec![0u32; total];
    {
        let out_s = SharedSlice::new(&mut out);
        let pos_ro: &[u32] = &pos;
        pool.run(|ctx| {
            for i in ctx.block_range(n) {
                if flag(i) {
                    unsafe { out_s.write(pos_ro[i] as usize, i as u32) };
                }
            }
        });
    }
    out
}

/// [`compact_indices`] with scratch and output drawn from `ws` (the
/// caller owns the returned vector).
pub fn compact_indices_ws<F>(pool: &Pool, n: usize, flag: F, ws: &BccWorkspace) -> Vec<u32>
where
    F: Fn(usize) -> bool + Sync,
{
    let mut pos: Vec<u32> = ws.take_filled(n, 0);
    {
        let pos_s = SharedSlice::new(&mut pos);
        pool.run(|ctx| {
            for i in ctx.block_range(n) {
                unsafe { pos_s.write(i, u32::from(flag(i))) };
            }
        });
    }
    let total = exclusive_scan_par_ws(pool, &mut pos, ws) as usize;
    let mut out: Vec<u32> = ws.take_filled(total, 0);
    {
        let out_s = SharedSlice::new(&mut out);
        let pos_ro: &[u32] = &pos;
        pool.run(|ctx| {
            for i in ctx.block_range(n) {
                if flag(i) {
                    unsafe { out_s.write(pos_ro[i] as usize, i as u32) };
                }
            }
        });
    }
    ws.give(pos);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn keeps_evens_in_order() {
        let pool = Pool::new(4);
        let a: Vec<u32> = (0..1000).collect();
        let out = compact_with(&pool, &a, |_, &x| x % 2 == 0);
        assert_eq!(out.len(), 500);
        assert!(out.iter().enumerate().all(|(i, &x)| x == 2 * i as u32));
    }

    #[test]
    fn empty_input_and_empty_output() {
        let pool = Pool::new(3);
        let none: Vec<u32> = vec![];
        assert!(compact_with(&pool, &none, |_, _| true).is_empty());
        let a = vec![1u32, 2, 3];
        assert!(compact_with(&pool, &a, |_, _| false).is_empty());
    }

    #[test]
    fn keep_all_is_identity() {
        let pool = Pool::new(2);
        let a: Vec<u64> = (0..777).map(|i| i * 3).collect();
        assert_eq!(compact_with(&pool, &a, |_, _| true), a);
    }

    #[test]
    fn indices_of_multiples() {
        let pool = Pool::new(4);
        let idx = compact_indices(&pool, 100, |i| i % 7 == 0);
        assert_eq!(
            idx,
            (0..100)
                .filter(|i| i % 7 == 0)
                .map(|i| i as u32)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn ws_variants_match_plain() {
        let pool = Pool::new(4);
        let ws = bcc_smp::BccWorkspace::new();
        let a: Vec<u32> = (0..2000).map(|i| i * 7 % 613).collect();
        for _ in 0..2 {
            let got = compact_with_ws(&pool, &a, |_, &x| x % 3 == 0, &ws);
            assert_eq!(got, compact_with(&pool, &a, |_, &x| x % 3 == 0));
            ws.give(got);
            let idx = compact_indices_ws(&pool, a.len(), |i| a[i].is_multiple_of(5), &ws);
            assert_eq!(
                idx,
                compact_indices(&pool, a.len(), |i| a[i].is_multiple_of(5))
            );
            ws.give(idx);
        }
        let s = ws.stats();
        assert_eq!(s.misses + s.hits, 12, "3 takes per ws call");
        assert!(s.misses <= 3, "second round must be all hits, got {s:?}");
    }

    proptest! {
        #[test]
        fn matches_iterator_filter(v in proptest::collection::vec(any::<u32>(), 0..800),
                                   p in 1usize..5) {
            let pool = Pool::new(p);
            let got = compact_with(&pool, &v, |_, &x| x % 3 == 1);
            let want: Vec<u32> = v.iter().copied().filter(|&x| x % 3 == 1).collect();
            prop_assert_eq!(got, want);
        }
    }
}

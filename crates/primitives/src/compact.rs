//! Scan-based stream compaction.
//!
//! The paper's Alg. 1 discovers auxiliary-graph edges into a sparse 3m
//! slot array and "compacts L' into G' using prefix sums"; this module is
//! that step: keep the elements satisfying a predicate, preserving order,
//! with work split across the pool.

use crate::scan::exclusive_scan_par;
use bcc_smp::{Pool, SharedSlice};

/// Returns the elements `a[i]` for which `keep(i, a[i])` is true, in
/// order, using a parallel flag → scan → scatter pipeline.
///
/// ```
/// use bcc_primitives::compact::compact_with;
/// use bcc_smp::Pool;
///
/// let evens = compact_with(&Pool::new(2), &[1u32, 2, 3, 4], |_, &x| x % 2 == 0);
/// assert_eq!(evens, vec![2, 4]);
/// ```
pub fn compact_with<T, F>(pool: &Pool, a: &[T], keep: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(usize, &T) -> bool + Sync,
{
    let n = a.len();
    if n == 0 {
        return vec![];
    }
    // Flags as u32 for the scan.
    let mut pos = vec![0u32; n];
    {
        let pos_s = SharedSlice::new(&mut pos);
        pool.run(|ctx| {
            for i in ctx.block_range(n) {
                unsafe { pos_s.write(i, u32::from(keep(i, &a[i]))) };
            }
        });
    }
    let total = exclusive_scan_par(pool, &mut pos) as usize;
    let mut out: Vec<T> = Vec::with_capacity(total);
    if total == 0 {
        return out;
    }
    out.resize(total, a[0]);
    {
        let out_s = SharedSlice::new(&mut out);
        let pos_ro: &[u32] = &pos;
        pool.run(|ctx| {
            for i in ctx.block_range(n) {
                if keep(i, &a[i]) {
                    unsafe { out_s.write(pos_ro[i] as usize, a[i]) };
                }
            }
        });
    }
    out
}

/// Returns the *indices* `i` with `flag(i)` true, in ascending order.
pub fn compact_indices<F>(pool: &Pool, n: usize, flag: F) -> Vec<u32>
where
    F: Fn(usize) -> bool + Sync,
{
    let mut pos = vec![0u32; n];
    {
        let pos_s = SharedSlice::new(&mut pos);
        pool.run(|ctx| {
            for i in ctx.block_range(n) {
                unsafe { pos_s.write(i, u32::from(flag(i))) };
            }
        });
    }
    let total = exclusive_scan_par(pool, &mut pos) as usize;
    let mut out = vec![0u32; total];
    {
        let out_s = SharedSlice::new(&mut out);
        let pos_ro: &[u32] = &pos;
        pool.run(|ctx| {
            for i in ctx.block_range(n) {
                if flag(i) {
                    unsafe { out_s.write(pos_ro[i] as usize, i as u32) };
                }
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn keeps_evens_in_order() {
        let pool = Pool::new(4);
        let a: Vec<u32> = (0..1000).collect();
        let out = compact_with(&pool, &a, |_, &x| x % 2 == 0);
        assert_eq!(out.len(), 500);
        assert!(out.iter().enumerate().all(|(i, &x)| x == 2 * i as u32));
    }

    #[test]
    fn empty_input_and_empty_output() {
        let pool = Pool::new(3);
        let none: Vec<u32> = vec![];
        assert!(compact_with(&pool, &none, |_, _| true).is_empty());
        let a = vec![1u32, 2, 3];
        assert!(compact_with(&pool, &a, |_, _| false).is_empty());
    }

    #[test]
    fn keep_all_is_identity() {
        let pool = Pool::new(2);
        let a: Vec<u64> = (0..777).map(|i| i * 3).collect();
        assert_eq!(compact_with(&pool, &a, |_, _| true), a);
    }

    #[test]
    fn indices_of_multiples() {
        let pool = Pool::new(4);
        let idx = compact_indices(&pool, 100, |i| i % 7 == 0);
        assert_eq!(
            idx,
            (0..100)
                .filter(|i| i % 7 == 0)
                .map(|i| i as u32)
                .collect::<Vec<_>>()
        );
    }

    proptest! {
        #[test]
        fn matches_iterator_filter(v in proptest::collection::vec(any::<u32>(), 0..800),
                                   p in 1usize..5) {
            let pool = Pool::new(p);
            let got = compact_with(&pool, &v, |_, &x| x % 3 == 1);
            let want: Vec<u32> = v.iter().copied().filter(|&x| x % 3 == 1).collect();
            prop_assert_eq!(got, want);
        }
    }
}

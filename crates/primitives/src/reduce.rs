//! Block-parallel reductions (sum, min, max).

use bcc_smp::{Ctx, Pool};

/// Parallel sum of `u32`/`u64`-like data widened to `u64`.
pub fn par_sum_u64(pool: &Pool, a: &[u64]) -> u64 {
    if a.is_empty() {
        return 0;
    }
    let partials = pool.run_map(|ctx: &Ctx| a[ctx.block_range(a.len())].iter().sum::<u64>());
    partials.into_iter().sum()
}

/// Parallel minimum; `None` on empty input.
pub fn par_min<T: Copy + Ord + Send + Sync>(pool: &Pool, a: &[T]) -> Option<T> {
    if a.is_empty() {
        return None;
    }
    let partials = pool.run_map(|ctx: &Ctx| a[ctx.block_range(a.len())].iter().copied().min());
    partials.into_iter().flatten().min()
}

/// Parallel maximum; `None` on empty input.
pub fn par_max<T: Copy + Ord + Send + Sync>(pool: &Pool, a: &[T]) -> Option<T> {
    if a.is_empty() {
        return None;
    }
    let partials = pool.run_map(|ctx: &Ctx| a[ctx.block_range(a.len())].iter().copied().max());
    partials.into_iter().flatten().max()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_min_max_basic() {
        let pool = Pool::new(4);
        let a: Vec<u64> = (1..=1000).collect();
        assert_eq!(par_sum_u64(&pool, &a), 500_500);
        assert_eq!(par_min(&pool, &a), Some(1));
        assert_eq!(par_max(&pool, &a), Some(1000));
    }

    #[test]
    fn empty_inputs() {
        let pool = Pool::new(3);
        assert_eq!(par_sum_u64(&pool, &[]), 0);
        assert_eq!(par_min::<u64>(&pool, &[]), None);
        assert_eq!(par_max::<u64>(&pool, &[]), None);
    }

    #[test]
    fn more_threads_than_elements() {
        let pool = Pool::new(8);
        let a = [42u64, 7];
        assert_eq!(par_sum_u64(&pool, &a), 49);
        assert_eq!(par_min(&pool, &a), Some(7));
        assert_eq!(par_max(&pool, &a), Some(42));
    }
}

//! Parallel sparse-table range minimum / maximum queries.
//!
//! TV's Low-high step needs, for every vertex, the min/max of a key
//! array over the vertex's preorder-contiguous subtree interval. A
//! sparse table costs O(n log n) work to build but is embarrassingly
//! parallel (each level is an independent data-parallel sweep) and
//! answers queries in O(1) — a good SMP trade against the PRAM rake
//! operations it replaces.

use bcc_smp::{BccWorkspace, Pool, SharedSlice};

/// Which extremum the table answers.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Extremum {
    /// Range minimum.
    Min,
    /// Range maximum.
    Max,
}

/// A sparse table answering range-min or range-max queries over a fixed
/// `u32` array in O(1).
pub struct RangeTable {
    n: usize,
    which: Extremum,
    /// `levels[k][i]` = extremum of `a[i .. i + 2^k]`; level 0 is the
    /// input itself.
    levels: Vec<Vec<u32>>,
}

impl RangeTable {
    /// Builds the table in parallel.
    ///
    /// ```
    /// use bcc_primitives::rmq::{Extremum, RangeTable};
    /// use bcc_smp::Pool;
    ///
    /// let t = RangeTable::build(&Pool::new(2), &[5, 1, 4, 2], Extremum::Min);
    /// assert_eq!(t.query(0, 4), 1);
    /// assert_eq!(t.query(2, 4), 2);
    /// ```
    pub fn build(pool: &Pool, a: &[u32], which: Extremum) -> Self {
        let n = a.len();
        let mut levels = vec![a.to_vec()];
        let mut width = 1usize; // 2^(k-1)
        while 2 * width <= n {
            let prev = levels.last().unwrap();
            let len = n - 2 * width + 1;
            let mut cur = vec![0u32; len];
            {
                let cur_s = SharedSlice::new(&mut cur);
                pool.run(|ctx| {
                    for i in ctx.block_range(len) {
                        let x = prev[i];
                        let y = prev[i + width];
                        let v = match which {
                            Extremum::Min => x.min(y),
                            Extremum::Max => x.max(y),
                        };
                        unsafe { cur_s.write(i, v) };
                    }
                });
            }
            levels.push(cur);
            width *= 2;
        }
        RangeTable { n, which, levels }
    }

    /// Extremum of `a[lo..hi]` (half-open, non-empty).
    #[inline]
    pub fn query(&self, lo: usize, hi: usize) -> u32 {
        assert!(
            lo < hi && hi <= self.n,
            "bad range {lo}..{hi} (n={})",
            self.n
        );
        let len = hi - lo;
        let k = (usize::BITS - 1 - len.leading_zeros()) as usize; // floor(log2 len)
        let w = 1usize << k;
        let x = self.levels[k][lo];
        let y = self.levels[k][hi - w];
        match self.which {
            Extremum::Min => x.min(y),
            Extremum::Max => x.max(y),
        }
    }

    /// Length of the underlying array.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the underlying array is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// A sparse table answering **both** range-min and range-max queries,
/// built in fused pool phases.
///
/// The Low-high step needs the min of one key array and the max of
/// another over the same subtree intervals. Two [`RangeTable`]s cost
/// two full sets of level sweeps (2·log n pool phases and barrier
/// episodes); this table builds the min level and the max level of each
/// width inside *one* phase, halving the phase count and walking the
/// (shared) level geometry once. Level 0 is a single copy of each input
/// rather than being duplicated per extremum.
///
/// ```
/// use bcc_primitives::rmq::RangeMinMaxTable;
/// use bcc_smp::Pool;
///
/// let t = RangeMinMaxTable::build(&Pool::new(2), &[5, 1, 4, 2], &[5, 1, 4, 2]);
/// assert_eq!(t.query_min(0, 4), 1);
/// assert_eq!(t.query_max(1, 3), 4);
/// ```
pub struct RangeMinMaxTable {
    n: usize,
    /// Level 0 of the min side (a copy of the min input).
    min_base: Vec<u32>,
    /// Level 0 of the max side (a copy of the max input).
    max_base: Vec<u32>,
    /// `min_levels[k-1][i]` = min of `min_base[i .. i + 2^k]`.
    min_levels: Vec<Vec<u32>>,
    /// `max_levels[k-1][i]` = max of `max_base[i .. i + 2^k]`.
    max_levels: Vec<Vec<u32>>,
}

impl RangeMinMaxTable {
    /// Builds both tables in fused parallel level sweeps.
    ///
    /// `min_input` and `max_input` must have the same length.
    pub fn build(pool: &Pool, min_input: &[u32], max_input: &[u32]) -> Self {
        Self::build_impl(pool, min_input, max_input, None)
    }

    /// [`build`](Self::build) with every level buffer taken from `ws`
    /// (return them with [`recycle`](Self::recycle)).
    pub fn build_ws(pool: &Pool, min_input: &[u32], max_input: &[u32], ws: &BccWorkspace) -> Self {
        Self::build_impl(pool, min_input, max_input, Some(ws))
    }

    fn build_impl(
        pool: &Pool,
        min_input: &[u32],
        max_input: &[u32],
        ws: Option<&BccWorkspace>,
    ) -> Self {
        assert_eq!(min_input.len(), max_input.len());
        let n = min_input.len();
        let take = |src: &[u32]| -> Vec<u32> {
            match ws {
                Some(ws) => {
                    let mut v: Vec<u32> = ws.take(src.len());
                    v.extend_from_slice(src);
                    v
                }
                None => src.to_vec(),
            }
        };
        let min_base = take(min_input);
        let max_base = take(max_input);
        let mut min_levels: Vec<Vec<u32>> = Vec::new();
        let mut max_levels: Vec<Vec<u32>> = Vec::new();
        let mut width = 1usize; // 2^(k-1)
        while 2 * width <= n {
            let prev_min: &[u32] = min_levels.last().map_or(&min_base, |v| v);
            let prev_max: &[u32] = max_levels.last().map_or(&max_base, |v| v);
            let len = n - 2 * width + 1;
            let (mut cur_min, mut cur_max): (Vec<u32>, Vec<u32>) = match ws {
                Some(ws) => (ws.take_filled(len, 0), ws.take_filled(len, 0)),
                None => (vec![0u32; len], vec![0u32; len]),
            };
            {
                let min_s = SharedSlice::new(&mut cur_min);
                let max_s = SharedSlice::new(&mut cur_max);
                pool.run(|ctx| {
                    for i in ctx.block_range(len) {
                        unsafe {
                            min_s.write(i, prev_min[i].min(prev_min[i + width]));
                            max_s.write(i, prev_max[i].max(prev_max[i + width]));
                        }
                    }
                });
            }
            min_levels.push(cur_min);
            max_levels.push(cur_max);
            width *= 2;
        }
        RangeMinMaxTable {
            n,
            min_base,
            max_base,
            min_levels,
            max_levels,
        }
    }

    /// Minimum of `min_input[lo..hi]` (half-open, non-empty).
    #[inline]
    pub fn query_min(&self, lo: usize, hi: usize) -> u32 {
        let (k, w) = self.level_of(lo, hi);
        if k == 0 {
            self.min_base[lo]
        } else {
            let lv = &self.min_levels[k - 1];
            lv[lo].min(lv[hi - w])
        }
    }

    /// Maximum of `max_input[lo..hi]` (half-open, non-empty).
    #[inline]
    pub fn query_max(&self, lo: usize, hi: usize) -> u32 {
        let (k, w) = self.level_of(lo, hi);
        if k == 0 {
            self.max_base[lo]
        } else {
            let lv = &self.max_levels[k - 1];
            lv[lo].max(lv[hi - w])
        }
    }

    #[inline]
    fn level_of(&self, lo: usize, hi: usize) -> (usize, usize) {
        assert!(
            lo < hi && hi <= self.n,
            "bad range {lo}..{hi} (n={})",
            self.n
        );
        let len = hi - lo;
        let k = (usize::BITS - 1 - len.leading_zeros()) as usize; // floor(log2 len)
        (k, 1usize << k)
    }

    /// Length of the underlying arrays.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the underlying arrays are empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Returns every level buffer to `ws` for reuse.
    pub fn recycle(self, ws: &BccWorkspace) {
        ws.give(self.min_base);
        ws.give(self.max_base);
        for v in self.min_levels {
            ws.give(v);
        }
        for v in self.max_levels {
            ws.give(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn oracle(a: &[u32], lo: usize, hi: usize, which: Extremum) -> u32 {
        let it = a[lo..hi].iter().copied();
        match which {
            Extremum::Min => it.min().unwrap(),
            Extremum::Max => it.max().unwrap(),
        }
    }

    #[test]
    fn all_ranges_small_array() {
        let a = vec![5u32, 1, 4, 2, 8, 0, 3, 9, 7, 6];
        let pool = Pool::new(3);
        for which in [Extremum::Min, Extremum::Max] {
            let t = RangeTable::build(&pool, &a, which);
            for lo in 0..a.len() {
                for hi in lo + 1..=a.len() {
                    assert_eq!(
                        t.query(lo, hi),
                        oracle(&a, lo, hi, which),
                        "{which:?} over {lo}..{hi}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_element() {
        let pool = Pool::new(2);
        let t = RangeTable::build(&pool, &[42], Extremum::Min);
        assert_eq!(t.query(0, 1), 42);
    }

    #[test]
    #[should_panic]
    fn empty_range_rejected() {
        let pool = Pool::new(1);
        let t = RangeTable::build(&pool, &[1, 2, 3], Extremum::Min);
        let _ = t.query(1, 1);
    }

    #[test]
    fn fused_table_matches_two_single_tables() {
        let pool = Pool::new(3);
        let ws = bcc_smp::BccWorkspace::new();
        let a: Vec<u32> = (0..200).map(|i| (i * 37) % 101).collect();
        let b: Vec<u32> = (0..200).map(|i| (i * 53) % 97).collect();
        let tmin = RangeTable::build(&pool, &a, Extremum::Min);
        let tmax = RangeTable::build(&pool, &b, Extremum::Max);
        for round in 0..2 {
            let fused = if round == 0 {
                RangeMinMaxTable::build(&pool, &a, &b)
            } else {
                RangeMinMaxTable::build_ws(&pool, &a, &b, &ws)
            };
            for lo in (0..200).step_by(7) {
                for hi in [lo + 1, lo + 3, lo + 64, 200] {
                    if hi > 200 || hi <= lo {
                        continue;
                    }
                    assert_eq!(fused.query_min(lo, hi), tmin.query(lo, hi));
                    assert_eq!(fused.query_max(lo, hi), tmax.query(lo, hi));
                }
            }
            if round == 1 {
                fused.recycle(&ws);
            }
        }
        // A second ws build must be all hits.
        let s0 = ws.stats();
        RangeMinMaxTable::build_ws(&pool, &a, &b, &ws).recycle(&ws);
        let d = ws.stats().delta_since(&s0);
        assert_eq!(d.misses, 0, "steady-state rebuild must not allocate");
        assert!(d.hits > 0);
    }

    #[test]
    fn fused_table_single_element_and_empty() {
        let pool = Pool::new(2);
        let t = RangeMinMaxTable::build(&pool, &[42], &[7]);
        assert_eq!((t.query_min(0, 1), t.query_max(0, 1)), (42, 7));
        let e = RangeMinMaxTable::build(&pool, &[], &[]);
        assert!(e.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn random_queries_match_oracle(
            a in proptest::collection::vec(any::<u32>(), 1..600),
            p in 1usize..5,
            queries in proptest::collection::vec((any::<usize>(), any::<usize>()), 1..40),
        ) {
            let pool = Pool::new(p);
            let tmin = RangeTable::build(&pool, &a, Extremum::Min);
            let tmax = RangeTable::build(&pool, &a, Extremum::Max);
            for (x, y) in queries {
                let lo = x % a.len();
                let hi = lo + 1 + (y % (a.len() - lo));
                prop_assert_eq!(tmin.query(lo, hi), oracle(&a, lo, hi, Extremum::Min));
                prop_assert_eq!(tmax.query(lo, hi), oracle(&a, lo, hi, Extremum::Max));
            }
        }
    }
}

//! Parallel sparse-table range minimum / maximum queries.
//!
//! TV's Low-high step needs, for every vertex, the min/max of a key
//! array over the vertex's preorder-contiguous subtree interval. A
//! sparse table costs O(n log n) work to build but is embarrassingly
//! parallel (each level is an independent data-parallel sweep) and
//! answers queries in O(1) — a good SMP trade against the PRAM rake
//! operations it replaces.

use bcc_smp::{Pool, SharedSlice};

/// Which extremum the table answers.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Extremum {
    /// Range minimum.
    Min,
    /// Range maximum.
    Max,
}

/// A sparse table answering range-min or range-max queries over a fixed
/// `u32` array in O(1).
pub struct RangeTable {
    n: usize,
    which: Extremum,
    /// `levels[k][i]` = extremum of `a[i .. i + 2^k]`; level 0 is the
    /// input itself.
    levels: Vec<Vec<u32>>,
}

impl RangeTable {
    /// Builds the table in parallel.
    ///
    /// ```
    /// use bcc_primitives::rmq::{Extremum, RangeTable};
    /// use bcc_smp::Pool;
    ///
    /// let t = RangeTable::build(&Pool::new(2), &[5, 1, 4, 2], Extremum::Min);
    /// assert_eq!(t.query(0, 4), 1);
    /// assert_eq!(t.query(2, 4), 2);
    /// ```
    pub fn build(pool: &Pool, a: &[u32], which: Extremum) -> Self {
        let n = a.len();
        let mut levels = vec![a.to_vec()];
        let mut width = 1usize; // 2^(k-1)
        while 2 * width <= n {
            let prev = levels.last().unwrap();
            let len = n - 2 * width + 1;
            let mut cur = vec![0u32; len];
            {
                let cur_s = SharedSlice::new(&mut cur);
                pool.run(|ctx| {
                    for i in ctx.block_range(len) {
                        let x = prev[i];
                        let y = prev[i + width];
                        let v = match which {
                            Extremum::Min => x.min(y),
                            Extremum::Max => x.max(y),
                        };
                        unsafe { cur_s.write(i, v) };
                    }
                });
            }
            levels.push(cur);
            width *= 2;
        }
        RangeTable { n, which, levels }
    }

    /// Extremum of `a[lo..hi]` (half-open, non-empty).
    #[inline]
    pub fn query(&self, lo: usize, hi: usize) -> u32 {
        assert!(
            lo < hi && hi <= self.n,
            "bad range {lo}..{hi} (n={})",
            self.n
        );
        let len = hi - lo;
        let k = (usize::BITS - 1 - len.leading_zeros()) as usize; // floor(log2 len)
        let w = 1usize << k;
        let x = self.levels[k][lo];
        let y = self.levels[k][hi - w];
        match self.which {
            Extremum::Min => x.min(y),
            Extremum::Max => x.max(y),
        }
    }

    /// Length of the underlying array.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the underlying array is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn oracle(a: &[u32], lo: usize, hi: usize, which: Extremum) -> u32 {
        let it = a[lo..hi].iter().copied();
        match which {
            Extremum::Min => it.min().unwrap(),
            Extremum::Max => it.max().unwrap(),
        }
    }

    #[test]
    fn all_ranges_small_array() {
        let a = vec![5u32, 1, 4, 2, 8, 0, 3, 9, 7, 6];
        let pool = Pool::new(3);
        for which in [Extremum::Min, Extremum::Max] {
            let t = RangeTable::build(&pool, &a, which);
            for lo in 0..a.len() {
                for hi in lo + 1..=a.len() {
                    assert_eq!(
                        t.query(lo, hi),
                        oracle(&a, lo, hi, which),
                        "{which:?} over {lo}..{hi}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_element() {
        let pool = Pool::new(2);
        let t = RangeTable::build(&pool, &[42], Extremum::Min);
        assert_eq!(t.query(0, 1), 42);
    }

    #[test]
    #[should_panic]
    fn empty_range_rejected() {
        let pool = Pool::new(1);
        let t = RangeTable::build(&pool, &[1, 2, 3], Extremum::Min);
        let _ = t.query(1, 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn random_queries_match_oracle(
            a in proptest::collection::vec(any::<u32>(), 1..600),
            p in 1usize..5,
            queries in proptest::collection::vec((any::<usize>(), any::<usize>()), 1..40),
        ) {
            let pool = Pool::new(p);
            let tmin = RangeTable::build(&pool, &a, Extremum::Min);
            let tmax = RangeTable::build(&pool, &a, Extremum::Max);
            for (x, y) in queries {
                let lo = x % a.len();
                let hi = lo + 1 + (y % (a.len() - lo));
                prop_assert_eq!(tmin.query(lo, hi), oracle(&a, lo, hi, Extremum::Min));
                prop_assert_eq!(tmax.query(lo, hi), oracle(&a, lo, hi, Extremum::Max));
            }
        }
    }
}

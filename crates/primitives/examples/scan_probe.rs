//! Size probe for the add-scan kernels: serial per-kernel timing
//! across working-set sizes, for picking the `prims` bench tier's
//! cache-resident element counts (L1 for the scan cells, L2 for the
//! rest) on a given host. Not part of the grid.

use bcc_primitives::kernels;
use bcc_primitives::scan::ScanElem;
use std::time::Instant;

#[derive(Copy, Clone)]
struct Naive32(u32);
impl ScanElem for Naive32 {
    const ZERO: Self = Naive32(0);
    fn combine(self, other: Self) -> Self {
        Naive32(self.0.wrapping_add(other.0))
    }
}

#[derive(Copy, Clone)]
struct Naive64(u64);
impl ScanElem for Naive64 {
    const ZERO: Self = Naive64(0);
    fn combine(self, other: Self) -> Self {
        Naive64(self.0.wrapping_add(other.0))
    }
}

fn time(reps: u32, mut f: impl FnMut()) -> f64 {
    f();
    let t = Instant::now();
    for _ in 0..reps {
        f();
    }
    t.elapsed().as_secs_f64() / f64::from(reps)
}

fn main() {
    println!("simd level: {}", kernels::simd_level());
    for shift in [12usize, 14, 15, 16, 17, 18] {
        let n = 1usize << shift;
        let reps = (1u32 << 24) >> shift;
        let mut a32: Vec<u32> = (0..n as u32).map(|x| x ^ 0x9e37).collect();
        let mut g32: Vec<Naive32> = a32.iter().map(|&x| Naive32(x)).collect();
        let mut a64: Vec<u64> = (0..n as u64).map(|x| x ^ 0x9e37_79b9).collect();
        let mut g64: Vec<Naive64> = a64.iter().map(|&x| Naive64(x)).collect();
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                let s32 = time(reps, || unsafe {
                    kernels::x86::scan_add_u32_sse2(&mut a32, 0);
                });
                let v32 = time(reps, || unsafe {
                    kernels::x86::scan_add_u32_avx2(&mut a32, 0);
                });
                let z32 = if std::arch::is_x86_feature_detected!("avx512f") {
                    time(reps, || unsafe {
                        kernels::x86::scan_add_u32_avx512(&mut a32, 0);
                    })
                } else {
                    f64::NAN
                };
                println!(
                    "n=2^{shift}: u32 sse2 {:8.2}us avx2 {:8.2}us avx512 {:8.2}us",
                    s32 * 1e6,
                    v32 * 1e6,
                    z32 * 1e6
                );
            }
        }
        let d32 = time(reps, || {
            kernels::scan_add_u32(&mut a32, 0);
        });
        let t32 = time(reps, || {
            kernels::scan_add_u32_tiled(&mut a32, 0);
        });
        let n32 = time(reps, || {
            Naive32::scan_block(&mut g32, Naive32::ZERO);
        });
        let d64 = time(reps, || {
            kernels::scan_add_u64(&mut a64, 0);
        });
        let t64 = time(reps, || {
            kernels::scan_add_u64_tiled(&mut a64, 0);
        });
        let n64 = time(reps, || {
            Naive64::scan_block(&mut g64, Naive64::ZERO);
        });
        println!(
            "n=2^{shift}: u32 dispatch {:8.2}us tiled {:8.2}us naive {:8.2}us ({:4.2}x) | u64 dispatch {:8.2}us tiled {:8.2}us naive {:8.2}us ({:4.2}x)",
            d32 * 1e6,
            t32 * 1e6,
            n32 * 1e6,
            n32 / d32,
            d64 * 1e6,
            t64 * 1e6,
            n64 * 1e6,
            n64 / d64,
        );
    }
}

//! Property tests for the vectorized primitives substrate (satellite
//! of the SIMD/word-level kernels PR).
//!
//! Every kernel is checked against a plain scalar oracle written
//! inline here (a carried `wrapping_add` loop, a `filter` collect, a
//! per-bit probe loop), on inputs that sweep lengths across vector-
//! width and tile boundaries, random carries, and random sub-slice
//! offsets — the offsets matter because the AVX-512 bodies peel a
//! scalar head to a 64-byte boundary, so an unaligned window takes a
//! different path than an aligned one.
//!
//! Both dispatch paths run in the same test process: the safe entry
//! points (`scan_add_*`) follow whatever `is_x86_feature_detected!`
//! picks on the host, and under the `simd` feature the per-ISA kernels
//! and the scalar tiled fallback are additionally called directly, so
//! a host with AVX-512 still exercises AVX2, SSE2, and the tiled path
//! in one run.

use bcc_primitives::compact::{compact_indices_ws, compact_with_ws, reference};
use bcc_primitives::kernels;
use bcc_primitives::scan::{exclusive_scan_par_ws, inclusive_scan_par_ws, ScanElem};
use bcc_smp::{BccWorkspace, Bitmap, Pool};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Scalar oracle: inclusive wrapping add-scan with a seed carry.
fn oracle_incl<T: Copy + std::ops::Add<Output = T>>(
    a: &[T],
    carry: T,
    add: impl Fn(T, T) -> T,
) -> (Vec<T>, T) {
    let mut c = carry;
    let out = a
        .iter()
        .map(|&x| {
            c = add(c, x);
            c
        })
        .collect();
    (out, c)
}

/// Scalar oracle: exclusive wrapping add-scan with a seed carry.
fn oracle_excl<T: Copy>(a: &[T], carry: T, add: impl Fn(T, T) -> T) -> (Vec<T>, T) {
    let mut c = carry;
    let out = a
        .iter()
        .map(|&x| {
            let before = c;
            c = add(c, x);
            before
        })
        .collect();
    (out, c)
}

/// Strategy: a u64 buffer whose length straddles the interesting
/// boundaries (empty, sub-vector, one vector, tile edges, several
/// unrolled iterations), plus a window offset and a seed carry.
fn scan_input() -> impl Strategy<Value = (Vec<u64>, usize, u64)> {
    (0usize..300, 0usize..7, any::<u64>()).prop_flat_map(|(len, off, carry)| {
        (
            proptest::collection::vec(any::<u64>(), len..len + 1),
            Just(off),
            Just(carry),
        )
    })
}

/// Applies one scan implementation to a window of `base` and checks it
/// against the oracle, including the returned carry.
fn check_u32(
    base: &[u64],
    off: usize,
    carry: u64,
    name: &str,
    f: impl Fn(&mut [u32], u32) -> u32,
    excl: bool,
) {
    let src: Vec<u32> = base.iter().map(|&x| x as u32).collect();
    let src = &src[off.min(src.len())..];
    let carry = carry as u32;
    let (want, want_c) = if excl {
        oracle_excl(src, carry, u32::wrapping_add)
    } else {
        oracle_incl(src, carry, u32::wrapping_add)
    };
    let mut got = src.to_vec();
    let got_c = f(&mut got, carry);
    assert_eq!(got, want, "{name} mismatch (len {}, off {off})", src.len());
    assert_eq!(got_c, want_c, "{name} carry mismatch (len {})", src.len());
}

/// [`check_u32`]'s u64 twin.
fn check_u64(
    base: &[u64],
    off: usize,
    carry: u64,
    name: &str,
    f: impl Fn(&mut [u64], u64) -> u64,
    excl: bool,
) {
    let src = &base[off.min(base.len())..];
    let (want, want_c) = if excl {
        oracle_excl(src, carry, u64::wrapping_add)
    } else {
        oracle_incl(src, carry, u64::wrapping_add)
    };
    let mut got = src.to_vec();
    let got_c = f(&mut got, carry);
    assert_eq!(got, want, "{name} mismatch (len {}, off {off})", src.len());
    assert_eq!(got_c, want_c, "{name} carry mismatch (len {})", src.len());
}

proptest! {
    // The dispatched and tiled u32 kernels match the scalar oracle on
    // arbitrary windows, carries, and lengths.
    #[test]
    fn scan_u32_kernels_match_oracle((base, off, carry) in scan_input()) {
        check_u32(&base, off, carry, "dispatch", kernels::scan_add_u32, false);
        check_u32(&base, off, carry, "dispatch-excl", kernels::scan_add_u32_excl, true);
        check_u32(&base, off, carry, "tiled", kernels::scan_add_u32_tiled, false);
        check_u32(&base, off, carry, "tiled-excl", kernels::scan_add_u32_excl_tiled, true);
    }

    // Same for the u64 kernels.
    #[test]
    fn scan_u64_kernels_match_oracle((base, off, carry) in scan_input()) {
        check_u64(&base, off, carry, "dispatch", kernels::scan_add_u64, false);
        check_u64(&base, off, carry, "dispatch-excl", kernels::scan_add_u64_excl, true);
        check_u64(&base, off, carry, "tiled", kernels::scan_add_u64_tiled, false);
        check_u64(&base, off, carry, "tiled-excl", kernels::scan_add_u64_excl_tiled, true);
    }

    // The pool-parallel scans (which route `u32`/`u64` slices through
    // the specialized kernels via the `ScanElem` block hooks) agree
    // with the oracle across thread counts.
    #[test]
    fn parallel_scans_match_oracle(
        (base, off, _carry) in scan_input(),
        threads in 1usize..4,
    ) {
        let pool = Pool::new(threads);
        let ws = BccWorkspace::new();
        let src = &base[off.min(base.len())..];

        let mut got = src.to_vec();
        inclusive_scan_par_ws(&pool, &mut got, &ws);
        prop_assert_eq!(&got, &oracle_incl(src, 0, u64::wrapping_add).0);

        let mut got = src.to_vec();
        let total = exclusive_scan_par_ws(&pool, &mut got, &ws);
        let (want, want_total) = oracle_excl(src, 0, u64::wrapping_add);
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(total, want_total);

        let src32: Vec<u32> = src.iter().map(|&x| x as u32).collect();
        let mut got = src32.clone();
        inclusive_scan_par_ws(&pool, &mut got, &ws);
        prop_assert_eq!(&got, &oracle_incl(&src32, 0, u32::wrapping_add).0);
    }

    // `usize` goes through the same slice-cast kernel plumbing as
    // `u64` on 64-bit hosts; the `ScanElem` hooks must agree with the
    // naive generic path.
    #[test]
    fn scan_elem_hooks_match_generic_path(xs in proptest::collection::vec(any::<u64>(), 0..200)) {
        let mut via_hooks: Vec<usize> = xs.iter().map(|&x| x as usize).collect();
        let (want, _) = oracle_incl(&via_hooks.clone(), 0, usize::wrapping_add);
        ScanElem::scan_block(&mut via_hooks[..], 0usize);
        prop_assert_eq!(via_hooks, want);
    }

    // Popcount compaction returns exactly the kept elements in order,
    // matches the frozen scan-based reference, and evaluates the
    // predicate exactly once per element.
    #[test]
    fn compaction_matches_filter_oracle(
        xs in proptest::collection::vec(any::<u32>(), 0..400),
        threads in 1usize..4,
        modulus in 2u32..5,
    ) {
        let pool = Pool::new(threads);
        let ws = BccWorkspace::new();
        let keep = |x: u32| x.is_multiple_of(modulus);
        let want: Vec<u32> = xs.iter().copied().filter(|&x| keep(x)).collect();

        let calls = AtomicUsize::new(0);
        let got = compact_with_ws(&pool, &xs, |_, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            keep(x)
        }, &ws);
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(calls.load(Ordering::Relaxed), xs.len());

        let reference = reference::compact_with_scan(&pool, &xs, |_, &x| keep(x));
        prop_assert_eq!(&reference, &want);

        let idx = compact_indices_ws(&pool, xs.len(), |i| keep(xs[i]), &ws);
        let via_idx: Vec<u32> = idx.iter().map(|&i| xs[i as usize]).collect();
        prop_assert_eq!(&via_idx, &want);
    }

    // The word-level bitmap drains (`for_each_one`, `count_ones_in`,
    // and the ranged variant) agree with a per-bit probe oracle on
    // arbitrary bit patterns and ranges.
    #[test]
    fn bitmap_word_kernels_match_bit_oracle(
        words in proptest::collection::vec(any::<u64>(), 1..8),
        len_in_last in 0usize..64,
        (lo, hi) in (0usize..500, 0usize..500),
    ) {
        let len = ((words.len() - 1) * 64 + len_in_last).max(1);
        let bm = Bitmap::new(len);
        for (w, &bits) in words.iter().take(bm.words()).enumerate() {
            let live = len - w * 64;
            let mask = if live >= 64 { !0 } else { (1u64 << live) - 1 };
            bm.store_word_unsync(w, bits & mask);
        }
        let ones: Vec<usize> = (0..len).filter(|&i| bm.test(i)).collect();

        let mut seen = vec![];
        bm.for_each_one(|i| seen.push(i));
        prop_assert_eq!(&seen, &ones);
        prop_assert_eq!(bm.iter_ones().collect::<Vec<_>>(), ones.clone());
        prop_assert_eq!(bm.count_ones(), ones.len() as u64);

        let (lo, hi) = (lo.min(len), hi.min(len));
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let want: Vec<usize> = ones.iter().copied().filter(|&i| lo <= i && i < hi).collect();
        let mut seen = vec![];
        bm.for_each_one_in(lo..hi, |i| seen.push(i));
        prop_assert_eq!(&seen, &want);
        prop_assert_eq!(bm.count_ones_in(lo..hi), want.len() as u64);
    }
}

/// Every per-ISA kernel the host supports, checked against the oracle
/// directly — not just the tier the dispatcher would pick, so an
/// AVX-512 host still covers the AVX2 and SSE2 bodies in the same run.
/// (Separate module: the proptest macro takes only bare `#[test] fn`
/// items, so the cfg gate has to sit outside the block.)
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod isa_kernels {
    use super::*;
    use kernels::x86;

    proptest! {
        #[test]
        fn scan_isa_kernels_match_oracle((base, off, carry) in scan_input()) {
            if std::arch::is_x86_feature_detected!("sse2") {
                check_u32(&base, off, carry, "sse2",
                    |a, c| unsafe { x86::scan_add_u32_sse2(a, c) }, false);
                check_u32(&base, off, carry, "sse2-excl",
                    |a, c| unsafe { x86::scan_add_u32_excl_sse2(a, c) }, true);
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                check_u32(&base, off, carry, "avx2",
                    |a, c| unsafe { x86::scan_add_u32_avx2(a, c) }, false);
                check_u32(&base, off, carry, "avx2-excl",
                    |a, c| unsafe { x86::scan_add_u32_excl_avx2(a, c) }, true);
                check_u64(&base, off, carry, "avx2",
                    |a, c| unsafe { x86::scan_add_u64_avx2(a, c) }, false);
                check_u64(&base, off, carry, "avx2-excl",
                    |a, c| unsafe { x86::scan_add_u64_excl_avx2(a, c) }, true);
            }
            if std::arch::is_x86_feature_detected!("avx512f") {
                check_u32(&base, off, carry, "avx512",
                    |a, c| unsafe { x86::scan_add_u32_avx512(a, c) }, false);
                check_u32(&base, off, carry, "avx512-excl",
                    |a, c| unsafe { x86::scan_add_u32_excl_avx512(a, c) }, true);
                check_u64(&base, off, carry, "avx512",
                    |a, c| unsafe { x86::scan_add_u64_avx512(a, c) }, false);
                check_u64(&base, off, carry, "avx512-excl",
                    |a, c| unsafe { x86::scan_add_u64_excl_avx512(a, c) }, true);
            }
        }
    }
}

//! Criterion benchmarks for the query engine: queries/second over
//! pool-parallel batches of sizes {1k, 100k, 1M} at p ∈ {1, machine},
//! against a build-once [`BiconnectivityIndex`] — the serving-side
//! companion to the construction benches in `bcc_algorithms.rs`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bcc_graph::gen;
use bcc_query::{run_batch, BiconnectivityIndex, Failure, Query};
use bcc_smp::Pool;

const N: u32 = 1 << 16;
const BATCH_SIZES: &[usize] = &[1_000, 100_000, 1_000_000];

/// Deterministic query mix: the cheap O(1)/O(log n) point queries plus
/// failure probes, weighted toward the failure queries a monitoring
/// workload is dominated by. (No `VertexCutBetween` here: its answers
/// allocate, which would measure the allocator, not the index.)
fn mixed_queries(n: u32, count: usize) -> Vec<Query> {
    let mut x = 0x9E3779B97F4A7C15u64;
    let mut rand = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (x >> 16) as u32
    };
    (0..count)
        .map(|_| {
            let (u, v, w) = (rand() % n, rand() % n, rand() % n);
            match rand() % 5 {
                0 => Query::Connected(u, v),
                1 => Query::SameBlock(u, v),
                2 => Query::IsBridge(u, v),
                3 => Query::SurvivesFailure(u, v, Failure::Vertex(w)),
                _ => Query::SurvivesFailure(u, v, Failure::Edge(v, w)),
            }
        })
        .collect()
}

fn bench_query_throughput(c: &mut Criterion) {
    // A sparse graph with real block structure: cut vertices, bridges,
    // and non-trivial blocks (so queries exercise every code path).
    let g = gen::random_connected(N, 2 * N as usize, 33);
    let build_pool = Pool::machine();
    let idx = BiconnectivityIndex::from_graph(&build_pool, &g).unwrap();
    let machine = build_pool.threads();

    let mut group = c.benchmark_group("query_throughput");
    group.sample_size(10);
    for &size in BATCH_SIZES {
        let queries = mixed_queries(N, size);
        group.throughput(Throughput::Elements(size as u64));
        for p in [1, machine] {
            let pool = Pool::new(p);
            group.bench_with_input(BenchmarkId::new(format!("p{p}"), size), &queries, |b, q| {
                b.iter(|| std::hint::black_box(run_batch(&pool, &idx, q)))
            });
        }
    }
    group.finish();
}

fn bench_point_queries(c: &mut Criterion) {
    // Individual point-query latency (no batch machinery), for the
    // O(log n) claim.
    let g = gen::cycle_chain(2_000, 40, 0); // deep block-cut tree
    let pool = Pool::machine();
    let idx = BiconnectivityIndex::from_graph(&pool, &g).unwrap();
    let n = g.n();
    let mut group = c.benchmark_group("query_point");
    group.bench_function("same_block", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(7919);
            std::hint::black_box(idx.same_block(i % n, (i / 3) % n))
        })
    });
    group.bench_function("survives_vertex_failure", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(7919);
            std::hint::black_box(idx.survives_failure(
                i % n,
                (i / 3) % n,
                Failure::Vertex((i / 7) % n),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_query_throughput, bench_point_queries);
criterion_main!(benches);

//! Criterion benchmarks for the four end-to-end biconnected-components
//! algorithms (a compact, statistically-tracked companion to the fig3
//! binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bcc_core::{Algorithm, BccConfig};
use bcc_graph::gen;
use bcc_smp::Pool;

const N: u32 = 1 << 15;
const THREADS: &[usize] = &[1, 4];

fn bench_bcc_sparse(c: &mut Criterion) {
    let mut group = c.benchmark_group("bcc_sparse_m_eq_4n");
    group.sample_size(10);
    let g = gen::random_connected(N, 4 * N as usize, 11);
    group.bench_function("sequential", |b| {
        let pool = Pool::new(1);
        b.iter(|| {
            let r = BccConfig::new(Algorithm::Sequential)
                .run(&pool, &g)
                .unwrap()
                .result;
            std::hint::black_box(r.num_components)
        })
    });
    for &p in THREADS {
        let pool = Pool::new(p);
        for alg in [Algorithm::TvSmp, Algorithm::TvOpt, Algorithm::TvFilter] {
            group.bench_with_input(BenchmarkId::new(alg.name(), p), &p, |b, _| {
                b.iter(|| {
                    let r = BccConfig::new(alg).run(&pool, &g).unwrap().result;
                    std::hint::black_box(r.num_components)
                })
            });
        }
    }
    group.finish();
}

fn bench_bcc_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("bcc_dense_m_eq_nlogn");
    group.sample_size(10);
    let logn = (32 - N.leading_zeros()) as usize;
    let g = gen::random_connected(N, logn * N as usize, 12);
    group.bench_function("sequential", |b| {
        let pool = Pool::new(1);
        b.iter(|| {
            let r = BccConfig::new(Algorithm::Sequential)
                .run(&pool, &g)
                .unwrap()
                .result;
            std::hint::black_box(r.num_components)
        })
    });
    for &p in THREADS {
        let pool = Pool::new(p);
        for alg in [Algorithm::TvOpt, Algorithm::TvFilter] {
            group.bench_with_input(BenchmarkId::new(alg.name(), p), &p, |b, _| {
                b.iter(|| {
                    let r = BccConfig::new(alg).run(&pool, &g).unwrap().result;
                    std::hint::black_box(r.num_components)
                })
            });
        }
    }
    group.finish();
}

fn bench_derived_outputs(c: &mut Criterion) {
    use bcc_core::verify::{articulation_points, articulation_points_par, bridges, bridges_par};
    let mut group = c.benchmark_group("derived_outputs");
    group.sample_size(10);
    let g = gen::random_connected(N, 3 * N as usize, 21);
    let pool1 = Pool::new(1);
    let r = BccConfig::new(Algorithm::TvFilter)
        .run(&pool1, &g)
        .unwrap()
        .result;
    group.bench_function("articulation_seq", |b| {
        b.iter(|| std::hint::black_box(articulation_points(&g, &r.edge_comp).len()))
    });
    group.bench_function("bridges_seq", |b| {
        b.iter(|| std::hint::black_box(bridges(&g, &r.edge_comp).len()))
    });
    for &p in THREADS {
        let pool = Pool::new(p);
        group.bench_with_input(BenchmarkId::new("articulation_par", p), &p, |b, _| {
            b.iter(|| std::hint::black_box(articulation_points_par(&pool, &g, &r.edge_comp).len()))
        });
        group.bench_with_input(BenchmarkId::new("bridges_par", p), &p, |b, _| {
            b.iter(|| std::hint::black_box(bridges_par(&pool, &g, &r.edge_comp).len()))
        });
    }
    group.bench_function("schmidt_chain_decomposition", |b| {
        b.iter(|| std::hint::black_box(bcc_core::chain_decomposition(&g).bridges.len()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_bcc_sparse,
    bench_bcc_dense,
    bench_derived_outputs
);
criterion_main!(benches);

//! Criterion benchmarks for the SPMD substrate's overheads — the
//! "parallel overhead, i.e. the large constant factors hidden in the
//! asymptotic bounds" that §1 of the paper blames for slow PRAM
//! emulations: pool spawn cost, barrier episode latency, and the cost
//! of an (almost) empty SPMD phase.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bcc_smp::{ChunkCounter, Pool};
use std::sync::atomic::{AtomicUsize, Ordering};

const THREADS: &[usize] = &[1, 2, 4, 8];

fn bench_spawn(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_spawn");
    group.sample_size(20);
    for &p in THREADS {
        let pool = Pool::new(p);
        group.bench_with_input(BenchmarkId::new("empty_run", p), &p, |b, _| {
            b.iter(|| {
                pool.run(|ctx| {
                    std::hint::black_box(ctx.tid());
                })
            })
        });
    }
    group.finish();
}

fn bench_barrier(c: &mut Criterion) {
    let mut group = c.benchmark_group("barrier");
    group.sample_size(20);
    const EPISODES: usize = 100;
    for &p in THREADS {
        let pool = Pool::new(p);
        group.bench_with_input(BenchmarkId::new("100_episodes", p), &p, |b, _| {
            b.iter(|| {
                pool.run(|ctx| {
                    for _ in 0..EPISODES {
                        ctx.barrier();
                    }
                })
            })
        });
    }
    group.finish();
}

fn bench_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduling");
    group.sample_size(20);
    const N: usize = 1 << 16;
    for &p in &[1usize, 4] {
        let pool = Pool::new(p);
        group.bench_with_input(BenchmarkId::new("static_blocks", p), &p, |b, _| {
            let total = AtomicUsize::new(0);
            b.iter(|| {
                pool.run(|ctx| {
                    let mut acc = 0usize;
                    for i in ctx.block_range(N) {
                        acc = acc.wrapping_add(i);
                    }
                    total.fetch_add(acc, Ordering::Relaxed);
                })
            })
        });
        group.bench_with_input(BenchmarkId::new("dynamic_chunks", p), &p, |b, _| {
            let total = AtomicUsize::new(0);
            b.iter(|| {
                let work = ChunkCounter::new(N, 1024);
                pool.run(|_| {
                    let mut acc = 0usize;
                    while let Some(r) = work.next_chunk() {
                        for i in r {
                            acc = acc.wrapping_add(i);
                        }
                    }
                    total.fetch_add(acc, Ordering::Relaxed);
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spawn, bench_barrier, bench_scheduling);
criterion_main!(benches);

//! Criterion benchmarks for the graph substrates: connectivity /
//! spanning trees and Euler tours.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bcc_connectivity::bfs::bfs_tree_par;
use bcc_connectivity::sv::connected_components;
use bcc_connectivity::traversal::work_stealing_tree;
use bcc_euler::{dfs_euler_tour, euler_tour_classic, tree_computations, Ranker};
use bcc_graph::{gen, Csr};
use bcc_smp::Pool;

const N: u32 = 1 << 16;
const THREADS: &[usize] = &[1, 4];

fn bench_connectivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("spanning_tree");
    group.sample_size(10);
    let g = gen::random_connected(N, 4 * N as usize, 7);
    let csr = Csr::build(&g);
    for &p in THREADS {
        let pool = Pool::new(p);
        group.bench_with_input(BenchmarkId::new("shiloach_vishkin", p), &p, |b, _| {
            b.iter(|| std::hint::black_box(connected_components(&pool, N, g.edges()).rounds))
        });
        group.bench_with_input(BenchmarkId::new("bfs", p), &p, |b, _| {
            b.iter(|| std::hint::black_box(bfs_tree_par(&pool, &csr, 0).reached))
        });
        group.bench_with_input(BenchmarkId::new("work_stealing", p), &p, |b, _| {
            b.iter(|| std::hint::black_box(work_stealing_tree(&pool, &csr, 0).reached))
        });
        group.bench_with_input(BenchmarkId::new("csr_build", p), &p, |b, _| {
            b.iter(|| std::hint::black_box(Csr::build_par(&pool, &g).m()))
        });
    }
    group.finish();
}

fn bench_euler(c: &mut Criterion) {
    let mut group = c.benchmark_group("euler_tour");
    group.sample_size(10);
    let tree = gen::random_tree(N, 3);
    let csr = Csr::build(&tree);
    let bfs = bcc_connectivity::bfs::bfs_tree_seq(&csr, 0);
    for &p in THREADS {
        let pool = Pool::new(p);
        group.bench_with_input(BenchmarkId::new("classic_hj", p), &p, |b, _| {
            b.iter(|| {
                let t = euler_tour_classic(&pool, N, tree.edges().to_vec(), 0, Ranker::HelmanJaja);
                std::hint::black_box(t.num_arcs())
            })
        });
        group.bench_with_input(BenchmarkId::new("dfs_order", p), &p, |b, _| {
            b.iter(|| {
                let t = dfs_euler_tour(&pool, N, tree.edges().to_vec(), &bfs.parent, 0);
                std::hint::black_box(t.num_arcs())
            })
        });
        group.bench_with_input(BenchmarkId::new("tree_computations", p), &p, |b, _| {
            let t = dfs_euler_tour(&pool, N, tree.edges().to_vec(), &bfs.parent, 0);
            b.iter(|| std::hint::black_box(tree_computations(&pool, &t, 0).size[0]))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_connectivity, bench_euler);
criterion_main!(benches);

//! Criterion micro-benchmarks for the parallel primitives (prefix sum,
//! list ranking, sorting, compaction, range tables).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;

use bcc_primitives::{
    compact::compact_with,
    list_rank::{list_rank_hj, list_rank_seq, list_rank_wyllie},
    rmq::{Extremum, RangeTable},
    scan::{exclusive_scan_par, exclusive_scan_seq},
    sort::{par_radix_sort_u64, par_sample_sort},
};
use bcc_smp::{Pool, NIL};

const N: usize = 1 << 18;
const THREADS: &[usize] = &[1, 4];

fn random_u64s(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen()).collect()
}

fn random_list(n: usize, seed: u64) -> (Vec<u32>, u32) {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut succ = vec![NIL; n];
    for w in perm.windows(2) {
        succ[w[0] as usize] = w[1];
    }
    (succ, perm[0])
}

fn bench_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefix_sum");
    group.sample_size(10);
    let base: Vec<u64> = (0..N as u64).collect();
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let mut a = base.clone();
            std::hint::black_box(exclusive_scan_seq(&mut a))
        })
    });
    for &p in THREADS {
        let pool = Pool::new(p);
        group.bench_with_input(BenchmarkId::new("parallel", p), &p, |b, _| {
            b.iter(|| {
                let mut a = base.clone();
                std::hint::black_box(exclusive_scan_par(&pool, &mut a))
            })
        });
    }
    group.finish();
}

fn bench_list_rank(c: &mut Criterion) {
    let mut group = c.benchmark_group("list_ranking");
    group.sample_size(10);
    let (succ, head) = random_list(N, 1);
    group.bench_function("sequential", |b| {
        b.iter(|| std::hint::black_box(list_rank_seq(&succ, head)))
    });
    for &p in THREADS {
        let pool = Pool::new(p);
        group.bench_with_input(BenchmarkId::new("wyllie", p), &p, |b, _| {
            b.iter(|| std::hint::black_box(list_rank_wyllie(&pool, &succ, head)))
        });
        group.bench_with_input(BenchmarkId::new("helman_jaja", p), &p, |b, _| {
            b.iter(|| std::hint::black_box(list_rank_hj(&pool, &succ, head)))
        });
    }
    group.finish();
}

fn bench_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("sorting");
    group.sample_size(10);
    let base = random_u64s(N, 2);
    group.bench_function("std_unstable", |b| {
        b.iter(|| {
            let mut a = base.clone();
            a.sort_unstable();
            std::hint::black_box(a[0])
        })
    });
    for &p in THREADS {
        let pool = Pool::new(p);
        group.bench_with_input(BenchmarkId::new("sample_sort", p), &p, |b, _| {
            b.iter(|| {
                let mut a = base.clone();
                par_sample_sort(&pool, &mut a);
                std::hint::black_box(a[0])
            })
        });
        group.bench_with_input(BenchmarkId::new("radix_sort", p), &p, |b, _| {
            b.iter(|| {
                let mut a = base.clone();
                par_radix_sort_u64(&pool, &mut a);
                std::hint::black_box(a[0])
            })
        });
    }
    group.finish();
}

fn bench_compact_and_rmq(c: &mut Criterion) {
    let mut group = c.benchmark_group("compact_rmq");
    group.sample_size(10);
    let data: Vec<u32> = (0..N as u32).collect();
    for &p in THREADS {
        let pool = Pool::new(p);
        group.bench_with_input(BenchmarkId::new("compact_half", p), &p, |b, _| {
            b.iter(|| std::hint::black_box(compact_with(&pool, &data, |_, &x| x % 2 == 0).len()))
        });
        group.bench_with_input(BenchmarkId::new("range_table_build", p), &p, |b, _| {
            b.iter(|| {
                let t = RangeTable::build(&pool, &data, Extremum::Min);
                std::hint::black_box(t.query(0, N))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_scan,
    bench_list_rank,
    bench_sort,
    bench_compact_and_rmq
);
criterion_main!(benches);

//! The paper's experiment grid as a library: graph families ×
//! algorithms × thread counts × trials, reduced to a `BENCH_bcc.json`
//! document, plus the regression comparator behind `bcc-bench compare`.
//!
//! Keeping this in the library (rather than the binary) makes the
//! schema testable: the golden-schema test emits a grid, parses it
//! back, and checks every field the plotting and CI tooling relies on.

use crate::json::Json;
use bcc_core::{Algorithm, BccConfig, PhaseReport};
use bcc_graph::{gen, Graph};
use bcc_smp::{Pool, Telemetry};
use std::sync::Arc;
use std::time::Duration;

/// Version stamp for the `BENCH_bcc.json` layout; bump on breaking
/// schema changes so `compare` can refuse mismatched documents.
pub const SCHEMA_VERSION: u64 = 1;

/// Graph families the grid sweeps — the paper's three workload shapes:
/// random sparse graphs, regular meshes, and the articulation-heavy
/// chain of cycles.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Family {
    /// `random_connected(n, 4n)` — the paper's random sparse inputs.
    RandomSparse,
    /// `torus(k, k)` with `k = floor(sqrt(n))` — the mesh family.
    Torus,
    /// `cycle_chain(n/8, 8)` — many small blocks joined by bridges.
    CycleChain,
}

impl Family {
    /// Every family, in presentation order.
    pub const ALL: [Family; 3] = [Family::RandomSparse, Family::Torus, Family::CycleChain];

    /// Name used in the JSON document.
    pub fn name(self) -> &'static str {
        match self {
            Family::RandomSparse => "random-sparse",
            Family::Torus => "torus",
            Family::CycleChain => "cycle-chain",
        }
    }

    /// The instance of this family with roughly `n` vertices.
    pub fn generate(self, n: u32, seed: u64) -> Graph {
        match self {
            Family::RandomSparse => gen::random_connected(n, 4 * n as usize, seed),
            Family::Torus => {
                let k = (n as f64).sqrt().floor().max(3.0) as u32;
                gen::torus(k, k)
            }
            Family::CycleChain => gen::cycle_chain((n / 8).max(2), 8, seed),
        }
    }
}

/// Grid parameters (what the `bcc-bench` CLI parses into).
#[derive(Clone, Debug)]
pub struct GridConfig {
    /// Target vertex count per family instance.
    pub n: u32,
    /// Thread counts to sweep (must contain 1 for speedup baselines).
    pub threads: Vec<usize>,
    /// Timed repetitions per cell; medians are reported.
    pub trials: usize,
    /// Workload seed.
    pub seed: u64,
    /// Marks the document as a smoke run (small sizes, CI-friendly).
    pub smoke: bool,
}

impl GridConfig {
    /// The default full-size grid for `max_threads` threads.
    pub fn full(max_threads: usize) -> GridConfig {
        GridConfig {
            n: 20_000,
            threads: thread_sweep(max_threads),
            trials: 3,
            seed: 42,
            smoke: false,
        }
    }

    /// A CI-sized grid: seconds, not minutes, on one core.
    pub fn smoke(max_threads: usize) -> GridConfig {
        GridConfig {
            n: 600,
            threads: thread_sweep(max_threads),
            trials: 2,
            seed: 42,
            smoke: true,
        }
    }
}

/// 1, 2, 4, ... up to and always including `max` (and always at least
/// {1, 2}, so speedup columns exist even on one-core machines).
pub fn thread_sweep(max: usize) -> Vec<usize> {
    let max = max.max(2);
    let mut ps = vec![];
    let mut p = 1;
    while p < max {
        ps.push(p);
        p *= 2;
    }
    ps.push(max);
    ps.dedup();
    ps
}

fn median_f64(mut xs: Vec<f64>) -> f64 {
    assert!(!xs.is_empty());
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[(xs.len() - 1) / 2]
}

/// Field-wise medians over one cell's trial reports, flattened to the
/// JSON entry layout.
fn cell_json(
    family: Family,
    g: &Graph,
    threads: usize,
    reports: &[PhaseReport],
    seq_baseline: f64,
) -> Json {
    let med = |f: &dyn Fn(&PhaseReport) -> f64| median_f64(reports.iter().map(f).collect());
    let seconds = med(&|r| r.total.as_secs_f64());
    // Per-phase medians, keyed by step name in first-seen order.
    let mut phase_names: Vec<&'static str> = vec![];
    for r in reports {
        for s in &r.steps {
            if !phase_names.contains(&s.name()) {
                phase_names.push(s.name());
            }
        }
    }
    let phases: Vec<Json> = phase_names
        .iter()
        .map(|&name| {
            let samples: Vec<f64> = reports
                .iter()
                .map(|r| {
                    r.steps
                        .iter()
                        .find(|s| s.name() == name)
                        .map_or(0.0, |s| s.duration.as_secs_f64())
                })
                .collect();
            Json::Arr(vec![Json::str(name), Json::num(median_f64(samples))])
        })
        .collect();
    Json::obj(vec![
        ("family", Json::str(family.name())),
        ("algorithm", Json::str(reports[0].algorithm)),
        ("n", Json::num(g.n())),
        ("m", Json::num(g.m() as f64)),
        ("threads", Json::num(threads as f64)),
        ("seconds", Json::num(seconds)),
        (
            "speedup_vs_sequential",
            Json::num(if seconds > 0.0 {
                seq_baseline / seconds
            } else {
                0.0
            }),
        ),
        ("phases", Json::Arr(phases)),
        ("phase_runs", Json::num(med(&|r| r.phase_runs as f64))),
        (
            "barrier_episodes",
            Json::num(med(&|r| r.barrier_episodes as f64)),
        ),
        (
            "barrier_wait_seconds",
            Json::num(med(&|r| r.barrier_wait.as_secs_f64())),
        ),
        ("imbalance", Json::num(med(&|r| r.imbalance))),
    ])
}

/// Runs the full grid and returns the `BENCH_bcc.json` document.
/// `progress` receives one line per finished cell (pass `|_| {}` to
/// silence it).
pub fn run_grid(cfg: &GridConfig, mut progress: impl FnMut(&str)) -> Json {
    assert!(cfg.threads.contains(&1), "thread sweep must include 1");
    let mut entries: Vec<Json> = vec![];
    for family in Family::ALL {
        let g = family.generate(cfg.n, cfg.seed);
        // Sequential at p = 1 is the speedup denominator for the family.
        let mut seq_baseline = f64::INFINITY;
        for &p in &cfg.threads {
            let sink = Arc::new(Telemetry::new(p));
            let pool = Pool::builder()
                .threads(p)
                .telemetry(Arc::clone(&sink))
                .build();
            for alg in Algorithm::ALL {
                let reports: Vec<PhaseReport> = (0..cfg.trials.max(1))
                    .map(|_| {
                        BccConfig::new(alg)
                            .run(&pool, &g)
                            .unwrap_or_else(|e| panic!("{} on {}: {e}", alg.name(), family.name()))
                            .report
                    })
                    .collect();
                let seconds = median_f64(reports.iter().map(|r| r.total.as_secs_f64()).collect());
                if alg == Algorithm::Sequential && p == 1 {
                    seq_baseline = seconds;
                }
                entries.push(cell_json(family, &g, p, &reports, seq_baseline));
                progress(&format!(
                    "{:>13} {:>10} p={p}: {:>9.3?} ({} trials)",
                    family.name(),
                    alg.name(),
                    Duration::from_secs_f64(seconds),
                    cfg.trials.max(1),
                ));
            }
        }
    }
    Json::obj(vec![
        ("schema_version", Json::num(SCHEMA_VERSION as f64)),
        ("experiment", Json::str("bcc-grid")),
        ("smoke", Json::Bool(cfg.smoke)),
        ("n", Json::num(cfg.n)),
        (
            "threads",
            Json::Arr(cfg.threads.iter().map(|&p| Json::num(p as f64)).collect()),
        ),
        ("trials", Json::num(cfg.trials.max(1) as f64)),
        ("seed", Json::num(cfg.seed as f64)),
        ("entries", Json::Arr(entries)),
    ])
}

/// One regression found by [`compare`].
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// `family/algorithm/n/threads` key of the offending entry.
    pub key: String,
    /// Baseline median seconds.
    pub baseline: f64,
    /// Candidate median seconds.
    pub candidate: f64,
    /// Slowdown in percent (`(candidate/baseline - 1) * 100`).
    pub slowdown_pct: f64,
}

/// Structural problems that stop a comparison before it starts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompareError {
    /// A document is not a `bcc-grid` object with an `entries` array.
    MalformedDocument(&'static str),
    /// The two documents carry different `schema_version` stamps.
    SchemaMismatch,
}

impl std::fmt::Display for CompareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompareError::MalformedDocument(which) => {
                write!(f, "{which} document is not a bcc-grid BENCH file")
            }
            CompareError::SchemaMismatch => write!(f, "schema_version differs between documents"),
        }
    }
}

impl std::error::Error for CompareError {}

fn entry_key(e: &Json) -> Option<String> {
    Some(format!(
        "{}/{}/n{}/p{}",
        e.get("family")?.as_str()?,
        e.get("algorithm")?.as_str()?,
        e.get("n")?.as_u64()?,
        e.get("threads")?.as_u64()?,
    ))
}

/// Compares two BENCH documents; entries are matched by
/// `(family, algorithm, n, threads)` and flagged when the candidate's
/// median `seconds` exceeds the baseline's by more than
/// `threshold_pct` percent. Entries present on only one side are
/// skipped (grids of different sizes stay comparable).
pub fn compare(
    baseline: &Json,
    candidate: &Json,
    threshold_pct: f64,
) -> Result<Vec<Regression>, CompareError> {
    let doc = |j: &Json, which| -> Result<Vec<(String, f64)>, CompareError> {
        let entries = j
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or(CompareError::MalformedDocument(which))?;
        entries
            .iter()
            .map(|e| {
                let key = entry_key(e).ok_or(CompareError::MalformedDocument(which))?;
                let secs = e
                    .get("seconds")
                    .and_then(Json::as_f64)
                    .ok_or(CompareError::MalformedDocument(which))?;
                Ok((key, secs))
            })
            .collect()
    };
    let sv = |j: &Json| j.get("schema_version").and_then(Json::as_u64);
    if sv(baseline) != sv(candidate) {
        return Err(CompareError::SchemaMismatch);
    }
    let base = doc(baseline, "baseline")?;
    let cand = doc(candidate, "candidate")?;
    let mut regressions = vec![];
    for (key, b) in &base {
        let Some((_, c)) = cand.iter().find(|(k, _)| k == key) else {
            continue;
        };
        if *b > 0.0 && c / b > 1.0 + threshold_pct / 100.0 {
            regressions.push(Regression {
                key: key.clone(),
                baseline: *b,
                candidate: *c,
                slowdown_pct: (c / b - 1.0) * 100.0,
            });
        }
    }
    regressions.sort_by(|a, b| b.slowdown_pct.partial_cmp(&a.slowdown_pct).unwrap());
    Ok(regressions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> Json {
        let cfg = GridConfig {
            n: 80,
            threads: vec![1, 2],
            trials: 1,
            seed: 7,
            smoke: true,
        };
        run_grid(&cfg, |_| {})
    }

    #[test]
    fn golden_schema_round_trips() {
        let doc = tiny_grid();
        let text = doc.pretty();
        let parsed = crate::json::parse(&text).expect("emitted BENCH json must parse");
        assert_eq!(parsed.get("schema_version").and_then(Json::as_u64), Some(1));
        assert_eq!(
            parsed.get("experiment").and_then(Json::as_str),
            Some("bcc-grid")
        );
        let entries = parsed.get("entries").and_then(Json::as_arr).unwrap();
        // families × algorithms × threads cells.
        assert_eq!(entries.len(), 3 * 4 * 2);
        let mut algs_seen = std::collections::BTreeSet::new();
        for e in entries {
            algs_seen.insert(e.get("algorithm").and_then(Json::as_str).unwrap());
            for field in [
                "seconds",
                "speedup_vs_sequential",
                "phase_runs",
                "barrier_episodes",
                "barrier_wait_seconds",
                "imbalance",
            ] {
                assert!(
                    e.get(field).and_then(Json::as_f64).is_some(),
                    "missing {field}"
                );
            }
            assert!(e.get("phases").and_then(Json::as_arr).is_some());
            assert!(e.get("imbalance").and_then(Json::as_f64).unwrap() >= 1.0);
        }
        let names: Vec<&str> = Algorithm::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(algs_seen.into_iter().collect::<Vec<_>>(), {
            let mut sorted = names.clone();
            sorted.sort();
            sorted
        });
        // Parallel entries carry per-phase breakdowns; the Sequential
        // baseline legitimately has none.
        let tv = entries
            .iter()
            .find(|e| e.get("algorithm").and_then(Json::as_str) == Some("TV-filter"))
            .unwrap();
        assert!(!tv.get("phases").and_then(Json::as_arr).unwrap().is_empty());
    }

    #[test]
    fn sequential_speedup_is_one_at_p1() {
        let doc = tiny_grid();
        let entries = doc.get("entries").and_then(Json::as_arr).unwrap();
        for e in entries {
            if e.get("algorithm").and_then(Json::as_str) == Some("Sequential")
                && e.get("threads").and_then(Json::as_u64) == Some(1)
            {
                let s = e
                    .get("speedup_vs_sequential")
                    .and_then(Json::as_f64)
                    .unwrap();
                assert!((s - 1.0).abs() < 1e-9, "got {s}");
            }
        }
    }

    #[test]
    fn compare_flags_injected_regression_and_only_it() {
        let base = tiny_grid();
        let mut slowed = base.clone();
        // Inject a 50% slowdown into exactly one entry.
        if let Json::Obj(fields) = &mut slowed {
            let entries = fields
                .iter_mut()
                .find(|(k, _)| k == "entries")
                .map(|(_, v)| v)
                .unwrap();
            if let Json::Arr(list) = entries {
                if let Json::Obj(entry) = &mut list[5] {
                    let secs = entry
                        .iter_mut()
                        .find(|(k, _)| k == "seconds")
                        .map(|(_, v)| v)
                        .unwrap();
                    let old = secs.as_f64().unwrap();
                    *secs = Json::num(old * 1.5 + 1.0);
                }
            }
        }
        assert_eq!(compare(&base, &base, 10.0).unwrap(), vec![]);
        let regs = compare(&base, &slowed, 25.0).unwrap();
        assert_eq!(regs.len(), 1, "exactly the injected cell: {regs:?}");
        assert!(regs[0].slowdown_pct > 25.0);
        // The reverse direction (speedup) is not a regression.
        assert_eq!(compare(&slowed, &base, 25.0).unwrap(), vec![]);
    }

    #[test]
    fn compare_rejects_malformed_and_mismatched_documents() {
        let good = tiny_grid();
        let junk = crate::json::parse("{\"entries\": [{}]}").unwrap();
        assert!(matches!(
            compare(&junk, &junk, 10.0),
            Err(CompareError::SchemaMismatch) | Err(CompareError::MalformedDocument(_))
        ));
        let mut other = good.clone();
        if let Json::Obj(fields) = &mut other {
            for (k, v) in fields.iter_mut() {
                if k == "schema_version" {
                    *v = Json::num(99.0);
                }
            }
        }
        assert_eq!(
            compare(&good, &other, 10.0),
            Err(CompareError::SchemaMismatch)
        );
    }

    #[test]
    fn thread_sweep_always_has_one_and_two() {
        assert_eq!(thread_sweep(1), vec![1, 2]);
        assert_eq!(thread_sweep(2), vec![1, 2]);
        assert_eq!(thread_sweep(8), vec![1, 2, 4, 8]);
        assert_eq!(thread_sweep(6), vec![1, 2, 4, 6]);
    }
}

//! The paper's experiment grid as a library: graph families ×
//! algorithms × thread counts × trials, reduced to a `BENCH_bcc.json`
//! document, plus the regression comparator behind `bcc-bench compare`.
//!
//! Keeping this in the library (rather than the binary) makes the
//! schema testable: the golden-schema test emits a grid, parses it
//! back, and checks every field the plotting and CI tooling relies on.

use crate::json::Json;
use crate::prims::{run_prims_cells, PrimsMode};
use bcc_connectivity::bfs::bfs_tree_seq;
use bcc_core::{Algorithm, BccConfig, BccWorkspace, PhaseReport, TraversalTuning};
use bcc_graph::{gen, Csr, Edge, Graph, GraphBuilder};
use bcc_query::{CommitStats, IndexStore};
use bcc_serve::{
    component_grid, run_net_workload, run_workload, Admission, Daemon, Mode, NetFrontend,
    NetWorkloadReport, Profile, ServeConfig, ShardedStore, WorkloadConfig, WorkloadReport, Writers,
};
use bcc_smp::{Pool, Telemetry};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Version stamp for the `BENCH_bcc.json` layout; bump on breaking
/// schema changes. `compare` reads any version listed in
/// [`COMPAT_SCHEMA_VERSIONS`].
///
/// v2 adds the `geo` family, the per-entry `tuning` spec and traversal
/// work counters (`sv_rounds_*`, `bfs_*`), and the per-family shape
/// summary (`families[].effective_diameter_90`). The workspace ablation
/// fields (`workspace`, `alloc_bytes`, `arena_hit_rate`, and the
/// `/ws-off` key suffix) are additive within v2: documents without them
/// stay comparable on the shared cells. The `store-multi` commit-latency
/// cells (`batch`, `batch_effective`, the [`CommitStats`] medians, and
/// the `/batch<k>` key suffix) are additive within v2 the same way.
/// So are the `serve` SLO cells (queries/s, latency/lag quantiles, the
/// `mode` field and its `/closed` / `/open` key suffix): their
/// `seconds` is the p99 query latency, the tail statement a serving
/// SLO is written against. The out-of-core ingestion fields are
/// additive within v2 the same way: algorithm cells gain
/// `peak_rss_bytes` (per-trial peak resident set, max over trials,
/// Linux only — omitted where the kernel does not expose it), and a
/// `--input` run replaces the generated families with a single `file`
/// family loaded from disk (text edge list or mapped `.bccsr`).
/// The `prims` kernel cells (see [`crate::prims`]) are additive within
/// v2 the same way: one entry per primitive kernel × thread count,
/// carrying `reps` (timed invocations per sample) and `simd` (the
/// dispatch tier the build selected — `avx2`, `sse2`, or `scalar`),
/// with the frozen pre-vectorization kernels riding along as
/// `-generic`/`-ref` algorithm series.
pub const SCHEMA_VERSION: u64 = 2;

/// Schema versions [`compare`] can still read (v1 documents predate the
/// tuning/diameter fields; their entries simply carry fewer keys).
pub const COMPAT_SCHEMA_VERSIONS: [u64; 2] = [1, 2];

/// Graph families the grid sweeps — the paper's three workload shapes
/// (random sparse graphs, regular meshes, the articulation-heavy chain
/// of cycles) plus a low-effective-diameter spatial network.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Family {
    /// `random_connected(n, 4n)` — the paper's random sparse inputs.
    RandomSparse,
    /// `geometric(n, deg ≈ 12, n long-range chords)` — a spatial
    /// network with enough random chords to give it a genuinely low
    /// effective diameter (small-world shape).
    Geo,
    /// `torus(k, k)` with `k = floor(sqrt(n))` — the mesh family.
    Torus,
    /// `cycle_chain(n/8, 8)` — many small blocks joined by bridges.
    CycleChain,
    /// A graph loaded from disk via [`bcc_graph::io::load`] (`--input`):
    /// a real dataset instead of the generated families. Not part of
    /// [`Family::ALL`]; it cannot be generated.
    File,
}

impl Family {
    /// Every family, in presentation order.
    pub const ALL: [Family; 4] = [
        Family::RandomSparse,
        Family::Geo,
        Family::Torus,
        Family::CycleChain,
    ];

    /// Name used in the JSON document.
    pub fn name(self) -> &'static str {
        match self {
            Family::RandomSparse => "random-sparse",
            Family::Geo => "geo",
            Family::Torus => "torus",
            Family::CycleChain => "cycle-chain",
            Family::File => "file",
        }
    }

    /// The instance of this family with roughly `n` vertices.
    pub fn generate(self, n: u32, seed: u64) -> Graph {
        match self {
            Family::RandomSparse => gen::random_connected(n, 4 * n as usize, seed),
            Family::Geo => gen::geometric(n, 12.0, (n as usize).max(4), seed),
            Family::Torus => {
                let k = (n as f64).sqrt().floor().max(3.0) as u32;
                gen::torus(k, k)
            }
            Family::CycleChain => gen::cycle_chain((n / 8).max(2), 8, seed),
            Family::File => unreachable!("the file family is loaded from --input, not generated"),
        }
    }
}

/// The allocation-ablation axis: which workspace regimes each parallel
/// cell runs under.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WorkspaceMode {
    /// One arena per cell, shared across every trial: from the second
    /// trial on, the pipeline runs in its zero-allocation steady state.
    /// This is the regime long-lived callers see and the default.
    On,
    /// A fresh transient arena per run: every trial pays the cold-start
    /// allocation cost.
    Off,
    /// Both regimes, as separate ablation series (`off` cells carry a
    /// `/ws-off` key suffix so `on` cells stay comparable with
    /// documents that predate the ablation).
    Both,
}

impl WorkspaceMode {
    /// The ablation points this mode expands to (`true` = shared arena).
    pub fn points(self) -> Vec<bool> {
        match self {
            WorkspaceMode::On => vec![true],
            WorkspaceMode::Off => vec![false],
            WorkspaceMode::Both => vec![true, false],
        }
    }

    /// Name used in the JSON document and on the CLI.
    pub fn name(self) -> &'static str {
        match self {
            WorkspaceMode::On => "on",
            WorkspaceMode::Off => "off",
            WorkspaceMode::Both => "both",
        }
    }
}

impl std::str::FromStr for WorkspaceMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "on" => Ok(WorkspaceMode::On),
            "off" => Ok(WorkspaceMode::Off),
            "both" => Ok(WorkspaceMode::Both),
            other => Err(format!("unknown workspace mode {other:?} (on|off|both)")),
        }
    }
}

/// Whether the grid runs the `serve` SLO cells — the `bcc-serve` daemon
/// driven closed- and open-loop over its workload profiles, reduced to
/// latency/lag quantile entries.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ServeMode {
    /// Skip the serve cells.
    Off,
    /// Run them after the algorithm grid (the default).
    On,
    /// Run *only* the serve cells — what the CI serve-smoke job uses,
    /// so its wall time is the daemon runs and nothing else.
    Only,
}

impl ServeMode {
    /// Name used in the JSON document and on the CLI.
    pub fn name(self) -> &'static str {
        match self {
            ServeMode::Off => "off",
            ServeMode::On => "on",
            ServeMode::Only => "only",
        }
    }
}

impl std::str::FromStr for ServeMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "off" => Ok(ServeMode::Off),
            "on" => Ok(ServeMode::On),
            "only" => Ok(ServeMode::Only),
            other => Err(format!("unknown serve mode {other:?} (on|off|only)")),
        }
    }
}

/// Grid parameters (what the `bcc-bench` CLI parses into).
#[derive(Clone, Debug)]
pub struct GridConfig {
    /// Target vertex count per family instance.
    pub n: u32,
    /// Thread counts to sweep (must contain 1 for speedup baselines).
    pub threads: Vec<usize>,
    /// Timed repetitions per cell; medians are reported.
    pub trials: usize,
    /// Workload seed.
    pub seed: u64,
    /// Marks the document as a smoke run (small sizes, CI-friendly).
    pub smoke: bool,
    /// Traversal ablation points: the parallel algorithms run once per
    /// tuning (the Sequential baseline ignores tunings and runs once).
    pub tunings: Vec<TraversalTuning>,
    /// Allocation-ablation axis: whether parallel cells share one arena
    /// across trials, allocate fresh per run, or run both series.
    pub workspace: WorkspaceMode,
    /// Whether to run the `store-multi` commit-latency cells: an
    /// [`IndexStore`] over a many-component instance, timing
    /// incremental (`Txn::commit`) against from-scratch
    /// (`Txn::commit_full`) commits across batch sizes.
    pub store: bool,
    /// Whether (and how) to run the `serve` SLO cells: the `bcc-serve`
    /// daemon under its workload profiles, swept over reader counts.
    pub serve: ServeMode,
    /// Whether (and how) to run the `prims` kernel cells: the
    /// vectorized primitives against their frozen scalar references
    /// (see [`crate::prims`]).
    pub prims: PrimsMode,
    /// When set, the algorithm grid runs on this one on-disk graph
    /// (text edge list or `.bccsr`, sniffed by [`bcc_graph::io::load`])
    /// as the single `file` family instead of the generated families.
    /// The store/serve cells still use their generated instances.
    pub input: Option<PathBuf>,
}

impl GridConfig {
    /// The default full-size grid for `max_threads` threads.
    ///
    /// 50k vertices puts the per-vertex arrays past L2 so the
    /// traversal ablation measures the memory system, not the cache.
    pub fn full(max_threads: usize) -> GridConfig {
        GridConfig {
            n: 50_000,
            threads: thread_sweep(max_threads),
            trials: 3,
            seed: 42,
            smoke: false,
            tunings: vec![TraversalTuning::fast()],
            workspace: WorkspaceMode::On,
            store: true,
            serve: ServeMode::On,
            prims: PrimsMode::On,
            input: None,
        }
    }

    /// A CI-sized grid: seconds, not minutes, on one core.
    pub fn smoke(max_threads: usize) -> GridConfig {
        GridConfig {
            n: 600,
            threads: thread_sweep(max_threads),
            trials: 2,
            seed: 42,
            smoke: true,
            tunings: vec![TraversalTuning::fast()],
            workspace: WorkspaceMode::On,
            store: true,
            serve: ServeMode::On,
            prims: PrimsMode::On,
            input: None,
        }
    }
}

/// 1, 2, 4, ... up to and always including `max` (and always at least
/// {1, 2}, so speedup columns exist even on one-core machines).
pub fn thread_sweep(max: usize) -> Vec<usize> {
    let max = max.max(2);
    let mut ps = vec![];
    let mut p = 1;
    while p < max {
        ps.push(p);
        p *= 2;
    }
    ps.push(max);
    ps.dedup();
    ps
}

pub(crate) fn median_f64(mut xs: Vec<f64>) -> f64 {
    assert!(!xs.is_empty());
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[(xs.len() - 1) / 2]
}

/// Field-wise medians over one cell's trial reports, flattened to the
/// JSON entry layout. Shared with the xl tier ([`crate::xl`]), which
/// names its families after the streamed inputs rather than [`Family`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn cell_json(
    family: &str,
    g: &Graph,
    threads: usize,
    reports: &[PhaseReport],
    seq_baseline: f64,
    tuning: Option<&TraversalTuning>,
    workspace: Option<bool>,
    peak_rss: Option<u64>,
) -> Json {
    let med = |f: &dyn Fn(&PhaseReport) -> f64| median_f64(reports.iter().map(f).collect());
    let seconds = med(&|r| r.total.as_secs_f64());
    // Per-phase medians, keyed by step name in first-seen order.
    let mut phase_names: Vec<&'static str> = vec![];
    for r in reports {
        for s in &r.steps {
            if !phase_names.contains(&s.name()) {
                phase_names.push(s.name());
            }
        }
    }
    let phases: Vec<Json> = phase_names
        .iter()
        .map(|&name| {
            let samples: Vec<f64> = reports
                .iter()
                .map(|r| {
                    r.steps
                        .iter()
                        .find(|s| s.name() == name)
                        .map_or(0.0, |s| s.duration.as_secs_f64())
                })
                .collect();
            Json::Arr(vec![Json::str(name), Json::num(median_f64(samples))])
        })
        .collect();
    let mut fields = vec![
        ("family", Json::str(family)),
        ("algorithm", Json::str(reports[0].algorithm)),
        ("n", Json::num(g.n())),
        ("m", Json::num(g.m() as f64)),
        ("threads", Json::num(threads as f64)),
        ("seconds", Json::num(seconds)),
        // Minimum across trials: the regression gate's metric. Host
        // noise (scheduler bursts, oversubscription) only ever adds
        // time, so the min converges to the true cost long before the
        // median settles on a shared CI runner.
        (
            "seconds_min",
            Json::num(
                reports
                    .iter()
                    .map(|r| r.total.as_secs_f64())
                    .fold(f64::INFINITY, f64::min),
            ),
        ),
        (
            "speedup_vs_sequential",
            Json::num(if seconds > 0.0 {
                seq_baseline / seconds
            } else {
                0.0
            }),
        ),
        ("phases", Json::Arr(phases)),
        ("phase_runs", Json::num(med(&|r| r.phase_runs as f64))),
        (
            "barrier_episodes",
            Json::num(med(&|r| r.barrier_episodes as f64)),
        ),
        (
            "barrier_wait_seconds",
            Json::num(med(&|r| r.barrier_wait.as_secs_f64())),
        ),
        ("imbalance", Json::num(med(&|r| r.imbalance))),
        // Allocation telemetry: bytes the run's arena had to freshly
        // allocate (0 once warm) and the arena's hit rate. Medians, so
        // a shared-arena cell with ≥2 trials reports its steady state.
        ("alloc_bytes", Json::num(med(&|r| r.alloc_bytes as f64))),
        ("arena_hit_rate", Json::num(med(&|r| r.arena_hit_rate))),
    ];
    if let Some(on) = workspace {
        fields.push(("workspace", Json::str(if on { "on" } else { "off" })));
    }
    // Space telemetry for the out-of-core ingestion work: the run's
    // peak resident set (max over trials — a high-water metric), from
    // the kernel watermark reset before each trial. Omitted where the
    // platform does not expose it.
    if let Some(peak) = peak_rss {
        fields.push(("peak_rss_bytes", Json::num(peak as f64)));
    }
    if let Some(t) = tuning {
        // Work counters are deterministic per (graph, tuning) except SV
        // rounds under races; take the last trial (all trials agree in
        // practice, and the last is past any warm-up).
        let stats = &reports[reports.len() - 1].stats;
        fields.push(("tuning", Json::str(t.spec())));
        fields.push(("sv_rounds_spanning", Json::num(stats.sv_rounds_spanning)));
        fields.push(("sv_rounds_cc", Json::num(stats.sv_rounds_cc)));
        fields.push(("bfs_levels", Json::num(stats.bfs_levels)));
        fields.push((
            "bfs_bottom_up_levels",
            Json::num(stats.bfs_bottom_up_levels),
        ));
        // One char per BFS level; a pathological-diameter input would
        // otherwise dump megabytes of 'T's into the document, so cap it
        // (the level count is always exact in `bfs_levels`).
        let mut dirs = stats.bfs_directions.clone();
        if dirs.len() > 96 {
            dirs.truncate(96);
            dirs.push('+');
        }
        fields.push(("bfs_directions", Json::str(dirs)));
    }
    Json::obj(fields)
}

/// Shape summary for one family instance: the 90th-percentile effective
/// diameter (smallest BFS depth from vertex 0 reaching 90% of the
/// reachable vertices), the statistic the direction-optimizing
/// heuristic's payoff depends on.
fn family_json(family: Family, g: &Graph) -> Json {
    let csr = Csr::build(g);
    let tree = bfs_tree_seq(&csr, 0);
    Json::obj(vec![
        ("family", Json::str(family.name())),
        ("n", Json::num(g.n())),
        ("m", Json::num(g.m() as f64)),
        ("bfs_levels", Json::num(tree.levels)),
        (
            "effective_diameter_90",
            Json::num(tree.effective_diameter(0.9)),
        ),
    ])
}

/// Connected components in the store-commit benchmark instance. With
/// batches confined to one of them, an incremental commit's rebuild
/// region is `1/STORE_PARTS` of the graph — the locality the
/// component-scoped commit is supposed to monetize.
pub const STORE_PARTS: u32 = 16;

/// Batch sizes the store-commit cells sweep: a point update, a burst,
/// and a bulk load.
pub const STORE_BATCHES: [usize; 3] = [1, 64, 4096];

/// Splitmix-flavored LCG for shaping deterministic update batches.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// The store-commit instance: [`STORE_PARTS`] disjoint random connected
/// components of ~`n / STORE_PARTS` vertices each, laid out on
/// contiguous vertex ranges. Kept sparse enough (half the complete
/// graph at tiny sizes) that the first component always has absent
/// chords left to insert.
fn store_family_graph(n: u32, seed: u64) -> Graph {
    let part_n = (n / STORE_PARTS).max(8);
    let part_m = (3 * part_n as usize)
        .min(gen::max_edges(part_n) / 2)
        .max(part_n as usize);
    let mut edges = Vec::with_capacity(STORE_PARTS as usize * part_m);
    for p in 0..STORE_PARTS {
        let off = p * part_n;
        let sub = gen::random_connected(part_n, part_m, seed.wrapping_add(p as u64));
        edges.extend(sub.edges().iter().map(|e| Edge::new(e.u + off, e.v + off)));
    }
    GraphBuilder::new(part_n * STORE_PARTS)
        .edges(edges)
        .build()
        .unwrap()
}

/// Picks up to `want` distinct vertex pairs inside the first component
/// (ids `< part_n`) that are *not* edges of `g`. Returns fewer when the
/// component runs out of absent chords (tiny smoke instances under the
/// 4096 batch).
fn absent_chords(g: &Graph, part_n: u32, want: usize, state: &mut u64) -> Vec<(u32, u32)> {
    let mut present: std::collections::BTreeSet<u64> = g.edges().iter().map(|e| e.key()).collect();
    let mut out = Vec::with_capacity(want.min(1024));
    let mut attempts = 0usize;
    let cap = want * 20 + 1000;
    while out.len() < want && attempts < cap {
        attempts += 1;
        let u = (lcg(state) % u64::from(part_n)) as u32;
        let v = (lcg(state) % u64::from(part_n)) as u32;
        if u != v && present.insert(Edge::new(u, v).key()) {
            out.push((u, v));
        }
    }
    out
}

/// Runs the `store-multi` commit-latency cells: one [`IndexStore`] per
/// (threads × batch × mode) cell over the same many-component instance.
/// Each trial inserts a batch of absent chords confined to the first
/// component, times the commit (incremental or full), and reverts
/// untimed so every round commits against the same steady-state graph.
/// Returns the family summary and the entry list.
fn run_store_cells(
    cfg: &GridConfig,
    pools: &[Pool],
    progress: &mut impl FnMut(&str),
) -> (Json, Vec<Json>) {
    let trials = cfg.trials.max(1);
    let g = store_family_graph(cfg.n, cfg.seed);
    let part_n = (cfg.n / STORE_PARTS).max(8);

    struct StoreCell {
        pool: usize,
        batch: usize,
        full: bool,
        store: IndexStore,
        state: u64,
        secs: Vec<f64>,
        effective: Vec<usize>,
        stats: Vec<CommitStats>,
    }
    let mut cells: Vec<StoreCell> = vec![];
    for (pool, pool_ref) in pools.iter().enumerate() {
        for &batch in &STORE_BATCHES {
            for full in [false, true] {
                cells.push(StoreCell {
                    pool,
                    batch,
                    full,
                    store: IndexStore::new(pool_ref.clone(), g.clone())
                        .expect("store family instance indexes"),
                    state: cfg.seed ^ (((pool as u64) << 32) | ((batch as u64) << 1) | full as u64),
                    secs: Vec::with_capacity(trials),
                    effective: Vec::with_capacity(trials),
                    stats: Vec::with_capacity(trials),
                });
            }
        }
    }

    // Trial-major for the same reason as the main grid: spread each
    // cell's samples past any single host-scheduler burst.
    for round in 0..trials {
        for cell in &mut cells {
            let before = cell.store.load();
            let chords = absent_chords(&before.graph, part_n, cell.batch, &mut cell.state);
            let mut txn = cell.store.begin();
            for &(u, v) in &chords {
                txn.insert(u, v);
            }
            let t = Instant::now();
            let snap = if cell.full {
                txn.commit_full()
            } else {
                txn.commit()
            }
            .expect("store commit");
            cell.secs.push(t.elapsed().as_secs_f64());
            cell.effective.push(chords.len());
            cell.stats.push(snap.stats);
            let mut txn = cell.store.begin();
            for &(u, v) in &chords {
                txn.remove(u, v);
            }
            txn.commit().expect("store revert");
        }
        progress(&format!(
            "store trial round {}/{trials} complete",
            round + 1
        ));
    }

    let mut entries = Vec::with_capacity(cells.len());
    for cell in &cells {
        let p = cfg.threads[cell.pool];
        let algorithm = if cell.full {
            "commit-full"
        } else {
            "commit-incremental"
        };
        let seconds = median_f64(cell.secs.clone());
        let med = |f: &dyn Fn(&CommitStats) -> f64| median_f64(cell.stats.iter().map(f).collect());
        entries.push(Json::obj(vec![
            ("family", Json::str("store-multi")),
            ("algorithm", Json::str(algorithm)),
            ("n", Json::num(g.n())),
            ("m", Json::num(g.m() as f64)),
            ("threads", Json::num(p as f64)),
            // Nominal batch size (the entry-key axis) and the median
            // batch actually committed (smaller only when a tiny smoke
            // component runs out of absent chords).
            ("batch", Json::num(cell.batch as f64)),
            (
                "batch_effective",
                Json::num(median_f64(
                    cell.effective.iter().map(|&b| b as f64).collect(),
                )),
            ),
            ("seconds", Json::num(seconds)),
            (
                "seconds_min",
                Json::num(cell.secs.iter().copied().fold(f64::INFINITY, f64::min)),
            ),
            // CommitStats medians: how much of the index each commit
            // actually rebuilt.
            (
                "components_rebuilt",
                Json::num(med(&|s| f64::from(s.components_rebuilt))),
            ),
            (
                "components_reused",
                Json::num(med(&|s| f64::from(s.components_reused))),
            ),
            (
                "vertices_rebuilt",
                Json::num(med(&|s| f64::from(s.vertices_rebuilt))),
            ),
            ("edges_rebuilt", Json::num(med(&|s| s.edges_rebuilt as f64))),
            ("reused_fraction", Json::num(med(&|s| s.reused_fraction))),
        ]));
        progress(&format!(
            "{:>13} {:>10} p={p} batch={}: {:>9.3?} ({} trials)",
            "store-multi",
            algorithm,
            cell.batch,
            Duration::from_secs_f64(seconds),
            trials,
        ));
    }

    let family = Json::obj(vec![
        ("family", Json::str("store-multi")),
        ("n", Json::num(g.n())),
        ("m", Json::num(g.m() as f64)),
        ("components", Json::num(f64::from(STORE_PARTS))),
    ]);
    (family, entries)
}

/// Components in the serve-cell instance (each a contiguous ring plus
/// random chords; see [`component_grid`]).
pub const SERVE_PARTS: u32 = 8;

/// Shards the serve cells split the store across.
pub const SERVE_SHARDS: usize = 4;

/// One serve-cell scenario: drive profile and mode, plus the
/// writer-topology and admission-control knobs the ablation cells
/// flip. `shed` cells run a deliberately oversubscribed update stream
/// against tight watermarks, measuring the read tail *while* admission
/// control sheds (the SLO claim: rejections, not latency collapse).
#[derive(Copy, Clone)]
struct ServeScenario {
    profile: Profile,
    mode: Mode,
    writers: Writers,
    shed: bool,
}

/// The scenarios each reader count runs: the read-heavy profile under
/// both drive modes, then the churn-heavy and adversarial hot-component
/// profiles open-loop — the mode where queueing behind commits shows up
/// as tail latency instead of silently reducing the offered load.
/// Riding along: the churn-heavy cell with the writer pool collapsed
/// to one thread (the `writers=1` ablation the per-shard commit path
/// is justified against) and the overload cell with admission
/// watermarks armed.
fn serve_scenarios(rate: f64) -> [ServeScenario; 6] {
    let cell = |profile, mode, writers, shed| ServeScenario {
        profile,
        mode,
        writers,
        shed,
    };
    [
        cell(Profile::ReadHeavy, Mode::Closed, Writers::PerShard, false),
        cell(
            Profile::ReadHeavy,
            Mode::Open { rate },
            Writers::PerShard,
            false,
        ),
        cell(
            Profile::ChurnHeavy,
            Mode::Open { rate },
            Writers::PerShard,
            false,
        ),
        cell(
            Profile::HotComponent,
            Mode::Open { rate },
            Writers::PerShard,
            false,
        ),
        // Writer-topology ablation: same churn, one writer thread.
        cell(
            Profile::ChurnHeavy,
            Mode::Open { rate },
            Writers::Single,
            false,
        ),
        // Overload: an update storm (10/90 mix) at 4x the arrival rate
        // against armed admission watermarks — sheds must be nonzero
        // and reads must survive.
        cell(
            Profile::UpdateStorm,
            Mode::Open { rate: rate * 4.0 },
            Writers::PerShard,
            true,
        ),
    ]
}

/// Watermarks the overload (`shed`) cells arm. The backlog watermark
/// sits below what one writer flush window accumulates under the
/// storm's update arrival rate, so admission control demonstrably
/// engages inside even the smoke grid's 120ms window; the queue-depth
/// watermark keeps sheds typed (`Overloaded`) instead of degrading to
/// `QueueFull` when commits stall outright.
const SHED_ADMISSION: Admission = Admission {
    shed_queue_depth: Some(512),
    shed_backlog: Some(48),
};

/// Runs the `serve` SLO cells: one [`ShardedStore`] per (readers ×
/// scenario) cell — reused across trials, so churn runs against a warm,
/// steady-state store — each trial spawning a fresh [`Daemon`] and
/// driving it with [`run_workload`]. The gate metric (`seconds`) is the
/// p99 query latency; throughput and snapshot-lag quantiles ride along.
fn run_serve_cells(cfg: &GridConfig, progress: &mut impl FnMut(&str)) -> (Json, Vec<Json>) {
    let trials = cfg.trials.max(1);
    // Arrival rate and measurement window, sized so the smoke grid
    // stays CI-friendly while the full grid queues for real.
    let (rate, duration) = if cfg.smoke {
        (20_000.0, Duration::from_millis(120))
    } else {
        (100_000.0, Duration::from_millis(400))
    };
    let n = cfg.n.max(3 * SERVE_PARTS);
    let g = component_grid(n, SERVE_PARTS, cfg.seed);

    struct ServeCell {
        pool: usize,
        scenario: ServeScenario,
        store: Arc<ShardedStore>,
        reports: Vec<WorkloadReport>,
    }
    let mut cells: Vec<ServeCell> = vec![];
    for pool in 0..cfg.threads.len() {
        let p = cfg.threads[pool];
        for scenario in serve_scenarios(rate) {
            cells.push(ServeCell {
                pool,
                scenario,
                store: Arc::new(
                    ShardedStore::new(&Pool::new(p), &g, SERVE_SHARDS)
                        .expect("serve instance shards"),
                ),
                reports: Vec::with_capacity(trials),
            });
        }
    }

    // Trial-major, like the rest of the grid: spread each cell's
    // samples past any single host-scheduler burst.
    for round in 0..trials {
        for cell in &mut cells {
            let sc = cell.scenario;
            let daemon = Daemon::spawn(
                Arc::clone(&cell.store),
                ServeConfig::builder()
                    .readers(cfg.threads[cell.pool])
                    .flush_interval(Duration::from_millis(1))
                    .writers(sc.writers)
                    .admission(if sc.shed {
                        SHED_ADMISSION
                    } else {
                        Admission::default()
                    })
                    .build(),
            );
            let report = run_workload(
                daemon,
                &WorkloadConfig {
                    profile: sc.profile,
                    mode: sc.mode,
                    duration,
                    parts: SERVE_PARTS,
                    seed: cfg.seed,
                },
            );
            if let Some(e) = &report.serve.writer_error {
                panic!(
                    "serve writer failed ({} / {} p={}): {e}",
                    sc.profile.name(),
                    sc.mode.name(),
                    cfg.threads[cell.pool]
                );
            }
            cell.reports.push(report);
        }
        progress(&format!(
            "serve trial round {}/{trials} complete",
            round + 1
        ));
    }

    const NS: f64 = 1e-9;
    let mut entries = Vec::with_capacity(cells.len());
    for cell in &cells {
        let p = cfg.threads[cell.pool];
        let sc = cell.scenario;
        let med =
            |f: &dyn Fn(&WorkloadReport) -> f64| median_f64(cell.reports.iter().map(f).collect());
        let p99s: Vec<f64> = cell
            .reports
            .iter()
            .map(|r| r.serve.latency.quantile(0.99) as f64 * NS)
            .collect();
        let seconds = median_f64(p99s.clone());
        let mut fields = vec![
            ("family", Json::str("serve")),
            ("algorithm", Json::str(sc.profile.name())),
            ("n", Json::num(g.n())),
            ("m", Json::num(g.m() as f64)),
            ("threads", Json::num(p as f64)),
            ("mode", Json::str(sc.mode.name())),
            (
                "rate",
                Json::num(match sc.mode {
                    Mode::Open { rate } => rate,
                    Mode::Closed => 0.0,
                }),
            ),
            // Writer topology and admission policy: part of the cell's
            // identity (they land in the entry key) so the writers=1
            // ablation and the overload cell gate against themselves.
            ("writers", Json::str(sc.writers.name())),
            (
                "admission",
                Json::str(if sc.shed { "shed" } else { "open" }),
            ),
            // The gate metric: p99 query latency, median over trials
            // (and its min, which the comparator prefers).
            ("seconds", Json::num(seconds)),
            (
                "seconds_min",
                Json::num(p99s.iter().copied().fold(f64::INFINITY, f64::min)),
            ),
            ("queries_per_sec", Json::num(med(&|r| r.queries_per_sec()))),
            ("answered", Json::num(med(&|r| r.serve.answered as f64))),
            (
                "latency_p50_seconds",
                Json::num(med(&|r| r.serve.latency.quantile(0.50) as f64 * NS)),
            ),
            (
                "latency_p999_seconds",
                Json::num(med(&|r| r.serve.latency.quantile(0.999) as f64 * NS)),
            ),
            (
                "latency_max_seconds",
                Json::num(med(&|r| r.serve.latency.max() as f64 * NS)),
            ),
            (
                "lag_commits_p50",
                Json::num(med(&|r| r.serve.lag_commits.quantile(0.50) as f64)),
            ),
            (
                "lag_commits_p99",
                Json::num(med(&|r| r.serve.lag_commits.quantile(0.99) as f64)),
            ),
            (
                "lag_commits_max",
                Json::num(med(&|r| r.serve.lag_commits.max() as f64)),
            ),
            (
                "lag_wall_p99_seconds",
                Json::num(med(&|r| r.serve.lag_wall.quantile(0.99) as f64 * NS)),
            ),
            (
                "updates_applied",
                Json::num(med(&|r| r.serve.updates_applied as f64)),
            ),
            ("commits", Json::num(med(&|r| r.serve.commits as f64))),
            ("migrations", Json::num(med(&|r| r.serve.migrations as f64))),
            // v2-additive: writer topology, shed accounting, and the
            // commit tail the per-shard writers are justified by.
            (
                "writer_threads",
                Json::num(med(&|r| r.serve.writer_threads as f64)),
            ),
            (
                "shed_count",
                Json::num(med(&|r| r.serve.shed_updates as f64)),
            ),
            (
                "commit_p50_seconds",
                Json::num(med(&|r| r.serve.commit_latency.quantile(0.50) as f64 * NS)),
            ),
            (
                "commit_p99_seconds",
                Json::num(med(&|r| r.serve.commit_latency.quantile(0.99) as f64 * NS)),
            ),
        ];
        // Per-shard commit-latency p99s, keyed by the shard committed
        // to (w1 cells feed all four from one thread; per-shard cells
        // from one thread each) — where the writers=1 vs per-shard
        // commit-tail gap is read from.
        let shard_p99s: Vec<(String, Json)> = (0..SERVE_SHARDS)
            .map(|s| {
                (
                    format!("commit_p99_seconds_shard{s}"),
                    Json::num(med(&|r| {
                        r.serve
                            .shard_commit_latency
                            .get(s)
                            .map_or(0.0, |h| h.quantile(0.99) as f64 * NS)
                    })),
                )
            })
            .collect();
        for (k, v) in &shard_p99s {
            fields.push((k.as_str(), v.clone()));
        }
        entries.push(Json::obj(fields));
        progress(&format!(
            "{:>13} {:>13} p={p} [{} {} {}]: p99 {:>9.3?}, {:.0} q/s, shed {:.0} ({} trials)",
            "serve",
            sc.profile.name(),
            sc.mode.name(),
            sc.writers.name(),
            if sc.shed { "shed" } else { "open" },
            Duration::from_secs_f64(seconds),
            med(&|r| r.queries_per_sec()),
            med(&|r| r.serve.shed_updates as f64),
            trials,
        ));
    }

    let family = Json::obj(vec![
        ("family", Json::str("serve")),
        ("n", Json::num(g.n())),
        ("m", Json::num(g.m() as f64)),
        ("components", Json::num(f64::from(SERVE_PARTS))),
        ("shards", Json::num(SERVE_SHARDS as f64)),
        ("duration_seconds", Json::num(duration.as_secs_f64())),
        ("open_rate", Json::num(rate)),
    ]);
    (family, entries)
}

/// The scenarios the loopback-TCP cells run: the read-heavy SLO path
/// over a real socket, and the update-storm overload cell proving the
/// daemon sheds with typed `Rejected(Overloaded)` frames on the wire
/// (not just in-process) while reads keep flowing. The storm's
/// multiplier is higher than the in-process cell's because one client
/// connection sends serially — the wire rate must still outrun the
/// backlog watermark.
fn serve_net_scenarios(rate: f64) -> [ServeScenario; 2] {
    [
        ServeScenario {
            profile: Profile::ReadHeavy,
            mode: Mode::Open { rate },
            writers: Writers::PerShard,
            shed: false,
        },
        ServeScenario {
            profile: Profile::UpdateStorm,
            mode: Mode::Open { rate: rate * 16.0 },
            writers: Writers::PerShard,
            shed: true,
        },
    ]
}

/// Runs the `serve-net` cells: the same open-loop drivers as
/// [`run_serve_cells`], but over a real loopback TCP socket through
/// [`NetFrontend`] — one connection, length-prefixed frames, responses
/// matched by request id. The gate metric (`seconds`) is the round-trip
/// p99 (scheduled arrival to response on the client), so it prices the
/// codec and the socket alongside the daemon.
fn run_serve_net_cells(cfg: &GridConfig, progress: &mut impl FnMut(&str)) -> (Json, Vec<Json>) {
    let trials = cfg.trials.max(1);
    // Loopback round-trips are ~10x a queue hop, so drive at a rate the
    // single client connection can sustain without self-queueing.
    let (rate, duration) = if cfg.smoke {
        (5_000.0, Duration::from_millis(120))
    } else {
        (20_000.0, Duration::from_millis(400))
    };
    let n = cfg.n.max(3 * SERVE_PARTS);
    let g = component_grid(n, SERVE_PARTS, cfg.seed);

    struct NetCell {
        pool: usize,
        scenario: ServeScenario,
        store: Arc<ShardedStore>,
        reports: Vec<NetWorkloadReport>,
    }
    let mut cells: Vec<NetCell> = vec![];
    for pool in 0..cfg.threads.len() {
        let p = cfg.threads[pool];
        for scenario in serve_net_scenarios(rate) {
            cells.push(NetCell {
                pool,
                scenario,
                store: Arc::new(
                    ShardedStore::new(&Pool::new(p), &g, SERVE_SHARDS)
                        .expect("serve-net instance shards"),
                ),
                reports: Vec::with_capacity(trials),
            });
        }
    }

    for round in 0..trials {
        for cell in &mut cells {
            let sc = cell.scenario;
            let daemon = Daemon::spawn(
                Arc::clone(&cell.store),
                ServeConfig::builder()
                    .readers(cfg.threads[cell.pool])
                    .flush_interval(Duration::from_millis(1))
                    .writers(sc.writers)
                    .admission(if sc.shed {
                        SHED_ADMISSION
                    } else {
                        Admission::default()
                    })
                    .build(),
            );
            let frontend = NetFrontend::spawn(daemon, "127.0.0.1:0").expect("loopback listener");
            let addr = frontend.local_addr();
            let report = run_net_workload(
                addr,
                &WorkloadConfig {
                    profile: sc.profile,
                    mode: sc.mode,
                    duration,
                    parts: SERVE_PARTS,
                    seed: cfg.seed,
                },
                g.n(),
            )
            .expect("loopback workload");
            let serve = frontend.shutdown();
            if let Some(e) = &serve.writer_error {
                panic!(
                    "serve-net writer failed ({} / {} p={}): {e}",
                    sc.profile.name(),
                    sc.mode.name(),
                    cfg.threads[cell.pool]
                );
            }
            cell.reports.push(report);
        }
        progress(&format!(
            "serve-net trial round {}/{trials} complete",
            round + 1
        ));
    }

    const NS: f64 = 1e-9;
    let mut entries = Vec::with_capacity(cells.len());
    for cell in &cells {
        let p = cfg.threads[cell.pool];
        let sc = cell.scenario;
        let med = |f: &dyn Fn(&NetWorkloadReport) -> f64| {
            median_f64(cell.reports.iter().map(f).collect())
        };
        let p99s: Vec<f64> = cell
            .reports
            .iter()
            .map(|r| r.latency.quantile(0.99) as f64 * NS)
            .collect();
        let seconds = median_f64(p99s.clone());
        entries.push(Json::obj(vec![
            ("family", Json::str("serve-net")),
            ("algorithm", Json::str(sc.profile.name())),
            ("n", Json::num(g.n())),
            ("m", Json::num(g.m() as f64)),
            ("threads", Json::num(p as f64)),
            ("mode", Json::str(sc.mode.name())),
            (
                "rate",
                Json::num(match sc.mode {
                    Mode::Open { rate } => rate,
                    Mode::Closed => 0.0,
                }),
            ),
            ("writers", Json::str(sc.writers.name())),
            (
                "admission",
                Json::str(if sc.shed { "shed" } else { "open" }),
            ),
            // The gate metric: round-trip p99 over the socket.
            ("seconds", Json::num(seconds)),
            (
                "seconds_min",
                Json::num(p99s.iter().copied().fold(f64::INFINITY, f64::min)),
            ),
            (
                "responses_per_sec",
                Json::num(med(&|r| r.responses_per_sec())),
            ),
            ("answered", Json::num(med(&|r| r.answered as f64))),
            ("accepted", Json::num(med(&|r| r.accepted as f64))),
            ("shed_count", Json::num(med(&|r| r.shed as f64))),
            (
                "rejected_other",
                Json::num(med(&|r| r.rejected_other as f64)),
            ),
            (
                "latency_p50_seconds",
                Json::num(med(&|r| r.latency.quantile(0.50) as f64 * NS)),
            ),
            (
                "latency_p999_seconds",
                Json::num(med(&|r| r.latency.quantile(0.999) as f64 * NS)),
            ),
            (
                "latency_max_seconds",
                Json::num(med(&|r| r.latency.max() as f64 * NS)),
            ),
        ]));
        progress(&format!(
            "{:>13} {:>13} p={p} [{} {}]: rt p99 {:>9.3?}, {:.0} resp/s, shed {:.0} ({} trials)",
            "serve-net",
            sc.profile.name(),
            sc.mode.name(),
            if sc.shed { "shed" } else { "open" },
            Duration::from_secs_f64(seconds),
            med(&|r| r.responses_per_sec()),
            med(&|r| r.shed as f64),
            trials,
        ));
    }

    let family = Json::obj(vec![
        ("family", Json::str("serve-net")),
        ("n", Json::num(g.n())),
        ("m", Json::num(g.m() as f64)),
        ("components", Json::num(f64::from(SERVE_PARTS))),
        ("shards", Json::num(SERVE_SHARDS as f64)),
        ("duration_seconds", Json::num(duration.as_secs_f64())),
        ("open_rate", Json::num(rate)),
        ("transport", Json::str("tcp-loopback")),
    ]);
    (family, entries)
}

/// Runs the full grid and returns the `BENCH_bcc.json` document.
/// `progress` receives one line per trial round and per finished cell
/// (pass `|_| {}` to silence it).
///
/// Trials run **trial-major** (round-robin over every cell, repeated
/// `trials` times) rather than back-to-back per cell: a host-scheduler
/// burst lasts far longer than one cell's handful of consecutive
/// trials, so per-cell batching lets a burst poison *all* of a cell's
/// samples at once. Spreading each cell's trials across the whole run
/// lets the min-of-trials gate metric escape any single burst.
pub fn run_grid(cfg: &GridConfig, mut progress: impl FnMut(&str)) -> Json {
    assert!(cfg.threads.contains(&1), "thread sweep must include 1");
    assert!(!cfg.tunings.is_empty(), "at least one tuning is required");
    let mut families: Vec<Json> = vec![];
    let mut entries: Vec<Json> = vec![];
    // The `only` modes are exclusive smoke shortcuts: `--serve only`
    // runs just the daemon cells, `--prims only` just the kernel cells.
    let serve_only = cfg.serve == ServeMode::Only;
    let prims_only = cfg.prims == PrimsMode::Only;
    if !serve_only && !prims_only {
        let (f, e) = run_algorithm_cells(cfg, &mut progress);
        families.extend(f);
        entries.extend(e);
    }
    if cfg.serve != ServeMode::Off && !prims_only {
        let (fam, mut serve_entries) = run_serve_cells(cfg, &mut progress);
        families.push(fam);
        entries.append(&mut serve_entries);
        let (fam, mut net_entries) = run_serve_net_cells(cfg, &mut progress);
        families.push(fam);
        entries.append(&mut net_entries);
    }
    if cfg.prims != PrimsMode::Off && !serve_only {
        let (fam, mut prims_entries) = run_prims_cells(cfg, &mut progress);
        families.push(fam);
        entries.append(&mut prims_entries);
    }
    Json::obj(vec![
        ("schema_version", Json::num(SCHEMA_VERSION as f64)),
        ("experiment", Json::str("bcc-grid")),
        ("smoke", Json::Bool(cfg.smoke)),
        ("n", Json::num(cfg.n)),
        (
            "threads",
            Json::Arr(cfg.threads.iter().map(|&p| Json::num(p as f64)).collect()),
        ),
        ("trials", Json::num(cfg.trials.max(1) as f64)),
        ("seed", Json::num(cfg.seed as f64)),
        (
            "tunings",
            Json::Arr(cfg.tunings.iter().map(|t| Json::str(t.spec())).collect()),
        ),
        ("workspace", Json::str(cfg.workspace.name())),
        ("store", Json::Bool(cfg.store)),
        ("serve", Json::str(cfg.serve.name())),
        ("prims", Json::str(cfg.prims.name())),
        ("families", Json::Arr(families)),
        ("entries", Json::Arr(entries)),
    ])
}

/// The algorithm grid proper (families × algorithms × threads ×
/// ablation points) plus the `store-multi` cells, as (family summaries,
/// entries).
fn run_algorithm_cells(
    cfg: &GridConfig,
    progress: &mut impl FnMut(&str),
) -> (Vec<Json>, Vec<Json>) {
    let trials = cfg.trials.max(1);

    // Instances and pools are built once; every trial round reuses
    // them. PhaseRecorder reads telemetry *deltas*, so sharing a pool
    // (and its sink) across cells is safe.
    let graphs: Vec<(Family, Graph)> = match &cfg.input {
        Some(path) => {
            let g = bcc_graph::io::load(path)
                .unwrap_or_else(|e| panic!("loading {}: {e}", path.display()));
            vec![(Family::File, g)]
        }
        None => Family::ALL
            .into_iter()
            .map(|f| {
                let g = f.generate(cfg.n, cfg.seed);
                (f, g)
            })
            .collect(),
    };
    let pools: Vec<Pool> = cfg
        .threads
        .iter()
        .map(|&p| {
            Pool::builder()
                .threads(p)
                .telemetry(Arc::new(Telemetry::new(p)))
                .build()
        })
        .collect();

    // Cell order matches the reducer's expectations below: family-major
    // (Sequential at p = 1 leads each family, providing the speedup
    // denominator), then threads, algorithm, ablation point. Tarjan's
    // DFS has no traversal knobs: one cell; the parallel pipelines get
    // one cell per tuning.
    struct Cell {
        fam: usize,
        pool: usize,
        alg: Algorithm,
        tuning: Option<TraversalTuning>,
        /// `Some(arena)` for shared-arena ablation cells (the arena
        /// persists across this cell's trial rounds, so trials past the
        /// first run in the zero-allocation steady state), `Some(None)`
        /// → `workspace: "off"` cells, `None` for Sequential (no
        /// ablation axis, like tunings).
        workspace: Option<Option<Arc<BccWorkspace>>>,
    }
    let mut cells: Vec<Cell> = vec![];
    for fam in 0..graphs.len() {
        for pool in 0..cfg.threads.len() {
            for alg in Algorithm::ALL {
                let cell_tunings: Vec<Option<TraversalTuning>> = if alg == Algorithm::Sequential {
                    vec![None]
                } else {
                    cfg.tunings.iter().copied().map(Some).collect()
                };
                let ws_points: Vec<Option<bool>> = if alg == Algorithm::Sequential {
                    vec![None]
                } else {
                    cfg.workspace.points().into_iter().map(Some).collect()
                };
                for tuning in cell_tunings {
                    for ws in &ws_points {
                        cells.push(Cell {
                            fam,
                            pool,
                            alg,
                            tuning,
                            workspace: ws.map(|on| on.then(|| Arc::new(BccWorkspace::new()))),
                        });
                    }
                }
            }
        }
    }

    let mut trial_reports: Vec<Vec<PhaseReport>> = (0..cells.len())
        .map(|_| Vec::with_capacity(trials))
        .collect();
    let mut trial_peaks: Vec<Vec<u64>> = vec![vec![]; cells.len()];
    for round in 0..trials {
        for (i, cell) in cells.iter().enumerate() {
            let (family, g) = &graphs[cell.fam];
            let mut config = BccConfig::new(cell.alg);
            if let Some(t) = cell.tuning {
                config = config.tuning(t);
            }
            if let Some(Some(ws)) = &cell.workspace {
                config = config.workspace(Arc::clone(ws));
            }
            // Reset the kernel's peak-RSS watermark so the post-run
            // reading reflects this trial's high-water mark (no-op off
            // Linux; the cell then omits the field).
            let rss = bcc_smp::rss::reset_peak().is_ok();
            let run = config
                .run(&pools[cell.pool], g)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", cell.alg.name(), family.name()));
            if rss {
                if let Some(peak) = bcc_smp::rss::peak_rss_bytes() {
                    trial_peaks[i].push(peak);
                }
            }
            trial_reports[i].push(run.report);
        }
        progress(&format!("trial round {}/{trials} complete", round + 1));
    }

    let mut entries: Vec<Json> = vec![];
    let mut families: Vec<Json> = vec![];
    let mut current_fam = usize::MAX;
    let mut seq_baseline = f64::INFINITY;
    for ((cell, reports), peaks) in cells.iter().zip(&trial_reports).zip(&trial_peaks) {
        let (family, g) = &graphs[cell.fam];
        if cell.fam != current_fam {
            current_fam = cell.fam;
            families.push(family_json(*family, g));
            // Sequential at p = 1 is the speedup denominator for the
            // family; it is always this family's first cell.
            seq_baseline = f64::INFINITY;
        }
        let p = cfg.threads[cell.pool];
        let seconds = median_f64(reports.iter().map(|r| r.total.as_secs_f64()).collect());
        if cell.alg == Algorithm::Sequential && p == 1 {
            seq_baseline = seconds;
        }
        let ws_on = cell.workspace.as_ref().map(Option::is_some);
        entries.push(cell_json(
            family.name(),
            g,
            p,
            reports,
            seq_baseline,
            cell.tuning.as_ref(),
            ws_on,
            peaks.iter().copied().max(),
        ));
        progress(&format!(
            "{:>13} {:>10} p={p}{}{}: {:>9.3?} ({} trials)",
            family.name(),
            cell.alg.name(),
            cell.tuning
                .map(|t| format!(" [{}]", t.spec()))
                .unwrap_or_default(),
            match ws_on {
                Some(false) => " [ws-off]",
                _ => "",
            },
            Duration::from_secs_f64(seconds),
            trials,
        ));
    }
    if cfg.store {
        let (fam, mut store_entries) = run_store_cells(cfg, &pools, progress);
        families.push(fam);
        entries.append(&mut store_entries);
    }
    (families, entries)
}

/// One regression found by [`compare`].
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// `family/algorithm/n/threads` key of the offending entry.
    pub key: String,
    /// Which gated metric regressed: `"seconds_min"` (time) or
    /// `"peak_rss_bytes"` (space).
    pub metric: &'static str,
    /// Baseline value, in the metric's unit (seconds or bytes).
    pub baseline: f64,
    /// Candidate value, in the metric's unit.
    pub candidate: f64,
    /// Regression in percent (`(candidate/baseline - 1) * 100`,
    /// calibration applied for the time metric).
    pub slowdown_pct: f64,
}

/// Structural problems that stop a comparison before it starts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompareError {
    /// A document is not a `bcc-grid` object with an `entries` array.
    MalformedDocument(&'static str),
    /// A document carries a `schema_version` outside
    /// [`COMPAT_SCHEMA_VERSIONS`] (or none at all).
    SchemaMismatch,
}

impl std::fmt::Display for CompareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompareError::MalformedDocument(which) => {
                write!(f, "{which} document is not a bcc-grid BENCH file")
            }
            CompareError::SchemaMismatch => {
                write!(
                    f,
                    "unsupported schema_version (supported: {COMPAT_SCHEMA_VERSIONS:?})"
                )
            }
        }
    }
}

impl std::error::Error for CompareError {}

fn entry_key(e: &Json) -> Option<String> {
    let mut key = format!(
        "{}/{}/n{}/p{}",
        e.get("family")?.as_str()?,
        e.get("algorithm")?.as_str()?,
        e.get("n")?.as_u64()?,
        e.get("threads")?.as_u64()?,
    );
    // v2 ablation cells are distinct series per tuning; v1 entries (and
    // Sequential cells) have no tuning field and keep the short key.
    if let Some(t) = e.get("tuning").and_then(Json::as_str) {
        key.push('/');
        key.push_str(t);
    }
    // The allocation ablation suffixes only its *off* cells, so default
    // (`on`) cells keep the keys older documents used and stay
    // comparable against them.
    if e.get("workspace").and_then(Json::as_str) == Some("off") {
        key.push_str("/ws-off");
    }
    // Store-commit cells are one series per batch size.
    if let Some(b) = e.get("batch").and_then(Json::as_u64) {
        key.push_str(&format!("/batch{b}"));
    }
    // Serve cells are one series per drive mode (closed vs open).
    if let Some(m) = e.get("mode").and_then(Json::as_str) {
        key.push('/');
        key.push_str(m);
    }
    // The writer-topology ablation suffixes only its single-writer
    // cells (like `/ws-off` above): default per-shard cells keep the
    // keys older documents used and stay comparable against them.
    if e.get("writers").and_then(Json::as_str) == Some("w1") {
        key.push_str("/w1");
    }
    // Overload cells (admission watermarks armed, oversubscribed
    // arrivals) are their own series — they gate shed behaviour, not
    // steady-state latency.
    if e.get("admission").and_then(Json::as_str) == Some("shed") {
        key.push_str("/shed");
    }
    Some(key)
}

/// Residual slowdowns smaller than this many seconds never flag:
/// timer granularity and scheduler jitter move microsecond-scale cells
/// by double-digit percentages that no amount of calibration removes.
/// The gate therefore catches regressions of at least
/// `max(threshold_pct, MIN_ABS_REGRESSION_SECS)`.
const MIN_ABS_REGRESSION_SECS: f64 = 50e-6;

/// Peak-RSS growth smaller than this many bytes never flags: allocator
/// arena rounding, thread-stack placement, and page-cache attribution
/// move small processes by a few MiB run to run. 16 MiB is far above
/// that jitter and far below the O(m) arrays whose accidental return
/// the space gate exists to catch at xl sizes.
const MIN_ABS_RSS_REGRESSION_BYTES: f64 = 16.0 * 1024.0 * 1024.0;

/// Compares two BENCH documents; entries are matched by
/// `(family, algorithm, n, threads[, tuning])` and flagged when the
/// candidate's `seconds_min` (falling back to the median `seconds` for
/// v1 documents) exceeds the baseline's by more than `threshold_pct`
/// percent **after machine-speed calibration**, under **two**
/// calibrations at once: the median candidate/baseline ratio over all
/// shared cells (the global host-speed factor) and the median over the
/// entry's own family. Host drift is correlated in arbitrary subsets
/// of the grid (whole-machine slowdowns, one family's working set
/// landing at different cache-aliasing offsets, one thread count
/// scheduling differently), and each calibration is blind to the
/// subsets the other one absorbs — but a real kernel regression stands
/// out against *both* medians, because the grid's other cells and the
/// family's other cells both anchor them. The residual slowdown must
/// also exceed [`MIN_ABS_REGRESSION_SECS`]. Entries present on only
/// one side are skipped (grids of different sizes — or a v1 baseline
/// against a v2 candidate — stay comparable on their shared cells).
/// Overload cells (keys ending `/shed`) still anchor the calibration
/// medians but are exempt from flagging on time — their tail latency
/// is load-dependent by construction; see the inline comment in the
/// gating loop for the rationale and where their contract is gated
/// instead.
///
/// `peak_rss_bytes` is gated as a **second, independent metric** under
/// `rss_threshold_pct` on every shared cell where *both* documents
/// carry it (a baseline that predates the field — or a non-Linux host
/// that omits it — is tolerated, its cells simply aren't space-gated).
/// Peak RSS needs no machine-speed calibration: it measures the
/// algorithm's working set, not the host's clock — so the gate is a
/// plain ratio test with its own absolute floor
/// ([`MIN_ABS_RSS_REGRESSION_BYTES`]), which keeps small-process
/// allocator jitter quiet while catching an accidentally-rematerialized
/// O(m) array at xl sizes.
pub fn compare(
    baseline: &Json,
    candidate: &Json,
    threshold_pct: f64,
    rss_threshold_pct: f64,
) -> Result<Vec<Regression>, CompareError> {
    type Entries = Vec<(String, f64, Option<f64>)>;
    let doc = |j: &Json, which| -> Result<Entries, CompareError> {
        let entries = j
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or(CompareError::MalformedDocument(which))?;
        entries
            .iter()
            .map(|e| {
                let key = entry_key(e).ok_or(CompareError::MalformedDocument(which))?;
                // Gate on the min-of-trials when the document carries it
                // (v2); fall back to the median `seconds` (v1).
                let secs = e
                    .get("seconds_min")
                    .and_then(Json::as_f64)
                    .or_else(|| e.get("seconds").and_then(Json::as_f64))
                    .ok_or(CompareError::MalformedDocument(which))?;
                let rss = e.get("peak_rss_bytes").and_then(Json::as_f64);
                Ok((key, secs, rss))
            })
            .collect()
    };
    let sv = |j: &Json| j.get("schema_version").and_then(Json::as_u64);
    let readable = |j: &Json| sv(j).is_some_and(|v| COMPAT_SCHEMA_VERSIONS.contains(&v));
    if !readable(baseline) || !readable(candidate) {
        return Err(CompareError::SchemaMismatch);
    }
    let base = doc(baseline, "baseline")?;
    let cand = doc(candidate, "candidate")?;
    // Machine-speed calibration: shared CI runners (and laptops) drift
    // wholesale between runs, so an absolute per-cell gate flags
    // everything on a slow day and nothing on a fast one. The drift is
    // additionally correlated in subsets (one family, one thread
    // count), so a cell must look regressed against both the global
    // median ratio *and* its family's before it flags — whichever
    // median absorbs the drift pattern clears the innocent cell, while
    // a genuinely regressed kernel stands out against both.
    let family_of = |key: &str| key.split('/').next().unwrap_or("").to_string();
    let shared: Vec<(&String, f64, f64)> = base
        .iter()
        .filter_map(|(key, b, _)| {
            let (_, c, _) = cand.iter().find(|(k, _, _)| k == key)?;
            (*b > 0.0).then_some((key, *b, *c))
        })
        .collect();
    let median_ratio = |pick: &dyn Fn(&str) -> bool| -> Option<f64> {
        let mut ratios: Vec<f64> = shared
            .iter()
            .filter(|(key, _, _)| pick(key))
            .map(|(_, b, c)| c / b)
            .collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
        (!ratios.is_empty()).then(|| ratios[ratios.len() / 2])
    };
    let global_factor = median_ratio(&|_| true).unwrap_or(1.0);
    let mut regressions = vec![];
    for (key, b, c) in &shared {
        // Overload (`…/shed`) cells never *flag* on time: under
        // deliberate shedding, *which* requests get answered is itself
        // load-dependent, so their tail latency is bimodal run-to-run
        // (observed ~2x spread in the min-of-trials on a 1-core host)
        // and would flap any cross-run threshold. They stay in the
        // calibration medians above — they ride the same transport and
        // scheduler drift as their family and the medians are robust
        // to their noise — but their own contract (sheds nonzero and
        // typed, read p99 within a band of the same run's non-shed
        // cells) is asserted in-run by the CI serve-smoke step.
        if key.ends_with("/shed") {
            continue;
        }
        let fam = family_of(key);
        let fam_cells = shared
            .iter()
            .filter(|(k, _, _)| family_of(k) == fam)
            .count();
        // A family needs a few cells for its median to be meaningful;
        // otherwise the global factor stands in for it.
        let fam_factor = if fam_cells >= 4 {
            median_ratio(&|k| family_of(k) == fam).unwrap_or(global_factor)
        } else {
            global_factor
        };
        // Judge against the more forgiving of the two calibrations.
        let calibrated = b * global_factor.max(fam_factor);
        if c / calibrated > 1.0 + threshold_pct / 100.0 && c - calibrated > MIN_ABS_REGRESSION_SECS
        {
            regressions.push(Regression {
                key: (*key).clone(),
                metric: "seconds_min",
                baseline: *b,
                candidate: *c,
                slowdown_pct: (c / calibrated - 1.0) * 100.0,
            });
        }
    }
    // The space gate: uncalibrated ratio test on cells where both
    // sides report the watermark.
    for (key, _, b_rss) in &base {
        let Some((_, _, Some(c_rss))) = cand.iter().find(|(k, _, _)| k == key) else {
            continue;
        };
        let Some(b_rss) = b_rss else { continue };
        if *b_rss > 0.0
            && c_rss / b_rss > 1.0 + rss_threshold_pct / 100.0
            && c_rss - b_rss > MIN_ABS_RSS_REGRESSION_BYTES
        {
            regressions.push(Regression {
                key: key.clone(),
                metric: "peak_rss_bytes",
                baseline: *b_rss,
                candidate: *c_rss,
                slowdown_pct: (c_rss / b_rss - 1.0) * 100.0,
            });
        }
    }
    regressions.sort_by(|a, b| b.slowdown_pct.partial_cmp(&a.slowdown_pct).unwrap());
    Ok(regressions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> Json {
        tiny_grid_with(vec![TraversalTuning::fast()])
    }

    fn tiny_grid_with(tunings: Vec<TraversalTuning>) -> Json {
        tiny_grid_full(tunings, WorkspaceMode::On, 1)
    }

    fn tiny_grid_full(
        tunings: Vec<TraversalTuning>,
        workspace: WorkspaceMode,
        trials: usize,
    ) -> Json {
        let cfg = GridConfig {
            n: 80,
            threads: vec![1, 2],
            trials,
            seed: 7,
            smoke: true,
            tunings,
            workspace,
            // The entry-count and rescale-by-index assertions below
            // predate the store and serve cells; they run on the plain
            // grid.
            store: false,
            serve: ServeMode::Off,
            prims: PrimsMode::Off,
            input: None,
        };
        run_grid(&cfg, |_| {})
    }

    #[test]
    fn store_commit_cells_emit_incremental_and_full_series() {
        let cfg = GridConfig {
            n: 320,
            threads: vec![1, 2],
            trials: 2,
            seed: 7,
            smoke: true,
            tunings: vec![TraversalTuning::fast()],
            workspace: WorkspaceMode::On,
            store: true,
            serve: ServeMode::Off,
            prims: PrimsMode::Off,
            input: None,
        };
        let doc = run_grid(&cfg, |_| {});
        assert_eq!(doc.get("store"), Some(&Json::Bool(true)));
        // The family summary rides along with the per-algorithm ones.
        let fams = doc.get("families").and_then(Json::as_arr).unwrap();
        let store_fam = fams
            .iter()
            .find(|f| f.get("family").and_then(Json::as_str) == Some("store-multi"))
            .expect("store-multi family summary");
        assert_eq!(
            store_fam.get("components").and_then(Json::as_u64),
            Some(u64::from(STORE_PARTS))
        );
        let entries = doc.get("entries").and_then(Json::as_arr).unwrap();
        let store_cells: Vec<&Json> = entries
            .iter()
            .filter(|e| e.get("family").and_then(Json::as_str) == Some("store-multi"))
            .collect();
        // threads × batch sizes × {incremental, full}.
        assert_eq!(store_cells.len(), 2 * STORE_BATCHES.len() * 2);
        // Keys stay unique: the batch suffix disambiguates the series.
        let keys: std::collections::BTreeSet<String> =
            store_cells.iter().map(|e| entry_key(e).unwrap()).collect();
        assert_eq!(keys.len(), store_cells.len());
        for e in &store_cells {
            let alg = e.get("algorithm").and_then(Json::as_str).unwrap();
            let batch = e.get("batch").and_then(Json::as_u64).unwrap();
            assert!(STORE_BATCHES.contains(&(batch as usize)));
            let key = entry_key(e).unwrap();
            assert!(key.ends_with(&format!("/batch{batch}")), "{key}");
            for field in [
                "seconds",
                "seconds_min",
                "batch_effective",
                "reused_fraction",
            ] {
                assert!(
                    e.get(field).and_then(Json::as_f64).is_some(),
                    "missing {field} in {key}"
                );
            }
            let effective = e.get("batch_effective").and_then(Json::as_f64).unwrap();
            assert!(effective >= 1.0, "{key}: no chords committed");
            let rebuilt = e.get("components_rebuilt").and_then(Json::as_u64).unwrap();
            let reused = e.get("components_reused").and_then(Json::as_u64).unwrap();
            match alg {
                // The batch is confined to the first component: the
                // incremental commit rebuilds exactly it and carries
                // the other 15 over by Arc.
                "commit-incremental" => {
                    assert_eq!(rebuilt, 1, "{key}");
                    assert_eq!(reused, u64::from(STORE_PARTS) - 1, "{key}");
                    assert!(
                        e.get("reused_fraction").and_then(Json::as_f64).unwrap() > 0.9,
                        "{key}"
                    );
                }
                // The escape hatch rebuilds everything.
                "commit-full" => {
                    assert_eq!(rebuilt, u64::from(STORE_PARTS), "{key}");
                    assert_eq!(reused, 0, "{key}");
                }
                other => panic!("unexpected store algorithm {other}"),
            }
        }
    }

    #[test]
    fn serve_cells_emit_slo_series() {
        let cfg = GridConfig {
            n: 320,
            threads: vec![1, 2],
            trials: 2,
            seed: 7,
            smoke: true,
            tunings: vec![TraversalTuning::fast()],
            workspace: WorkspaceMode::On,
            store: false,
            serve: ServeMode::Only,
            prims: PrimsMode::Off,
            input: None,
        };
        let doc = run_grid(&cfg, |_| {});
        assert_eq!(doc.get("serve").and_then(Json::as_str), Some("only"));
        // `only` skips the algorithm grid: the serve and serve-net
        // family summaries are the whole families array.
        let fams = doc.get("families").and_then(Json::as_arr).unwrap();
        assert_eq!(fams.len(), 2);
        for f in fams {
            assert_eq!(
                f.get("shards").and_then(Json::as_u64),
                Some(SERVE_SHARDS as u64)
            );
        }
        assert_eq!(
            fams[1].get("transport").and_then(Json::as_str),
            Some("tcp-loopback")
        );
        let text = doc.pretty();
        let parsed = crate::json::parse(&text).expect("serve BENCH json must parse");
        let entries = parsed.get("entries").and_then(Json::as_arr).unwrap();
        // threads × (in-process scenarios + loopback-TCP scenarios).
        assert_eq!(
            entries.len(),
            2 * (serve_scenarios(1.0).len() + serve_net_scenarios(1.0).len())
        );
        let keys: std::collections::BTreeSet<String> =
            entries.iter().map(|e| entry_key(e).unwrap()).collect();
        assert_eq!(keys.len(), entries.len());
        for e in entries {
            let key = entry_key(e).unwrap();
            let family = e.get("family").and_then(Json::as_str).unwrap();
            let mode = e.get("mode").and_then(Json::as_str).unwrap();
            assert!(matches!(mode, "closed" | "open"), "{key}");
            // Keys end with the drive mode plus the ablation suffixes
            // the writers/admission fields dictate.
            let mut tail = format!("/{mode}");
            if e.get("writers").and_then(Json::as_str) == Some("w1") {
                tail.push_str("/w1");
            }
            if e.get("admission").and_then(Json::as_str) == Some("shed") {
                tail.push_str("/shed");
            }
            assert!(key.ends_with(&tail), "{key} vs {tail}");
            // Closed-loop cells drive as fast as backpressure allows;
            // open-loop cells carry their arrival rate.
            let rate = e.get("rate").and_then(Json::as_f64).unwrap();
            assert_eq!(mode == "closed", rate == 0.0, "{key}");
            let common = ["seconds", "seconds_min", "answered", "shed_count"];
            let fields: &[&str] = if family == "serve" {
                &[
                    "queries_per_sec",
                    "latency_p50_seconds",
                    "latency_p999_seconds",
                    "lag_commits_p50",
                    "lag_commits_p99",
                    "lag_commits_max",
                    "lag_wall_p99_seconds",
                    "updates_applied",
                    "commits",
                    "writer_threads",
                    "commit_p99_seconds",
                    "commit_p99_seconds_shard0",
                ]
            } else {
                assert_eq!(family, "serve-net", "{key}");
                &["responses_per_sec", "accepted", "rejected_other"]
            };
            for field in common.iter().chain(fields) {
                assert!(
                    e.get(field).and_then(Json::as_f64).is_some(),
                    "missing {field} in {key}"
                );
            }
            assert!(
                e.get("answered").and_then(Json::as_f64).unwrap() > 0.0,
                "{key}: no queries answered"
            );
            // Quantiles are ordered: p50 ≤ p99 (= seconds) ≤ p999.
            let p50 = e.get("latency_p50_seconds").and_then(Json::as_f64).unwrap();
            let p99 = e.get("seconds").and_then(Json::as_f64).unwrap();
            let p999 = e
                .get("latency_p999_seconds")
                .and_then(Json::as_f64)
                .unwrap();
            assert!(p50 <= p99 && p99 <= p999, "{key}: {p50} / {p99} / {p999}");
            if family != "serve" {
                continue;
            }
            // Churn profiles commit; read-heavy ones may too (1% mix).
            if e.get("algorithm").and_then(Json::as_str) == Some("churn-heavy") {
                assert!(
                    e.get("commits").and_then(Json::as_f64).unwrap() > 0.0,
                    "{key}: churn profile never committed"
                );
            }
            // The writer-topology field matches the daemon's actual
            // thread count: 1 for the ablation, shard count otherwise.
            let threads = e.get("writer_threads").and_then(Json::as_f64).unwrap();
            match e.get("writers").and_then(Json::as_str).unwrap() {
                "w1" => assert_eq!(threads, 1.0, "{key}"),
                _ => assert_eq!(threads, SERVE_SHARDS as f64, "{key}"),
            }
        }
    }

    #[test]
    fn golden_schema_round_trips() {
        let doc = tiny_grid();
        let text = doc.pretty();
        let parsed = crate::json::parse(&text).expect("emitted BENCH json must parse");
        assert_eq!(parsed.get("schema_version").and_then(Json::as_u64), Some(2));
        assert_eq!(
            parsed.get("experiment").and_then(Json::as_str),
            Some("bcc-grid")
        );
        // Per-family shape summaries carry the effective diameter.
        let fams = parsed.get("families").and_then(Json::as_arr).unwrap();
        assert_eq!(fams.len(), Family::ALL.len());
        for f in fams {
            let d = f
                .get("effective_diameter_90")
                .and_then(Json::as_u64)
                .unwrap();
            let levels = f.get("bfs_levels").and_then(Json::as_u64).unwrap();
            assert!(d >= 1 && d <= levels, "diameter {d} vs levels {levels}");
        }
        let entries = parsed.get("entries").and_then(Json::as_arr).unwrap();
        // families × threads × (Sequential + 4 parallel × |tunings|).
        assert_eq!(entries.len(), 4 * 2 * (1 + 4));
        let mut algs_seen = std::collections::BTreeSet::new();
        for e in entries {
            algs_seen.insert(e.get("algorithm").and_then(Json::as_str).unwrap());
            for field in [
                "seconds",
                "speedup_vs_sequential",
                "phase_runs",
                "barrier_episodes",
                "barrier_wait_seconds",
                "imbalance",
                "alloc_bytes",
                "arena_hit_rate",
            ] {
                assert!(
                    e.get(field).and_then(Json::as_f64).is_some(),
                    "missing {field}"
                );
            }
            assert!(e.get("phases").and_then(Json::as_arr).is_some());
            assert!(e.get("imbalance").and_then(Json::as_f64).unwrap() >= 1.0);
            // Tuning + work counters + workspace axis on parallel
            // cells only.
            let seq = e.get("algorithm").and_then(Json::as_str) == Some("Sequential");
            assert_eq!(e.get("tuning").is_none(), seq);
            assert_eq!(e.get("sv_rounds_cc").is_none(), seq);
            assert_eq!(e.get("workspace").is_none(), seq);
            if !seq {
                assert_eq!(e.get("workspace").and_then(Json::as_str), Some("on"));
            }
            if !seq {
                assert_eq!(
                    e.get("tuning").and_then(Json::as_str),
                    Some("hybrid+fastsv")
                );
                assert!(e.get("bfs_directions").and_then(Json::as_str).is_some());
            }
        }
        let names: Vec<&str> = Algorithm::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(algs_seen.into_iter().collect::<Vec<_>>(), {
            let mut sorted = names.clone();
            sorted.sort();
            sorted
        });
        // Parallel entries carry per-phase breakdowns; the Sequential
        // baseline legitimately has none.
        let tv = entries
            .iter()
            .find(|e| e.get("algorithm").and_then(Json::as_str) == Some("TV-filter"))
            .unwrap();
        assert!(!tv.get("phases").and_then(Json::as_arr).unwrap().is_empty());
    }

    #[test]
    fn ablation_grid_emits_one_series_per_tuning() {
        let doc = tiny_grid_with(vec![
            "topdown+classic-sv".parse().unwrap(),
            TraversalTuning::fast(),
        ]);
        let entries = doc.get("entries").and_then(Json::as_arr).unwrap();
        // Sequential once, 4 parallel algorithms × 2 tunings.
        assert_eq!(entries.len(), 4 * 2 * (1 + 4 * 2));
        // Keys stay unique (the tuning disambiguates the ablation cells).
        let keys: std::collections::BTreeSet<String> =
            entries.iter().map(|e| entry_key(e).unwrap()).collect();
        assert_eq!(keys.len(), entries.len());
        // FastSV finishes its step-6 run in strictly fewer graft rounds
        // than classic SV on at least one family.
        let rounds = |e: &&Json| e.get("sv_rounds_cc").and_then(Json::as_u64).unwrap();
        let of = |tuning: &str| -> Vec<u64> {
            entries
                .iter()
                .filter(|e| e.get("tuning").and_then(Json::as_str) == Some(tuning))
                .map(|e| rounds(&e))
                .collect()
        };
        let classic = of("topdown+classic-sv");
        let fast = of("hybrid+fastsv");
        assert_eq!(classic.len(), fast.len());
        assert!(!classic.is_empty());
        assert!(
            fast.iter().zip(&classic).any(|(f, c)| f < c),
            "fast {fast:?} vs classic {classic:?}"
        );
    }

    #[test]
    fn workspace_ablation_emits_on_and_off_series() {
        let doc = tiny_grid_full(vec![TraversalTuning::fast()], WorkspaceMode::Both, 2);
        assert_eq!(doc.get("workspace").and_then(Json::as_str), Some("both"));
        let entries = doc.get("entries").and_then(Json::as_arr).unwrap();
        // Sequential once, 4 parallel algorithms × 2 workspace points.
        assert_eq!(entries.len(), 4 * 2 * (1 + 4 * 2));
        // Keys stay unique; exactly the off-cells carry the suffix.
        let keys: Vec<String> = entries.iter().map(|e| entry_key(e).unwrap()).collect();
        assert_eq!(
            keys.iter().collect::<std::collections::BTreeSet<_>>().len(),
            entries.len()
        );
        for (e, key) in entries.iter().zip(&keys) {
            let ws = e.get("workspace").and_then(Json::as_str);
            assert_eq!(ws == Some("off"), key.ends_with("/ws-off"), "{key}");
            let alloc = e.get("alloc_bytes").and_then(Json::as_f64).unwrap();
            match ws {
                // Shared arena + 2 trials: the warm trial's 0 is the
                // reported median.
                Some("on") => assert_eq!(alloc, 0.0, "{key}"),
                // Fresh arena per run: every trial pays cold-start.
                Some("off") => assert!(alloc > 0.0, "{key}"),
                _ => {}
            }
        }
    }

    #[test]
    fn file_input_replaces_generated_families() {
        // A real on-disk dataset: write a text edge list, point the
        // grid at it, and the algorithm cells run on the single `file`
        // family instead of the four generated ones.
        let dir = std::env::temp_dir().join(format!("bcc-grid-input-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("input.txt");
        let g = bcc_graph::gen::random_connected(60, 150, 7);
        bcc_graph::io::write_text(&g, &mut std::fs::File::create(&path).unwrap()).unwrap();
        let cfg = GridConfig {
            n: 60,
            threads: vec![1, 2],
            trials: 1,
            seed: 7,
            smoke: true,
            tunings: vec![TraversalTuning::fast()],
            workspace: WorkspaceMode::On,
            store: false,
            serve: ServeMode::Off,
            prims: PrimsMode::Off,
            input: Some(path.clone()),
        };
        let doc = run_grid(&cfg, |_| {});
        let fams = doc.get("families").and_then(Json::as_arr).unwrap();
        assert_eq!(fams.len(), 1);
        assert_eq!(fams[0].get("family").and_then(Json::as_str), Some("file"));
        assert_eq!(fams[0].get("n").and_then(Json::as_u64), Some(60));
        let entries = doc.get("entries").and_then(Json::as_arr).unwrap();
        // One family × 2 thread counts × (Sequential + 4 parallel).
        assert_eq!(entries.len(), 2 * (1 + 4));
        let rss_available = bcc_smp::rss::reset_peak().is_ok();
        for e in entries {
            assert_eq!(e.get("family").and_then(Json::as_str), Some("file"));
            assert_eq!(e.get("n").and_then(Json::as_u64), Some(60));
            // Where the kernel exposes the watermark, every cell
            // carries its peak resident set.
            if rss_available {
                let peak = e.get("peak_rss_bytes").and_then(Json::as_f64).unwrap();
                assert!(peak > 0.0);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sequential_speedup_is_one_at_p1() {
        let doc = tiny_grid();
        let entries = doc.get("entries").and_then(Json::as_arr).unwrap();
        for e in entries {
            if e.get("algorithm").and_then(Json::as_str) == Some("Sequential")
                && e.get("threads").and_then(Json::as_u64) == Some(1)
            {
                let s = e
                    .get("speedup_vs_sequential")
                    .and_then(Json::as_f64)
                    .unwrap();
                assert!((s - 1.0).abs() < 1e-9, "got {s}");
            }
        }
    }

    /// Rescales the gate's timing fields (`seconds` and `seconds_min`)
    /// of every entry by `f(index, old)`.
    fn rescale_entries(doc: &Json, f: &dyn Fn(usize, f64) -> f64) -> Json {
        let mut scaled = doc.clone();
        if let Json::Obj(fields) = &mut scaled {
            let entries = fields
                .iter_mut()
                .find(|(k, _)| k == "entries")
                .map(|(_, v)| v)
                .unwrap();
            if let Json::Arr(list) = entries {
                for (i, e) in list.iter_mut().enumerate() {
                    if let Json::Obj(entry) = e {
                        for (k, v) in entry.iter_mut() {
                            if k == "seconds" || k == "seconds_min" {
                                let old = v.as_f64().unwrap();
                                *v = Json::num(f(i, old));
                            }
                        }
                    }
                }
            }
        }
        scaled
    }

    #[test]
    fn compare_flags_injected_regression_and_only_it() {
        let base = tiny_grid();
        // Inject a 50%+ slowdown into exactly one entry.
        let slowed = rescale_entries(&base, &|i, s| if i == 5 { s * 1.5 + 1.0 } else { s });
        assert_eq!(compare(&base, &base, 10.0, 25.0).unwrap(), vec![]);
        let regs = compare(&base, &slowed, 25.0, 25.0).unwrap();
        assert_eq!(regs.len(), 1, "exactly the injected cell: {regs:?}");
        assert!(regs[0].slowdown_pct > 25.0);
        // The reverse direction (speedup) is not a regression.
        assert_eq!(compare(&slowed, &base, 25.0, 25.0).unwrap(), vec![]);
    }

    #[test]
    fn compare_calibrates_out_uniform_machine_drift() {
        let base = tiny_grid();
        // A uniformly 2x-slower host: every cell doubles. The gate must
        // stay quiet — and still catch a cell that regressed on top of
        // the drift.
        let drifted = rescale_entries(&base, &|_, s| s * 2.0);
        assert_eq!(compare(&base, &drifted, 10.0, 25.0).unwrap(), vec![]);
        // Drift plus one real (large, past the absolute noise floor)
        // regression: exactly that cell flags.
        let drifted_plus =
            rescale_entries(&base, &|i, s| if i == 3 { s * 6.0 + 1.0 } else { s * 2.0 });
        let regs = compare(&base, &drifted_plus, 25.0, 25.0).unwrap();
        assert_eq!(regs.len(), 1, "exactly the regressed cell: {regs:?}");
    }

    #[test]
    fn compare_exempts_shed_cells_from_the_time_gate() {
        // Five serve cells, one of them an overload (`…/shed`) cell.
        // Overload tails are load-dependent by design, so an arbitrary
        // slowdown there must stay quiet while the same slowdown on a
        // steady-state cell still flags.
        let entry = |profile: &str, shed: bool, secs: f64| {
            let admission = if shed { "shed" } else { "open" };
            format!(
                "{{\"family\": \"serve\", \"algorithm\": \"{profile}\", \
                 \"n\": 600, \"threads\": 1, \"mode\": \"open\", \
                 \"admission\": \"{admission}\", \
                 \"seconds\": {secs}, \"seconds_min\": {secs}}}"
            )
        };
        let doc = |shed_secs: f64, churn_secs: f64| {
            crate::json::parse(&format!(
                "{{\"schema_version\": 2, \"entries\": [{}, {}, {}, {}, {}]}}",
                entry("read-heavy", false, 0.010),
                entry("churn-heavy", false, churn_secs),
                entry("hot-component", false, 0.012),
                entry("plain", false, 0.014),
                entry("update-storm", true, shed_secs),
            ))
            .unwrap()
        };
        let base = doc(0.020, 0.011);
        // The shed cell 100x slower: exempt, quiet.
        assert_eq!(
            compare(&base, &doc(2.0, 0.011), 10.0, 25.0).unwrap(),
            vec![]
        );
        // A steady-state cell 100x slower: flagged as usual.
        let regs = compare(&base, &doc(0.020, 1.1), 10.0, 25.0).unwrap();
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].key.ends_with("/open"), "{}", regs[0].key);
    }

    /// Sets `peak_rss_bytes` on every entry to `f(index)` (None removes
    /// the field — a baseline predating the metric).
    fn with_rss(doc: &Json, f: &dyn Fn(usize) -> Option<f64>) -> Json {
        let mut out = doc.clone();
        if let Json::Obj(fields) = &mut out {
            let entries = fields
                .iter_mut()
                .find(|(k, _)| k == "entries")
                .map(|(_, v)| v)
                .unwrap();
            if let Json::Arr(list) = entries {
                for (i, e) in list.iter_mut().enumerate() {
                    if let Json::Obj(entry) = e {
                        entry.retain(|(k, _)| k != "peak_rss_bytes");
                        if let Some(v) = f(i) {
                            entry.push(("peak_rss_bytes".to_string(), Json::num(v)));
                        }
                    }
                }
            }
        }
        out
    }

    #[test]
    fn compare_gates_peak_rss_as_a_second_metric() {
        const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
        let plain = tiny_grid();
        let base = with_rss(&plain, &|_| Some(GIB));
        // Identical RSS: quiet.
        assert_eq!(compare(&base, &base, 10.0, 25.0).unwrap(), vec![]);
        // One cell grows 2x (past both the ratio and the 16 MiB
        // floor): exactly it flags, on the space metric, with the raw
        // byte values.
        let bloated = with_rss(&plain, &|i| Some(if i == 4 { 2.0 * GIB } else { GIB }));
        let regs = compare(&base, &bloated, 10.0, 25.0).unwrap();
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert_eq!(regs[0].metric, "peak_rss_bytes");
        assert_eq!(regs[0].baseline, GIB);
        assert_eq!(regs[0].candidate, 2.0 * GIB);
        assert!((regs[0].slowdown_pct - 100.0).abs() < 1e-9);
        // Under the ratio threshold: quiet.
        let mild = with_rss(&plain, &|_| Some(1.2 * GIB));
        assert_eq!(compare(&base, &mild, 10.0, 25.0).unwrap(), vec![]);
        // Over the ratio but under the absolute floor (small process):
        // quiet.
        let tiny = with_rss(&plain, &|_| Some(8.0 * 1024.0 * 1024.0));
        let tiny_grown = with_rss(&plain, &|_| Some(14.0 * 1024.0 * 1024.0));
        assert_eq!(compare(&tiny, &tiny_grown, 10.0, 25.0).unwrap(), vec![]);
        // Missing on either side (old baseline, non-Linux candidate):
        // tolerated, not flagged.
        let absent = with_rss(&plain, &|_| None);
        assert_eq!(compare(&absent, &bloated, 10.0, 25.0).unwrap(), vec![]);
        assert_eq!(compare(&bloated, &absent, 10.0, 25.0).unwrap(), vec![]);
        // Shrinking is not a regression.
        assert_eq!(compare(&bloated, &base, 10.0, 25.0).unwrap(), vec![]);
        // Time regressions still gate independently of RSS parity.
        let slowed = rescale_entries(&base, &|i, s| if i == 5 { s * 1.5 + 1.0 } else { s });
        let regs = compare(&base, &slowed, 25.0, 25.0).unwrap();
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert_eq!(regs[0].metric, "seconds_min");
    }

    #[test]
    fn compare_rejects_malformed_and_mismatched_documents() {
        let good = tiny_grid();
        let junk = crate::json::parse("{\"entries\": [{}]}").unwrap();
        assert!(matches!(
            compare(&junk, &junk, 10.0, 25.0),
            Err(CompareError::SchemaMismatch) | Err(CompareError::MalformedDocument(_))
        ));
        let mut other = good.clone();
        if let Json::Obj(fields) = &mut other {
            for (k, v) in fields.iter_mut() {
                if k == "schema_version" {
                    *v = Json::num(99.0);
                }
            }
        }
        assert_eq!(
            compare(&good, &other, 10.0, 25.0),
            Err(CompareError::SchemaMismatch)
        );
        // A v1 document is still readable against a v2 one (matching
        // falls back to the shared keys).
        let mut v1 = good.clone();
        if let Json::Obj(fields) = &mut v1 {
            for (k, v) in fields.iter_mut() {
                if k == "schema_version" {
                    *v = Json::num(1.0);
                }
            }
        }
        assert_eq!(compare(&v1, &good, 10.0, 25.0), Ok(vec![]));
    }

    #[test]
    fn thread_sweep_always_has_one_and_two() {
        assert_eq!(thread_sweep(1), vec![1, 2]);
        assert_eq!(thread_sweep(2), vec![1, 2]);
        assert_eq!(thread_sweep(8), vec![1, 2, 4, 8]);
        assert_eq!(thread_sweep(6), vec![1, 2, 4, 6]);
    }
}

//! The `prims` bench tier: per-kernel cells for the vectorized
//! primitives substrate (word-level scan, popcount compaction, bitmap
//! sweeps, the radix histogram), emitted into the same `BENCH_bcc.json`
//! document as the algorithm grid and gated by the same `compare`.
//!
//! Each vectorized kernel is paired with a frozen pre-vectorization
//! reference running in the same process on the same data:
//!
//! | cell                  | measures                                   |
//! |-----------------------|--------------------------------------------|
//! | `scan-u32`/`scan-u64` | dispatched add-scan (AVX-512F on down)     |
//! | `scan-u32-generic`    | the generic `ScanElem` carried loop — the  |
//! | `scan-u64-generic`    | pre-vectorization scalar path, via a bench |
//! |                       | newtype that keeps the default block hooks |
//! | `compact-u32`         | bitmap-flag + popcount-offset compaction   |
//! | `compact-u32-scan-ref`| frozen u32-flag + full-scan reference      |
//! | `radix-u64`           | LSD radix sort (unrolled histogram pass)   |
//! | `bitmap-foreach`      | word-at-a-time `for_each_one` drain        |
//! | `bitmap-iter-ref`     | per-bit `iter_ones` drain (the old idiom)  |
//!
//! The reference cells carry a `-generic`/`-ref` suffix in their
//! `algorithm` field, so the "vectorized ≥ 1.5× the scalar path" claim
//! is checkable from the committed document alone — no pre-PR checkout
//! required — and both series are regression-gated cell-by-cell.
//!
//! Sizes are cache-resident on purpose: the kernels are measured where
//! their arithmetic shows, not where DRAM bandwidth hides it (the
//! algorithm grid already covers the memory-bound regime). The scan
//! cells go one step further and run L1-resident with 64x the reps —
//! an add-scan does one add per element, so even an L2 working set
//! drowns the in-register prefix in load/store traffic. Each sample
//! times `reps` back-to-back invocations and reports the
//! per-invocation mean; trials are trial-major like the rest of the
//! grid, and `seconds_min` is the gate metric.

use crate::grid::{median_f64, GridConfig};
use crate::json::Json;
use bcc_primitives::compact::{compact_with_ws, reference};
use bcc_primitives::kernels;
use bcc_primitives::scan::{inclusive_scan_par_ws, ScanElem};
use bcc_primitives::sort::par_radix_sort_u64_ws;
use bcc_smp::{BccWorkspace, Bitmap, Pool};
use std::hint::black_box;
use std::time::Instant;

/// Whether the grid runs the `prims` kernel cells.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PrimsMode {
    /// Skip the kernel cells.
    Off,
    /// Run them after the algorithm grid (the default).
    On,
    /// Run *only* the kernel cells — what `bcc-bench prims` and the CI
    /// prims-smoke job use, so their wall time is the kernels and
    /// nothing else.
    Only,
}

impl PrimsMode {
    /// Name used in the JSON document and on the CLI.
    pub fn name(self) -> &'static str {
        match self {
            PrimsMode::Off => "off",
            PrimsMode::On => "on",
            PrimsMode::Only => "only",
        }
    }
}

impl std::str::FromStr for PrimsMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "off" => Ok(PrimsMode::Off),
            "on" => Ok(PrimsMode::On),
            "only" => Ok(PrimsMode::Only),
            other => Err(format!("unknown prims mode {other:?} (on|off|only)")),
        }
    }
}

/// Base element count: L2-resident at full size (1 MiB of u32), tiny
/// for the CI smoke grid.
fn elems(cfg: &GridConfig) -> usize {
    if cfg.smoke {
        1 << 14
    } else {
        1 << 18
    }
}

/// Back-to-back invocations per timed sample. Kernel invocations at
/// these sizes are tens-to-hundreds of microseconds; batching them puts
/// each sample far above timer and pool-wake noise.
fn reps(cfg: &GridConfig) -> u32 {
    if cfg.smoke {
        64
    } else {
        16
    }
}

/// Per-kernel working-set size and rep count. Scan kernels shrink the
/// working set 64x (full size: 2^12 elements — 16/32 KiB, inside L1d
/// on anything current) and scale reps up by the same factor, so a
/// sample covers the same element count as the other cells.
fn kernel_shape(which: usize, cfg: &GridConfig) -> (usize, u32) {
    let (n, reps) = (elems(cfg), reps(cfg));
    if which < 4 {
        (n >> 6, reps * 64)
    } else {
        (n, reps)
    }
}

/// `u32` scan input with the *generic* `ScanElem` path: only the
/// required items are provided, so the provided block hooks stay at
/// their naive carried-loop defaults — bit-identical in shape to the
/// pre-vectorization scalar path.
#[derive(Copy, Clone)]
struct GenericU32(u32);
impl ScanElem for GenericU32 {
    const ZERO: Self = GenericU32(0);
    #[inline]
    fn combine(self, other: Self) -> Self {
        GenericU32(self.0.wrapping_add(other.0))
    }
}

/// [`GenericU32`]'s u64 twin.
#[derive(Copy, Clone)]
struct GenericU64(u64);
impl ScanElem for GenericU64 {
    const ZERO: Self = GenericU64(0);
    #[inline]
    fn combine(self, other: Self) -> Self {
        GenericU64(self.0.wrapping_add(other.0))
    }
}

/// Deterministic fill (splitmix64) — no `rand` dependency, same data
/// on every host for a given seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn fill_u64(n: usize, seed: u64) -> Vec<u64> {
    let mut s = seed;
    (0..n).map(|_| splitmix64(&mut s)).collect()
}

/// One kernel cell's identity and working set. Scan and sort kernels
/// mutate their buffer in place; the result of one rep is a valid input
/// for the next (wrapping adds, already-sorted keys cost the same as
/// shuffled ones through a radix pass), so the timed region is the
/// kernel alone — no per-rep re-initialization.
enum Kernel {
    ScanU32(Vec<u32>),
    ScanU32Generic(Vec<GenericU32>),
    ScanU64(Vec<u64>),
    ScanU64Generic(Vec<GenericU64>),
    CompactU32(Vec<u32>),
    CompactU32ScanRef(Vec<u32>),
    RadixU64(Vec<u64>),
    BitmapForeach(Bitmap),
    BitmapIterRef(Bitmap),
}

impl Kernel {
    /// Display/JSON name; the `-generic`/`-ref` suffix marks a frozen
    /// reference series.
    fn name(&self) -> &'static str {
        match self {
            Kernel::ScanU32(_) => "scan-u32",
            Kernel::ScanU32Generic(_) => "scan-u32-generic",
            Kernel::ScanU64(_) => "scan-u64",
            Kernel::ScanU64Generic(_) => "scan-u64-generic",
            Kernel::CompactU32(_) => "compact-u32",
            Kernel::CompactU32ScanRef(_) => "compact-u32-scan-ref",
            Kernel::RadixU64(_) => "radix-u64",
            Kernel::BitmapForeach(_) => "bitmap-foreach",
            Kernel::BitmapIterRef(_) => "bitmap-iter-ref",
        }
    }

    /// Whether the kernel runs on the pool (swept over thread counts)
    /// or on the calling thread (one cell at p = 1).
    fn parallel(&self) -> bool {
        !matches!(self, Kernel::BitmapForeach(_) | Kernel::BitmapIterRef(_))
    }

    /// Builds the kernel's working set (~`n` elements, deterministic in
    /// `seed`). Bitmaps are half-dense random words — the regime the
    /// BFS sweep and compaction scatter see.
    fn build(which: usize, n: usize, seed: u64) -> Kernel {
        let words = fill_u64(n, seed ^ (which as u64) << 32);
        let u32s = || words.iter().map(|&x| x as u32).collect::<Vec<u32>>();
        let bitmap = || {
            let bm = Bitmap::new(n);
            for (w, &bits) in words.iter().take(bm.words()).enumerate() {
                let hi = n - w * 64;
                let mask = if hi >= 64 { !0 } else { (1u64 << hi) - 1 };
                bm.store_word_unsync(w, bits & mask);
            }
            bm
        };
        match which {
            0 => Kernel::ScanU32(u32s()),
            1 => Kernel::ScanU32Generic(words.iter().map(|&x| GenericU32(x as u32)).collect()),
            2 => Kernel::ScanU64(words.clone()),
            3 => Kernel::ScanU64Generic(words.iter().map(|&x| GenericU64(x)).collect()),
            4 => Kernel::CompactU32(u32s()),
            5 => Kernel::CompactU32ScanRef(u32s()),
            6 => Kernel::RadixU64(words.clone()),
            7 => Kernel::BitmapForeach(bitmap()),
            8 => Kernel::BitmapIterRef(bitmap()),
            _ => unreachable!("kernel index out of range"),
        }
    }

    /// The number of kernel variants [`Kernel::build`] knows.
    const COUNT: usize = 9;

    /// One invocation. The compaction predicate keeps ~half the
    /// elements (low bit of random data), matching the tree/nontree
    /// splits the pipeline compacts.
    fn run_once(&mut self, pool: &Pool, ws: &BccWorkspace) {
        match self {
            Kernel::ScanU32(v) => inclusive_scan_par_ws(pool, v, ws),
            Kernel::ScanU32Generic(v) => inclusive_scan_par_ws(pool, v, ws),
            Kernel::ScanU64(v) => inclusive_scan_par_ws(pool, v, ws),
            Kernel::ScanU64Generic(v) => inclusive_scan_par_ws(pool, v, ws),
            Kernel::CompactU32(v) => {
                let out = compact_with_ws(pool, v, |_, &x| x & 1 == 0, ws);
                black_box(out.len());
                ws.give(out);
            }
            Kernel::CompactU32ScanRef(v) => {
                let out = reference::compact_with_scan(pool, v, |_, &x| x & 1 == 0);
                black_box(out.len());
            }
            Kernel::RadixU64(v) => par_radix_sort_u64_ws(pool, v, ws),
            Kernel::BitmapForeach(bm) => {
                let mut acc = 0u64;
                bm.for_each_one(|i| acc = acc.wrapping_add(i as u64));
                black_box(acc);
            }
            Kernel::BitmapIterRef(bm) => {
                let acc = bm.iter_ones().fold(0u64, |a, i| a.wrapping_add(i as u64));
                black_box(acc);
            }
        }
    }
}

/// Runs the kernel cells and returns `(family summary, entries)` in the
/// grid's document shape. Parallel kernels sweep `cfg.threads`; the
/// serial bitmap drains emit one cell at p = 1. Each cell owns its
/// input and a shared arena across trials (the zero-allocation
/// steady state, same regime as `WorkspaceMode::On`).
pub fn run_prims_cells(cfg: &GridConfig, progress: &mut impl FnMut(&str)) -> (Json, Vec<Json>) {
    let trials = cfg.trials.max(1);

    struct PrimsCell {
        kernel: Kernel,
        n: usize,
        reps: u32,
        threads: usize,
        ws: BccWorkspace,
        samples: Vec<f64>,
    }
    let pools: Vec<Pool> = cfg.threads.iter().map(|&p| Pool::new(p)).collect();
    let mut cells: Vec<PrimsCell> = vec![];
    for which in 0..Kernel::COUNT {
        let probe = Kernel::build(which, 0, 0);
        let sweep: &[usize] = if probe.parallel() { &cfg.threads } else { &[1] };
        let (n, reps) = kernel_shape(which, cfg);
        for &p in sweep {
            cells.push(PrimsCell {
                kernel: Kernel::build(which, n, cfg.seed),
                n,
                reps,
                threads: p,
                ws: BccWorkspace::new(),
                samples: Vec::with_capacity(trials),
            });
        }
    }

    // Trial-major, like the rest of the grid: spread each cell's
    // samples past any single host-scheduler burst. One untimed warmup
    // round populates the arenas, so every timed trial runs steady
    // state.
    for round in 0..=trials {
        for cell in &mut cells {
            let pool = &pools[cfg.threads.iter().position(|&p| p == cell.threads).unwrap()];
            let t = Instant::now();
            for _ in 0..cell.reps {
                cell.kernel.run_once(pool, &cell.ws);
            }
            if round > 0 {
                cell.samples
                    .push(t.elapsed().as_secs_f64() / f64::from(cell.reps));
            }
        }
        if round > 0 {
            progress(&format!("prims trial round {round}/{trials} complete"));
        }
    }

    let simd = kernels::simd_level();
    let mut entries = Vec::with_capacity(cells.len());
    for cell in &cells {
        let seconds = median_f64(cell.samples.clone());
        let min = cell.samples.iter().copied().fold(f64::INFINITY, f64::min);
        entries.push(Json::obj(vec![
            ("family", Json::str("prims")),
            ("algorithm", Json::str(cell.kernel.name())),
            ("n", Json::num(cell.n as f64)),
            ("threads", Json::num(cell.threads as f64)),
            ("reps", Json::num(f64::from(cell.reps))),
            ("simd", Json::str(simd)),
            ("seconds", Json::num(seconds)),
            ("seconds_min", Json::num(min)),
        ]));
        progress(&format!(
            "{:>13} {:>20} p={} [{simd}]: {:>11.3?} per call ({trials} trials x {} reps)",
            "prims",
            cell.kernel.name(),
            cell.threads,
            std::time::Duration::from_secs_f64(seconds),
            cell.reps,
        ));
    }

    let family = Json::obj(vec![
        ("family", Json::str("prims")),
        ("n", Json::num(elems(cfg) as f64)),
        ("reps", Json::num(f64::from(reps(cfg)))),
        ("simd", Json::str(simd)),
    ]);
    (family, entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every kernel variant constructs, names itself, and runs.
    #[test]
    fn kernels_build_and_run() {
        let pool = Pool::new(2);
        let ws = BccWorkspace::new();
        let mut names = std::collections::BTreeSet::new();
        for which in 0..Kernel::COUNT {
            let mut k = Kernel::build(which, 130, 7);
            k.run_once(&pool, &ws);
            k.run_once(&pool, &ws);
            assert!(names.insert(k.name()), "duplicate kernel name {}", k.name());
        }
        assert_eq!(names.len(), Kernel::COUNT);
    }

    /// The generic newtypes really take the default (naive) block
    /// hooks: a scan through them matches the vectorized u32 scan
    /// value-for-value.
    #[test]
    fn generic_newtype_scan_matches_dispatched_scan() {
        let pool = Pool::new(2);
        let ws = BccWorkspace::new();
        let base: Vec<u32> = fill_u64(1000, 3).iter().map(|&x| x as u32).collect();
        let mut fast = base.clone();
        let mut slow: Vec<GenericU32> = base.iter().map(|&x| GenericU32(x)).collect();
        inclusive_scan_par_ws(&pool, &mut fast, &ws);
        inclusive_scan_par_ws(&pool, &mut slow, &ws);
        assert!(fast.iter().zip(&slow).all(|(&a, b)| a == b.0));
    }

    /// The bitmap builder masks tail bits past `len`, so the drain
    /// kernels never see ghost indices.
    #[test]
    fn bitmap_build_respects_length() {
        for n in [1usize, 63, 64, 65, 130] {
            let Kernel::BitmapForeach(bm) = Kernel::build(7, n, 9) else {
                panic!("kernel 7 should be bitmap-foreach");
            };
            let mut max_seen = 0;
            bm.for_each_one(|i| max_seen = max_seen.max(i));
            assert!(max_seen < n, "bit {max_seen} >= len {n}");
        }
    }
}

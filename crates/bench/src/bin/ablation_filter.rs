//! ABL-FILTER — quantifies the §4 analysis behind TV-filter:
//!
//! * how many edges are filtered as density grows (the paper:
//!   at least max(m − 2(n−1), 0));
//! * TV-filter vs TV-opt crossover as a function of density (the paper
//!   suggests falling back to TV-opt when m ≤ 4n);
//! * the pathological chain graph, where the BFS diameter term O(d)
//!   dominates.
//!
//! ```text
//! cargo run -p bcc-bench --release --bin ablation_filter -- [--n N] [--p P]
//! ```

use bcc_bench::{fmt_dur, maybe_write_json, time_median, Options, Record};
use bcc_core::{Algorithm, BccConfig};
use bcc_graph::gen;
use bcc_smp::Pool;

fn main() {
    let opts = Options::parse(100_000);
    let n = opts.n;
    let p = opts.max_threads;
    let pool = Pool::new(p);
    let mut records = Vec::new();

    println!("== density sweep (n = {n}, p = {p}) ==");
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>8} {:>14}",
        "m", "m/n", "TV-opt", "TV-filter", "ratio", "edges filtered"
    );
    for mult in [1usize, 2, 4, 6, 10, 16, 24] {
        let m = (mult * n as usize)
            .max(n as usize - 1)
            .min(gen::max_edges(n));
        let g = gen::random_connected(n, m, opts.seed);

        let opt = time_median(opts.runs, || {
            let r = BccConfig::new(Algorithm::TvOpt)
                .run(&pool, &g)
                .unwrap()
                .result;
            std::hint::black_box(r.num_components);
        });
        let filt = time_median(opts.runs, || {
            let r = BccConfig::new(Algorithm::TvFilter)
                .run(&pool, &g)
                .unwrap()
                .result;
            std::hint::black_box(r.num_components);
        });
        let filtered = m.saturating_sub(2 * (n as usize - 1));
        println!(
            "{:>10} {:>10} {:>12} {:>12} {:>7.2}x {:>14}",
            m,
            mult,
            fmt_dur(opt),
            fmt_dur(filt),
            opt.as_secs_f64() / filt.as_secs_f64(),
            format!(">= {filtered}")
        );
        for (alg, d) in [("TV-opt", opt), ("TV-filter", filt)] {
            records.push(Record {
                experiment: "ablation_filter".into(),
                algorithm: alg.into(),
                n,
                m,
                threads: p,
                seconds: d.as_secs_f64(),
                steps: None,
            });
        }
    }

    println!("\n== pathological case: chain graph (d = n - 1) ==");
    let chain_n = (n / 10).max(1_000);
    let g = gen::path(chain_n);
    let opt = time_median(opts.runs, || {
        let r = BccConfig::new(Algorithm::TvOpt)
            .run(&pool, &g)
            .unwrap()
            .result;
        std::hint::black_box(r.num_components);
    });
    let filt = time_median(opts.runs, || {
        let r = BccConfig::new(Algorithm::TvFilter)
            .run(&pool, &g)
            .unwrap()
            .result;
        std::hint::black_box(r.num_components);
    });
    println!(
        "chain n = {chain_n}: TV-opt {}, TV-filter {} (BFS diameter term hurts the filter)",
        fmt_dur(opt),
        fmt_dur(filt)
    );
    for (alg, d) in [("TV-opt", opt), ("TV-filter", filt)] {
        records.push(Record {
            experiment: "ablation_filter_chain".into(),
            algorithm: alg.into(),
            n: chain_n,
            m: chain_n as usize - 1,
            threads: p,
            seconds: d.as_secs_f64(),
            steps: None,
        });
    }
    println!(
        "\nPaper guidance: if m <= 4n, fall back to TV-opt; the sweep above\n\
         locates the crossover on this machine."
    );
    maybe_write_json(&opts, &records);
}

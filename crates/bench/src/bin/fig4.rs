//! FIG4 — reproduces the paper's Figure 4: per-step execution-time
//! breakdown (Spanning-tree, Euler-tour, Root, Low-high, Label-edge,
//! Connected-components, Filtering) for TV-SMP, TV-opt, and TV-filter
//! at a fixed thread count, across edge densities.
//!
//! ```text
//! cargo run -p bcc-bench --release --bin fig4 -- [--n N] [--p P] [--json out.json]
//! ```
//! `--p` here is the single thread count to instrument (paper: 12).

use bcc_bench::{fmt_dur, maybe_write_json, Options, Record};
use bcc_core::{Algorithm, BccConfig, PhaseTimes};
use bcc_graph::gen;
use bcc_smp::Pool;

fn main() {
    let opts = Options::parse(100_000);
    let n = opts.n;
    let p = opts.max_threads;
    let pool = Pool::new(p);
    let logn = (32 - n.leading_zeros()) as usize;
    let densities: Vec<usize> = vec![4 * n as usize, 10 * n as usize, logn * n as usize];

    let mut records = Vec::new();
    for m in densities {
        let m = m.min(gen::max_edges(n));
        let g = gen::random_connected(n, m, opts.seed);
        println!("== n = {n}, m = {m}, p = {p} ==");
        println!(
            "  {:<16}{:>12}{:>12}{:>12}",
            "step", "TV-SMP", "TV-opt", "TV-filter"
        );

        let mut phase_sets: Vec<PhaseTimes> = Vec::new();
        let mut stat_sets = Vec::new();
        for alg in [Algorithm::TvSmp, Algorithm::TvOpt, Algorithm::TvFilter] {
            // Median-of-runs per phase is overkill; take the fastest of
            // `runs` total runs (phases are stable at these sizes).
            let mut best: Option<(PhaseTimes, bcc_core::PipelineStats)> = None;
            for _ in 0..opts.runs.max(1) {
                let r = BccConfig::new(alg).run(&pool, &g).unwrap().result;
                if best.as_ref().is_none_or(|(b, _)| r.phases.total < b.total) {
                    best = Some((r.phases, r.stats));
                }
            }
            let (phases, stats) = best.unwrap();
            stat_sets.push(stats);
            records.push(Record {
                experiment: "fig4".into(),
                algorithm: alg.name().into(),
                n,
                m,
                threads: p,
                seconds: phases.total.as_secs_f64(),
                steps: Some(
                    phases
                        .named()
                        .iter()
                        .map(|&(s, d)| (s.to_string(), d.as_secs_f64()))
                        .collect(),
                ),
            });
            phase_sets.push(phases);
        }

        for step in 0..7 {
            let name = phase_sets[0].named()[step].0;
            print!("  {name:<16}");
            for ps in &phase_sets {
                print!("{:>12}", fmt_dur(ps.named()[step].1));
            }
            println!();
        }
        print!("  {:<16}", "TOTAL");
        for ps in &phase_sets {
            print!("{:>12}", fmt_dur(ps.total));
        }
        println!();
        // Machine-independent work counters (paper's analysis, checkable
        // on any host).
        print!("  {:<16}", "effective m");
        for st in &stat_sets {
            print!("{:>12}", st.effective_edges);
        }
        println!();
        print!("  {:<6}", "aux V/E");
        for st in &stat_sets {
            print!("{:>17}", format!("{}/{}", st.aux_vertices, st.aux_edges));
        }
        println!();
        // SV graft rounds: spanning-tree run (TV-SMP's step 1, TV-filter's
        // forest of G − T) / step-6 tail.
        print!("  {:<16}", "SV rounds s/6");
        for st in &stat_sets {
            print!(
                "{:>12}",
                format!("{}/{}", st.sv_rounds_spanning, st.sv_rounds_cc)
            );
        }
        println!();
        // BFS direction schedule (TV-filter only): levels, how many ran
        // bottom-up, and the per-level T/B string.
        print!("  {:<16}", "BFS dirs");
        for st in &stat_sets {
            if st.bfs_levels == 0 {
                print!("{:>12}", "-");
            } else {
                print!(
                    "{:>12}",
                    format!("{}({}B)", st.bfs_directions, st.bfs_bottom_up_levels)
                );
            }
        }
        println!("\n");
    }

    println!(
        "Expected shapes (paper Fig. 4): TV-SMP spends far more on\n\
         Spanning-tree + Euler-tour + Root than TV-opt; TV-filter pays a\n\
         Filtering step but shrinks Low-high, Label-edge, and\n\
         Connected-components, increasingly with density."
    );
    maybe_write_json(&opts, &records);
}

//! `bcc-bench` — the paper's experiment grid in one command.
//!
//! ```text
//! bcc-bench [--smoke] [--n <vertices>] [--p <max threads>]
//!           [--trials <k>] [--seed <u64>] [--tuning <spec,spec,...>]
//!           [--workspace on|off|both] [--store on|off]
//!           [--serve on|off|only] [--out <path>]
//! bcc-bench compare <baseline.json> <candidate.json> [--threshold <pct>]
//! ```
//!
//! The default run sweeps every graph family × every algorithm ×
//! p ∈ {1, 2, 4, …, max} with median-of-k timing and writes
//! `BENCH_bcc.json` (schema in `bcc_bench::grid`). `--smoke` shrinks
//! the grid to CI size. `--tuning` takes a comma-separated list of
//! traversal ablation points (each a `+`-joined spec, e.g.
//! `--tuning topdown,hybrid` or `--tuning topdown+classic-sv,hybrid`);
//! the parallel algorithms run once per point. `--workspace` selects
//! the allocation-ablation axis: `on` (default) shares one scratch
//! arena per cell across trials so warm trials run in the
//! zero-allocation steady state, `off` allocates fresh per run, `both`
//! emits the two as separate series. `--store off` skips the
//! `store-multi` commit-latency cells (incremental vs from-scratch
//! `IndexStore` commits across batch sizes; on by default).
//! `--serve` controls the `serve` SLO cells (the `bcc-serve` daemon
//! under closed- and open-loop workload profiles, reporting queries/s
//! and latency/snapshot-lag quantiles): `on` (default) runs them after
//! the grid, `off` skips them, `only` runs nothing else — the CI
//! serve-smoke mode.
//! `compare` exits non-zero when the candidate document is more than
//! `--threshold` percent slower than the baseline on any matching cell.

use bcc_bench::grid::{self, GridConfig};
use bcc_bench::json;
use bcc_core::TraversalTuning;
use bcc_smp::Pool;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("compare") {
        return run_compare(&args[1..]);
    }
    run_grid_cli(&args)
}

fn bad_usage(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    eprintln!("usage: bcc-bench [--smoke] [--n <vertices>] [--p <max threads>] [--trials <k>] [--seed <u64>] [--tuning <spec,spec,...>] [--workspace on|off|both] [--store on|off] [--serve on|off|only] [--out <path>]");
    eprintln!("       bcc-bench compare <baseline.json> <candidate.json> [--threshold <pct>]");
    ExitCode::from(2)
}

fn run_grid_cli(args: &[String]) -> ExitCode {
    let machine = Pool::default_threads();
    let mut cfg = GridConfig::full(machine);
    let mut out = String::from("BENCH_bcc.json");
    let mut i = 0;
    while i < args.len() {
        let key = args[i].as_str();
        if key == "--smoke" {
            let threads = cfg.threads.clone();
            let tunings = cfg.tunings.clone();
            let workspace = cfg.workspace;
            let store = cfg.store;
            let serve = cfg.serve;
            cfg = GridConfig::smoke(machine);
            cfg.threads = threads;
            cfg.tunings = tunings;
            cfg.workspace = workspace;
            cfg.store = store;
            cfg.serve = serve;
            i += 1;
            continue;
        }
        if key == "--help" || key == "-h" {
            return bad_usage("bcc-bench: run the full experiment grid");
        }
        let Some(val) = args.get(i + 1) else {
            return bad_usage(&format!("missing value for {key}"));
        };
        let parsed = match key {
            "--n" => val.parse().map(|n| cfg.n = n).is_ok(),
            "--p" => val
                .parse()
                .map(|p| cfg.threads = grid::thread_sweep(p))
                .is_ok(),
            "--trials" => val.parse().map(|t| cfg.trials = t).is_ok(),
            "--seed" => val.parse().map(|s| cfg.seed = s).is_ok(),
            "--tuning" => match parse_tunings(val) {
                Ok(ts) => {
                    cfg.tunings = ts;
                    true
                }
                Err(e) => return bad_usage(&format!("bad value for --tuning: {e}")),
            },
            "--workspace" => match val.parse() {
                Ok(mode) => {
                    cfg.workspace = mode;
                    true
                }
                Err(e) => return bad_usage(&format!("bad value for --workspace: {e}")),
            },
            "--store" => match val.as_str() {
                "on" => {
                    cfg.store = true;
                    true
                }
                "off" => {
                    cfg.store = false;
                    true
                }
                _ => false,
            },
            "--serve" => match val.parse() {
                Ok(mode) => {
                    cfg.serve = mode;
                    true
                }
                Err(e) => return bad_usage(&format!("bad value for --serve: {e}")),
            },
            "--out" => {
                out = val.clone();
                true
            }
            other => return bad_usage(&format!("unknown flag {other}")),
        };
        if !parsed {
            return bad_usage(&format!("bad value for {key}: {val}"));
        }
        i += 2;
    }

    let specs: Vec<String> = cfg.tunings.iter().map(TraversalTuning::spec).collect();
    eprintln!(
        "bcc-bench grid: n={} threads={:?} trials={} seed={} tunings={:?} workspace={} store={} serve={}{}",
        cfg.n,
        cfg.threads,
        cfg.trials,
        cfg.seed,
        specs,
        cfg.workspace.name(),
        if cfg.store { "on" } else { "off" },
        cfg.serve.name(),
        if cfg.smoke { " (smoke)" } else { "" }
    );
    let doc = grid::run_grid(&cfg, |line| eprintln!("  {line}"));
    if let Err(e) = std::fs::write(&out, doc.pretty()) {
        eprintln!("failed to write {out}: {e}");
        return ExitCode::FAILURE;
    }
    let cells = doc
        .get("entries")
        .and_then(json::Json::as_arr)
        .map_or(0, <[json::Json]>::len);
    eprintln!("wrote {cells} cells to {out}");
    ExitCode::SUCCESS
}

/// Parses `--tuning`'s comma-separated ablation list; each element is a
/// `+`-joined [`TraversalTuning`] spec (`topdown`, `hybrid`,
/// `classic-sv`, `fastsv`). Duplicate specs are rejected — they would
/// collide on the entry key.
fn parse_tunings(val: &str) -> Result<Vec<TraversalTuning>, String> {
    let mut tunings: Vec<TraversalTuning> = vec![];
    for spec in val.split(',') {
        let t: TraversalTuning = spec.trim().parse()?;
        if tunings.contains(&t) {
            return Err(format!("duplicate tuning {:?}", t.spec()));
        }
        tunings.push(t);
    }
    if tunings.is_empty() {
        return Err("empty tuning list".to_string());
    }
    Ok(tunings)
}

fn run_compare(args: &[String]) -> ExitCode {
    let mut paths: Vec<&String> = vec![];
    let mut threshold = 25.0f64;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--threshold" {
            let Some(val) = args.get(i + 1) else {
                return bad_usage("missing value for --threshold");
            };
            match val.parse() {
                Ok(t) => threshold = t,
                Err(_) => return bad_usage(&format!("bad value for --threshold: {val}")),
            }
            i += 2;
        } else {
            paths.push(&args[i]);
            i += 1;
        }
    }
    let [base_path, cand_path] = paths[..] else {
        return bad_usage("compare needs exactly two BENCH files");
    };
    let load = |path: &str| -> Result<json::Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        json::parse(&text).map_err(|e| format!("parse {path}: {e}"))
    };
    let (base, cand) = match (load(base_path), load(cand_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match grid::compare(&base, &cand, threshold) {
        Err(e) => {
            eprintln!("compare failed: {e}");
            ExitCode::FAILURE
        }
        Ok(regressions) if regressions.is_empty() => {
            eprintln!("no regressions above {threshold}% ({base_path} -> {cand_path})");
            ExitCode::SUCCESS
        }
        Ok(regressions) => {
            eprintln!(
                "{} cell(s) regressed by more than {threshold}%:",
                regressions.len()
            );
            for r in &regressions {
                eprintln!(
                    "  {:<40} {:>10.6}s -> {:>10.6}s  (+{:.1}%)",
                    r.key, r.baseline, r.candidate, r.slowdown_pct
                );
            }
            ExitCode::FAILURE
        }
    }
}

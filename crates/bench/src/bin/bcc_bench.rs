//! `bcc-bench` — the paper's experiment grid in one command.
//!
//! ```text
//! bcc-bench [--smoke] [--n <vertices>] [--p <max threads>]
//!           [--trials <k>] [--seed <u64>] [--tuning <spec,spec,...>]
//!           [--workspace on|off|both] [--store on|off]
//!           [--serve on|off|only] [--prims on|off|only]
//!           [--input <graph file>] [--out <path>]
//! bcc-bench prims [grid flags]
//! bcc-bench compare <baseline.json> <candidate.json> [--threshold <pct>]
//!           [--rss-threshold <pct>]
//! bcc-bench ingest <graph file> [--keep <out.bccsr>]
//! bcc-bench xl --graph <family>=<path> [--graph ...] [--p <max threads>]
//!           [--trials <k>] [--tv-cap <n>] [--smoke] [--out <path>]
//! ```
//!
//! The default run sweeps every graph family × every algorithm ×
//! p ∈ {1, 2, 4, …, max} with median-of-k timing and writes
//! `BENCH_bcc.json` (schema in `bcc_bench::grid`). `--smoke` shrinks
//! the grid to CI size. `--tuning` takes a comma-separated list of
//! traversal ablation points (each a `+`-joined spec, e.g.
//! `--tuning topdown,hybrid` or `--tuning topdown+classic-sv,hybrid`);
//! the parallel algorithms run once per point. `--workspace` selects
//! the allocation-ablation axis: `on` (default) shares one scratch
//! arena per cell across trials so warm trials run in the
//! zero-allocation steady state, `off` allocates fresh per run, `both`
//! emits the two as separate series. `--store off` skips the
//! `store-multi` commit-latency cells (incremental vs from-scratch
//! `IndexStore` commits across batch sizes; on by default).
//! `--serve` controls the `serve` SLO cells (the `bcc-serve` daemon
//! under closed- and open-loop workload profiles, reporting queries/s
//! and latency/snapshot-lag quantiles): `on` (default) runs them after
//! the grid, `off` skips them, `only` runs nothing else — the CI
//! serve-smoke mode.
//! `--prims` controls the primitive-kernel cells (vectorized scan /
//! compaction / bitmap / radix kernels against their frozen scalar
//! references) the same way; the `prims` subcommand is shorthand for
//! `--prims only` — the CI prims-smoke mode.
//! `--input` benches a real on-disk dataset (text edge list or mapped
//! `.bccsr`) as the single `file` family instead of the generators.
//! `compare` exits non-zero when the candidate document is more than
//! `--threshold` percent slower than the baseline on any matching cell.
//! `ingest` is the out-of-core equivalence check: it converts a text
//! edge list to `.bccsr` (or takes one directly), builds biconnected
//! components from both the in-memory and the mmap-backed graph, and
//! exits non-zero unless the labelings match bit-for-bit — reporting
//! peak RSS of the from-disk build against the CSR file size.
//! `xl` is the 10M-vertex-class tier (`bcc_bench::xl`): it sweeps
//! mmap-backed `.bccsr` inputs from `bcc-convert gen`, gates
//! `peak_rss_bytes` alongside time, and caps the O(m)-scratch
//! pipelines at `--tv-cap` vertices while FAST-BCC runs everywhere.

use bcc_bench::grid::{self, GridConfig};
use bcc_bench::json;
use bcc_core::{Algorithm, BccConfig, TraversalTuning};
use bcc_graph::{bccsr, io, GraphBuilder};
use bcc_smp::{rss, Pool};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("compare") {
        return run_compare(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("ingest") {
        return run_ingest(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("prims") {
        return run_grid_cli(&args[1..], true);
    }
    if args.first().map(String::as_str) == Some("xl") {
        return run_xl_cli(&args[1..]);
    }
    run_grid_cli(&args, false)
}

fn bad_usage(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    eprintln!("usage: bcc-bench [--smoke] [--n <vertices>] [--p <max threads>] [--trials <k>] [--seed <u64>] [--tuning <spec,spec,...>] [--workspace on|off|both] [--store on|off] [--serve on|off|only] [--prims on|off|only] [--input <graph file>] [--out <path>]");
    eprintln!("       bcc-bench prims [grid flags]   (shorthand for --prims only)");
    eprintln!("       bcc-bench compare <baseline.json> <candidate.json> [--threshold <pct>] [--rss-threshold <pct>]");
    eprintln!("       bcc-bench ingest <graph file> [--keep <out.bccsr>]");
    eprintln!("       bcc-bench xl --graph <family>=<path> [--graph ...] [--p <max threads>] [--trials <k>] [--tv-cap <n>] [--smoke] [--out <path>]");
    ExitCode::from(2)
}

fn run_xl_cli(args: &[String]) -> ExitCode {
    let mut cfg = bcc_bench::xl::XlConfig::default();
    let mut out = String::from("BENCH_xl.json");
    let mut i = 0;
    while i < args.len() {
        let key = args[i].as_str();
        if key == "--smoke" {
            cfg.smoke = true;
            i += 1;
            continue;
        }
        let Some(val) = args.get(i + 1) else {
            return bad_usage(&format!("missing value for {key}"));
        };
        let parsed = match key {
            "--graph" => match val.split_once('=') {
                Some((family, path)) if !family.is_empty() && !path.is_empty() => {
                    cfg.inputs.push(bcc_bench::xl::XlInput {
                        family: family.to_string(),
                        path: PathBuf::from(path),
                    });
                    true
                }
                _ => return bad_usage(&format!("--graph needs <family>=<path>, got {val:?}")),
            },
            "--p" => val
                .parse()
                .map(|p| cfg.threads = grid::thread_sweep(p))
                .is_ok(),
            "--trials" => val.parse().map(|t| cfg.trials = t).is_ok(),
            "--tv-cap" => val.parse().map(|c| cfg.tv_cap = c).is_ok(),
            "--out" => {
                out = val.clone();
                true
            }
            other => return bad_usage(&format!("unknown flag {other}")),
        };
        if !parsed {
            return bad_usage(&format!("bad value for {key}: {val}"));
        }
        i += 2;
    }
    if cfg.inputs.is_empty() {
        return bad_usage("xl needs at least one --graph <family>=<path>");
    }
    let doc = bcc_bench::xl::run_xl(&cfg, |line| eprintln!("{line}"));
    if let Err(e) = std::fs::write(&out, doc.pretty()) {
        eprintln!("writing {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out}");
    ExitCode::SUCCESS
}

fn run_grid_cli(args: &[String], prims_only: bool) -> ExitCode {
    let machine = Pool::default_threads();
    let mut cfg = GridConfig::full(machine);
    let mut out = String::from("BENCH_bcc.json");
    let mut i = 0;
    while i < args.len() {
        let key = args[i].as_str();
        if key == "--smoke" {
            let threads = cfg.threads.clone();
            let tunings = cfg.tunings.clone();
            let workspace = cfg.workspace;
            let store = cfg.store;
            let serve = cfg.serve;
            let prims = cfg.prims;
            let input = cfg.input.take();
            cfg = GridConfig::smoke(machine);
            cfg.threads = threads;
            cfg.tunings = tunings;
            cfg.workspace = workspace;
            cfg.store = store;
            cfg.serve = serve;
            cfg.prims = prims;
            cfg.input = input;
            i += 1;
            continue;
        }
        if key == "--help" || key == "-h" {
            return bad_usage("bcc-bench: run the full experiment grid");
        }
        let Some(val) = args.get(i + 1) else {
            return bad_usage(&format!("missing value for {key}"));
        };
        let parsed = match key {
            "--n" => val.parse().map(|n| cfg.n = n).is_ok(),
            "--p" => val
                .parse()
                .map(|p| cfg.threads = grid::thread_sweep(p))
                .is_ok(),
            "--trials" => val.parse().map(|t| cfg.trials = t).is_ok(),
            "--seed" => val.parse().map(|s| cfg.seed = s).is_ok(),
            "--tuning" => match parse_tunings(val) {
                Ok(ts) => {
                    cfg.tunings = ts;
                    true
                }
                Err(e) => return bad_usage(&format!("bad value for --tuning: {e}")),
            },
            "--workspace" => match val.parse() {
                Ok(mode) => {
                    cfg.workspace = mode;
                    true
                }
                Err(e) => return bad_usage(&format!("bad value for --workspace: {e}")),
            },
            "--store" => match val.as_str() {
                "on" => {
                    cfg.store = true;
                    true
                }
                "off" => {
                    cfg.store = false;
                    true
                }
                _ => false,
            },
            "--serve" => match val.parse() {
                Ok(mode) => {
                    cfg.serve = mode;
                    true
                }
                Err(e) => return bad_usage(&format!("bad value for --serve: {e}")),
            },
            "--prims" => match val.parse() {
                Ok(mode) => {
                    cfg.prims = mode;
                    true
                }
                Err(e) => return bad_usage(&format!("bad value for --prims: {e}")),
            },
            "--input" => {
                cfg.input = Some(std::path::PathBuf::from(val));
                true
            }
            "--out" => {
                out = val.clone();
                true
            }
            other => return bad_usage(&format!("unknown flag {other}")),
        };
        if !parsed {
            return bad_usage(&format!("bad value for {key}: {val}"));
        }
        i += 2;
    }
    if prims_only {
        cfg.prims = bcc_bench::prims::PrimsMode::Only;
    }

    let specs: Vec<String> = cfg.tunings.iter().map(TraversalTuning::spec).collect();
    eprintln!(
        "bcc-bench grid: n={} threads={:?} trials={} seed={} tunings={:?} workspace={} store={} serve={} prims={}{}{}",
        cfg.n,
        cfg.threads,
        cfg.trials,
        cfg.seed,
        specs,
        cfg.workspace.name(),
        if cfg.store { "on" } else { "off" },
        cfg.serve.name(),
        cfg.prims.name(),
        cfg.input
            .as_deref()
            .map(|p| format!(" input={}", p.display()))
            .unwrap_or_default(),
        if cfg.smoke { " (smoke)" } else { "" }
    );
    let doc = grid::run_grid(&cfg, |line| eprintln!("  {line}"));
    if let Err(e) = std::fs::write(&out, doc.pretty()) {
        eprintln!("failed to write {out}: {e}");
        return ExitCode::FAILURE;
    }
    let cells = doc
        .get("entries")
        .and_then(json::Json::as_arr)
        .map_or(0, <[json::Json]>::len);
    eprintln!("wrote {cells} cells to {out}");
    ExitCode::SUCCESS
}

/// Parses `--tuning`'s comma-separated ablation list; each element is a
/// `+`-joined [`TraversalTuning`] spec (`topdown`, `hybrid`,
/// `classic-sv`, `fastsv`). Duplicate specs are rejected — they would
/// collide on the entry key.
fn parse_tunings(val: &str) -> Result<Vec<TraversalTuning>, String> {
    let mut tunings: Vec<TraversalTuning> = vec![];
    for spec in val.split(',') {
        let t: TraversalTuning = spec.trim().parse()?;
        if tunings.contains(&t) {
            return Err(format!("duplicate tuning {:?}", t.spec()));
        }
        tunings.push(t);
    }
    if tunings.is_empty() {
        return Err("empty tuning list".to_string());
    }
    Ok(tunings)
}

/// The out-of-core ingest equivalence check. Loads the input (text
/// edge list or `.bccsr`), ensures a `.bccsr` twin exists (converting
/// text to a temp file, or to `--keep`'s path), builds biconnected
/// components from the mmap-backed graph *and* from the in-memory
/// graph, and exits non-zero unless the per-edge labelings are
/// bit-for-bit identical. The from-disk build runs first, against a
/// freshly reset kernel RSS watermark, so its reported peak-RSS delta
/// measures the build alone — the number the "from-disk builds stay
/// near the CSR file size" claim is checked against.
fn run_ingest(args: &[String]) -> ExitCode {
    let mut input: Option<PathBuf> = None;
    let mut keep: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--keep" {
            let Some(val) = args.get(i + 1) else {
                return bad_usage("missing value for --keep");
            };
            keep = Some(PathBuf::from(val));
            i += 2;
        } else if input.is_none() {
            input = Some(PathBuf::from(&args[i]));
            i += 1;
        } else {
            return bad_usage(&format!("unexpected ingest argument {}", args[i]));
        }
    }
    let Some(input) = input else {
        return bad_usage("ingest needs a graph file");
    };

    let fail = |msg: std::fmt::Arguments| -> ExitCode {
        eprintln!("bcc-bench ingest: {msg}");
        ExitCode::FAILURE
    };
    let loaded = match io::load(&input) {
        Ok(g) => g,
        Err(e) => return fail(format_args!("{}: {e}", input.display())),
    };
    // Ensure the .bccsr twin exists. Temp files are cleaned up at the
    // end; `--keep` persists the conversion.
    let (bccsr_path, temp) = if loaded.is_mapped() {
        (input.clone(), false)
    } else {
        let out = keep.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!("bcc-ingest-{}.bccsr", std::process::id()))
        });
        if let Err(e) = bccsr::write(&out, &loaded) {
            return fail(format_args!("writing {}: {e}", out.display()));
        }
        (out, keep.is_none())
    };
    let cleanup = || {
        if temp {
            std::fs::remove_file(&bccsr_path).ok();
        }
    };
    // Peak-RSS delta of one ingest path: the watermark is reset, `f`
    // builds a (Graph, Csr) pair, and the delta over the pre-build RSS
    // is that path's own footprint — the resident cost of going from
    // bytes on disk to a query-ready adjacency structure.
    let measure =
        |f: &dyn Fn() -> Result<bcc_graph::Graph, String>| -> Result<(bcc_graph::Graph, Option<u64>), String> {
            let before = rss::current_rss_bytes();
            let rss_ok = rss::reset_peak().is_ok();
            let g = f()?;
            let csr = bcc_graph::Csr::build(&g);
            let delta = match (rss_ok, before, rss::peak_rss_bytes()) {
                (true, Some(b), Some(p)) => Some(p.saturating_sub(b)),
                _ => None,
            };
            drop(csr);
            Ok((g, delta))
        };
    let file_bytes = std::fs::metadata(&bccsr_path).map(|m| m.len()).unwrap_or(0);
    let report_rss = |label: &str, delta: Option<u64>| match delta {
        Some(d) => println!(
            "{label} ingest: peak RSS delta {d} bytes ({:.2}x the .bccsr file)",
            d as f64 / file_bytes.max(1) as f64
        ),
        None => println!("{label} ingest: peak RSS unavailable on this platform"),
    };

    // From-disk ingest: verified open plus a CSR that borrows the
    // mapping zero-copy, so the delta is dominated by the page cache
    // of the file itself (~1x file size, the out-of-core claim).
    let (mapped, disk_delta) = match measure(&|| {
        bcc_graph::MappedCsr::open_graph(&bccsr_path)
            .map_err(|e| format!("{}: {e}", bccsr_path.display()))
    }) {
        Ok(r) => r,
        Err(e) => {
            cleanup();
            return fail(format_args!("{e}"));
        }
    };
    println!(
        "ingest: {} ({} vertices, {} edges, .bccsr {} bytes)",
        input.display(),
        mapped.n(),
        mapped.m(),
        file_bytes
    );
    report_rss("from-disk", disk_delta);

    // In-memory ingest of the same edges: the owned edge list plus a
    // materialized CSR — the ~2x spike the mapped path avoids.
    let (in_mem, mem_delta) = match measure(&|| {
        GraphBuilder::new(mapped.n())
            .edges(mapped.edges().iter().copied())
            .build()
            .map_err(|e| format!("rebuilding in-memory twin: {e}"))
    }) {
        Ok(r) => r,
        Err(e) => {
            cleanup();
            return fail(format_args!("{e}"));
        }
    };
    report_rss("in-memory", mem_delta);
    drop(loaded);

    // The equivalence gate: identical per-edge labels from both
    // storage backends, through the full parallel pipeline.
    let pool = Pool::new(Pool::default_threads());
    let run = |g: &bcc_graph::Graph| -> Result<(Vec<u32>, u32), bcc_core::BccError> {
        let run = BccConfig::new(Algorithm::TvFilter).run_any(&pool, g)?;
        Ok((run.result.edge_comp, run.result.num_components))
    };
    let (disk_labels, disk_comps) = match run(&mapped) {
        Ok(r) => r,
        Err(e) => {
            cleanup();
            return fail(format_args!("from-disk build failed: {e}"));
        }
    };
    let (mem_labels, mem_comps) = match run(&in_mem) {
        Ok(r) => r,
        Err(e) => {
            cleanup();
            return fail(format_args!("in-memory build failed: {e}"));
        }
    };
    cleanup();

    if disk_labels != mem_labels || disk_comps != mem_comps {
        let diverge = disk_labels
            .iter()
            .zip(&mem_labels)
            .position(|(a, b)| a != b);
        return fail(format_args!(
            "labelings diverge: {disk_comps} vs {mem_comps} components, first differing edge {diverge:?}"
        ));
    }
    println!(
        "labels: identical across {} edges ({} biconnected components)",
        disk_labels.len(),
        disk_comps
    );
    ExitCode::SUCCESS
}

fn run_compare(args: &[String]) -> ExitCode {
    let mut paths: Vec<&String> = vec![];
    let mut threshold = 25.0f64;
    let mut rss_threshold = 25.0f64;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--threshold" || args[i] == "--rss-threshold" {
            let flag = &args[i];
            let Some(val) = args.get(i + 1) else {
                return bad_usage(&format!("missing value for {flag}"));
            };
            match val.parse() {
                Ok(t) if flag == "--threshold" => threshold = t,
                Ok(t) => rss_threshold = t,
                Err(_) => return bad_usage(&format!("bad value for {flag}: {val}")),
            }
            i += 2;
        } else {
            paths.push(&args[i]);
            i += 1;
        }
    }
    let [base_path, cand_path] = paths[..] else {
        return bad_usage("compare needs exactly two BENCH files");
    };
    let load = |path: &str| -> Result<json::Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        json::parse(&text).map_err(|e| format!("parse {path}: {e}"))
    };
    let (base, cand) = match (load(base_path), load(cand_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match grid::compare(&base, &cand, threshold, rss_threshold) {
        Err(e) => {
            eprintln!("compare failed: {e}");
            ExitCode::FAILURE
        }
        Ok(regressions) if regressions.is_empty() => {
            eprintln!(
                "no regressions above {threshold}% time / {rss_threshold}% rss \
                 ({base_path} -> {cand_path})"
            );
            ExitCode::SUCCESS
        }
        Ok(regressions) => {
            eprintln!(
                "{} cell(s) regressed (thresholds: {threshold}% time, {rss_threshold}% rss):",
                regressions.len()
            );
            for r in &regressions {
                if r.metric == "peak_rss_bytes" {
                    const MIB: f64 = 1024.0 * 1024.0;
                    eprintln!(
                        "  {:<40} [rss] {:>9.1} MiB -> {:>9.1} MiB  (+{:.1}%)",
                        r.key,
                        r.baseline / MIB,
                        r.candidate / MIB,
                        r.slowdown_pct
                    );
                } else {
                    eprintln!(
                        "  {:<40} {:>10.6}s -> {:>10.6}s  (+{:.1}%)",
                        r.key, r.baseline, r.candidate, r.slowdown_pct
                    );
                }
            }
            ExitCode::FAILURE
        }
    }
}

//! FIG3 — reproduces the paper's Figure 3: execution time of
//! Sequential, TV-SMP, TV-opt, and TV-filter on random graphs of fixed
//! n and varying edge density, swept over thread counts.
//!
//! Paper scale: n = 1M, m ∈ {4M, 6M, 10M, 20M}, p = 1..12 on a Sun
//! E4500. Default here is a scaled n = 100k (override with `--n
//! 1000000` for the paper-scale run).
//!
//! ```text
//! cargo run -p bcc-bench --release --bin fig3 -- [--n N] [--p P] [--runs K] [--json out.json]
//! ```

use bcc_bench::{fmt_dur, maybe_write_json, time_median, Options, Record};
use bcc_core::{Algorithm, BccConfig};
use bcc_graph::gen;
use bcc_smp::Pool;

fn main() {
    let opts = Options::parse(100_000);
    let n = opts.n;
    // The paper's densities relative to n = 1M: 4n, 6n, 10n, n·log2(n).
    let logn = (32 - n.leading_zeros()) as usize;
    let densities: Vec<(String, usize)> = vec![
        ("4n".into(), 4 * n as usize),
        ("6n".into(), 6 * n as usize),
        ("10n".into(), 10 * n as usize),
        (format!("n·log n = {logn}n"), logn * n as usize),
    ];

    let mut records = Vec::new();
    for (label, m) in &densities {
        let m = (*m).min(gen::max_edges(n));
        println!("== random graph: n = {n}, m = {m} ({label}) ==");
        let g = gen::random_connected(n, m, opts.seed);

        // Sequential baseline.
        let seq = time_median(opts.runs, || {
            let r = BccConfig::new(Algorithm::Sequential)
                .run(&Pool::new(1), &g)
                .unwrap()
                .result;
            std::hint::black_box(r.num_components);
        });
        println!("  {:<11} {:>10}", "Sequential", fmt_dur(seq));
        records.push(Record {
            experiment: "fig3".into(),
            algorithm: "Sequential".into(),
            n,
            m,
            threads: 1,
            seconds: seq.as_secs_f64(),
            steps: None,
        });

        println!(
            "  {:<11} {}",
            "p:",
            opts.thread_sweep()
                .iter()
                .map(|p| format!("{p:>10}"))
                .collect::<String>()
        );
        for alg in [Algorithm::TvSmp, Algorithm::TvOpt, Algorithm::TvFilter] {
            let mut row = String::new();
            for &p in &opts.thread_sweep() {
                let pool = Pool::new(p);
                let d = time_median(opts.runs, || {
                    let r = BccConfig::new(alg).run(&pool, &g).unwrap().result;
                    std::hint::black_box(r.num_components);
                });
                row.push_str(&format!("{:>10}", fmt_dur(d)));
                records.push(Record {
                    experiment: "fig3".into(),
                    algorithm: alg.name().into(),
                    n,
                    m,
                    threads: p,
                    seconds: d.as_secs_f64(),
                    steps: None,
                });
            }
            println!("  {:<11} {row}", alg.name());
        }

        // Speedup summary at max threads.
        let best = |name: &str| {
            records
                .iter()
                .filter(|r| r.m == m && r.algorithm == name)
                .map(|r| r.seconds)
                .fold(f64::INFINITY, f64::min)
        };
        println!(
            "  speedup vs sequential at best p: TV-SMP {:.2}x, TV-opt {:.2}x, TV-filter {:.2}x\n",
            seq.as_secs_f64() / best("TV-SMP"),
            seq.as_secs_f64() / best("TV-opt"),
            seq.as_secs_f64() / best("TV-filter"),
        );
    }

    maybe_write_json(&opts, &records);
}

//! ABL-TOUR — the §3.2 engineering ablation: classic Euler-tour
//! construction (sort + cross pointers + list ranking, three ranking
//! algorithms) versus the cache-friendly DFS-order tour with prefix-sum
//! tree computations. This isolates why TV-opt beats TV-SMP.
//!
//! ```text
//! cargo run -p bcc-bench --release --bin ablation_tour -- [--n N] [--p P]
//! ```

use bcc_bench::{fmt_dur, maybe_write_json, time_median, Options, Record};
use bcc_connectivity::bfs::bfs_tree_seq;
use bcc_euler::{dfs_euler_tour, euler_tour_classic, rooted_euler_tour, tree_computations, Ranker};
use bcc_graph::{gen, Csr};
use bcc_smp::Pool;

fn main() {
    let opts = Options::parse(500_000);
    let n = opts.n;
    let p = opts.max_threads;
    let pool = Pool::new(p);
    let g = gen::random_tree(n, opts.seed);
    let csr = Csr::build(&g);
    let bfs = bfs_tree_seq(&csr, 0);
    let mut records = Vec::new();

    println!("random tree, n = {n}, p = {p}; timing tour + tree computations");
    type Variant<'a> = (&'a str, Box<dyn Fn() + 'a>);
    let variants: Vec<Variant> = vec![
        (
            "classic + seq-rank",
            Box::new(|| {
                let t = euler_tour_classic(&pool, n, g.edges().to_vec(), 0, Ranker::Sequential);
                std::hint::black_box(tree_computations(&pool, &t, 0).preorder[1]);
            }),
        ),
        (
            "classic + Wyllie",
            Box::new(|| {
                let t = euler_tour_classic(&pool, n, g.edges().to_vec(), 0, Ranker::Wyllie);
                std::hint::black_box(tree_computations(&pool, &t, 0).preorder[1]);
            }),
        ),
        (
            "classic + Helman-JaJa",
            Box::new(|| {
                let t = euler_tour_classic(&pool, n, g.edges().to_vec(), 0, Ranker::HelmanJaja);
                std::hint::black_box(tree_computations(&pool, &t, 0).preorder[1]);
            }),
        ),
        (
            "rooted succ + Helman-JaJa",
            Box::new(|| {
                let t = rooted_euler_tour(
                    &pool,
                    n,
                    g.edges().to_vec(),
                    &bfs.parent,
                    0,
                    Ranker::HelmanJaja,
                );
                std::hint::black_box(tree_computations(&pool, &t, 0).preorder[1]);
            }),
        ),
        (
            "DFS-order + prefix sums",
            Box::new(|| {
                let t = dfs_euler_tour(&pool, n, g.edges().to_vec(), &bfs.parent, 0);
                std::hint::black_box(tree_computations(&pool, &t, 0).preorder[1]);
            }),
        ),
    ];

    for (name, f) in &variants {
        let d = time_median(opts.runs, f);
        println!("  {name:<26} {:>10}", fmt_dur(d));
        records.push(Record {
            experiment: "ablation_tour".into(),
            algorithm: name.to_string(),
            n,
            m: n as usize - 1,
            threads: p,
            seconds: d.as_secs_f64(),
            steps: None,
        });
    }

    println!(
        "\nExpected shape (paper §3.2): Wyllie pays O(n log n) work; the rooted\n\
         construction drops the sort but keeps the ranking; the DFS-order\n\
         tour avoids both, which is the bulk of TV-opt's advantage in\n\
         Fig. 4's Euler-tour and Root bars."
    );
    maybe_write_json(&opts, &records);
}

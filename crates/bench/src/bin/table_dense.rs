//! TBL-WS — the Woo–Sahni-style dense-input study the paper cites in
//! §1: biconnected components of graphs retaining 70% / 90% of the
//! complete graph's edges, n ≤ 2000, reporting parallel efficiency
//! (speedup / p). Woo & Sahni achieved efficiencies up to 0.7 on a
//! hypercube for these inputs.
//!
//! ```text
//! cargo run -p bcc-bench --release --bin table_dense -- [--n N] [--p P]
//! ```

use bcc_bench::{fmt_dur, maybe_write_json, time_median, Options, Record};
use bcc_core::{Algorithm, BccConfig};
use bcc_graph::gen;
use bcc_smp::Pool;

fn main() {
    let opts = Options::parse(2_000);
    let mut records = Vec::new();

    println!(
        "{:>6} {:>5} {:>10} | {:>12} {:>14} {:>10} {:>6}",
        "n", "pct", "m", "Sequential", "TV-filter(p)", "speedup", "eff"
    );
    for &n in &[opts.n / 2, opts.n] {
        for &pct in &[0.7f64, 0.9] {
            let g = gen::dense_percent(n, pct, opts.seed);
            assert!(bcc_graph::validate::is_connected(&g));

            let seq = time_median(opts.runs, || {
                let r = BccConfig::new(Algorithm::Sequential)
                    .run(&Pool::new(1), &g)
                    .unwrap()
                    .result;
                std::hint::black_box(r.num_components);
            });
            records.push(Record {
                experiment: "table_dense".into(),
                algorithm: "Sequential".into(),
                n,
                m: g.m(),
                threads: 1,
                seconds: seq.as_secs_f64(),
                steps: None,
            });

            let p = opts.max_threads;
            let pool = Pool::new(p);
            let par = time_median(opts.runs, || {
                let r = BccConfig::new(Algorithm::TvFilter)
                    .run(&pool, &g)
                    .unwrap()
                    .result;
                std::hint::black_box(r.num_components);
            });
            records.push(Record {
                experiment: "table_dense".into(),
                algorithm: "TV-filter".into(),
                n,
                m: g.m(),
                threads: p,
                seconds: par.as_secs_f64(),
                steps: None,
            });

            let speedup = seq.as_secs_f64() / par.as_secs_f64();
            println!(
                "{:>6} {:>4.0}% {:>10} | {:>12} {:>14} {:>9.2}x {:>6.2}",
                n,
                pct * 100.0,
                g.m(),
                fmt_dur(seq),
                fmt_dur(par),
                speedup,
                speedup / p as f64
            );
        }
    }
    println!(
        "\n(Woo & Sahni 1991 reported efficiencies up to 0.7 on dense inputs;\n\
         on a machine with few physical cores the efficiency column reflects\n\
         oversubscription rather than algorithm quality — the reproducible\n\
         signal is TV-filter's near-sequential wall-clock on dense graphs.)"
    );
    maybe_write_json(&opts, &records);
}

//! ABL-LOWHIGH — two ways to aggregate subtree extremes for the
//! Low-high step: the O(n log n)-work / O(1)-round sparse range table
//! versus the O(n + m)-work / O(depth)-round level-synchronous sweep.
//! Shallow BFS trees (random graphs) favor the sweep; the chain graph
//! shows its collapse.
//!
//! ```text
//! cargo run -p bcc-bench --release --bin ablation_lowhigh -- [--n N] [--p P]
//! ```

use bcc_bench::{fmt_dur, maybe_write_json, time_median, Options, Record};
use bcc_connectivity::bfs::bfs_tree_par;
use bcc_core::low_high::{compute_low_high_with, LowHighMethod};
use bcc_graph::{gen, Csr, Edge, Graph};
use bcc_smp::Pool;

fn prepared(g: &Graph, pool: &Pool) -> (Vec<Edge>, Vec<bool>, bcc_euler::TreeInfo, u32) {
    let csr = Csr::build_par(pool, g);
    let bfs = bfs_tree_par(pool, &csr, 0);
    assert_eq!(bfs.reached, g.n());
    let mut is_tree = vec![false; g.m()];
    let mut tree_edges = Vec::with_capacity(g.n() as usize - 1);
    for v in 0..g.n() {
        let eid = bfs.parent_eid[v as usize];
        if eid != bcc_smp::NIL {
            is_tree[eid as usize] = true;
            tree_edges.push(g.edges()[eid as usize]);
        }
    }
    let tour = bcc_euler::dfs_euler_tour(pool, g.n(), tree_edges, &bfs.parent, 0);
    let info = bcc_euler::tree_computations(pool, &tour, 0);
    let depth = info.depth.iter().copied().max().unwrap_or(0);
    (g.edges().to_vec(), is_tree, info, depth)
}

fn main() {
    let opts = Options::parse(200_000);
    let n = opts.n;
    let p = opts.max_threads;
    let pool = Pool::new(p);
    let mut records = Vec::new();

    let instances: Vec<(String, Graph)> = vec![
        (
            "random m=4n (shallow BFS tree)".into(),
            gen::random_connected(n, 4 * n as usize, opts.seed),
        ),
        (
            "random m=12n".into(),
            gen::random_connected(n, 12 * n as usize, opts.seed),
        ),
        ("chain (depth = n-1)".into(), gen::path(n / 4)),
    ];

    println!("p = {p}");
    println!(
        "{:<34} {:>8} {:>14} {:>14}",
        "instance", "depth", "range table", "level sweep"
    );
    for (name, g) in &instances {
        let (edges, is_tree, info, depth) = prepared(g, &pool);
        let mut row = Vec::new();
        for method in [LowHighMethod::RangeTable, LowHighMethod::LevelSweep] {
            let d = time_median(opts.runs, || {
                let lh = compute_low_high_with(&pool, &edges, &is_tree, &info, method);
                std::hint::black_box(lh.low[0]);
            });
            row.push(d);
            records.push(Record {
                experiment: "ablation_lowhigh".into(),
                algorithm: format!("{method:?}"),
                n: g.n(),
                m: g.m(),
                threads: p,
                seconds: d.as_secs_f64(),
                steps: None,
            });
        }
        println!(
            "{:<34} {:>8} {:>14} {:>14}",
            name,
            depth,
            fmt_dur(row[0]),
            fmt_dur(row[1])
        );
    }
    println!(
        "\nThe sweep does O(n+m) work in O(depth) rounds; the table does\n\
         O(n log n) work in O(1) rounds. BFS trees of random graphs are\n\
         O(log n) deep, so both are viable there; the chain is the sweep's\n\
         pathological case."
    );
    maybe_write_json(&opts, &records);
}

//! ABL-SPT — spanning-tree ablation (§3.2): Shiloach–Vishkin graft &
//! shortcut (edge-list input, unrooted) versus level-synchronous BFS
//! versus the work-stealing graph traversal (both adjacency input,
//! rooted). The rooted algorithms merge the paper's Spanning-tree and
//! Root-tree steps.
//!
//! ```text
//! cargo run -p bcc-bench --release --bin ablation_spanning -- [--n N] [--p P]
//! ```

use bcc_bench::{fmt_dur, maybe_write_json, time_median, Options, Record};
use bcc_connectivity::as_sync::awerbuch_shiloach;
use bcc_connectivity::bfs::bfs_tree_par;
use bcc_connectivity::sv::connected_components;
use bcc_connectivity::traversal::work_stealing_tree;
use bcc_graph::{gen, Csr};
use bcc_smp::Pool;

fn main() {
    let opts = Options::parse(200_000);
    let n = opts.n;
    let p = opts.max_threads;
    let pool = Pool::new(p);
    let mut records = Vec::new();

    for mult in [2usize, 8] {
        let m = mult * n as usize;
        let g = gen::random_connected(n, m, opts.seed);
        println!("== n = {n}, m = {m}, p = {p} ==");

        // SV consumes the edge list directly.
        let sv = time_median(opts.runs, || {
            let r = connected_components(&pool, n, g.edges());
            std::hint::black_box(r.num_components);
        });
        println!(
            "  {:<28} {:>10}   (unrooted; edge list)",
            "Shiloach-Vishkin (async)",
            fmt_dur(sv)
        );

        // The synchronous PRAM-faithful variant for comparison.
        let awsh = time_median(opts.runs, || {
            let r = awerbuch_shiloach(&pool, n, g.edges());
            std::hint::black_box(r.num_components);
        });
        println!(
            "  {:<28} {:>10}   (unrooted; edge list)",
            "Awerbuch-Shiloach (sync)",
            fmt_dur(awsh)
        );

        // BFS and traversal need adjacency: charge the conversion.
        let bfs = time_median(opts.runs, || {
            let csr = Csr::build_par(&pool, &g);
            let t = bfs_tree_par(&pool, &csr, 0);
            std::hint::black_box(t.reached);
        });
        println!(
            "  {:<28} {:>10}   (rooted; incl. CSR build)",
            "BFS (level-synchronous)",
            fmt_dur(bfs)
        );

        let ws = time_median(opts.runs, || {
            let csr = Csr::build_par(&pool, &g);
            let t = work_stealing_tree(&pool, &csr, 0);
            std::hint::black_box(t.reached);
        });
        println!(
            "  {:<28} {:>10}   (rooted; incl. CSR build)\n",
            "Work-stealing traversal",
            fmt_dur(ws)
        );

        for (alg, d) in [
            ("Shiloach-Vishkin", sv),
            ("Awerbuch-Shiloach", awsh),
            ("BFS", bfs),
            ("Work-stealing", ws),
        ] {
            records.push(Record {
                experiment: "ablation_spanning".into(),
                algorithm: alg.into(),
                n,
                m,
                threads: p,
                seconds: d.as_secs_f64(),
                steps: None,
            });
        }
    }

    println!(
        "Expected shape (paper §3.2 and [6,3]): the traversal-based rooted\n\
         spanning trees beat SV, whose graft-and-shortcut rounds touch every\n\
         edge repeatedly; and they come out already rooted, eliminating the\n\
         separate Root-tree step."
    );
    maybe_write_json(&opts, &records);
}

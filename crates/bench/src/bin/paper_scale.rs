//! PAPER-SCALE — runs the paper's actual instance sizes (n = 1M,
//! m ∈ {4M, 20M}) end-to-end, printing times, per-step breakdowns and
//! work counters. This is the full-size companion to `fig3`/`fig4`
//! (which default to scaled-down instances for quick runs).
//!
//! ```text
//! cargo run -p bcc-bench --release --bin paper_scale -- [--n 1000000] [--p P] [--json out]
//! ```

use bcc_bench::{fmt_dur, maybe_write_json, Options, Record};
use bcc_core::{Algorithm, BccConfig};
use bcc_graph::gen;
use bcc_smp::Pool;
use std::time::Instant;

fn main() {
    let opts = Options::parse(1_000_000);
    let n = opts.n;
    let logn = (32 - n.leading_zeros()) as usize;
    let densities = [4 * n as usize, logn * n as usize];
    let mut records = Vec::new();

    for m in densities {
        let m = m.min(gen::max_edges(n));
        eprintln!("generating random connected graph n = {n}, m = {m} ...");
        let t = Instant::now();
        let g = gen::random_connected(n, m, opts.seed);
        eprintln!("  generated in {}", fmt_dur(t.elapsed()));

        println!("== n = {n}, m = {m} ==");
        let seq = BccConfig::new(Algorithm::Sequential)
            .run(&Pool::new(1), &g)
            .unwrap()
            .result;
        println!(
            "  {:<11} {:>10}   ({} biconnected components)",
            "Sequential",
            fmt_dur(seq.phases.total),
            seq.num_components
        );
        records.push(Record {
            experiment: "paper_scale".into(),
            algorithm: "Sequential".into(),
            n,
            m,
            threads: 1,
            seconds: seq.phases.total.as_secs_f64(),
            steps: None,
        });

        for &p in &[1usize, opts.max_threads] {
            let pool = Pool::new(p);
            for alg in [Algorithm::TvSmp, Algorithm::TvOpt, Algorithm::TvFilter] {
                let r = BccConfig::new(alg).run(&pool, &g).unwrap().result;
                assert_eq!(r.edge_comp, seq.edge_comp, "{} must agree", alg.name());
                println!(
                    "  {:<11} {:>10}   p={p:<2} effective m = {:>9}  aux = {}/{}",
                    alg.name(),
                    fmt_dur(r.phases.total),
                    r.stats.effective_edges,
                    r.stats.aux_vertices,
                    r.stats.aux_edges,
                );
                records.push(Record {
                    experiment: "paper_scale".into(),
                    algorithm: alg.name().into(),
                    n,
                    m,
                    threads: p,
                    seconds: r.phases.total.as_secs_f64(),
                    steps: Some(
                        r.phases
                            .named()
                            .iter()
                            .map(|&(s, d)| (s.to_string(), d.as_secs_f64()))
                            .collect(),
                    ),
                });
            }
        }
        println!();
    }
    maybe_write_json(&opts, &records);
}

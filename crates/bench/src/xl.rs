//! The xl tier: 10M-vertex-class sweeps over streamed on-disk inputs,
//! with peak RSS as a first-class gated metric.
//!
//! The main grid ([`crate::grid`]) generates its instances in memory,
//! which caps it well below the scale where the space story of the
//! algorithms separates. The xl tier instead consumes `.bccsr` files
//! produced by `bcc-convert gen` (see `bcc_graph::gen_stream`): the
//! graph is mmap-backed, the generators never held two edge copies,
//! and every cell's trial runs between a kernel peak-RSS watermark
//! reset and a read — so `peak_rss_bytes` measures the *algorithm's*
//! anonymous working set on top of the file-backed input, the number
//! the FAST-BCC pipeline exists to shrink.
//!
//! FAST-BCC runs on every input; the Euler-tour pipelines (and the
//! Sequential baseline) run only where `n <= tv_cap` — the escape
//! hatch for hosts where an O(m)-scratch pipeline at the full input
//! size would swap or OOM. Cells share one workspace arena across
//! their trials (the steady-state regime long-lived callers see, and
//! the fair one for a high-water metric: the arena's buffers *are*
//! the algorithm's scratch); the arena is dropped between cells so
//! one pipeline's retained scratch never becomes the next cell's RSS
//! floor — at xl sizes every scratch buffer is past the allocator's
//! mmap threshold and returns to the kernel on drop.
//!
//! The emitted document is schema-v2 ([`crate::grid::SCHEMA_VERSION`])
//! with `experiment: "bcc-xl"`: `bcc-bench compare` gates its cells —
//! `seconds_min` under the calibrated time thresholds and
//! `peak_rss_bytes` under the uncalibrated space threshold — exactly
//! like grid cells.

use crate::grid::{cell_json, median_f64, SCHEMA_VERSION};
use crate::json::Json;
use bcc_core::{Algorithm, BccConfig, BccWorkspace, PhaseReport, TraversalTuning};
use bcc_smp::{rss, Pool, Telemetry};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// One on-disk input: `--graph <family>=<path>` on the CLI. The family
/// string names the entry series (`rmat/FAST-BCC/n.../p...`), so two
/// inputs must not share it.
#[derive(Clone, Debug)]
pub struct XlInput {
    /// Series name in the document (e.g. `rmat`, `geo`).
    pub family: String,
    /// The `.bccsr` (or text) file, loaded via [`bcc_graph::io::load`].
    /// Must be **connected** — the tier runs the connected-input
    /// pipelines directly, and `bcc-convert gen` guarantees it.
    pub path: PathBuf,
}

/// xl-tier parameters (what `bcc-bench xl` parses into).
#[derive(Clone, Debug)]
pub struct XlConfig {
    /// The inputs, one series of cells each.
    pub inputs: Vec<XlInput>,
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// Timed repetitions per cell (medians reported, min gated).
    pub trials: usize,
    /// Largest `n` the Sequential + Euler-tour pipelines still run at;
    /// FAST-BCC ignores the cap. `u64::MAX` (the default) runs
    /// everything everywhere.
    pub tv_cap: u64,
    /// Marks the document as a smoke run (CI-sized inputs).
    pub smoke: bool,
}

impl Default for XlConfig {
    fn default() -> Self {
        XlConfig {
            inputs: vec![],
            threads: crate::grid::thread_sweep(Pool::default_threads()),
            trials: 2,
            tv_cap: u64::MAX,
            smoke: false,
        }
    }
}

/// Runs the xl tier and returns the BENCH document. `progress` receives
/// one line per loaded input and per finished cell.
pub fn run_xl(cfg: &XlConfig, mut progress: impl FnMut(&str)) -> Json {
    assert!(!cfg.inputs.is_empty(), "xl needs at least one --graph");
    assert!(cfg.threads.contains(&1), "thread sweep must include 1");
    let trials = cfg.trials.max(1);
    let pools: Vec<Pool> = cfg
        .threads
        .iter()
        .map(|&p| {
            Pool::builder()
                .threads(p)
                .telemetry(Arc::new(Telemetry::new(p)))
                .build()
        })
        .collect();

    let mut families: Vec<Json> = vec![];
    let mut entries: Vec<Json> = vec![];
    for input in &cfg.inputs {
        let g = bcc_graph::io::load(&input.path)
            .unwrap_or_else(|e| panic!("loading {}: {e}", input.path.display()));
        progress(&format!(
            "{}: n = {}, m = {} ({})",
            input.family,
            g.n(),
            g.m(),
            input.path.display()
        ));
        families.push(Json::obj(vec![
            ("family", Json::str(input.family.as_str())),
            ("n", Json::num(g.n())),
            ("m", Json::num(g.m() as f64)),
            ("path", Json::str(input.path.display().to_string())),
            ("mapped", Json::Bool(g.is_mapped())),
        ]));

        let capped = u64::from(g.n()) > cfg.tv_cap;
        let algs: Vec<Algorithm> = Algorithm::ALL
            .into_iter()
            .filter(|&a| a == Algorithm::FastBcc || !capped)
            .collect();
        if capped {
            progress(&format!(
                "{}: n > tv-cap {}, running FAST-BCC only",
                input.family, cfg.tv_cap
            ));
        }
        // Algorithm::ALL leads with Sequential, so the p = 1 baseline
        // (when it runs at all) is set before any parallel cell reads
        // it; without it, speedup columns report 0.
        let mut seq_baseline = 0.0f64;
        for &alg in &algs {
            let seq = alg == Algorithm::Sequential;
            for (pi, pool) in pools.iter().enumerate() {
                let p = cfg.threads[pi];
                if seq && p != 1 {
                    continue;
                }
                let mut config = BccConfig::new(alg);
                let ws = Arc::new(BccWorkspace::new());
                if !seq {
                    config = config
                        .tuning(TraversalTuning::fast())
                        .workspace(Arc::clone(&ws));
                }
                let mut reports: Vec<PhaseReport> = Vec::with_capacity(trials);
                let mut peaks: Vec<u64> = vec![];
                for _ in 0..trials {
                    let rss_ok = rss::reset_peak().is_ok();
                    let run = config
                        .run(pool, &g)
                        .unwrap_or_else(|e| panic!("{} on {}: {e}", alg.name(), input.family));
                    if rss_ok {
                        if let Some(peak) = rss::peak_rss_bytes() {
                            peaks.push(peak);
                        }
                    }
                    reports.push(run.report);
                }
                drop(ws);
                let seconds = median_f64(reports.iter().map(|r| r.total.as_secs_f64()).collect());
                if seq && p == 1 {
                    seq_baseline = seconds;
                }
                let peak = peaks.iter().copied().max();
                entries.push(cell_json(
                    &input.family,
                    &g,
                    p,
                    &reports,
                    seq_baseline,
                    (!seq).then(TraversalTuning::fast).as_ref(),
                    (!seq).then_some(true),
                    peak,
                ));
                progress(&format!(
                    "{:>13} {:>10} p={p}: {:>9.3?}, peak rss {} ({} trials)",
                    input.family,
                    alg.name(),
                    Duration::from_secs_f64(seconds),
                    peak.map_or("n/a".to_string(), |b| {
                        format!("{:.1} MiB", b as f64 / (1024.0 * 1024.0))
                    }),
                    trials,
                ));
            }
        }
    }

    Json::obj(vec![
        ("schema_version", Json::num(SCHEMA_VERSION as f64)),
        ("experiment", Json::str("bcc-xl")),
        ("smoke", Json::Bool(cfg.smoke)),
        (
            "threads",
            Json::Arr(cfg.threads.iter().map(|&p| Json::num(p as f64)).collect()),
        ),
        ("trials", Json::num(trials as f64)),
        ("tv_cap", Json::num(cfg.tv_cap as f64)),
        ("families", Json::Arr(families)),
        ("entries", Json::Arr(entries)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::compare;
    use bcc_graph::gen_stream;

    fn xl_smoke_doc() -> Json {
        let dir = std::env::temp_dir();
        let rmat = dir.join(format!("bcc-xl-test-rmat-{}.bccsr", std::process::id()));
        let geo = dir.join(format!("bcc-xl-test-geo-{}.bccsr", std::process::id()));
        gen_stream::rmat_to_bccsr(&rmat, 9, 2000, 0.57, 0.19, 0.19, 7).unwrap();
        gen_stream::geometric_to_bccsr(&geo, 400, 8.0, 20, 7).unwrap();
        let cfg = XlConfig {
            inputs: vec![
                XlInput {
                    family: "rmat".into(),
                    path: rmat.clone(),
                },
                XlInput {
                    family: "geo".into(),
                    path: geo.clone(),
                },
            ],
            threads: vec![1, 2],
            trials: 2,
            tv_cap: u64::MAX,
            smoke: true,
        };
        let doc = run_xl(&cfg, |_| {});
        let _ = std::fs::remove_file(rmat);
        let _ = std::fs::remove_file(geo);
        doc
    }

    #[test]
    fn xl_cells_cover_all_algorithms_and_gate_cleanly() {
        let doc = xl_smoke_doc();
        let text = doc.pretty();
        let parsed = crate::json::parse(&text).expect("xl BENCH json must parse");
        assert_eq!(parsed.get("schema_version").and_then(Json::as_u64), Some(2));
        assert_eq!(
            parsed.get("experiment").and_then(Json::as_str),
            Some("bcc-xl")
        );
        let fams = parsed.get("families").and_then(Json::as_arr).unwrap();
        assert_eq!(fams.len(), 2);
        for f in fams {
            assert_eq!(f.get("mapped"), Some(&Json::Bool(true)));
        }
        let entries = parsed.get("entries").and_then(Json::as_arr).unwrap();
        // Per family: Sequential at p=1 + 4 parallel × 2 thread counts.
        assert_eq!(entries.len(), 2 * (1 + 4 * 2));
        let rss_available = rss::reset_peak().is_ok();
        let mut fast_bcc_seen = 0;
        for e in entries {
            let alg = e.get("algorithm").and_then(Json::as_str).unwrap();
            if alg == "FAST-BCC" {
                fast_bcc_seen += 1;
            }
            assert!(e.get("seconds_min").and_then(Json::as_f64).is_some());
            if rss_available {
                let peak = e.get("peak_rss_bytes").and_then(Json::as_f64).unwrap();
                assert!(peak > 0.0);
            }
        }
        assert_eq!(fast_bcc_seen, 2 * 2);
        // The xl document self-compares clean under both gates.
        assert_eq!(compare(&parsed, &parsed, 10.0, 25.0).unwrap(), vec![]);
    }

    #[test]
    fn tv_cap_restricts_to_fast_bcc() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("bcc-xl-test-cap-{}.bccsr", std::process::id()));
        gen_stream::geometric_to_bccsr(&path, 300, 6.0, 10, 1).unwrap();
        let cfg = XlConfig {
            inputs: vec![XlInput {
                family: "geo".into(),
                path: path.clone(),
            }],
            threads: vec![1, 2],
            trials: 1,
            tv_cap: 100, // below n = 300: only FAST-BCC runs
            smoke: true,
        };
        let doc = run_xl(&cfg, |_| {});
        let _ = std::fs::remove_file(path);
        let entries = doc.get("entries").and_then(Json::as_arr).unwrap();
        assert_eq!(entries.len(), 2);
        for e in entries {
            assert_eq!(e.get("algorithm").and_then(Json::as_str), Some("FAST-BCC"));
        }
    }
}

//! Minimal JSON tree: ordered objects, pretty emitter, recursive-descent
//! parser. Replaces serde/serde_json, which cannot be fetched in the
//! offline build environment; the subset here (no `\u` escapes beyond
//! BMP round-tripping, numbers as f64) covers everything the bench
//! harness reads and writes.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order so emitted files are
/// stable and diffable.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64; integers round-trip up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object values.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for numeric values.
    pub fn num(x: impl Into<f64>) -> Json {
        Json::Num(x.into())
    }

    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The f64 payload of a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as a u64 when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    /// The string payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object pairs.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.emit(&mut out, 0);
        out.push('\n');
        out
    }

    fn emit(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => emit_number(out, *x),
            Json::Str(s) => emit_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.emit(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    emit_string(out, k);
                    out.push_str(": ");
                    v.emit(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn emit_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null"); // JSON has no Inf/NaN
    } else if x.fract() == 0.0 && x.abs() < 9e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn emit_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document, requiring it to be fully consumed.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = vec![];
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = vec![];
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unchanged).
                let tail = &text_from(bytes)[*pos..];
                let c = tail.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn text_from(bytes: &[u8]) -> &str {
    // The parser entry point took a &str, so bytes are valid UTF-8.
    std::str::from_utf8(bytes).expect("input was a &str")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = Json::obj(vec![
            ("name", Json::str("bcc")),
            ("n", Json::num(1000u32)),
            ("ratio", Json::Num(1.25)),
            ("ok", Json::Bool(true)),
            ("nothing", Json::Null),
            (
                "steps",
                Json::Arr(vec![
                    Json::obj(vec![("label", Json::str("spanning tree"))]),
                    Json::obj(vec![("label", Json::str("euler \"tour\"\n"))]),
                ]),
            ),
        ]);
        let text = doc.pretty();
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn accessors_navigate() {
        let doc = parse(r#"{"a": {"b": [1, 2.5, "x"]}, "t": true}"#).unwrap();
        let arr = doc.get("a").unwrap().get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("x"));
        assert_eq!(doc.get("t"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn integers_emit_without_decimal_point() {
        assert_eq!(Json::num(42u32).pretty(), "42\n");
        assert_eq!(Json::Num(0.5).pretty(), "0.5\n");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        let doc = parse(r#""café ✓""#).unwrap();
        assert_eq!(doc.as_str(), Some("café ✓"));
    }
}

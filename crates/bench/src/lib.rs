//! Shared harness for the experiment binaries: CLI parsing, repeated
//! timing, table formatting, and JSON result records.
//!
//! Every binary accepts the same core flags so paper-scale runs are one
//! command away:
//!
//! ```text
//! --n <vertices>    problem size (default: scaled-down)
//! --p <threads>     max thread count to sweep (default: 8)
//! --seed <u64>      workload seed (default: 42)
//! --runs <k>        timed repetitions, median reported (default: 3)
//! --json <path>     also dump machine-readable results
//! ```

use std::time::{Duration, Instant};

pub mod grid;
pub mod json;
pub mod prims;
pub mod xl;

use json::Json;

/// Parsed common CLI options.
#[derive(Clone, Debug)]
pub struct Options {
    /// Vertex count.
    pub n: u32,
    /// Max thread count for sweeps.
    pub max_threads: usize,
    /// Workload seed.
    pub seed: u64,
    /// Timed repetitions (median reported).
    pub runs: usize,
    /// Optional JSON output path.
    pub json: Option<String>,
}

impl Options {
    /// Parses `--key value` style flags; unknown flags abort with usage.
    pub fn parse(default_n: u32) -> Options {
        let mut opts = Options {
            n: default_n,
            max_threads: 8,
            seed: 42,
            runs: 3,
            json: None,
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let key = args[i].as_str();
            let val = args.get(i + 1).cloned();
            let need = |v: Option<String>| -> String {
                v.unwrap_or_else(|| {
                    eprintln!("missing value for {key}");
                    std::process::exit(2);
                })
            };
            match key {
                "--n" => opts.n = need(val).parse().expect("--n"),
                "--p" => opts.max_threads = need(val).parse().expect("--p"),
                "--seed" => opts.seed = need(val).parse().expect("--seed"),
                "--runs" => opts.runs = need(val).parse().expect("--runs"),
                "--json" => opts.json = Some(need(val)),
                "--help" | "-h" => {
                    eprintln!("flags: --n <vertices> --p <max threads> --seed <u64> --runs <k> --json <path>");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}; try --help");
                    std::process::exit(2);
                }
            }
            i += 2;
        }
        opts
    }

    /// Thread counts to sweep: 1, 2, 4, ..., up to `max_threads`,
    /// always including `max_threads` itself.
    pub fn thread_sweep(&self) -> Vec<usize> {
        let mut ps = vec![];
        let mut p = 1;
        while p < self.max_threads {
            ps.push(p);
            p *= 2;
        }
        ps.push(self.max_threads);
        ps.dedup();
        ps
    }
}

/// Runs `f` `runs` times and returns the lower-median wall-clock
/// duration (for even `runs` this picks the faster of the middle pair,
/// biasing against one-off page-fault/first-touch artifacts).
pub fn time_median<F: FnMut()>(runs: usize, mut f: F) -> Duration {
    let runs = runs.max(1);
    let mut samples: Vec<Duration> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[(samples.len() - 1) / 2]
}

/// One measurement row for JSON output.
#[derive(Clone, Debug)]
pub struct Record {
    /// Experiment id (e.g. "fig3").
    pub experiment: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Vertices.
    pub n: u32,
    /// Edges.
    pub m: usize,
    /// Threads.
    pub threads: usize,
    /// Seconds (median).
    pub seconds: f64,
    /// Optional per-step breakdown in seconds, Fig. 4 order.
    pub steps: Option<Vec<(String, f64)>>,
}

impl Record {
    /// This record as a JSON object (`steps` omitted when absent,
    /// matching the previous serde `skip_serializing_if` layout).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("experiment", Json::str(&*self.experiment)),
            ("algorithm", Json::str(&*self.algorithm)),
            ("n", Json::num(self.n)),
            ("m", Json::num(self.m as f64)),
            ("threads", Json::num(self.threads as f64)),
            ("seconds", Json::num(self.seconds)),
        ];
        if let Some(steps) = &self.steps {
            pairs.push((
                "steps",
                Json::Arr(
                    steps
                        .iter()
                        .map(|(name, secs)| Json::Arr(vec![Json::str(&**name), Json::num(*secs)]))
                        .collect(),
                ),
            ));
        }
        Json::obj(pairs)
    }
}

/// Writes records as JSON if `--json` was given.
pub fn maybe_write_json(opts: &Options, records: &[Record]) {
    if let Some(path) = &opts.json {
        let payload = Json::Arr(records.iter().map(Record::to_json).collect()).pretty();
        std::fs::write(path, payload).unwrap_or_else(|e| {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {} records to {path}", records.len());
    }
}

/// Formats a `Duration` compactly for tables.
pub fn fmt_dur(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{:.0}us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_runs() {
        let mut k = 0;
        let d = time_median(3, || {
            k += 1;
            std::thread::sleep(Duration::from_millis(1));
        });
        assert_eq!(k, 3);
        assert!(d >= Duration::from_millis(1));
    }

    #[test]
    fn thread_sweep_shapes() {
        let mut o = Options {
            n: 0,
            max_threads: 8,
            seed: 0,
            runs: 1,
            json: None,
        };
        assert_eq!(o.thread_sweep(), vec![1, 2, 4, 8]);
        o.max_threads = 12;
        assert_eq!(o.thread_sweep(), vec![1, 2, 4, 8, 12]);
        o.max_threads = 1;
        assert_eq!(o.thread_sweep(), vec![1]);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_dur(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_dur(Duration::from_millis(5)), "5.0ms");
        assert_eq!(fmt_dur(Duration::from_micros(7)), "7us");
    }
}

//! Compressed sparse row (adjacency) representation.
//!
//! Traversal-based steps (BFS trees, work-stealing spanning tree, the
//! sequential Tarjan baseline, DFS-order Euler tours) need neighbor
//! queries; [`Csr`] provides them, carrying the *edge index* alongside
//! each arc so per-edge results (biconnected-component labels) can be
//! written back to the edge list the pipeline started from.
//!
//! Converting the edge list into CSR is itself one of the representation
//! conversions whose cost the paper calls out, so the parallel builder
//! is instrumented-friendly: counting, a prefix sum over degrees, and an
//! atomic-cursor scatter. A *mapped* graph skips the conversion
//! entirely — `.bccsr` files carry the adjacency arrays on disk, and
//! [`Csr::build`] on one is an `Arc` clone of the mapping.

use crate::bccsr::MappedCsr;
use crate::edge::{Graph, GraphData};
use bcc_smp::atomic::as_atomic_u32;
use bcc_smp::{Pool, SharedSlice};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Adjacency structure: for each vertex, a slice of `(neighbor, edge id)`
/// arcs. Every undirected edge appears as two arcs.
///
/// Backed either by owned arrays (built from an in-memory edge list) or
/// by a shared `.bccsr` mapping (zero-copy, zero build cost); the
/// accessor surface is identical.
#[derive(Clone, Debug)]
pub struct Csr {
    repr: CsrRepr,
}

#[derive(Clone, Debug)]
enum CsrRepr {
    Owned {
        n: u32,
        /// `offsets[v]..offsets[v+1]` indexes `adj`/`eid` for vertex `v`.
        offsets: Vec<usize>,
        adj: Vec<u32>,
        eid: Vec<u32>,
    },
    Mapped(Arc<MappedCsr>),
}

impl Csr {
    /// Sequential build from an edge list. On a mapped graph this is an
    /// O(1) `Arc` clone of the on-disk adjacency — no materialization.
    pub fn build(g: &Graph) -> Self {
        if let GraphData::Mapped(m) = g.data() {
            return Csr {
                repr: CsrRepr::Mapped(Arc::clone(m)),
            };
        }
        let n = g.n() as usize;
        let m = g.m();
        let mut offsets = vec![0usize; n + 1];
        for e in g.edges() {
            offsets[e.u as usize + 1] += 1;
            offsets[e.v as usize + 1] += 1;
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        // Scatter (neighbor, edge id) as one packed u64 per arc: a
        // single random write stream instead of two (the scatter is the
        // cache-miss-bound part; the unpack passes below are sequential
        // and nearly free).
        let mut cursor = offsets.clone();
        let mut packed = vec![0u64; 2 * m];
        for (i, e) in g.edges().iter().enumerate() {
            let cu = cursor[e.u as usize];
            packed[cu] = ((e.v as u64) << 32) | i as u64;
            cursor[e.u as usize] += 1;
            let cv = cursor[e.v as usize];
            packed[cv] = ((e.u as u64) << 32) | i as u64;
            cursor[e.v as usize] += 1;
        }
        let mut adj = vec![0u32; 2 * m];
        let mut eid = vec![0u32; 2 * m];
        for (k, &p) in packed.iter().enumerate() {
            adj[k] = (p >> 32) as u32;
            eid[k] = p as u32;
        }
        Csr {
            repr: CsrRepr::Owned {
                n: g.n(),
                offsets,
                adj,
                eid,
            },
        }
    }

    /// Parallel build: parallel degree counting (atomic increments), a
    /// prefix sum over degrees, and an atomic-cursor scatter. Mapped
    /// graphs short-circuit exactly as in [`Csr::build`].
    ///
    /// Neighbor order within a vertex is nondeterministic across thread
    /// counts; algorithms in this workspace never depend on it (and the
    /// test suite checks they don't).
    pub fn build_par(pool: &Pool, g: &Graph) -> Self {
        let n = g.n() as usize;
        let m = g.m();
        if g.is_mapped() || pool.threads() == 1 || m < 1 << 14 {
            return Csr::build(g);
        }
        let edges = g.edges();

        // Degree counting with atomic adds.
        let mut deg = vec![0u32; n];
        {
            let deg_a = as_atomic_u32(&mut deg);
            pool.run(|ctx| {
                for i in ctx.block_range(m) {
                    let e = edges[i];
                    deg_a[e.u as usize].fetch_add(1, Ordering::Relaxed);
                    deg_a[e.v as usize].fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Offsets by prefix sum.
        let mut offsets = vec![0usize; n + 1];
        {
            let off_s = SharedSlice::new(&mut offsets);
            let deg_ro: &[u32] = &deg;
            pool.run(|ctx| {
                for v in ctx.block_range(n) {
                    unsafe { off_s.write(v + 1, deg_ro[v] as usize) };
                }
            });
        }
        // Scan offsets[1..=n] in place.
        bcc_primitives::scan::inclusive_scan_par(pool, &mut offsets[1..]);

        // Scatter with atomic cursors into one packed u64 per arc (a
        // single random write stream), then unpack sequentially in
        // parallel blocks.
        let mut cursor: Vec<u32> = vec![0u32; n];
        let mut packed = vec![0u64; 2 * m];
        {
            let cur_a = as_atomic_u32(&mut cursor);
            let packed_s = SharedSlice::new(&mut packed);
            let offsets_ro: &[usize] = &offsets;
            pool.run(|ctx| {
                for i in ctx.block_range(m) {
                    let e = edges[i];
                    let su = cur_a[e.u as usize].fetch_add(1, Ordering::Relaxed) as usize;
                    let pu = offsets_ro[e.u as usize] + su;
                    // SAFETY: the atomic cursor hands each slot to one
                    // thread exactly once.
                    unsafe { packed_s.write(pu, ((e.v as u64) << 32) | i as u64) };
                    let sv = cur_a[e.v as usize].fetch_add(1, Ordering::Relaxed) as usize;
                    let pv = offsets_ro[e.v as usize] + sv;
                    unsafe { packed_s.write(pv, ((e.u as u64) << 32) | i as u64) };
                }
            });
        }
        let mut adj = vec![0u32; 2 * m];
        let mut eid = vec![0u32; 2 * m];
        {
            let adj_s = SharedSlice::new(&mut adj);
            let eid_s = SharedSlice::new(&mut eid);
            let packed_ro: &[u64] = &packed;
            pool.run(|ctx| {
                for k in ctx.block_range(2 * m) {
                    let p = packed_ro[k];
                    unsafe {
                        adj_s.write(k, (p >> 32) as u32);
                        eid_s.write(k, p as u32);
                    }
                }
            });
        }
        Csr {
            repr: CsrRepr::Owned {
                n: g.n(),
                offsets,
                adj,
                eid,
            },
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> u32 {
        match &self.repr {
            CsrRepr::Owned { n, .. } => *n,
            CsrRepr::Mapped(m) => m.n(),
        }
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        match &self.repr {
            CsrRepr::Owned { adj, .. } => adj.len() / 2,
            CsrRepr::Mapped(m) => m.m(),
        }
    }

    /// True if the adjacency is served from a mapped `.bccsr` file.
    #[inline]
    pub fn is_mapped(&self) -> bool {
        matches!(self.repr, CsrRepr::Mapped(_))
    }

    /// Neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        match &self.repr {
            CsrRepr::Owned { offsets, adj, .. } => {
                &adj[offsets[v as usize]..offsets[v as usize + 1]]
            }
            CsrRepr::Mapped(m) => m.neighbors(v),
        }
    }

    /// Edge ids of the arcs out of `v`, parallel to [`Csr::neighbors`].
    #[inline]
    pub fn edge_ids(&self, v: u32) -> &[u32] {
        match &self.repr {
            CsrRepr::Owned { offsets, eid, .. } => {
                &eid[offsets[v as usize]..offsets[v as usize + 1]]
            }
            CsrRepr::Mapped(m) => m.edge_ids(v),
        }
    }

    /// `(neighbor, edge id)` pairs out of `v`.
    #[inline]
    pub fn arcs(&self, v: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.neighbors(v)
            .iter()
            .copied()
            .zip(self.edge_ids(v).iter().copied())
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        match &self.repr {
            CsrRepr::Owned { offsets, .. } => offsets[v as usize + 1] - offsets[v as usize],
            CsrRepr::Mapped(m) => m.degree(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample() -> Graph {
        GraphBuilder::new(5)
            .edges([(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)])
            .build()
            .unwrap()
    }

    fn sorted_arcs(csr: &Csr, v: u32) -> Vec<(u32, u32)> {
        let mut a: Vec<_> = csr.arcs(v).collect();
        a.sort_unstable();
        a
    }

    #[test]
    fn sequential_build_matches_hand_answer() {
        let csr = Csr::build(&sample());
        assert_eq!(csr.n(), 5);
        assert_eq!(csr.m(), 5);
        assert_eq!(sorted_arcs(&csr, 0), vec![(1, 0), (2, 1)]);
        assert_eq!(sorted_arcs(&csr, 2), vec![(0, 1), (1, 2), (3, 3)]);
        assert_eq!(csr.degree(4), 1);
    }

    #[test]
    fn parallel_build_matches_sequential_as_sets() {
        use crate::gen;
        let g = gen::random_connected(2000, 8000, 42);
        let seq = Csr::build(&g);
        for p in [1, 2, 4] {
            let pool = Pool::new(p);
            let par = Csr::build_par(&pool, &g);
            assert_eq!(par.n(), seq.n());
            assert_eq!(par.m(), seq.m());
            for v in 0..g.n() {
                assert_eq!(sorted_arcs(&par, v), sorted_arcs(&seq, v), "v={v}");
            }
        }
    }

    #[test]
    fn empty_and_isolated_vertices() {
        let g = GraphBuilder::new(4).edge(1, 2).build().unwrap();
        let csr = Csr::build(&g);
        assert!(csr.neighbors(0).is_empty());
        assert!(csr.neighbors(3).is_empty());
        assert_eq!(csr.neighbors(1), &[2]);

        let empty = GraphBuilder::new(0).build().unwrap();
        let csr = Csr::build(&empty);
        assert_eq!(csr.n(), 0);
        assert_eq!(csr.m(), 0);
    }

    #[test]
    fn edge_ids_point_back_to_edge_list() {
        let g = sample();
        let csr = Csr::build(&g);
        for v in 0..g.n() {
            for (w, id) in csr.arcs(v) {
                let e = g.edges()[id as usize];
                assert!(
                    (e.u == v && e.v == w) || (e.v == v && e.u == w),
                    "arc ({v},{w}) id {id} mismatches edge {e:?}"
                );
            }
        }
    }

    #[test]
    fn mapped_build_is_zero_copy_and_equivalent() {
        use crate::gen;
        let g = gen::random_connected(300, 900, 11);
        let mut path = std::env::temp_dir();
        path.push(format!("bcc-csr-test-{}.bccsr", std::process::id()));
        g.save_bccsr(&path).unwrap();
        let mg = crate::bccsr::MappedCsr::open_graph(&path).unwrap();

        let owned = Csr::build(&g);
        let mapped = Csr::build(&mg);
        assert!(mapped.is_mapped() && !owned.is_mapped());
        let pool = Pool::new(4);
        let mapped_par = Csr::build_par(&pool, &mg);
        assert!(mapped_par.is_mapped());
        for v in 0..g.n() {
            assert_eq!(sorted_arcs(&mapped, v), sorted_arcs(&owned, v), "v={v}");
            assert_eq!(mapped.degree(v), owned.degree(v));
        }
        std::fs::remove_file(&path).unwrap();
    }
}

//! Graph ingestion: one sniffing [`load`] entry point over the text
//! formats and the binary `.bccsr` format.
//!
//! [`load`] reads the first bytes of the file: a `.bccsr` magic opens
//! the file as a checksum-verified mmap-backed [`Graph`] (see
//! [`crate::bccsr`]); anything else is parsed as text. Two text formats
//! are accepted:
//!
//! **DIMACS-flavored** (what [`write_text`] emits):
//!
//! ```text
//! # comments allowed (also % and c lines)
//! p <n> <m>
//! e <u> <v>
//! ...
//! ```
//!
//! **Bare edge lists** (SNAP / Matrix Market dumps): lines of two
//! whitespace-separated 0-based vertex ids, no problem line. The vertex
//! count is inferred as `max id + 1`, and the list is read leniently
//! (duplicate edges, both orientations, and self loops are dropped) —
//! real-world dumps contain all three.
//!
//! Both formats tolerate blank lines, `#`/`%`/`c` comment lines, and
//! CRLF line endings. When a `p` line is present the reader is strict:
//! it must precede every edge, endpoints must be in range, self loops
//! are rejected, and the edge count must match the declaration.

use crate::bccsr::MappedCsr;
use crate::builder::GraphBuilder;
use crate::edge::{Edge, Graph};
use std::fs::File;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

/// Writes `g` in the text format.
pub fn write_text<W: Write>(g: &Graph, w: &mut W) -> io::Result<()> {
    writeln!(w, "p {} {}", g.n(), g.m())?;
    for e in g.edges() {
        writeln!(w, "e {} {}", e.u, e.v)?;
    }
    Ok(())
}

/// Loads a graph from `path`, sniffing the format: files starting with
/// the `.bccsr` magic open as a checksum-verified mmap-backed graph
/// (zero-copy edges and adjacency); everything else parses as text
/// ([`load_text`]). This is the single ingestion entry point for the
/// CLIs — any supported public graph file works directly.
pub fn load(path: impl AsRef<Path>) -> io::Result<Graph> {
    let path = path.as_ref();
    let mut file = File::open(path)?;
    let mut head = [0u8; 8];
    let got = read_head(&mut file, &mut head)?;
    if got == 8 && head == crate::bccsr::MAGIC {
        drop(file);
        return Ok(MappedCsr::open_graph(path)?);
    }
    // Text: re-chain the sniffed bytes in front of the rest.
    load_text(io::Cursor::new(head[..got].to_vec()).chain(file))
}

fn read_head(file: &mut File, head: &mut [u8; 8]) -> io::Result<usize> {
    let mut got = 0;
    while got < 8 {
        match file.read(&mut head[got..])? {
            0 => break,
            k => got += k,
        }
    }
    Ok(got)
}

/// Reads a graph in either text format (see the module docs); validates
/// counts and ranges when a `p` problem line is present.
pub fn load_text<R: Read>(r: R) -> io::Result<Graph> {
    let reader = BufReader::new(r);
    let mut header: Option<(u32, usize)> = None;
    let mut edges: Vec<Edge> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim(); // also strips the \r of CRLF endings
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let tag = it.next().unwrap();
        let bad = |msg: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {msg}", lineno + 1),
            )
        };
        let endpoint = |it: &mut std::str::SplitWhitespace| -> io::Result<u32> {
            it.next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| bad("bad endpoint"))
        };
        let (u, v) = match tag {
            "c" => continue, // DIMACS comment line
            "p" => {
                if header.is_some() {
                    return Err(bad("duplicate problem line"));
                }
                if !edges.is_empty() {
                    return Err(bad("problem line after edges"));
                }
                let nv: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad("bad vertex count"))?;
                let m = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad("bad edge count"))?;
                header = Some((nv, m));
                edges.reserve(m);
                continue;
            }
            "e" => {
                if header.is_none() {
                    return Err(bad("edge before problem line"));
                }
                (endpoint(&mut it)?, endpoint(&mut it)?)
            }
            // SNAP-style bare "u v" line.
            _ => {
                let u: u32 = tag.parse().map_err(|_| bad("unknown line tag"))?;
                (u, endpoint(&mut it)?)
            }
        };
        if let Some((nv, _)) = header {
            if u >= nv || v >= nv {
                return Err(bad("endpoint out of range"));
            }
            if u == v {
                return Err(bad("self loop"));
            }
        }
        edges.push(Edge::new(u, v));
    }
    match header {
        Some((n, declared_m)) => {
            if edges.len() != declared_m {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("declared {declared_m} edges, found {}", edges.len()),
                ));
            }
            // Endpoints and loops were validated per line above.
            GraphBuilder::new(n)
                .edges(edges)
                .build()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
        }
        None => GraphBuilder::infer_n()
            .lenient()
            .edges(edges)
            .build()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
    }
}

/// Reads a graph in either text format.
#[deprecated(since = "0.7.0", note = "use `load_text` (or `load` for files)")]
pub fn read_text<R: Read>(r: R) -> io::Result<Graph> {
    load_text(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn roundtrip() {
        let g = gen::random_connected(50, 120, 4);
        let mut buf = Vec::new();
        write_text(&g, &mut buf).unwrap();
        let h = load_text(&buf[..]).unwrap();
        assert_eq!(g.n(), h.n());
        assert_eq!(g.edges(), h.edges());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# hello\n\np 3 2\ne 0 1\n# mid\ne 1 2\n";
        let g = load_text(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn percent_and_c_comments_ignored() {
        let text = "% MatrixMarket-ish header\nc dimacs comment\np 3 2\ne 0 1\ne 1 2\n";
        let g = load_text(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn crlf_line_endings_accepted() {
        let text = "# win\r\np 3 2\r\ne 0 1\r\ne 1 2\r\n";
        let g = load_text(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.edges(), &[Edge::new(0, 1), Edge::new(1, 2)]);
    }

    #[test]
    fn bare_snap_edge_list() {
        // No problem line, % comments, duplicates + both orientations +
        // a self loop — the shape of a real SNAP dump.
        let text = "% snap dump\n0 1\n1 0\n1 2\n2 2\n\n4 2\n";
        let g = load_text(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 5); // max id 4
        assert_eq!(g.m(), 3); // (0,1), (1,2), (2,4)
    }

    #[test]
    fn bare_lines_validated_when_header_present() {
        // Bare "u v" lines mix with e-lines under a header and count
        // toward the declared total, with full validation.
        let g = load_text("p 3 2\n0 1\ne 1 2\n".as_bytes()).unwrap();
        assert_eq!(g.m(), 2);
        assert!(load_text("p 3 1\n0 5\n".as_bytes()).is_err()); // range
        assert!(load_text("p 3 1\n1 1\n".as_bytes()).is_err()); // loop
    }

    #[test]
    fn errors_are_reported() {
        assert!(load_text("e 0 1\n".as_bytes()).is_err()); // e before p
        assert!(load_text("p 3 1\ne 0 5\n".as_bytes()).is_err()); // range
        assert!(load_text("p 3 1\ne 1 1\n".as_bytes()).is_err()); // loop
        assert!(load_text("p 3 2\ne 0 1\n".as_bytes()).is_err()); // count
        assert!(load_text("x 1\n".as_bytes()).is_err()); // tag
        assert!(load_text("0 1\np 3 1\n".as_bytes()).is_err()); // p after edges
        assert!(load_text("0\n".as_bytes()).is_err()); // missing endpoint
        let empty = load_text("".as_bytes()).unwrap(); // headerless empty
        assert_eq!(empty.n(), 0);
    }

    #[test]
    fn load_sniffs_text_and_binary() {
        let g = gen::random_connected(40, 90, 7);
        let dir = std::env::temp_dir();
        let pid = std::process::id();

        let text_path = dir.join(format!("bcc-io-test-{pid}.txt"));
        let mut buf = Vec::new();
        write_text(&g, &mut buf).unwrap();
        std::fs::write(&text_path, &buf).unwrap();
        let ht = load(&text_path).unwrap();
        assert!(!ht.is_mapped());
        assert_eq!(ht.edges(), g.edges());

        let bin_path = dir.join(format!("bcc-io-test-{pid}.bccsr"));
        g.save_bccsr(&bin_path).unwrap();
        let hb = load(&bin_path).unwrap();
        assert!(hb.is_mapped());
        assert_eq!(hb.edges(), g.edges());

        std::fs::remove_file(&text_path).unwrap();
        std::fs::remove_file(&bin_path).unwrap();
    }

    #[test]
    fn load_of_tiny_text_file_works() {
        // Shorter than the 8-byte sniff window.
        let path = std::env::temp_dir().join(format!("bcc-io-tiny-{}.txt", std::process::id()));
        std::fs::write(&path, "0 1\n").unwrap();
        let g = load(&path).unwrap();
        assert_eq!(g.n(), 2);
        assert_eq!(g.m(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load("/nonexistent/bcc-io-test.txt").is_err());
    }
}

//! Plain-text graph I/O.
//!
//! Format (whitespace-separated):
//!
//! ```text
//! # comments allowed
//! p <n> <m>
//! e <u> <v>
//! ...
//! ```
//!
//! — a DIMACS-flavored edge list (0-based vertex ids) so instances can be
//! exchanged with external tooling or pinned as regression fixtures.

use crate::edge::{Edge, Graph};
use std::io::{self, BufRead, BufReader, Read, Write};

/// Writes `g` in the text format.
pub fn write_text<W: Write>(g: &Graph, w: &mut W) -> io::Result<()> {
    writeln!(w, "p {} {}", g.n(), g.m())?;
    for e in g.edges() {
        writeln!(w, "e {} {}", e.u, e.v)?;
    }
    Ok(())
}

/// Reads a graph in the text format; validates counts and ranges.
pub fn read_text<R: Read>(r: R) -> io::Result<Graph> {
    let reader = BufReader::new(r);
    let mut n: Option<u32> = None;
    let mut declared_m = 0usize;
    let mut edges: Vec<Edge> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let tag = it.next().unwrap();
        let bad = |msg: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {msg}", lineno + 1),
            )
        };
        match tag {
            "p" => {
                if n.is_some() {
                    return Err(bad("duplicate problem line"));
                }
                let nv: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad("bad vertex count"))?;
                declared_m = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad("bad edge count"))?;
                n = Some(nv);
                edges.reserve(declared_m);
            }
            "e" => {
                let nv = n.ok_or_else(|| bad("edge before problem line"))?;
                let u: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad("bad endpoint"))?;
                let v: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad("bad endpoint"))?;
                if u >= nv || v >= nv {
                    return Err(bad("endpoint out of range"));
                }
                if u == v {
                    return Err(bad("self loop"));
                }
                edges.push(Edge::new(u, v));
            }
            _ => return Err(bad("unknown line tag")),
        }
    }
    let n = n.ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing problem line"))?;
    if edges.len() != declared_m {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("declared {declared_m} edges, found {}", edges.len()),
        ));
    }
    Ok(Graph::new(n, edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn roundtrip() {
        let g = gen::random_connected(50, 120, 4);
        let mut buf = Vec::new();
        write_text(&g, &mut buf).unwrap();
        let h = read_text(&buf[..]).unwrap();
        assert_eq!(g.n(), h.n());
        assert_eq!(g.edges(), h.edges());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# hello\n\np 3 2\ne 0 1\n# mid\ne 1 2\n";
        let g = read_text(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn errors_are_reported() {
        assert!(read_text("e 0 1\n".as_bytes()).is_err()); // edge before p
        assert!(read_text("p 3 1\ne 0 5\n".as_bytes()).is_err()); // range
        assert!(read_text("p 3 1\ne 1 1\n".as_bytes()).is_err()); // loop
        assert!(read_text("p 3 2\ne 0 1\n".as_bytes()).is_err()); // count
        assert!(read_text("x 1\n".as_bytes()).is_err()); // tag
        assert!(read_text("".as_bytes()).is_err()); // empty
    }
}

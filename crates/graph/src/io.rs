//! Plain-text graph I/O.
//!
//! Two formats are accepted:
//!
//! **DIMACS-flavored** (what [`write_text`] emits):
//!
//! ```text
//! # comments allowed (also % and c lines)
//! p <n> <m>
//! e <u> <v>
//! ...
//! ```
//!
//! **Bare edge lists** (SNAP / Matrix Market dumps): lines of two
//! whitespace-separated 0-based vertex ids, no problem line. The vertex
//! count is inferred as `max id + 1`, and the list is read leniently
//! (duplicate edges, both orientations, and self loops are dropped) —
//! real-world dumps contain all three.
//!
//! Both formats tolerate blank lines, `#`/`%`/`c` comment lines, and
//! CRLF line endings. When a `p` line is present the reader is strict:
//! it must precede every edge, endpoints must be in range, self loops
//! are rejected, and the edge count must match the declaration.

use crate::edge::{Edge, Graph};
use std::io::{self, BufRead, BufReader, Read, Write};

/// Writes `g` in the text format.
pub fn write_text<W: Write>(g: &Graph, w: &mut W) -> io::Result<()> {
    writeln!(w, "p {} {}", g.n(), g.m())?;
    for e in g.edges() {
        writeln!(w, "e {} {}", e.u, e.v)?;
    }
    Ok(())
}

/// Reads a graph in either text format (see the module docs); validates
/// counts and ranges when a `p` problem line is present.
pub fn read_text<R: Read>(r: R) -> io::Result<Graph> {
    let reader = BufReader::new(r);
    let mut header: Option<(u32, usize)> = None;
    let mut edges: Vec<Edge> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim(); // also strips the \r of CRLF endings
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let tag = it.next().unwrap();
        let bad = |msg: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {msg}", lineno + 1),
            )
        };
        let endpoint = |it: &mut std::str::SplitWhitespace| -> io::Result<u32> {
            it.next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| bad("bad endpoint"))
        };
        let (u, v) = match tag {
            "c" => continue, // DIMACS comment line
            "p" => {
                if header.is_some() {
                    return Err(bad("duplicate problem line"));
                }
                if !edges.is_empty() {
                    return Err(bad("problem line after edges"));
                }
                let nv: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad("bad vertex count"))?;
                let m = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad("bad edge count"))?;
                header = Some((nv, m));
                edges.reserve(m);
                continue;
            }
            "e" => {
                if header.is_none() {
                    return Err(bad("edge before problem line"));
                }
                (endpoint(&mut it)?, endpoint(&mut it)?)
            }
            // SNAP-style bare "u v" line.
            _ => {
                let u: u32 = tag.parse().map_err(|_| bad("unknown line tag"))?;
                (u, endpoint(&mut it)?)
            }
        };
        if let Some((nv, _)) = header {
            if u >= nv || v >= nv {
                return Err(bad("endpoint out of range"));
            }
            if u == v {
                return Err(bad("self loop"));
            }
        }
        edges.push(Edge::new(u, v));
    }
    match header {
        Some((n, declared_m)) => {
            if edges.len() != declared_m {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("declared {declared_m} edges, found {}", edges.len()),
                ));
            }
            Ok(Graph::new(n, edges))
        }
        None => {
            let n = edges.iter().map(|e| e.u.max(e.v) + 1).max().unwrap_or(0);
            Ok(Graph::from_edges_lenient(n, edges))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn roundtrip() {
        let g = gen::random_connected(50, 120, 4);
        let mut buf = Vec::new();
        write_text(&g, &mut buf).unwrap();
        let h = read_text(&buf[..]).unwrap();
        assert_eq!(g.n(), h.n());
        assert_eq!(g.edges(), h.edges());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# hello\n\np 3 2\ne 0 1\n# mid\ne 1 2\n";
        let g = read_text(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn percent_and_c_comments_ignored() {
        let text = "% MatrixMarket-ish header\nc dimacs comment\np 3 2\ne 0 1\ne 1 2\n";
        let g = read_text(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn crlf_line_endings_accepted() {
        let text = "# win\r\np 3 2\r\ne 0 1\r\ne 1 2\r\n";
        let g = read_text(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.edges(), &[Edge::new(0, 1), Edge::new(1, 2)]);
    }

    #[test]
    fn bare_snap_edge_list() {
        // No problem line, % comments, duplicates + both orientations +
        // a self loop — the shape of a real SNAP dump.
        let text = "% snap dump\n0 1\n1 0\n1 2\n2 2\n\n4 2\n";
        let g = read_text(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 5); // max id 4
        assert_eq!(g.m(), 3); // (0,1), (1,2), (2,4)
    }

    #[test]
    fn bare_lines_validated_when_header_present() {
        // Bare "u v" lines mix with e-lines under a header and count
        // toward the declared total, with full validation.
        let g = read_text("p 3 2\n0 1\ne 1 2\n".as_bytes()).unwrap();
        assert_eq!(g.m(), 2);
        assert!(read_text("p 3 1\n0 5\n".as_bytes()).is_err()); // range
        assert!(read_text("p 3 1\n1 1\n".as_bytes()).is_err()); // loop
    }

    #[test]
    fn errors_are_reported() {
        assert!(read_text("e 0 1\n".as_bytes()).is_err()); // e before p
        assert!(read_text("p 3 1\ne 0 5\n".as_bytes()).is_err()); // range
        assert!(read_text("p 3 1\ne 1 1\n".as_bytes()).is_err()); // loop
        assert!(read_text("p 3 2\ne 0 1\n".as_bytes()).is_err()); // count
        assert!(read_text("x 1\n".as_bytes()).is_err()); // tag
        assert!(read_text("0 1\np 3 1\n".as_bytes()).is_err()); // p after edges
        assert!(read_text("0\n".as_bytes()).is_err()); // missing endpoint
        let empty = read_text("".as_bytes()).unwrap(); // headerless empty
        assert_eq!(empty.n(), 0);
    }
}

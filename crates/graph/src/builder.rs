//! [`GraphBuilder`] — the one construction path for in-memory graphs,
//! with an explicit validation policy.
//!
//! The old surface (`Graph::new`, `Graph::from_tuples`,
//! `Graph::from_edges_lenient`, panicking on bad input in two of three
//! cases and silently normalizing in the third) collapsed into this
//! builder: **strict** (the default) returns an error for any
//! out-of-range endpoint or self loop and preserves the edge list as
//! given; **lenient** drops self loops, normalizes orientation, and
//! deduplicates — the policy raw public edge lists need — while still
//! erroring on endpoints `>= n`.

use crate::edge::{Edge, Graph};

/// Why a [`GraphBuilder::build`] was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// An edge references a vertex `>= n`.
    OutOfRange {
        /// The offending edge.
        edge: Edge,
        /// The declared vertex count.
        n: u32,
    },
    /// An edge joins a vertex to itself (strict policy only).
    SelfLoop {
        /// The offending edge.
        edge: Edge,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::OutOfRange { edge, n } => {
                write!(f, "edge {edge:?} out of range (n = {n})")
            }
            GraphError::SelfLoop { edge } => write!(f, "self loop {edge:?} not allowed"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Accumulates edges and builds an in-memory [`Graph`] under an
/// explicit validation policy.
///
/// ```
/// use bcc_graph::GraphBuilder;
///
/// let g = GraphBuilder::new(4).edges([(0, 1), (1, 2)]).build().unwrap();
/// assert_eq!(g.m(), 2);
///
/// // Lenient: loops dropped, duplicates merged.
/// let g = GraphBuilder::new(4)
///     .lenient()
///     .edges([(0, 1), (1, 0), (2, 2), (2, 3)])
///     .build()
///     .unwrap();
/// assert_eq!(g.m(), 2);
///
/// // Strict surfaces bad input as an error instead of panicking.
/// assert!(GraphBuilder::new(2).edge(0, 5).build().is_err());
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: Option<u32>,
    lenient: bool,
    edges: Vec<Edge>,
}

impl GraphBuilder {
    /// A strict builder over the fixed vertex set `0..n`.
    pub fn new(n: u32) -> Self {
        GraphBuilder {
            n: Some(n),
            lenient: false,
            edges: Vec::new(),
        }
    }

    /// A strict builder that infers `n` as `max endpoint + 1` at build
    /// time — the shape of headerless public edge lists.
    pub fn infer_n() -> Self {
        GraphBuilder {
            n: None,
            lenient: false,
            edges: Vec::new(),
        }
    }

    /// Strict policy (the default): any out-of-range endpoint or self
    /// loop is an error, and the edge list is preserved exactly as
    /// given — order, orientation, and duplicates.
    pub fn strict(mut self) -> Self {
        self.lenient = false;
        self
    }

    /// Lenient policy: self loops are dropped, edges are normalized to
    /// `(min, max)` orientation, sorted, and deduplicated. Endpoints
    /// `>= n` are still an error when `n` is explicit.
    pub fn lenient(mut self) -> Self {
        self.lenient = true;
        self
    }

    /// Appends one edge.
    pub fn edge(mut self, u: u32, v: u32) -> Self {
        self.edges.push(Edge::new(u, v));
        self
    }

    /// Appends edges from anything convertible (tuples, [`Edge`]s).
    pub fn edges<I>(mut self, edges: I) -> Self
    where
        I: IntoIterator,
        I::Item: Into<Edge>,
    {
        self.edges.extend(edges.into_iter().map(Into::into));
        self
    }

    /// Pre-allocates for `additional` more edges.
    pub fn reserve(mut self, additional: usize) -> Self {
        self.edges.reserve(additional);
        self
    }

    /// Validates under the chosen policy and builds the graph.
    pub fn build(self) -> Result<Graph, GraphError> {
        let GraphBuilder { n, lenient, edges } = self;
        let n = n.unwrap_or_else(|| {
            edges
                .iter()
                .map(|e| e.u.max(e.v).saturating_add(1))
                .max()
                .unwrap_or(0)
        });
        if !lenient {
            for e in &edges {
                if e.u >= n || e.v >= n {
                    return Err(GraphError::OutOfRange { edge: *e, n });
                }
                if e.is_loop() {
                    return Err(GraphError::SelfLoop { edge: *e });
                }
            }
            return Ok(Graph::from_vec(n, edges));
        }
        let mut keys: Vec<u64> = Vec::with_capacity(edges.len());
        for e in &edges {
            if e.u >= n || e.v >= n {
                return Err(GraphError::OutOfRange { edge: *e, n });
            }
            if !e.is_loop() {
                keys.push(e.key());
            }
        }
        keys.sort_unstable();
        keys.dedup();
        let edges = keys
            .into_iter()
            .map(|k| Edge::new((k >> 32) as u32, k as u32))
            .collect();
        Ok(Graph::from_vec(n, edges))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_preserves_order_and_orientation() {
        let g = GraphBuilder::new(5)
            .edge(3, 1)
            .edges([(0, 4), (1, 2)])
            .build()
            .unwrap();
        assert_eq!(
            g.edges(),
            &[Edge::new(3, 1), Edge::new(0, 4), Edge::new(1, 2)]
        );
    }

    #[test]
    fn strict_errors_carry_the_edge() {
        assert_eq!(
            GraphBuilder::new(3).edge(0, 3).build().unwrap_err(),
            GraphError::OutOfRange {
                edge: Edge::new(0, 3),
                n: 3
            }
        );
        assert_eq!(
            GraphBuilder::new(3).edge(1, 1).build().unwrap_err(),
            GraphError::SelfLoop {
                edge: Edge::new(1, 1)
            }
        );
    }

    #[test]
    fn lenient_dedups_and_drops_loops() {
        let g = GraphBuilder::new(4)
            .lenient()
            .edges([(0, 1), (1, 0), (2, 2), (2, 3)])
            .build()
            .unwrap();
        assert_eq!(g.m(), 2);
        assert_eq!(g.edges(), &[Edge::new(0, 1), Edge::new(2, 3)]);
    }

    #[test]
    fn lenient_still_range_checks() {
        assert!(matches!(
            GraphBuilder::new(2).lenient().edge(0, 9).build(),
            Err(GraphError::OutOfRange { .. })
        ));
    }

    #[test]
    fn infer_n_from_endpoints() {
        let g = GraphBuilder::infer_n()
            .edges([(0, 7), (2, 3)])
            .build()
            .unwrap();
        assert_eq!(g.n(), 8);
        let empty = GraphBuilder::infer_n().build().unwrap();
        assert_eq!(empty.n(), 0);
        assert_eq!(empty.m(), 0);
    }

    #[test]
    fn error_messages_match_legacy_panics() {
        let e = GraphBuilder::new(3).edge(0, 3).build().unwrap_err();
        assert_eq!(e.to_string(), "edge (0, 3) out of range (n = 3)");
        let e = GraphBuilder::new(3).edge(1, 1).build().unwrap_err();
        assert_eq!(e.to_string(), "self loop (1, 1) not allowed");
    }
}

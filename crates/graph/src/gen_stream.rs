//! Streaming generate-to-disk for xl-scale benchmark inputs.
//!
//! The in-memory generators ([`gen::rmat`](crate::gen::rmat),
//! [`gen::geometric`](crate::gen::geometric)) dedup through a
//! `HashSet<u64>` and hand the edge list to [`GraphBuilder`], which is
//! fine at benchmark-tier sizes but wasteful at 10M+ vertices: the set
//! alone costs ~48 bytes per edge on top of the 8-byte edges, and the
//! builder clones the list into a [`Graph`](crate::Graph). The
//! streaming variants here hold exactly **one** in-memory edge copy —
//! a single `Vec<Edge>` deduplicated by sort (`sort_unstable_by_key` on
//! the packed 64-bit key, then `dedup`) — and scatter it straight into
//! a writable mapping of the output `.bccsr` file via
//! [`bccsr::write_edges`], whose own scratch is ~16 bytes per vertex.
//! Peak anonymous memory for a generate-to-disk run is therefore
//! `8m + O(n)` bytes; the 16-bytes-per-edge adjacency image exists only
//! in the page cache, never as a second heap copy.
//!
//! Both families are **stitched to connected** (union-find over the
//! generated edges, then a star of representative links — see
//! [`stitch_connected`] for why not a chain): the xl tier measures the
//! connected-input pipelines directly through [`BccConfig::run`], and a
//! disconnected R-MAT would route through the per-component driver,
//! whose subgraph materialization would dominate the peak-RSS signal
//! the tier exists to compare. The stitch appends at most
//! `components - 1` extra edges, so R-MAT output carries `>= m` edges
//! (reported exactly in the returned [`WriteSummary`]).
//!
//! Output is deterministic per seed. The streamed R-MAT draws the same
//! quadrant-descent distribution as `gen::rmat` but is **not**
//! edge-for-edge identical to it: batch sort-dedup keeps a different
//! resolution of collisions than first-seen-wins hashing.
//!
//! [`BccConfig::run`]: ../../bcc_core/struct.BccConfig.html#method.run

use crate::bccsr::{self, WriteSummary};
use crate::edge::Edge;
use crate::gen::max_edges;
use rand::prelude::*;
use std::io;
use std::path::Path;

/// Sorts by the packed `(u, v)` key and drops duplicates in place —
/// the streaming replacement for the in-memory generators' `HashSet`.
fn sort_dedup(edges: &mut Vec<Edge>) {
    edges.sort_unstable_by_key(|e| e.key());
    edges.dedup();
}

/// Appends the `components - 1` stitch edges that make the edge set
/// connected on `n` vertices: union-find over the existing edges, then
/// every later component representative linked to the *first* one (a
/// star, still deterministic). `gen::geometric` chains representatives
/// in vertex order instead, which is fine at grid sizes but wrong here:
/// a skewed xl-scale draw can leave millions of singleton components,
/// and a chain stitch would thread them into a path that dominates the
/// graph's diameter — every level-synchronous kernel downstream (BFS,
/// the level-sweep low/high) would then measure the stitch artifact,
/// not the family. The star adds the same `components - 1` edges at
/// depth ≤ 1 from the anchor. Returns the number of edges appended.
fn stitch_connected(n: u32, edges: &mut Vec<Edge>) -> usize {
    let mut parent: Vec<u32> = (0..n).collect();
    fn find(parent: &mut [u32], v: u32) -> u32 {
        let mut x = v;
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for &Edge { u, v } in edges.iter() {
        let (a, b) = (find(&mut parent, u), find(&mut parent, v));
        if a != b {
            parent[a.max(b) as usize] = a.min(b);
        }
    }
    let before = edges.len();
    let mut anchor: Option<u32> = None;
    for v in 0..n {
        if find(&mut parent, v) == v {
            if let Some(a) = anchor {
                edges.push(Edge::new(a, v));
                parent[v as usize] = a;
            } else {
                anchor = Some(v);
            }
        }
    }
    edges.len() - before
}

/// Saturation guard for the redraw loops: with `before` edges at the
/// start of a round and `len` after its sort-dedup, reports whether the
/// round's net yield collapsed against a *large* shortfall. Skewed
/// distributions near their effective edge capacity (R-MAT hub pairs at
/// high `m/n`) can reach a regime where each full-shortfall redraw is
/// almost entirely duplicates, and since every round re-sorts the whole
/// vector, chasing the exact target would cost unbounded `m log m`
/// passes for negligible yield. Small shortfalls (< 4096) never trip
/// the guard: a nearly-complete tiny graph legitimately needs a few
/// low-yield rounds to place its last edges, and those rounds are cheap.
fn saturated(before: usize, len: usize, target: usize) -> bool {
    let shortfall = target - before;
    shortfall >= 4096 && (len - before) * 64 < shortfall
}

/// One R-MAT quadrant descent (Chakrabarti–Zhan–Faloutsos), identical
/// draw to `gen::rmat` including the per-level noise on `a`.
fn rmat_draw(rng: &mut StdRng, scale: u32, a: f64, b: f64, c: f64, d: f64) -> (u32, u32) {
    let (mut u, mut v) = (0u32, 0u32);
    for bit in (0..scale).rev() {
        let noise = 0.9 + 0.2 * rng.gen::<f64>();
        let (pa, pb, pc) = (a * noise, b, c);
        let total = pa + pb + pc + d;
        let r = rng.gen::<f64>() * total;
        if r < pa {
            // top-left: no bits set
        } else if r < pa + pb {
            v |= 1 << bit;
        } else if r < pa + pb + pc {
            u |= 1 << bit;
        } else {
            u |= 1 << bit;
            v |= 1 << bit;
        }
    }
    (u, v)
}

/// Generates a connected R-MAT graph (`n = 2^scale` vertices, `m`
/// unique edges plus the connectivity stitch) straight to a `.bccsr`
/// file in bounded memory: one `Vec<Edge>` with sort-based dedup, no
/// hash set, no intermediate [`Graph`](crate::Graph).
///
/// Each round draws exactly the current shortfall of candidates (self
/// loops skipped), then sort-dedups the whole list; the list length is
/// monotone and never exceeds `m`, so peak memory is one `8m`-byte
/// edge array. Near-saturated parameter regions (dense hubs at high
/// `m/n`) can leave rounds that are almost entirely duplicates, so the
/// loop also stops once a round fills less than 1/64 of a large
/// shortfall (see [`saturated`]) — the output then carries slightly
/// fewer than `m` edges (plus the stitch), which the returned
/// [`WriteSummary`] reports exactly.
pub fn rmat_to_bccsr(
    path: &Path,
    scale: u32,
    m: usize,
    a: f64,
    b: f64,
    c: f64,
    seed: u64,
) -> io::Result<WriteSummary> {
    assert!((1..31).contains(&scale));
    let d = 1.0 - a - b - c;
    assert!(
        a >= 0.0 && b >= 0.0 && c >= 0.0 && d >= 0.0,
        "bad quadrant probabilities"
    );
    let n = 1u32 << scale;
    assert!(m <= max_edges(n));
    let mut rng = StdRng::seed_from_u64(seed);
    // +n/2 headroom for the stitch edges, to keep the final appends
    // from forcing a doubling reallocation of a nearly-full vector.
    let mut edges: Vec<Edge> = Vec::with_capacity(m + (n as usize / 2).min(m / 8 + 16));
    while edges.len() < m {
        let before = edges.len();
        for _ in 0..m - before {
            let (u, v) = rmat_draw(&mut rng, scale, a, b, c, d);
            if u != v {
                edges.push(Edge::new(u, v).normalized());
            }
        }
        sort_dedup(&mut edges);
        if saturated(before, edges.len(), m) {
            break;
        }
    }
    stitch_connected(n, &mut edges);
    bccsr::write_edges(path, n, &edges)
}

/// Generates a connected spatial ("geo") graph — `n` uniform points in
/// the unit square joined within the radius yielding `target_degree`
/// expected neighbors, plus `chords` unique long-range edges — straight
/// to a `.bccsr` file in bounded memory.
///
/// Two deviations from `gen::geometric` keep the footprint flat at
/// 10M+ vertices: the r-grid buckets are a counting-sorted CSR
/// (`offsets` + `order`, 8 bytes per vertex) instead of a
/// `Vec<Vec<u32>>` with a 24-byte header per cell, and dedup is
/// sort-based over the single edge vector. Disk edges are unique by
/// construction (each unordered pair is examined once, from its
/// smaller-id endpoint), so only the chord rounds re-sort.
pub fn geometric_to_bccsr(
    path: &Path,
    n: u32,
    target_degree: f64,
    chords: usize,
    seed: u64,
) -> io::Result<WriteSummary> {
    assert!(n >= 1);
    assert!(target_degree > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let r = (target_degree / (n as f64 * std::f64::consts::PI))
        .sqrt()
        .min(1.0);
    let cells = ((1.0 / r).ceil() as usize).max(1);
    let cell_of = |p: (f64, f64)| {
        let cx = ((p.0 * cells as f64) as usize).min(cells - 1);
        let cy = ((p.1 * cells as f64) as usize).min(cells - 1);
        cy * cells + cx
    };

    // Counting-sort the points into an r-grid CSR.
    let mut offsets = vec![0u32; cells * cells + 1];
    for &p in &pts {
        offsets[cell_of(p) + 1] += 1;
    }
    for i in 0..cells * cells {
        offsets[i + 1] += offsets[i];
    }
    let mut cursor = offsets.clone();
    let mut order = vec![0u32; n as usize];
    for (v, &p) in pts.iter().enumerate() {
        let c = cell_of(p);
        order[cursor[c] as usize] = v as u32;
        cursor[c] += 1;
    }
    drop(cursor);
    let bucket = |cy: usize, cx: usize| {
        let c = cy * cells + cx;
        &order[offsets[c] as usize..offsets[c + 1] as usize]
    };

    // Disk edges: 3×3 neighborhood scan, each pair once from its
    // smaller endpoint — no dedup structure needed.
    let mut edges: Vec<Edge> = Vec::new();
    let r2 = r * r;
    for cy in 0..cells {
        for cx in 0..cells {
            for &u in bucket(cy, cx) {
                let (ux, uy) = pts[u as usize];
                for dy in cy.saturating_sub(1)..=(cy + 1).min(cells - 1) {
                    for dx in cx.saturating_sub(1)..=(cx + 1).min(cells - 1) {
                        for &v in bucket(dy, dx) {
                            if v <= u {
                                continue;
                            }
                            let (vx, vy) = pts[v as usize];
                            let (ddx, ddy) = (ux - vx, uy - vy);
                            if ddx * ddx + ddy * ddy <= r2 {
                                edges.push(Edge::new(u, v));
                            }
                        }
                    }
                }
            }
        }
    }
    drop(pts);
    drop(order);
    drop(offsets);

    // Chords: draw the shortfall, sort-dedup, repeat. Sorting keeps
    // the disk edges in the same vector, so a chord that collides with
    // a disk edge (or another chord) simply vanishes in the dedup and
    // is re-drawn next round.
    sort_dedup(&mut edges);
    let target = (edges.len() + chords).min(max_edges(n));
    while edges.len() < target {
        let before = edges.len();
        for _ in 0..target - before {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                edges.push(Edge::new(u, v).normalized());
            }
        }
        sort_dedup(&mut edges);
        if saturated(before, edges.len(), target) {
            break;
        }
    }
    stitch_connected(n, &mut edges);
    bccsr::write_edges(path, n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bccsr::MappedCsr;
    use crate::validate;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("bcc-gen-stream-{}-{name}", std::process::id()))
    }

    #[test]
    fn rmat_stream_is_connected_simple_and_deterministic() {
        let p1 = tmp("rmat-a.bccsr");
        let p2 = tmp("rmat-b.bccsr");
        let s1 = rmat_to_bccsr(&p1, 10, 4000, 0.57, 0.19, 0.19, 7).unwrap();
        let s2 = rmat_to_bccsr(&p2, 10, 4000, 0.57, 0.19, 0.19, 7).unwrap();
        assert_eq!(s1.n, 1024);
        assert!(s1.m >= 4000, "stitch only adds edges: {}", s1.m);
        let g1 = MappedCsr::open_graph(&p1).unwrap();
        let g2 = MappedCsr::open_graph(&p2).unwrap();
        assert_eq!(g1.edges(), g2.edges(), "same seed, same file");
        assert_eq!(s1.m, s2.m);
        validate::assert_simple(&g1);
        assert!(validate::is_connected(&g1));
        // Degree skew survives the streaming path.
        let avg = 2.0 * g1.m() as f64 / g1.n() as f64;
        let max = *g1.degrees().iter().max().unwrap() as f64;
        assert!(max > 4.0 * avg, "max {max} vs avg {avg}");
        let p3 = tmp("rmat-c.bccsr");
        let s3 = rmat_to_bccsr(&p3, 10, 4000, 0.57, 0.19, 0.19, 8).unwrap();
        let g3 = MappedCsr::open_graph(&p3).unwrap();
        assert!(g3.edges() != g1.edges() || s3.m != s1.m, "seed must matter");
        for p in [p1, p2, p3] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn geometric_stream_is_connected_simple_and_deterministic() {
        let p1 = tmp("geo-a.bccsr");
        let p2 = tmp("geo-b.bccsr");
        let s1 = geometric_to_bccsr(&p1, 800, 10.0, 40, 3).unwrap();
        geometric_to_bccsr(&p2, 800, 10.0, 40, 3).unwrap();
        assert_eq!(s1.n, 800);
        let g1 = MappedCsr::open_graph(&p1).unwrap();
        let g2 = MappedCsr::open_graph(&p2).unwrap();
        assert_eq!(g1.edges(), g2.edges());
        validate::assert_simple(&g1);
        assert!(validate::is_connected(&g1));
        let avg = 2.0 * g1.m() as f64 / g1.n() as f64;
        assert!((5.0..20.0).contains(&avg), "avg degree {avg}");
        for p in [p1, p2] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn geometric_stream_matches_in_memory_disk_edges() {
        // With no chords and the same seed, the disk-edge set must be
        // identical to gen::geometric's (same points, same radius) —
        // only the dedup mechanism differs, and disk edges never
        // collide. The in-memory output is already sorted by build;
        // compare as sorted sets to be robust to ordering policy.
        let p = tmp("geo-match.bccsr");
        geometric_to_bccsr(&p, 500, 8.0, 0, 11).unwrap();
        let streamed = MappedCsr::open_graph(&p).unwrap();
        let reference = crate::gen::geometric(500, 8.0, 0, 11);
        let mut a: Vec<u64> = streamed.edges().iter().map(|e| e.key()).collect();
        let mut b: Vec<u64> = reference.edges().iter().map(|e| e.key()).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn stitch_appends_exactly_component_count_minus_one() {
        let mut edges = vec![Edge::new(0, 1), Edge::new(2, 3), Edge::new(5, 6)];
        // Components: {0,1}, {2,3}, {4}, {5,6} -> 3 stitch edges.
        assert_eq!(stitch_connected(7, &mut edges), 3);
        assert_eq!(edges.len(), 6);
        let g = crate::GraphBuilder::new(7).edges(edges).build().unwrap();
        assert!(validate::is_connected(&g));
    }

    #[test]
    fn saturation_guard_fires_only_on_large_low_yield_rounds() {
        // Tiny shortfalls always retry, even at zero yield.
        assert!(!saturated(0, 0, 6));
        assert!(!saturated(999_000, 999_000, 1_000_000));
        // Healthy yield on a large shortfall keeps looping.
        assert!(!saturated(0, 100_000, 1_000_000));
        // Collapsed yield (< 1/64) on a large shortfall stops.
        assert!(saturated(0, 1_000, 1_000_000));
    }

    #[test]
    fn degenerate_sizes() {
        let p = tmp("degenerate.bccsr");
        // Single vertex: no edges, still a valid (if empty) file.
        let s = geometric_to_bccsr(&p, 1, 4.0, 0, 0).unwrap();
        assert_eq!((s.n, s.m), (1, 0));
        // Two vertices: the stitch guarantees the one possible edge.
        let s = geometric_to_bccsr(&p, 2, 4.0, 0, 0).unwrap();
        assert_eq!((s.n, s.m), (2, 1));
        // Tiny saturated R-MAT still terminates.
        let s = rmat_to_bccsr(&p, 2, 6, 0.25, 0.25, 0.25, 1).unwrap();
        assert_eq!((s.n, s.m), (4, 6));
        let _ = std::fs::remove_file(p);
    }
}

//! Graph validation helpers used by the algorithms' preconditions and
//! by the test suite.

use crate::csr::Csr;
use crate::edge::Graph;

/// Panics unless the graph is simple: no self loops, no duplicate edges
/// (in either orientation), all endpoints in range.
pub fn assert_simple(g: &Graph) {
    let mut keys: Vec<u64> = g.edges().iter().map(|e| e.key()).collect();
    keys.sort_unstable();
    for w in keys.windows(2) {
        assert_ne!(w[0], w[1], "duplicate edge detected");
    }
    for e in g.edges() {
        assert!(!e.is_loop(), "self loop {e:?}");
        assert!(e.u < g.n() && e.v < g.n(), "edge {e:?} out of range");
    }
}

/// True if the graph is simple (the non-panicking version).
pub fn is_simple(g: &Graph) -> bool {
    if g.edges()
        .iter()
        .any(|e| e.is_loop() || e.u >= g.n() || e.v >= g.n())
    {
        return false;
    }
    let mut keys: Vec<u64> = g.edges().iter().map(|e| e.key()).collect();
    keys.sort_unstable();
    keys.windows(2).all(|w| w[0] != w[1])
}

/// True if the graph is connected (vacuously true for n <= 1).
pub fn is_connected(g: &Graph) -> bool {
    let n = g.n() as usize;
    if n <= 1 {
        return true;
    }
    let csr = Csr::build(g);
    let mut seen = vec![false; n];
    let mut stack = vec![0u32];
    seen[0] = true;
    let mut count = 1usize;
    while let Some(v) = stack.pop() {
        for &w in csr.neighbors(v) {
            if !seen[w as usize] {
                seen[w as usize] = true;
                count += 1;
                stack.push(w);
            }
        }
    }
    count == n
}

/// Number of connected components (isolated vertices count).
pub fn count_components(g: &Graph) -> usize {
    let n = g.n() as usize;
    let csr = Csr::build(g);
    let mut seen = vec![false; n];
    let mut comps = 0usize;
    let mut stack = Vec::new();
    for s in 0..n {
        if seen[s] {
            continue;
        }
        comps += 1;
        seen[s] = true;
        stack.push(s as u32);
        while let Some(v) = stack.pop() {
            for &w in csr.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    stack.push(w);
                }
            }
        }
    }
    comps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, GraphBuilder};

    #[test]
    fn connectivity_checks() {
        assert!(is_connected(&gen::path(10)));
        assert!(is_connected(&gen::cycle(5)));
        let disconnected = GraphBuilder::new(4)
            .edges([(0, 1), (2, 3)])
            .build()
            .unwrap();
        assert!(!is_connected(&disconnected));
        assert_eq!(count_components(&disconnected), 2);
    }

    #[test]
    fn isolated_vertices_count_as_components() {
        let g = GraphBuilder::new(5).edges([(0, 1)]).build().unwrap();
        assert_eq!(count_components(&g), 4);
        assert!(!is_connected(&g));
    }

    #[test]
    fn trivial_graphs_connected() {
        assert!(is_connected(&GraphBuilder::new(0).build().unwrap()));
        assert!(is_connected(&GraphBuilder::new(1).build().unwrap()));
    }

    #[test]
    fn simplicity() {
        assert!(is_simple(&gen::complete(6)));
        assert_simple(&gen::torus(3, 3));
    }

    #[test]
    #[should_panic]
    fn duplicate_edges_caught() {
        // Strict builds preserve duplicates in opposite orientations;
        // assert_simple must still catch them.
        let g = GraphBuilder::new(3)
            .edges([(0, 1), (1, 0)])
            .build()
            .unwrap();
        assert_simple(&g);
    }
}

//! Component-wise subgraph extraction with stable relabeling.
//!
//! The per-component drivers (bcc-core's `run_any`, bcc-query's
//! incremental `IndexStore` commits) all need the same decomposition: a
//! vertex labeling partitions the graph, and each class becomes a
//! standalone [`Graph`] in compact local ids. [`Graph::split_by_labels`]
//! performs that extraction once and keeps *both* directions of the
//! renaming — `local[v]` maps a parent vertex into its part, and each
//! part's `verts` maps back out — plus the edge provenance
//! (`edge_orig`), so per-part results (component labels, index
//! structures) can be stitched back onto the parent graph without a
//! search.
//!
//! Local ids are assigned in ascending parent-vertex order, so any
//! per-part list that is sorted in local ids (articulation points, for
//! instance) stays sorted after mapping through `verts`.

use crate::edge::{Edge, Graph};

/// One class of a [`Graph::split_by_labels`] partition: the induced
/// subgraph in compact local ids plus the maps tying it to the parent.
#[derive(Clone, Debug)]
pub struct SplitPart {
    /// Local → parent vertex id, strictly ascending (`verts[l]` is the
    /// parent vertex that became local id `l`).
    pub verts: Vec<u32>,
    /// The induced subgraph over this class, in local ids; edge order
    /// follows the parent edge list.
    pub graph: Graph,
    /// Per local edge: its index in the parent edge list.
    pub edge_orig: Vec<u32>,
}

/// A whole-graph partition produced by [`Graph::split_by_labels`].
#[derive(Clone, Debug)]
pub struct ComponentSplit {
    /// Parent vertex → its local id within `parts[labels[v]]` (the
    /// inverse of each part's `verts`).
    pub local: Vec<u32>,
    /// One part per label `0..k`, in label order. Labels with no
    /// vertices yield empty parts.
    pub parts: Vec<SplitPart>,
}

impl Graph {
    /// Splits the graph into the subgraphs induced by a vertex labeling
    /// with labels `0..k` — typically connected-component labels, where
    /// by definition no edge crosses classes. Panics if `labels` does
    /// not cover every vertex, a label is `>= k`, or an edge spans two
    /// classes.
    pub fn split_by_labels(&self, labels: &[u32], k: u32) -> ComponentSplit {
        let n = self.n() as usize;
        assert_eq!(labels.len(), n, "labels must cover every vertex");
        let mut local = vec![0u32; n];
        let mut verts: Vec<Vec<u32>> = vec![Vec::new(); k as usize];
        for v in 0..n {
            let c = labels[v] as usize;
            assert!(c < k as usize, "label {c} out of range (k = {k})");
            local[v] = verts[c].len() as u32;
            verts[c].push(v as u32);
        }
        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); k as usize];
        let mut edge_orig: Vec<Vec<u32>> = vec![Vec::new(); k as usize];
        for (i, e) in self.edges().iter().enumerate() {
            let c = labels[e.u as usize];
            assert_eq!(
                c, labels[e.v as usize],
                "edge {e:?} spans labels {c} and {}",
                labels[e.v as usize]
            );
            edges[c as usize].push(Edge::new(local[e.u as usize], local[e.v as usize]));
            edge_orig[c as usize].push(i as u32);
        }
        let parts = verts
            .into_iter()
            .zip(edges)
            .zip(edge_orig)
            .map(|((verts, edges), edge_orig)| SplitPart {
                graph: Graph::from_vec(verts.len() as u32, edges),
                verts,
                edge_orig,
            })
            .collect();
        ComponentSplit { local, parts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn splits_components_with_inverse_maps() {
        // Triangle {0,2,4}, edge {1,5}, isolated 3.
        let g = GraphBuilder::new(6)
            .edges([(0, 2), (2, 4), (4, 0), (1, 5)])
            .build()
            .unwrap();
        let labels = [0, 1, 0, 2, 0, 1];
        let s = g.split_by_labels(&labels, 3);
        assert_eq!(s.parts.len(), 3);

        let tri = &s.parts[0];
        assert_eq!(tri.verts, vec![0, 2, 4]);
        assert_eq!(tri.graph.n(), 3);
        assert_eq!(tri.graph.m(), 3);
        assert_eq!(tri.edge_orig, vec![0, 1, 2]);

        let pair = &s.parts[1];
        assert_eq!(pair.verts, vec![1, 5]);
        assert_eq!(pair.graph.edges(), &[Edge::new(0, 1)]);
        assert_eq!(pair.edge_orig, vec![3]);

        let iso = &s.parts[2];
        assert_eq!(iso.verts, vec![3]);
        assert_eq!(iso.graph.m(), 0);

        // Round trip: local is the inverse of each part's verts.
        for (p, part) in s.parts.iter().enumerate() {
            for (l, &v) in part.verts.iter().enumerate() {
                assert_eq!(labels[v as usize] as usize, p);
                assert_eq!(s.local[v as usize] as usize, l);
            }
        }
        // Part edges name the same endpoints as their originals.
        for part in &s.parts {
            for (e, &orig) in part.graph.edges().iter().zip(&part.edge_orig) {
                let o = g.edges()[orig as usize];
                assert_eq!(part.verts[e.u as usize], o.u);
                assert_eq!(part.verts[e.v as usize], o.v);
            }
        }
    }

    #[test]
    fn local_ids_ascend_with_parent_ids() {
        let g = GraphBuilder::new(8)
            .edges([(7, 1), (1, 3), (3, 7), (0, 2)])
            .build()
            .unwrap();
        let labels = [1, 0, 1, 0, 1, 1, 1, 0];
        let s = g.split_by_labels(&labels, 2);
        for part in &s.parts {
            assert!(part.verts.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn empty_label_class_yields_empty_part() {
        let g = GraphBuilder::new(2).edges([(0, 1)]).build().unwrap();
        let s = g.split_by_labels(&[1, 1], 3);
        assert_eq!(s.parts[0].verts.len(), 0);
        assert_eq!(s.parts[2].graph.n(), 0);
        assert_eq!(s.parts[1].graph.m(), 1);
    }

    #[test]
    #[should_panic]
    fn rejects_edges_spanning_labels() {
        let g = GraphBuilder::new(2).edges([(0, 1)]).build().unwrap();
        let _ = g.split_by_labels(&[0, 1], 2);
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_labels() {
        let g = GraphBuilder::new(2).edges([(0, 1)]).build().unwrap();
        let _ = g.split_by_labels(&[5, 5], 2);
    }
}

//! `.bccsr` — the on-disk binary CSR graph format.
//!
//! A `.bccsr` file is the workspace's edge list *and* adjacency
//! structure in one immutable, mmap-friendly image. Opening one costs a
//! header validation plus (by default) one streaming checksum pass; the
//! resulting [`MappedCsr`] serves `edges()`, CSR offsets, neighbor
//! slices, and edge ids as zero-copy typed slices into the mapping, so
//! an index build starting from cold storage never materializes a
//! second in-memory copy of the graph.
//!
//! ## Layout (all fields little-endian, every section 8-byte aligned)
//!
//! ```text
//! offset  bytes        field
//! 0       8            magic  "BCCSRFMT"
//! 8       8            format version (currently 1)
//! 16      8            n — vertex count (fits u32)
//! 24      8            m — undirected edge count (fits u32)
//! 32      8            flags (bit 0: payload checksum present)
//! 40      8            FNV-1a-64 checksum of the payload bytes
//! 48      8            payload length in bytes (= 24m + 8n + 8)
//! 56      8            reserved (0)
//! 64      8m           edges   — m × (u32 u, u32 v), as given
//! 64+8m   8(n+1)       offsets — u64; arcs of v are offsets[v]..offsets[v+1]
//! ...     8m           adj     — 2m × u32 neighbor, both arc directions
//! ...     8m           eid     — 2m × u32 edge index into `edges`
//! ```
//!
//! The format is little-endian on disk; big-endian hosts are rejected
//! at open time rather than silently misreading (no such host exists in
//! this workspace's deployment matrix).

use crate::edge::{Edge, Graph};
use crate::mmap::{MmapMut, MmapView};
use std::io;
use std::path::Path;
use std::sync::Arc;

/// First 8 bytes of every `.bccsr` file.
pub const MAGIC: [u8; 8] = *b"BCCSRFMT";

/// Format version this build reads and writes.
pub const VERSION: u64 = 1;

/// Header size in bytes.
pub const HEADER_LEN: usize = 64;

const FLAG_CHECKSUM: u64 = 1;

/// Errors opening or validating a `.bccsr` file.
#[derive(Debug)]
pub enum BccsrError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's version field is not [`VERSION`].
    UnsupportedVersion(u64),
    /// The file is shorter than its header declares.
    Truncated {
        /// Bytes the header implies.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The payload checksum does not match the header's.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the bytes on disk.
        actual: u64,
    },
    /// A structural invariant fails (non-monotonic offsets,
    /// out-of-range ids, counts that don't fit u32, ...).
    Corrupt(String),
}

impl std::fmt::Display for BccsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BccsrError::Io(e) => write!(f, "i/o error: {e}"),
            BccsrError::BadMagic => write!(f, "not a .bccsr file (bad magic)"),
            BccsrError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported .bccsr version {v} (this build reads {VERSION})"
                )
            }
            BccsrError::Truncated { expected, actual } => {
                write!(
                    f,
                    "truncated .bccsr file: header declares {expected} bytes, found {actual}"
                )
            }
            BccsrError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checksum mismatch: header says {expected:#018x}, payload hashes to {actual:#018x}"
            ),
            BccsrError::Corrupt(msg) => write!(f, "corrupt .bccsr file: {msg}"),
        }
    }
}

impl std::error::Error for BccsrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BccsrError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for BccsrError {
    fn from(e: io::Error) -> Self {
        BccsrError::Io(e)
    }
}

impl From<BccsrError> for io::Error {
    fn from(e: BccsrError) -> Self {
        match e {
            BccsrError::Io(e) => e,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// FNV-1a 64 over a byte slice — cheap, streaming, and dependency-free;
/// this guards against torn writes and bit rot, not adversaries.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Payload length for an (n, m) instance: edges + offsets + adj + eid.
fn payload_len(n: u64, m: u64) -> u64 {
    8 * m + 8 * (n + 1) + 8 * m + 8 * m
}

/// What [`write`] produced.
#[derive(Clone, Copy, Debug)]
pub struct WriteSummary {
    /// Vertices.
    pub n: u32,
    /// Undirected edges.
    pub m: usize,
    /// Total file size in bytes.
    pub bytes: u64,
}

fn put_u64(bytes: &mut [u8], word: usize, value: u64) {
    bytes[word * 8..word * 8 + 8].copy_from_slice(&value.to_le_bytes());
}

fn get_u64(bytes: &[u8], word: usize) -> u64 {
    u64::from_le_bytes(bytes[word * 8..word * 8 + 8].try_into().unwrap())
}

/// Writes `g` as a `.bccsr` file at `path`.
///
/// The adjacency sections (the bulk of the image: 16 bytes per edge)
/// are scattered directly into a writable mapping of the output file,
/// so conversion memory stays at the edge list the caller already holds
/// plus ~16 bytes per vertex of degree/offset/cursor arrays — the
/// output never gets a second anonymous-memory materialization.
pub fn write(path: &Path, g: &Graph) -> io::Result<WriteSummary> {
    write_edges(path, g.n(), g.edges())
}

/// [`write`] from a raw validated edge list (no self loops, endpoints
/// `< n`); the converter's entry point.
pub fn write_edges(path: &Path, n: u32, edges: &[Edge]) -> io::Result<WriteSummary> {
    if cfg!(target_endian = "big") {
        return Err(io::Error::new(
            io::ErrorKind::Unsupported,
            ".bccsr is a little-endian format",
        ));
    }
    let m = edges.len();
    if m > u32::MAX as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("edge count {m} exceeds the format's u32 limit"),
        ));
    }
    let nu = n as usize;
    let mut deg = vec![0u32; nu];
    for e in edges {
        if e.u >= n || e.v >= n {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("edge {e:?} out of range (n = {n})"),
            ));
        }
        if e.is_loop() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("self loop {e:?} not allowed"),
            ));
        }
        deg[e.u as usize] += 1;
        deg[e.v as usize] += 1;
    }
    let mut offsets = vec![0u64; nu + 1];
    for v in 0..nu {
        offsets[v + 1] = offsets[v] + u64::from(deg[v]);
    }
    drop(deg);

    let payload = payload_len(u64::from(n), m as u64) as usize;
    let total = HEADER_LEN + payload;
    let mut map = MmapMut::create(path, total)?;
    let bytes = map.bytes_mut();

    // Header (checksum patched in below, after the payload exists).
    bytes[0..8].copy_from_slice(&MAGIC);
    put_u64(bytes, 1, VERSION);
    put_u64(bytes, 2, u64::from(n));
    put_u64(bytes, 3, m as u64);
    put_u64(bytes, 4, FLAG_CHECKSUM);
    put_u64(bytes, 5, 0);
    put_u64(bytes, 6, payload as u64);
    put_u64(bytes, 7, 0);

    let edges_at = HEADER_LEN;
    let offsets_at = edges_at + 8 * m;
    let adj_at = offsets_at + 8 * (nu + 1);
    let eid_at = adj_at + 8 * m;

    // Section pointers into the mapping. SAFETY: the section offsets
    // are 8-byte aligned within an 8-byte-aligned buffer, the ranges
    // are disjoint and in-bounds by construction, and `Edge` is
    // `#[repr(C)] { u32, u32 }` so its in-memory layout is exactly the
    // on-disk layout on a little-endian host (enforced above).
    let base = bytes.as_mut_ptr();
    let (edge_sec, off_sec, adj_sec, eid_sec) = unsafe {
        (
            std::slice::from_raw_parts_mut(base.add(edges_at) as *mut Edge, m),
            std::slice::from_raw_parts_mut(base.add(offsets_at) as *mut u64, nu + 1),
            std::slice::from_raw_parts_mut(base.add(adj_at) as *mut u32, 2 * m),
            std::slice::from_raw_parts_mut(base.add(eid_at) as *mut u32, 2 * m),
        )
    };
    off_sec.copy_from_slice(&offsets);
    let mut cursor = vec![0u32; nu];
    for (i, &e) in edges.iter().enumerate() {
        edge_sec[i] = e;
        let pu = offsets[e.u as usize] as usize + cursor[e.u as usize] as usize;
        adj_sec[pu] = e.v;
        eid_sec[pu] = i as u32;
        cursor[e.u as usize] += 1;
        let pv = offsets[e.v as usize] as usize + cursor[e.v as usize] as usize;
        adj_sec[pv] = e.u;
        eid_sec[pv] = i as u32;
        cursor[e.v as usize] += 1;
    }

    let checksum = fnv1a(&map.bytes()[HEADER_LEN..]);
    put_u64(map.bytes_mut(), 5, checksum);
    map.sync()?;
    Ok(WriteSummary {
        n,
        m,
        bytes: total as u64,
    })
}

/// A read-only `.bccsr` image: the mmap plus the validated section
/// geometry. All accessors are zero-copy slices into the mapping.
pub struct MappedCsr {
    view: MmapView,
    n: u32,
    m: usize,
    offsets_at: usize,
    adj_at: usize,
    eid_at: usize,
}

impl MappedCsr {
    /// Opens and fully validates `path`: header, section geometry,
    /// payload checksum, and id ranges. One streaming pass over the
    /// file; pages are released back to the OS under memory pressure.
    pub fn open(path: &Path) -> Result<MappedCsr, BccsrError> {
        Self::open_inner(path, true)
    }

    /// Opens `path` validating the header, geometry, and CSR offsets
    /// but skipping the payload checksum and id-range scan — O(header +
    /// offsets) instead of O(file). For files this process just wrote,
    /// or trusted local storage.
    pub fn open_unverified(path: &Path) -> Result<MappedCsr, BccsrError> {
        Self::open_inner(path, false)
    }

    fn open_inner(path: &Path, verify: bool) -> Result<MappedCsr, BccsrError> {
        if cfg!(target_endian = "big") {
            return Err(BccsrError::Corrupt(
                ".bccsr is a little-endian format; this host is big-endian".into(),
            ));
        }
        let view = MmapView::open(path)?;
        let bytes = view.bytes();
        if bytes.len() < HEADER_LEN {
            return Err(BccsrError::Truncated {
                expected: HEADER_LEN as u64,
                actual: bytes.len() as u64,
            });
        }
        if bytes[0..8] != MAGIC {
            return Err(BccsrError::BadMagic);
        }
        let version = get_u64(bytes, 1);
        if version != VERSION {
            return Err(BccsrError::UnsupportedVersion(version));
        }
        let n64 = get_u64(bytes, 2);
        let m64 = get_u64(bytes, 3);
        if n64 > u64::from(u32::MAX) || m64 > u64::from(u32::MAX) {
            return Err(BccsrError::Corrupt(format!(
                "n = {n64} / m = {m64} exceed the format's u32 limits"
            )));
        }
        let declared_payload = get_u64(bytes, 6);
        let expected_payload = payload_len(n64, m64);
        if declared_payload != expected_payload {
            return Err(BccsrError::Corrupt(format!(
                "payload length {declared_payload} does not match n/m (expected {expected_payload})"
            )));
        }
        let expected_total = HEADER_LEN as u64 + expected_payload;
        if (bytes.len() as u64) != expected_total {
            return Err(BccsrError::Truncated {
                expected: expected_total,
                actual: bytes.len() as u64,
            });
        }
        let flags = get_u64(bytes, 4);
        if verify && flags & FLAG_CHECKSUM != 0 {
            let expected = get_u64(bytes, 5);
            let actual = fnv1a(&bytes[HEADER_LEN..]);
            if expected != actual {
                return Err(BccsrError::ChecksumMismatch { expected, actual });
            }
        }

        let n = n64 as u32;
        let m = m64 as usize;
        let edges_at = HEADER_LEN;
        let offsets_at = edges_at + 8 * m;
        let adj_at = offsets_at + 8 * (n as usize + 1);
        let eid_at = adj_at + 8 * m;
        let mapped = MappedCsr {
            view,
            n,
            m,
            offsets_at,
            adj_at,
            eid_at,
        };

        // Offsets must be a monotone prefix-sum ending at 2m for the
        // neighbor-slice accessors to be in-bounds; always checked
        // (O(n), touches only the offsets section).
        let offsets = mapped.offsets();
        if offsets[0] != 0 || offsets[n as usize] != 2 * m as u64 {
            return Err(BccsrError::Corrupt(format!(
                "offsets must run 0..=2m (got {} ..= {})",
                offsets[0], offsets[n as usize]
            )));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(BccsrError::Corrupt("offsets are not monotone".into()));
        }
        if verify {
            // Full id-range scan: every endpoint and neighbor < n,
            // every edge id < m, no self loops.
            for (i, e) in mapped.edges().iter().enumerate() {
                if e.u >= n || e.v >= n {
                    return Err(BccsrError::Corrupt(format!(
                        "edge {i} = {e:?} out of range"
                    )));
                }
                if e.is_loop() {
                    return Err(BccsrError::Corrupt(format!(
                        "edge {i} = {e:?} is a self loop"
                    )));
                }
            }
            if mapped.adj().iter().any(|&w| w >= n) {
                return Err(BccsrError::Corrupt(
                    "adjacency neighbor out of range".into(),
                ));
            }
            if mapped.eid().iter().any(|&id| id as usize >= m.max(1)) && m > 0 {
                return Err(BccsrError::Corrupt("edge id out of range".into()));
            }
        }
        Ok(mapped)
    }

    /// Opens `path` and wraps it in a [`Graph`] backed by this mapping.
    pub fn open_graph(path: &Path) -> Result<Graph, BccsrError> {
        Ok(Graph::from_mapped(Arc::new(Self::open(path)?)))
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Total size of the backing file in bytes.
    pub fn file_len(&self) -> u64 {
        self.view.len() as u64
    }

    /// The edge list, zero-copy from the mapping.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        // SAFETY: geometry validated at open; section is 8-aligned and
        // in-bounds; Edge is #[repr(C)] {u32, u32} matching the disk
        // layout on the little-endian hosts `open` admits.
        unsafe {
            std::slice::from_raw_parts(
                self.view.bytes().as_ptr().add(HEADER_LEN) as *const Edge,
                self.m,
            )
        }
    }

    /// CSR offsets (`n + 1` entries; arcs of `v` are
    /// `offsets[v]..offsets[v+1]`), zero-copy from the mapping.
    #[inline]
    pub fn offsets(&self) -> &[u64] {
        // SAFETY: as in `edges`.
        unsafe {
            std::slice::from_raw_parts(
                self.view.bytes().as_ptr().add(self.offsets_at) as *const u64,
                self.n as usize + 1,
            )
        }
    }

    /// The full neighbor array (both arc directions), zero-copy.
    #[inline]
    pub fn adj(&self) -> &[u32] {
        // SAFETY: as in `edges`.
        unsafe {
            std::slice::from_raw_parts(
                self.view.bytes().as_ptr().add(self.adj_at) as *const u32,
                2 * self.m,
            )
        }
    }

    /// The full edge-id array, parallel to [`MappedCsr::adj`].
    #[inline]
    pub fn eid(&self) -> &[u32] {
        // SAFETY: as in `edges`.
        unsafe {
            std::slice::from_raw_parts(
                self.view.bytes().as_ptr().add(self.eid_at) as *const u32,
                2 * self.m,
            )
        }
    }

    /// Neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let offsets = self.offsets();
        &self.adj()[offsets[v as usize] as usize..offsets[v as usize + 1] as usize]
    }

    /// Edge ids of the arcs out of `v`, parallel to
    /// [`MappedCsr::neighbors`].
    #[inline]
    pub fn edge_ids(&self, v: u32) -> &[u32] {
        let offsets = self.offsets();
        &self.eid()[offsets[v as usize] as usize..offsets[v as usize + 1] as usize]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        let offsets = self.offsets();
        (offsets[v as usize + 1] - offsets[v as usize]) as usize
    }
}

impl std::fmt::Debug for MappedCsr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MappedCsr(n = {}, m = {}, {} bytes)",
            self.n,
            self.m,
            self.file_len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "bcc-bccsr-test-{}-{name}.bccsr",
            std::process::id()
        ));
        p
    }

    #[test]
    fn write_open_roundtrip() {
        let g = gen::random_connected(200, 600, 9);
        let path = temp_path("roundtrip");
        let summary = write(&path, &g).unwrap();
        assert_eq!(summary.n, 200);
        assert_eq!(summary.m, 600);
        assert_eq!(
            summary.bytes,
            HEADER_LEN as u64 + payload_len(200, 600),
            "file size matches the declared geometry"
        );

        let mapped = MappedCsr::open(&path).unwrap();
        assert_eq!(mapped.n(), g.n());
        assert_eq!(mapped.m(), g.m());
        assert_eq!(mapped.edges(), g.edges(), "edge-for-edge identical");
        assert_eq!(mapped.file_len(), summary.bytes);

        // Adjacency agrees with the in-memory CSR as per-vertex sets.
        let csr = crate::Csr::build(&g);
        for v in 0..g.n() {
            let mut a: Vec<(u32, u32)> = mapped
                .neighbors(v)
                .iter()
                .copied()
                .zip(mapped.edge_ids(v).iter().copied())
                .collect();
            a.sort_unstable();
            let mut b: Vec<(u32, u32)> = csr.arcs(v).collect();
            b.sort_unstable();
            assert_eq!(a, b, "v = {v}");
            assert_eq!(mapped.degree(v), csr.degree(v));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_and_isolated_graphs_roundtrip() {
        for g in [
            crate::GraphBuilder::new(0).build().unwrap(),
            crate::GraphBuilder::new(5).build().unwrap(),
            crate::GraphBuilder::new(3).edge(0, 2).build().unwrap(),
        ] {
            let path = temp_path(&format!("small-{}-{}", g.n(), g.m()));
            write(&path, &g).unwrap();
            let mapped = MappedCsr::open(&path).unwrap();
            assert_eq!(mapped.n(), g.n());
            assert_eq!(mapped.edges(), g.edges());
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn rejects_corrupted_header_and_payload() {
        let g = gen::cycle(32);
        let path = temp_path("corrupt");
        write(&path, &g).unwrap();
        let pristine = std::fs::read(&path).unwrap();

        // Bad magic.
        let mut bad = pristine.clone();
        bad[0] ^= 0xff;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(MappedCsr::open(&path), Err(BccsrError::BadMagic)));

        // Future version.
        let mut bad = pristine.clone();
        bad[8] = 99;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            MappedCsr::open(&path),
            Err(BccsrError::UnsupportedVersion(99))
        ));

        // Truncation (drop the last 16 bytes).
        std::fs::write(&path, &pristine[..pristine.len() - 16]).unwrap();
        assert!(matches!(
            MappedCsr::open(&path),
            Err(BccsrError::Truncated { .. })
        ));

        // Payload bit flip: caught by the checksum on verified open.
        let mut bad = pristine.clone();
        let flip = HEADER_LEN + 5;
        bad[flip] ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            MappedCsr::open(&path),
            Err(BccsrError::ChecksumMismatch { .. })
        ));

        // The pristine bytes still open.
        std::fs::write(&path, &pristine).unwrap();
        assert!(MappedCsr::open(&path).is_ok());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unverified_open_still_validates_geometry() {
        let g = gen::path(16);
        let path = temp_path("unverified");
        write(&path, &g).unwrap();
        let pristine = std::fs::read(&path).unwrap();

        // A payload flip in the adj section passes unverified open...
        let mut bad = pristine.clone();
        let adj_at = HEADER_LEN + 8 * g.m() + 8 * (g.n() as usize + 1);
        bad[adj_at] ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        assert!(MappedCsr::open_unverified(&path).is_ok());
        // ...but a broken offsets prefix-sum does not.
        let mut bad = pristine.clone();
        let off_at = HEADER_LEN + 8 * g.m();
        bad[off_at] = 7; // offsets[0] != 0
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            MappedCsr::open_unverified(&path),
            Err(BccsrError::Corrupt(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn writer_rejects_invalid_edges() {
        let path = temp_path("invalid");
        assert!(write_edges(&path, 3, &[Edge::new(0, 3)]).is_err());
        assert!(write_edges(&path, 3, &[Edge::new(1, 1)]).is_err());
        let _ = std::fs::remove_file(&path);
    }
}

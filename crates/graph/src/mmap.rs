//! Minimal memory-mapped file views.
//!
//! The build environment has no cargo registry, so this module binds
//! `mmap`/`munmap`/`msync` directly (libc is already linked by `std` on
//! every unix target) instead of pulling in `memmap2`. Two views:
//!
//! * [`MmapView`] — a read-only, shared mapping of a whole file. This
//!   is what [`crate::bccsr::MappedCsr`] serves graph sections from:
//!   pages fault in on first touch, stay evictable under memory
//!   pressure, and are shared between processes mapping the same file.
//! * [`MmapMut`] — a writable shared mapping, used by the `.bccsr`
//!   writer to scatter adjacency arcs straight into the output file so
//!   the converter never holds the (largest) adjacency sections in
//!   anonymous memory.
//!
//! On non-unix targets both fall back to plain heap buffers (read the
//! file / write it back on flush), keeping the API portable at the cost
//! of the zero-copy property.
//!
//! Mapped buffers are 8-byte aligned in every backing (mmap returns
//! page-aligned addresses; the heap fallback allocates `u64`s), which
//! the typed-slice casts in `bccsr` rely on.
//!
//! **Safety contract:** a mapping's length is fixed at open time. If
//! another process truncates the file while it is mapped, touching the
//! vanished pages raises `SIGBUS` — the standard caveat of every
//! file-mapping API. Treat `.bccsr` files as immutable once written.

use std::fs::File;
use std::io;
use std::path::Path;

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    pub const PROT_READ: i32 = 1;
    pub const PROT_WRITE: i32 = 2;
    pub const MAP_SHARED: i32 = 1;
    pub const MS_SYNC: i32 = 4;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
        fn msync(addr: *mut c_void, len: usize, flags: i32) -> i32;
    }

    /// A raw shared mapping of the first `len` bytes of `file`.
    pub struct RawMap {
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the mapping is plain memory; concurrent access follows
    // the same rules as any &[u8]/&mut [u8] the callers hand out.
    unsafe impl Send for RawMap {}
    unsafe impl Sync for RawMap {}

    impl RawMap {
        pub fn map(file: &File, len: usize, writable: bool) -> io::Result<RawMap> {
            if len == 0 {
                // POSIX rejects zero-length mappings; model them as a
                // dangling-but-aligned empty buffer.
                return Ok(RawMap {
                    ptr: std::ptr::null_mut(),
                    len: 0,
                });
            }
            let prot = if writable {
                PROT_READ | PROT_WRITE
            } else {
                PROT_READ
            };
            // SAFETY: len > 0, fd is a live file descriptor; MAP_SHARED
            // with offset 0 maps the file's own pages.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    prot,
                    MAP_SHARED,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(RawMap { ptr, len })
        }

        pub fn as_ptr(&self) -> *const u8 {
            if self.ptr.is_null() {
                std::ptr::NonNull::<u8>::dangling().as_ptr()
            } else {
                self.ptr as *const u8
            }
        }

        pub fn as_mut_ptr(&mut self) -> *mut u8 {
            if self.ptr.is_null() {
                std::ptr::NonNull::<u8>::dangling().as_ptr()
            } else {
                self.ptr as *mut u8
            }
        }

        pub fn len(&self) -> usize {
            self.len
        }

        pub fn sync(&self) -> io::Result<()> {
            if self.len == 0 {
                return Ok(());
            }
            // SAFETY: ptr/len describe this live mapping.
            if unsafe { msync(self.ptr, self.len, MS_SYNC) } != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }
    }

    impl Drop for RawMap {
        fn drop(&mut self) {
            if !self.ptr.is_null() {
                // SAFETY: ptr/len came from a successful mmap.
                unsafe { munmap(self.ptr, self.len) };
            }
        }
    }
}

/// 8-byte-aligned heap buffer (the non-unix fallback backing, and the
/// allocation the unit tests exercise on every platform).
fn aligned_buf(len: usize) -> Vec<u64> {
    vec![0u64; len.div_ceil(8)]
}

enum ViewRepr {
    #[cfg(unix)]
    Mapped(sys::RawMap),
    Heap(Vec<u64>, usize),
}

/// A read-only view of a whole file, memory-mapped where the platform
/// allows. The buffer is 8-byte aligned.
pub struct MmapView {
    repr: ViewRepr,
}

impl MmapView {
    /// Maps (or, off unix, reads) the file at `path` read-only.
    pub fn open(path: &Path) -> io::Result<MmapView> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "file too large to map on this platform",
            ));
        }
        Self::from_file(&file, len as usize)
    }

    #[cfg(unix)]
    fn from_file(file: &File, len: usize) -> io::Result<MmapView> {
        Ok(MmapView {
            repr: ViewRepr::Mapped(sys::RawMap::map(file, len, false)?),
        })
    }

    #[cfg(not(unix))]
    fn from_file(file: &File, len: usize) -> io::Result<MmapView> {
        use std::io::Read;
        let mut buf = aligned_buf(len);
        let bytes = unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, len) };
        let mut reader = file;
        reader.read_exact(bytes)?;
        Ok(MmapView {
            repr: ViewRepr::Heap(buf, len),
        })
    }

    /// Wraps an owned byte buffer in the view interface (used by tests
    /// and by readers of in-memory images; copies to align).
    pub fn from_bytes(bytes: &[u8]) -> MmapView {
        let mut buf = aligned_buf(bytes.len());
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), buf.as_mut_ptr() as *mut u8, bytes.len());
        }
        MmapView {
            repr: ViewRepr::Heap(buf, bytes.len()),
        }
    }

    /// The file's bytes. Always 8-byte aligned at index 0.
    pub fn bytes(&self) -> &[u8] {
        match &self.repr {
            #[cfg(unix)]
            ViewRepr::Mapped(m) => unsafe { std::slice::from_raw_parts(m.as_ptr(), m.len()) },
            ViewRepr::Heap(buf, len) => unsafe {
                std::slice::from_raw_parts(buf.as_ptr() as *const u8, *len)
            },
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        match &self.repr {
            #[cfg(unix)]
            ViewRepr::Mapped(m) => m.len(),
            ViewRepr::Heap(_, len) => *len,
        }
    }

    /// True if the file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for MmapView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.repr {
            #[cfg(unix)]
            ViewRepr::Mapped(_) => "mapped",
            ViewRepr::Heap(..) => "heap",
        };
        write!(f, "MmapView({kind}, {} bytes)", self.len())
    }
}

#[cfg_attr(unix, allow(dead_code))] // Heap is the non-unix fallback
enum MutRepr {
    #[cfg(unix)]
    Mapped(sys::RawMap),
    Heap {
        buf: Vec<u64>,
        len: usize,
        file: File,
    },
}

/// A writable shared mapping of a file created at a fixed length.
/// Writes land in the page cache (or, off unix, in a heap buffer
/// written back by [`MmapMut::sync`]).
pub struct MmapMut {
    repr: MutRepr,
}

impl MmapMut {
    /// Creates (truncating) `path` at exactly `len` bytes and maps it
    /// writable.
    pub fn create(path: &Path, len: usize) -> io::Result<MmapMut> {
        let file = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.set_len(len as u64)?;
        Self::from_file(file, len)
    }

    #[cfg(unix)]
    fn from_file(file: File, len: usize) -> io::Result<MmapMut> {
        Ok(MmapMut {
            repr: MutRepr::Mapped(sys::RawMap::map(&file, len, true)?),
        })
    }

    #[cfg(not(unix))]
    fn from_file(file: File, len: usize) -> io::Result<MmapMut> {
        Ok(MmapMut {
            repr: MutRepr::Heap {
                buf: aligned_buf(len),
                len,
                file,
            },
        })
    }

    /// The writable bytes. Always 8-byte aligned at index 0.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        match &mut self.repr {
            #[cfg(unix)]
            MutRepr::Mapped(m) => unsafe {
                std::slice::from_raw_parts_mut(m.as_mut_ptr(), m.len())
            },
            MutRepr::Heap { buf, len, .. } => unsafe {
                std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, *len)
            },
        }
    }

    /// Read access without reborrowing mutably (checksum passes).
    pub fn bytes(&self) -> &[u8] {
        match &self.repr {
            #[cfg(unix)]
            MutRepr::Mapped(m) => unsafe { std::slice::from_raw_parts(m.as_ptr(), m.len()) },
            MutRepr::Heap { buf, len, .. } => unsafe {
                std::slice::from_raw_parts(buf.as_ptr() as *const u8, *len)
            },
        }
    }

    /// Flushes the written bytes to the file.
    pub fn sync(&mut self) -> io::Result<()> {
        match &mut self.repr {
            #[cfg(unix)]
            MutRepr::Mapped(m) => m.sync(),
            MutRepr::Heap { buf, len, file } => {
                use std::io::{Seek, SeekFrom, Write};
                let bytes = unsafe { std::slice::from_raw_parts(buf.as_ptr() as *const u8, *len) };
                file.seek(SeekFrom::Start(0))?;
                file.write_all(bytes)?;
                file.flush()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("bcc-mmap-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_through_file() {
        let path = temp_path("roundtrip");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        {
            let mut w = MmapMut::create(&path, payload.len()).unwrap();
            w.bytes_mut().copy_from_slice(&payload);
            w.sync().unwrap();
        }
        let view = MmapView::open(&path).unwrap();
        assert_eq!(view.len(), payload.len());
        assert_eq!(view.bytes(), &payload[..]);
        assert_eq!(view.bytes().as_ptr() as usize % 8, 0, "8-byte aligned");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_as_empty() {
        let path = temp_path("empty");
        std::fs::File::create(&path).unwrap().flush().unwrap();
        let view = MmapView::open(&path).unwrap();
        assert!(view.is_empty());
        assert_eq!(view.bytes(), &[] as &[u8]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn from_bytes_copies_and_aligns() {
        let view = MmapView::from_bytes(&[1, 2, 3, 4, 5]);
        assert_eq!(view.bytes(), &[1, 2, 3, 4, 5]);
        assert_eq!(view.bytes().as_ptr() as usize % 8, 0);
    }

    #[test]
    fn missing_file_errors() {
        assert!(MmapView::open(Path::new("/no/such/bcc/file")).is_err());
    }
}

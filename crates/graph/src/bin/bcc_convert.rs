//! `bcc-convert` — convert a text edge list (SNAP dump or DIMACS-style)
//! into the binary mmap-ready `.bccsr` format.
//!
//! ```text
//! bcc-convert <input> [-o <output.bccsr>] [--no-verify]
//! bcc-convert info <file.bccsr>
//! ```
//!
//! Conversion is a single parse pass plus one write pass with bounded
//! memory: the edge list (8 bytes/edge) and per-vertex degree/offset
//! arrays (~16 bytes/vertex) are the only anonymous allocations — the
//! adjacency sections, the bulk of the output (16 bytes/edge), are
//! scattered directly into a writable mapping of the output file.

use bcc_graph::bccsr::{self, MappedCsr};
use bcc_graph::io;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("bcc-convert: {msg}");
    ExitCode::FAILURE
}

fn info(path: &Path) -> ExitCode {
    match MappedCsr::open(path) {
        Ok(m) => {
            println!(
                "{}: .bccsr v{} — n = {}, m = {}, {} bytes ({:.2} bytes/edge), checksum ok",
                path.display(),
                bccsr::VERSION,
                m.n(),
                m.m(),
                m.file_len(),
                m.file_len() as f64 / m.m().max(1) as f64,
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(format_args!("{}: {e}", path.display())),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "bcc-convert: text edge list -> binary .bccsr\n\
             usage:\n\
             \x20 bcc-convert <input> [-o <output.bccsr>] [--no-verify]\n\
             \x20 bcc-convert info <file.bccsr>\n\
             options:\n\
             \x20 -o PATH      output path (default: input with .bccsr extension)\n\
             \x20 --no-verify  skip the checksum re-read of the written file"
        );
        return ExitCode::SUCCESS;
    }
    if args[0] == "info" {
        let Some(path) = args.get(1) else {
            return fail("info needs a file argument");
        };
        return info(Path::new(path));
    }

    let input = PathBuf::from(&args[0]);
    let output = args
        .iter()
        .position(|a| a == "-o")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| input.with_extension("bccsr"));
    let verify = !args.iter().any(|a| a == "--no-verify");

    let g = match io::load(&input) {
        Ok(g) => g,
        Err(e) => return fail(format_args!("{}: {e}", input.display())),
    };
    if g.is_mapped() {
        return fail(format_args!("{} is already a .bccsr file", input.display()));
    }
    let summary = match bccsr::write(&output, &g) {
        Ok(s) => s,
        Err(e) => return fail(format_args!("writing {}: {e}", output.display())),
    };
    println!(
        "{} -> {}: n = {}, m = {}, {} bytes",
        input.display(),
        output.display(),
        summary.n,
        summary.m,
        summary.bytes
    );
    if verify {
        if let Err(e) = MappedCsr::open(&output) {
            return fail(format_args!(
                "verification of {} failed: {e}",
                output.display()
            ));
        }
        println!("verified: header, geometry, and checksum ok");
    }
    ExitCode::SUCCESS
}

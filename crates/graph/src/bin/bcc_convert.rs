//! `bcc-convert` — convert a text edge list (SNAP dump or DIMACS-style)
//! into the binary mmap-ready `.bccsr` format, or generate xl-scale
//! synthetic inputs straight to disk.
//!
//! ```text
//! bcc-convert <input> [-o <output.bccsr>] [--no-verify]
//! bcc-convert gen <rmat|geo> <n> [--degree D] [--chords K] [--seed S] [-o PATH]
//! bcc-convert info <file.bccsr>
//! ```
//!
//! Conversion is a single parse pass plus one write pass with bounded
//! memory: the edge list (8 bytes/edge) and per-vertex degree/offset
//! arrays (~16 bytes/vertex) are the only anonymous allocations — the
//! adjacency sections, the bulk of the output (16 bytes/edge), are
//! scattered directly into a writable mapping of the output file.
//! `gen` holds the same bound while *generating*: one sort-deduplicated
//! edge vector, no hash set, no intermediate `Graph` — so a 10M-vertex
//! input never holds two in-memory edge copies (see
//! [`bcc_graph::gen_stream`]).

use bcc_graph::bccsr::{self, MappedCsr};
use bcc_graph::{gen_stream, io};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("bcc-convert: {msg}");
    ExitCode::FAILURE
}

fn info(path: &Path) -> ExitCode {
    match MappedCsr::open(path) {
        Ok(m) => {
            println!(
                "{}: .bccsr v{} — n = {}, m = {}, {} bytes ({:.2} bytes/edge), checksum ok",
                path.display(),
                bccsr::VERSION,
                m.n(),
                m.m(),
                m.file_len(),
                m.file_len() as f64 / m.m().max(1) as f64,
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(format_args!("{}: {e}", path.display())),
    }
}

/// Value of a `--flag V` option, parsed, or the default.
fn opt<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(default),
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("{flag} needs a value")),
    }
}

/// `bcc-convert gen <rmat|geo> <n> [--degree D] [--chords K] [--seed S] [-o PATH]`
/// — generate a connected synthetic graph straight to `.bccsr` in
/// bounded memory. For `rmat`, `n` rounds up to the next power of two.
fn gen(args: &[String]) -> ExitCode {
    let (Some(family), Some(n_arg)) = (args.first(), args.get(1)) else {
        return fail("gen needs a family (rmat|geo) and a vertex count");
    };
    let Ok(n) = n_arg.parse::<u32>() else {
        return fail(format_args!("bad vertex count {n_arg:?}"));
    };
    if n == 0 {
        return fail("vertex count must be positive");
    }
    let seed = match opt(args, "--seed", 1u64) {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    let default_degree = match family.as_str() {
        "rmat" => 16.0,
        _ => 8.0,
    };
    let degree = match opt(args, "--degree", default_degree) {
        Ok(v) if v > 0.0 => v,
        Ok(_) => return fail("--degree must be positive"),
        Err(e) => return fail(e),
    };
    let output = args
        .iter()
        .position(|a| a == "-o")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(format!("{family}-n{n}.bccsr")));

    let result = match family.as_str() {
        "rmat" => {
            let scale = 32 - (n - 1).leading_zeros().min(31);
            let m = ((1u64 << scale) as f64 * degree / 2.0) as usize;
            gen_stream::rmat_to_bccsr(&output, scale, m, 0.57, 0.19, 0.19, seed)
        }
        "geo" => {
            let chords = match opt(args, "--chords", n as usize / 20) {
                Ok(v) => v,
                Err(e) => return fail(e),
            };
            gen_stream::geometric_to_bccsr(&output, n, degree, chords, seed)
        }
        other => return fail(format_args!("unknown family {other:?} (rmat|geo)")),
    };
    match result {
        Ok(s) => {
            println!(
                "{} -> {}: n = {}, m = {}, {} bytes",
                family,
                output.display(),
                s.n,
                s.m,
                s.bytes
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(format_args!("generating {}: {e}", output.display())),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "bcc-convert: text edge list -> binary .bccsr\n\
             usage:\n\
             \x20 bcc-convert <input> [-o <output.bccsr>] [--no-verify]\n\
             \x20 bcc-convert gen <rmat|geo> <n> [--degree D] [--chords K] [--seed S] [-o PATH]\n\
             \x20 bcc-convert info <file.bccsr>\n\
             options:\n\
             \x20 -o PATH      output path (default: input with .bccsr extension,\n\
             \x20              or <family>-n<n>.bccsr for gen)\n\
             \x20 --no-verify  skip the checksum re-read of the written file\n\
             \x20 --degree D   gen: target average degree (rmat: 16, geo: 8)\n\
             \x20 --chords K   gen geo: long-range edges (default n/20)\n\
             \x20 --seed S     gen: RNG seed (default 1)"
        );
        return ExitCode::SUCCESS;
    }
    if args[0] == "gen" {
        return gen(&args[1..]);
    }
    if args[0] == "info" {
        let Some(path) = args.get(1) else {
            return fail("info needs a file argument");
        };
        return info(Path::new(path));
    }

    let input = PathBuf::from(&args[0]);
    let output = args
        .iter()
        .position(|a| a == "-o")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| input.with_extension("bccsr"));
    let verify = !args.iter().any(|a| a == "--no-verify");

    let g = match io::load(&input) {
        Ok(g) => g,
        Err(e) => return fail(format_args!("{}: {e}", input.display())),
    };
    if g.is_mapped() {
        return fail(format_args!("{} is already a .bccsr file", input.display()));
    }
    let summary = match bccsr::write(&output, &g) {
        Ok(s) => s,
        Err(e) => return fail(format_args!("writing {}: {e}", output.display())),
    };
    println!(
        "{} -> {}: n = {}, m = {}, {} bytes",
        input.display(),
        output.display(),
        summary.n,
        summary.m,
        summary.bytes
    );
    if verify {
        if let Err(e) = MappedCsr::open(&output) {
            return fail(format_args!(
                "verification of {} failed: {e}",
                output.display()
            ));
        }
        println!("verified: header, geometry, and checksum ok");
    }
    ExitCode::SUCCESS
}

//! Workload generators.
//!
//! §5 of the paper: *"We create a random graph of n vertices and m edges
//! by randomly adding m unique edges to the vertex set"* — that is
//! [`random_gnm`]; the benchmark instances additionally need to be
//! connected ([`random_connected`]: a uniformly random spanning tree via
//! random attachment, then unique random fill edges). The Woo–Sahni
//! comparison uses dense graphs retaining a percentage of the complete
//! graph's edges ([`dense_percent`]). Structured families exercise edge
//! cases: the chain ([`path`]) is the paper's pathological diameter case
//! for TV-filter.

use crate::builder::GraphBuilder;
use crate::edge::{Edge, Graph};
use rand::prelude::*;
use std::collections::HashSet;

/// Strict build from generator output; a failure is a generator bug.
fn graph(n: u32, edges: Vec<Edge>) -> Graph {
    GraphBuilder::new(n)
        .edges(edges)
        .build()
        .expect("generator produced an invalid edge")
}

/// [`graph`] from `(u, v)` tuples.
fn graph_from(n: u32, tuples: impl IntoIterator<Item = (u32, u32)>) -> Graph {
    graph(n, tuples.into_iter().map(Edge::from).collect())
}

/// A simple path 0–1–2–…–(n-1): every edge is a bridge, every internal
/// vertex an articulation point; diameter n-1 (the paper's pathological
/// case for BFS-based filtering).
pub fn path(n: u32) -> Graph {
    graph_from(n, (1..n).map(|v| (v - 1, v)))
}

/// A simple cycle on `n >= 3` vertices: one biconnected component.
pub fn cycle(n: u32) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    graph_from(n, (0..n).map(|v| (v, (v + 1) % n)))
}

/// A star with center 0: n-1 bridges.
pub fn star(n: u32) -> Graph {
    assert!(n >= 1);
    graph_from(n, (1..n).map(|v| (0, v)))
}

/// The complete graph K_n: one biconnected component (n >= 3).
pub fn complete(n: u32) -> Graph {
    let mut edges = Vec::with_capacity((n as usize * (n as usize - 1)) / 2);
    for u in 0..n {
        for v in u + 1..n {
            edges.push(Edge::new(u, v));
        }
    }
    graph(n, edges)
}

/// A complete binary tree with vertex `v`'s parent at `(v-1)/2`.
pub fn binary_tree(n: u32) -> Graph {
    graph_from(n, (1..n).map(|v| ((v - 1) / 2, v)))
}

/// An `rows × cols` 2D torus (wrap-around grid); biconnected when both
/// dimensions are >= 3. Bounded degree 4, moderate diameter.
pub fn torus(rows: u32, cols: u32) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus needs both dims >= 3");
    let idx = |r: u32, c: u32| r * cols + c;
    let mut edges = Vec::with_capacity(2 * (rows as usize) * (cols as usize));
    for r in 0..rows {
        for c in 0..cols {
            edges.push(Edge::new(idx(r, c), idx(r, (c + 1) % cols)));
            edges.push(Edge::new(idx(r, c), idx((r + 1) % rows, c)));
        }
    }
    GraphBuilder::new(rows * cols)
        .lenient()
        .edges(edges)
        .build()
        .expect("torus edges are valid")
}

/// A uniformly-random-attachment tree: vertex `v > 0` connects to a
/// uniform random earlier vertex. Seeded and deterministic.
pub fn random_tree(n: u32, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges = (1..n)
        .map(|v| {
            let p = rng.gen_range(0..v);
            Edge::new(p, v)
        })
        .collect();
    graph(n, edges)
}

/// The paper's random graph: `m` unique random edges on `n` vertices
/// (no self loops, no duplicates). May be disconnected.
pub fn random_gnm(n: u32, m: usize, seed: u64) -> Graph {
    assert!(n >= 2 || m == 0);
    let max_m = max_edges(n);
    assert!(m <= max_m, "m = {m} exceeds C({n},2) = {max_m}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen: HashSet<u64> = HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    sample_unique_edges(&mut rng, n, m, &mut seen, &mut edges);
    graph(n, edges)
}

/// A connected random graph: a random-attachment spanning tree plus
/// `m - (n-1)` unique random fill edges. Requires `m >= n - 1`.
///
/// ```
/// use bcc_graph::{gen, validate};
///
/// let g = gen::random_connected(100, 250, 42);
/// assert_eq!(g.m(), 250);
/// assert!(validate::is_connected(&g));
/// ```
pub fn random_connected(n: u32, m: usize, seed: u64) -> Graph {
    assert!(n >= 1);
    assert!(
        m + 1 >= n as usize,
        "connected graph on {n} vertices needs at least {} edges",
        n - 1
    );
    let max_m = max_edges(n);
    assert!(m <= max_m, "m = {m} exceeds C({n},2) = {max_m}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen: HashSet<u64> = HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    // Random tree backbone under a random vertex relabeling, so tree
    // edges are not biased toward low vertex ids.
    let mut label: Vec<u32> = (0..n).collect();
    label.shuffle(&mut rng);
    for v in 1..n {
        let p = rng.gen_range(0..v);
        let e = Edge::new(label[p as usize], label[v as usize]);
        seen.insert(e.key());
        edges.push(e);
    }
    sample_unique_edges(&mut rng, n, m - edges.len(), &mut seen, &mut edges);
    graph(n, edges)
}

/// Woo–Sahni-style dense instance: exactly `round(pct * C(n,2))` unique
/// random edges (e.g. `pct = 0.7` keeps 70% of the complete graph).
pub fn dense_percent(n: u32, pct: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&pct));
    let total = max_edges(n);
    let m = (pct * total as f64).round() as usize;
    // Dense: sample by shuffling the full pair list (n is small for
    // these instances, <= a few thousand as in Woo–Sahni).
    let mut pairs: Vec<Edge> = Vec::with_capacity(total);
    for u in 0..n {
        for v in u + 1..n {
            pairs.push(Edge::new(u, v));
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    pairs.shuffle(&mut rng);
    pairs.truncate(m);
    graph(n, pairs)
}

/// Two cliques of size `k` sharing a single cut vertex — the canonical
/// two-biconnected-components instance.
pub fn two_cliques_sharing_vertex(k: u32) -> Graph {
    assert!(k >= 2);
    let n = 2 * k - 1;
    let mut edges = Vec::new();
    // Clique A on 0..k, clique B on (k-1)..n; vertex k-1 is shared.
    for u in 0..k {
        for v in u + 1..k {
            edges.push(Edge::new(u, v));
        }
    }
    for u in k - 1..n {
        for v in u + 1..n {
            edges.push(Edge::new(u, v));
        }
    }
    graph(n, edges)
}

/// A "caterpillar of cycles": `count` cycles of length `len` chained by
/// bridges — many small biconnected components plus bridges.
pub fn cycle_chain(count: u32, len: u32, _seed: u64) -> Graph {
    assert!(len >= 3 && count >= 1);
    let n = count * len;
    let mut edges = Vec::new();
    for c in 0..count {
        let base = c * len;
        for i in 0..len {
            edges.push(Edge::new(base + i, base + (i + 1) % len));
        }
        if c + 1 < count {
            edges.push(Edge::new(base + len - 1, base + len)); // bridge
        }
    }
    graph(n, edges)
}

/// A wheel: hub 0 joined to a cycle on `1..n` (`n >= 4`). Biconnected.
pub fn wheel(n: u32) -> Graph {
    assert!(n >= 4, "wheel needs a hub plus a 3-cycle");
    let mut edges = Vec::with_capacity(2 * (n as usize - 1));
    for v in 1..n {
        edges.push(Edge::new(0, v));
        let next = if v + 1 == n { 1 } else { v + 1 };
        edges.push(Edge::new(v, next));
    }
    graph(n, edges)
}

/// A ladder (2 × k grid, `k >= 2`): biconnected, bounded degree 3.
pub fn ladder(k: u32) -> Graph {
    assert!(k >= 2);
    let n = 2 * k;
    let mut edges = Vec::new();
    for i in 0..k {
        edges.push(Edge::new(2 * i, 2 * i + 1)); // rung
        if i + 1 < k {
            edges.push(Edge::new(2 * i, 2 * (i + 1)));
            edges.push(Edge::new(2 * i + 1, 2 * (i + 1) + 1));
        }
    }
    graph(n, edges)
}

/// The d-dimensional hypercube, `1 <= d < 31`. Biconnected for d >= 2.
pub fn hypercube(d: u32) -> Graph {
    assert!((1..31).contains(&d));
    let n = 1u32 << d;
    let mut edges = Vec::with_capacity((d as usize) << (d - 1));
    for v in 0..n {
        for bit in 0..d {
            let w = v ^ (1 << bit);
            if v < w {
                edges.push(Edge::new(v, w));
            }
        }
    }
    graph(n, edges)
}

/// A barbell: two K_k cliques joined by a path of `bridge_len` edges
/// (`k >= 3`, `bridge_len >= 1`): 2 blocks + `bridge_len` bridges.
pub fn barbell(k: u32, bridge_len: u32) -> Graph {
    assert!(k >= 3 && bridge_len >= 1);
    let n = 2 * k + bridge_len - 1;
    let mut edges = Vec::new();
    for u in 0..k {
        for v in u + 1..k {
            edges.push(Edge::new(u, v));
        }
    }
    let second = k + bridge_len - 1;
    for u in second..n {
        for v in u + 1..n {
            edges.push(Edge::new(u, v));
        }
    }
    // The connecting path k-1, k, ..., second.
    for i in 0..bridge_len {
        edges.push(Edge::new(k - 1 + i, k + i));
    }
    graph(n, edges)
}

/// Complete bipartite K_{a,b}: biconnected when `a, b >= 2`; a star of
/// bridges when either side is 1.
pub fn complete_bipartite(a: u32, b: u32) -> Graph {
    assert!(a >= 1 && b >= 1);
    let mut edges = Vec::with_capacity(a as usize * b as usize);
    for u in 0..a {
        for v in 0..b {
            edges.push(Edge::new(u, a + v));
        }
    }
    graph(a + b, edges)
}

/// R-MAT recursive-quadrant generator (Chakrabarti–Zhan–Faloutsos):
/// `n = 2^scale` vertices, `m` unique edges, quadrant probabilities
/// `(a, b, c)` with `d = 1 - a - b - c`. Produces the skewed degree
/// distributions of real-world networks — an extension beyond the
/// paper's uniform random inputs (the output is usually disconnected;
/// pair with the per-component driver).
pub fn rmat(scale: u32, m: usize, a: f64, b: f64, c: f64, seed: u64) -> Graph {
    assert!((1..31).contains(&scale));
    let d = 1.0 - a - b - c;
    assert!(
        a >= 0.0 && b >= 0.0 && c >= 0.0 && d >= 0.0,
        "bad quadrant probabilities"
    );
    let n = 1u32 << scale;
    assert!(m <= max_edges(n));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen: HashSet<u64> = HashSet::with_capacity(2 * m);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let (mut u, mut v) = (0u32, 0u32);
        for bit in (0..scale).rev() {
            // Slightly perturb the probabilities per level, as the
            // original generator does, to avoid staircase artifacts.
            let noise = 0.9 + 0.2 * rng.gen::<f64>();
            let (pa, pb, pc) = (a * noise, b, c);
            let total = pa + pb + pc + d;
            let r = rng.gen::<f64>() * total;
            if r < pa {
                // top-left: no bits set
            } else if r < pa + pb {
                v |= 1 << bit;
            } else if r < pa + pb + pc {
                u |= 1 << bit;
            } else {
                u |= 1 << bit;
                v |= 1 << bit;
            }
        }
        if u == v {
            continue;
        }
        let e = Edge::new(u, v).normalized();
        if seen.insert(e.key()) {
            edges.push(e);
        }
    }
    graph(n, edges)
}

/// A spatial ("geo") network: `n` points uniform in the unit square,
/// joined when within the radius that yields `target_degree` expected
/// neighbors, plus `chords` unique long-range edges — the highways and
/// interties of real spatial networks, which give the family its low
/// *effective* diameter even though the underlying disk graph is
/// mesh-like. Residual disconnection (isolated pockets near the
/// connectivity threshold) is stitched by linking component
/// representatives, so the output is always connected. Deterministic
/// per seed.
///
/// ```
/// use bcc_graph::{gen, validate};
///
/// let g = gen::geometric(500, 12.0, 30, 7);
/// assert!(validate::is_connected(&g));
/// ```
pub fn geometric(n: u32, target_degree: f64, chords: usize, seed: u64) -> Graph {
    assert!(n >= 1);
    assert!(target_degree > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let r = (target_degree / (n as f64 * std::f64::consts::PI))
        .sqrt()
        .min(1.0);

    // Bucket points into an r-sized grid; only 3×3 neighborhoods can
    // hold pairs within range.
    let cells = ((1.0 / r).ceil() as usize).max(1);
    let cell_of = |p: (f64, f64)| {
        let cx = ((p.0 * cells as f64) as usize).min(cells - 1);
        let cy = ((p.1 * cells as f64) as usize).min(cells - 1);
        cy * cells + cx
    };
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); cells * cells];
    for (v, &p) in pts.iter().enumerate() {
        buckets[cell_of(p)].push(v as u32);
    }
    let mut seen: HashSet<u64> = HashSet::new();
    let mut edges = Vec::new();
    let r2 = r * r;
    for cy in 0..cells {
        for cx in 0..cells {
            for &u in &buckets[cy * cells + cx] {
                let (ux, uy) = pts[u as usize];
                for dy in cy.saturating_sub(1)..=(cy + 1).min(cells - 1) {
                    for dx in cx.saturating_sub(1)..=(cx + 1).min(cells - 1) {
                        for &v in &buckets[dy * cells + dx] {
                            if v <= u {
                                continue;
                            }
                            let (vx, vy) = pts[v as usize];
                            let (ddx, ddy) = (ux - vx, uy - vy);
                            if ddx * ddx + ddy * ddy <= r2 && seen.insert(Edge::new(u, v).key()) {
                                edges.push(Edge::new(u, v));
                            }
                        }
                    }
                }
            }
        }
    }
    sample_unique_edges(
        &mut rng,
        n,
        chords.min(max_edges(n).saturating_sub(edges.len())),
        &mut seen,
        &mut edges,
    );

    // Stitch residual components (union-find over the edges so far).
    let mut parent: Vec<u32> = (0..n).collect();
    fn find(parent: &mut [u32], v: u32) -> u32 {
        let mut x = v;
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for e in &edges {
        let (a, b) = (find(&mut parent, e.u), find(&mut parent, e.v));
        if a != b {
            parent[a.max(b) as usize] = a.min(b);
        }
    }
    let mut prev_rep: Option<u32> = None;
    for v in 0..n {
        if find(&mut parent, v) == v {
            if let Some(p) = prev_rep {
                edges.push(Edge::new(p, v));
                parent[v as usize] = find(&mut parent, p);
            }
            prev_rep = Some(v);
        }
    }
    graph(n, edges)
}

/// Maximum number of edges of a simple graph on `n` vertices.
pub fn max_edges(n: u32) -> usize {
    (n as usize * (n as usize).saturating_sub(1)) / 2
}

fn sample_unique_edges(
    rng: &mut StdRng,
    n: u32,
    want: usize,
    seen: &mut HashSet<u64>,
    out: &mut Vec<Edge>,
) {
    let mut added = 0usize;
    while added < want {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let e = Edge::new(u, v).normalized();
        if seen.insert(e.key()) {
            out.push(e);
            added += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate;

    #[test]
    fn structured_families_have_expected_sizes() {
        assert_eq!(path(5).m(), 4);
        assert_eq!(cycle(5).m(), 5);
        assert_eq!(star(5).m(), 4);
        assert_eq!(complete(5).m(), 10);
        assert_eq!(binary_tree(7).m(), 6);
        assert_eq!(torus(3, 4).m(), 24);
        assert_eq!(random_tree(100, 1).m(), 99);
        assert_eq!(two_cliques_sharing_vertex(4).n(), 7);
        assert_eq!(cycle_chain(3, 4, 0).m(), 3 * 4 + 2);
    }

    #[test]
    fn gnm_exact_count_and_simple() {
        let g = random_gnm(100, 500, 7);
        assert_eq!(g.m(), 500);
        validate::assert_simple(&g);
    }

    #[test]
    fn gnm_saturated() {
        let g = random_gnm(10, 45, 3); // the full K_10
        assert_eq!(g.m(), 45);
        validate::assert_simple(&g);
    }

    #[test]
    fn connected_is_connected_and_simple() {
        for seed in 0..5 {
            let g = random_connected(200, 600, seed);
            assert_eq!(g.m(), 600);
            validate::assert_simple(&g);
            assert!(validate::is_connected(&g));
        }
    }

    #[test]
    fn connected_minimum_edges_is_a_tree() {
        let g = random_connected(50, 49, 9);
        assert_eq!(g.m(), 49);
        assert!(validate::is_connected(&g));
    }

    #[test]
    fn dense_percent_counts() {
        let g = dense_percent(50, 0.7, 1);
        assert_eq!(g.m(), (0.7f64 * 1225.0).round() as usize);
        validate::assert_simple(&g);
    }

    #[test]
    fn determinism_by_seed() {
        let a = random_connected(100, 300, 11);
        let b = random_connected(100, 300, 11);
        assert_eq!(a.edges(), b.edges());
        let c = random_connected(100, 300, 12);
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn structured_extras_have_expected_shapes() {
        assert_eq!(wheel(6).m(), 10);
        assert!(validate::is_connected(&wheel(6)));
        assert_eq!(ladder(5).n(), 10);
        assert_eq!(ladder(5).m(), 5 + 8);
        assert_eq!(hypercube(4).n(), 16);
        assert_eq!(hypercube(4).m(), 32);
        assert!(validate::is_connected(&hypercube(3)));
        let bb = barbell(4, 3);
        assert_eq!(bb.n(), 10);
        assert_eq!(bb.m(), 6 + 6 + 3);
        assert!(validate::is_connected(&bb));
        assert_eq!(complete_bipartite(3, 4).m(), 12);
        for g in [
            wheel(7),
            ladder(4),
            hypercube(3),
            barbell(3, 2),
            complete_bipartite(2, 5),
        ] {
            validate::assert_simple(&g);
        }
    }

    #[test]
    fn rmat_generates_skewed_simple_graphs() {
        let g = rmat(10, 4000, 0.57, 0.19, 0.19, 7);
        assert_eq!(g.n(), 1024);
        assert_eq!(g.m(), 4000);
        validate::assert_simple(&g);
        // Degree skew: the max degree should far exceed the average.
        let avg = 2.0 * g.m() as f64 / g.n() as f64;
        let max = *g.degrees().iter().max().unwrap() as f64;
        assert!(max > 4.0 * avg, "max {max} vs avg {avg}");
        // Deterministic per seed.
        let h = rmat(10, 4000, 0.57, 0.19, 0.19, 7);
        assert_eq!(g.edges(), h.edges());
    }

    #[test]
    fn geometric_is_connected_simple_and_deterministic() {
        let g = geometric(800, 10.0, 40, 3);
        validate::assert_simple(&g);
        assert!(validate::is_connected(&g));
        // Expected degree within a loose band of the target.
        let avg = 2.0 * g.m() as f64 / g.n() as f64;
        assert!((5.0..20.0).contains(&avg), "avg degree {avg}");
        let h = geometric(800, 10.0, 40, 3);
        assert_eq!(g.edges(), h.edges());
        assert_ne!(g.edges(), geometric(800, 10.0, 40, 4).edges());
        // Degenerate sizes still work.
        assert!(validate::is_connected(&geometric(1, 4.0, 0, 0)));
        assert!(validate::is_connected(&geometric(2, 4.0, 0, 0)));
    }

    #[test]
    #[should_panic]
    fn rmat_rejects_bad_probabilities() {
        let _ = rmat(5, 10, 0.6, 0.3, 0.3, 1);
    }

    #[test]
    #[should_panic]
    fn gnm_rejects_impossible_m() {
        let _ = random_gnm(5, 11, 0);
    }

    #[test]
    #[should_panic]
    fn connected_rejects_too_few_edges() {
        let _ = random_connected(10, 5, 0);
    }
}

#![warn(missing_docs)]
//! Graph representations, workload generators, and validation.
//!
//! The paper's algorithms consume two representations and pay a real cost
//! converting between them (§1): spanning-tree/connectivity primitives
//! take an **edge list** ([`Graph`]), while traversals and the Euler-tour
//! technique need **adjacency** structure ([`Csr`]). Both live here,
//! along with the workload generators for every experiment:
//! paper-style random sparse graphs, the Woo–Sahni dense instances, and
//! the structured families (paths, cycles, tori, trees, cliques) the test
//! suite leans on.
//!
//! Graphs arrive behind one storage-agnostic surface: [`GraphData`]
//! holds either an owned edge list or an mmap-backed view of a binary
//! `.bccsr` file ([`bccsr`]), and [`io::load`] sniffs any supported
//! file into a [`Graph`] — so every downstream algorithm runs unchanged
//! on generator output and on multi-GB on-disk datasets.

pub mod bccsr;
pub mod builder;
pub mod csr;
pub mod edge;
pub mod gen;
pub mod gen_stream;
pub mod io;
pub mod mmap;
pub mod subgraph;
pub mod validate;

pub use bccsr::MappedCsr;
pub use builder::{GraphBuilder, GraphError};
pub use csr::Csr;
pub use edge::{Edge, Graph, GraphData};
pub use mmap::MmapView;
pub use subgraph::{ComponentSplit, SplitPart};

//! Edge-list graph representation over pluggable storage.

use crate::bccsr::MappedCsr;
use std::fmt;
use std::sync::Arc;

/// An undirected edge between vertices `u` and `v`.
///
/// Edges are stored as given (not normalized); `normalized()` provides
/// the canonical `(min, max)` view used for deduplication and packing.
///
/// The layout is `#[repr(C)]` — two little-endian `u32`s — which is
/// exactly the `.bccsr` on-disk edge record, so a mapped file's edge
/// section is readable as `&[Edge]` without a copy.
#[repr(C)]
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    /// First endpoint.
    pub u: u32,
    /// Second endpoint.
    pub v: u32,
}

const _: () = assert!(std::mem::size_of::<Edge>() == 8 && std::mem::align_of::<Edge>() == 4);

impl Edge {
    /// Creates an edge.
    #[inline]
    pub fn new(u: u32, v: u32) -> Self {
        Edge { u, v }
    }

    /// The canonical `(min, max)` orientation.
    #[inline]
    pub fn normalized(self) -> Edge {
        if self.u <= self.v {
            self
        } else {
            Edge {
                u: self.v,
                v: self.u,
            }
        }
    }

    /// Packs the normalized edge into a sortable `u64` key.
    #[inline]
    pub fn key(self) -> u64 {
        let e = self.normalized();
        ((e.u as u64) << 32) | e.v as u64
    }

    /// The endpoint that is not `w` (panics if `w` is not an endpoint).
    #[inline]
    pub fn other(self, w: u32) -> u32 {
        if self.u == w {
            self.v
        } else {
            debug_assert_eq!(self.v, w);
            self.u
        }
    }

    /// True if the edge is a self loop.
    #[inline]
    pub fn is_loop(self) -> bool {
        self.u == self.v
    }
}

impl fmt::Debug for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.u, self.v)
    }
}

impl From<(u32, u32)> for Edge {
    fn from((u, v): (u32, u32)) -> Self {
        Edge::new(u, v)
    }
}

/// Where a [`Graph`]'s edges live.
///
/// Algorithms never match on this — they go through the accessor
/// surface ([`Graph::edges`], [`Graph::degrees`], [`crate::Csr`]) —
/// but the storage determines cost: `InMemory` is a plain owned edge
/// list, while `Mapped` is a shared read-only view of a `.bccsr` file
/// whose edge list *and* adjacency arrays are served zero-copy from
/// the page cache.
#[derive(Clone, Debug)]
pub enum GraphData {
    /// An owned edge list (generator output, builder output).
    InMemory(Vec<Edge>),
    /// A shared mmap-backed `.bccsr` image (see [`crate::bccsr`]).
    Mapped(Arc<MappedCsr>),
}

/// An undirected graph as a vertex count plus edge storage — the input
/// representation of the Tarjan–Vishkin pipeline.
///
/// Construct in-memory graphs with [`crate::GraphBuilder`] (or the
/// generators in [`crate::gen`]); open on-disk graphs with
/// [`crate::io::load`]. Both arrive behind the same accessor surface,
/// so downstream crates are storage-agnostic.
#[derive(Clone, Debug)]
pub struct Graph {
    n: u32,
    data: GraphData,
}

impl Default for Graph {
    fn default() -> Self {
        Graph {
            n: 0,
            data: GraphData::InMemory(Vec::new()),
        }
    }
}

impl Graph {
    /// Internal constructor from pre-validated parts; the public paths
    /// are [`crate::GraphBuilder`] and [`Graph::from_mapped`].
    pub(crate) fn from_vec(n: u32, edges: Vec<Edge>) -> Self {
        Graph {
            n,
            data: GraphData::InMemory(edges),
        }
    }

    /// Wraps an opened `.bccsr` image. The `Arc` is shared by every
    /// clone of this graph and by CSR builds from it — a mapped graph
    /// never re-materializes its edges or adjacency in anonymous
    /// memory.
    pub fn from_mapped(mapped: Arc<MappedCsr>) -> Self {
        Graph {
            n: mapped.n(),
            data: GraphData::Mapped(mapped),
        }
    }

    /// Starts a strict [`crate::GraphBuilder`] over `n` vertices.
    pub fn builder(n: u32) -> crate::GraphBuilder {
        crate::GraphBuilder::new(n)
    }

    /// Creates a graph with `n` vertices (ids `0..n`) and the given
    /// edges. Panics if an edge references a vertex `>= n` or is a self
    /// loop.
    #[deprecated(since = "0.7.0", note = "use `GraphBuilder::new(n).edges(..).build()`")]
    pub fn new(n: u32, edges: Vec<Edge>) -> Self {
        crate::GraphBuilder::new(n)
            .edges(edges)
            .build()
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like `Graph::new` from `(u, v)` tuples.
    #[deprecated(since = "0.7.0", note = "use `GraphBuilder::new(n).edges(..).build()`")]
    pub fn from_tuples(n: u32, tuples: impl IntoIterator<Item = (u32, u32)>) -> Self {
        crate::GraphBuilder::new(n)
            .edges(tuples)
            .build()
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds a graph, dropping self loops and duplicate edges.
    #[deprecated(
        since = "0.7.0",
        note = "use `GraphBuilder::new(n).lenient().edges(..).build()`"
    )]
    pub fn from_edges_lenient(n: u32, edges: impl IntoIterator<Item = Edge>) -> Self {
        crate::GraphBuilder::new(n)
            .lenient()
            .edges(edges)
            .build()
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn m(&self) -> usize {
        match &self.data {
            GraphData::InMemory(edges) => edges.len(),
            GraphData::Mapped(m) => m.m(),
        }
    }

    /// The backing storage.
    #[inline]
    pub fn data(&self) -> &GraphData {
        &self.data
    }

    /// The shared `.bccsr` image, if this graph is mapped.
    #[inline]
    pub fn mapped(&self) -> Option<&Arc<MappedCsr>> {
        match &self.data {
            GraphData::Mapped(m) => Some(m),
            GraphData::InMemory(_) => None,
        }
    }

    /// True if the graph is served from a mapped `.bccsr` file.
    #[inline]
    pub fn is_mapped(&self) -> bool {
        matches!(self.data, GraphData::Mapped(_))
    }

    /// The edge list. Zero-copy for both storages: a slice of the owned
    /// vector, or of the mapped file's edge section.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        match &self.data {
            GraphData::InMemory(edges) => edges,
            GraphData::Mapped(m) => m.edges(),
        }
    }

    /// Consumes the graph, returning its edge list (copied out of the
    /// mapping if the graph was mapped).
    pub fn into_edges(self) -> Vec<Edge> {
        match self.data {
            GraphData::InMemory(edges) => edges,
            GraphData::Mapped(m) => m.edges().to_vec(),
        }
    }

    /// Per-vertex degrees. On a mapped graph this is an O(n) diff of
    /// the stored CSR offsets — the edge list is never re-scanned (or
    /// even paged in).
    pub fn degrees(&self) -> Vec<u32> {
        match &self.data {
            GraphData::InMemory(edges) => {
                let mut deg = vec![0u32; self.n as usize];
                for e in edges {
                    deg[e.u as usize] += 1;
                    deg[e.v as usize] += 1;
                }
                deg
            }
            GraphData::Mapped(m) => {
                let offsets = m.offsets();
                (0..self.n as usize)
                    .map(|v| (offsets[v + 1] - offsets[v]) as u32)
                    .collect()
            }
        }
    }

    /// Saves the graph as a `.bccsr` file (see [`crate::bccsr`]).
    pub fn save_bccsr(
        &self,
        path: &std::path::Path,
    ) -> std::io::Result<crate::bccsr::WriteSummary> {
        crate::bccsr::write(path, self)
    }

    /// The graph with vertices renamed by the permutation `perm`
    /// (`perm[v]` is v's new id). Edge order is preserved, so per-edge
    /// results on the relabeled graph align index-for-index with the
    /// original — the test suite uses this to check that the algorithms
    /// are label-invariant. Always returns an in-memory graph.
    pub fn relabel(&self, perm: &[u32]) -> Graph {
        assert_eq!(perm.len(), self.n as usize);
        let mut seen = vec![false; self.n as usize];
        for &p in perm {
            assert!(
                p < self.n && !std::mem::replace(&mut seen[p as usize], true),
                "perm must be a permutation of 0..n"
            );
        }
        let edges = self
            .edges()
            .iter()
            .map(|e| Edge::new(perm[e.u as usize], perm[e.v as usize]))
            .collect();
        Graph::from_vec(self.n, edges)
    }

    /// The subgraph on the same vertex set keeping edges whose index
    /// satisfies `keep`. Always returns an in-memory graph.
    pub fn edge_subgraph(&self, keep: impl Fn(usize) -> bool) -> Graph {
        let edges = self
            .edges()
            .iter()
            .enumerate()
            .filter(|(i, _)| keep(*i))
            .map(|(_, &e)| e)
            .collect();
        Graph::from_vec(self.n, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn normalized_and_key_agree() {
        let e = Edge::new(9, 2);
        assert_eq!(e.normalized(), Edge::new(2, 9));
        assert_eq!(e.key(), Edge::new(2, 9).key());
        assert_eq!(e.key(), (2u64 << 32) | 9);
    }

    #[test]
    fn other_endpoint() {
        let e = Edge::new(3, 8);
        assert_eq!(e.other(3), 8);
        assert_eq!(e.other(8), 3);
    }

    #[test]
    fn graph_basics() {
        let g = GraphBuilder::new(4)
            .edges([(0, 1), (1, 2), (2, 3)])
            .build()
            .unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degrees(), vec![1, 2, 2, 1]);
        assert!(!g.is_mapped());
        assert!(g.mapped().is_none());
        assert!(matches!(g.data(), GraphData::InMemory(_)));
    }

    #[test]
    #[should_panic]
    fn deprecated_ctor_rejects_out_of_range() {
        #[allow(deprecated)]
        let _ = Graph::from_tuples(3, [(0, 3)]);
    }

    #[test]
    #[should_panic]
    fn deprecated_ctor_rejects_self_loop() {
        #[allow(deprecated)]
        let _ = Graph::from_tuples(3, [(1, 1)]);
    }

    #[test]
    fn relabel_applies_permutation() {
        let g = GraphBuilder::new(3)
            .edges([(0, 1), (1, 2)])
            .build()
            .unwrap();
        let h = g.relabel(&[2, 0, 1]);
        assert_eq!(h.edges(), &[Edge::new(2, 0), Edge::new(0, 1)]);
    }

    #[test]
    #[should_panic]
    fn relabel_rejects_non_permutation() {
        let g = GraphBuilder::new(3).edges([(0, 1)]).build().unwrap();
        let _ = g.relabel(&[0, 0, 1]);
    }

    #[test]
    fn subgraph_keeps_selected_edges() {
        let g = GraphBuilder::new(4)
            .edges([(0, 1), (1, 2), (2, 3)])
            .build()
            .unwrap();
        let h = g.edge_subgraph(|i| i != 1);
        assert_eq!(h.m(), 2);
        assert_eq!(h.edges()[1], Edge::new(2, 3));
    }

    #[test]
    fn mapped_graph_serves_same_surface() {
        let g = crate::gen::random_connected(64, 160, 3);
        let mut path = std::env::temp_dir();
        path.push(format!("bcc-edge-test-{}.bccsr", std::process::id()));
        g.save_bccsr(&path).unwrap();
        let mg = crate::bccsr::MappedCsr::open_graph(&path).unwrap();
        assert!(mg.is_mapped());
        assert_eq!(mg.n(), g.n());
        assert_eq!(mg.m(), g.m());
        assert_eq!(mg.edges(), g.edges());
        assert_eq!(mg.degrees(), g.degrees());
        assert_eq!(mg.clone().into_edges(), g.edges());
        // Derived graphs fall back to in-memory storage.
        assert!(!mg.edge_subgraph(|i| i % 2 == 0).is_mapped());
        std::fs::remove_file(&path).unwrap();
    }
}

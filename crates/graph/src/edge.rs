//! Edge-list graph representation.

use std::fmt;

/// An undirected edge between vertices `u` and `v`.
///
/// Edges are stored as given (not normalized); `normalized()` provides
/// the canonical `(min, max)` view used for deduplication and packing.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    /// First endpoint.
    pub u: u32,
    /// Second endpoint.
    pub v: u32,
}

impl Edge {
    /// Creates an edge.
    #[inline]
    pub fn new(u: u32, v: u32) -> Self {
        Edge { u, v }
    }

    /// The canonical `(min, max)` orientation.
    #[inline]
    pub fn normalized(self) -> Edge {
        if self.u <= self.v {
            self
        } else {
            Edge {
                u: self.v,
                v: self.u,
            }
        }
    }

    /// Packs the normalized edge into a sortable `u64` key.
    #[inline]
    pub fn key(self) -> u64 {
        let e = self.normalized();
        ((e.u as u64) << 32) | e.v as u64
    }

    /// The endpoint that is not `w` (panics if `w` is not an endpoint).
    #[inline]
    pub fn other(self, w: u32) -> u32 {
        if self.u == w {
            self.v
        } else {
            debug_assert_eq!(self.v, w);
            self.u
        }
    }

    /// True if the edge is a self loop.
    #[inline]
    pub fn is_loop(self) -> bool {
        self.u == self.v
    }
}

impl fmt::Debug for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.u, self.v)
    }
}

impl From<(u32, u32)> for Edge {
    fn from((u, v): (u32, u32)) -> Self {
        Edge::new(u, v)
    }
}

/// An undirected graph as a vertex count plus an edge list — the input
/// representation of the Tarjan–Vishkin pipeline.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    n: u32,
    edges: Vec<Edge>,
}

impl Graph {
    /// Creates a graph with `n` vertices (ids `0..n`) and the given
    /// edges. Panics if an edge references a vertex `>= n` or is a self
    /// loop; call [`Graph::from_edges_lenient`] to silently drop loops.
    pub fn new(n: u32, edges: Vec<Edge>) -> Self {
        for e in &edges {
            assert!(e.u < n && e.v < n, "edge {e:?} out of range (n = {n})");
            assert!(!e.is_loop(), "self loop {e:?} not allowed");
        }
        Graph { n, edges }
    }

    /// Like [`Graph::new`] from `(u, v)` tuples.
    pub fn from_tuples(n: u32, tuples: impl IntoIterator<Item = (u32, u32)>) -> Self {
        Graph::new(n, tuples.into_iter().map(Edge::from).collect())
    }

    /// Builds a graph, dropping self loops and duplicate edges.
    pub fn from_edges_lenient(n: u32, edges: impl IntoIterator<Item = Edge>) -> Self {
        let mut keys: Vec<u64> = edges
            .into_iter()
            .filter(|e| !e.is_loop())
            .map(Edge::key)
            .collect();
        keys.sort_unstable();
        keys.dedup();
        let edges = keys
            .into_iter()
            .map(|k| Edge::new((k >> 32) as u32, k as u32))
            .collect();
        Graph::new(n, edges)
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// The edge list.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Consumes the graph, returning its edge list.
    pub fn into_edges(self) -> Vec<Edge> {
        self.edges
    }

    /// Per-vertex degrees.
    pub fn degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.n as usize];
        for e in &self.edges {
            deg[e.u as usize] += 1;
            deg[e.v as usize] += 1;
        }
        deg
    }

    /// The graph with vertices renamed by the permutation `perm`
    /// (`perm[v]` is v's new id). Edge order is preserved, so per-edge
    /// results on the relabeled graph align index-for-index with the
    /// original — the test suite uses this to check that the algorithms
    /// are label-invariant.
    pub fn relabel(&self, perm: &[u32]) -> Graph {
        assert_eq!(perm.len(), self.n as usize);
        let mut seen = vec![false; self.n as usize];
        for &p in perm {
            assert!(
                p < self.n && !std::mem::replace(&mut seen[p as usize], true),
                "perm must be a permutation of 0..n"
            );
        }
        let edges = self
            .edges
            .iter()
            .map(|e| Edge::new(perm[e.u as usize], perm[e.v as usize]))
            .collect();
        Graph { n: self.n, edges }
    }

    /// The subgraph on the same vertex set keeping edges whose index
    /// satisfies `keep`.
    pub fn edge_subgraph(&self, keep: impl Fn(usize) -> bool) -> Graph {
        let edges = self
            .edges
            .iter()
            .enumerate()
            .filter(|(i, _)| keep(*i))
            .map(|(_, &e)| e)
            .collect();
        Graph { n: self.n, edges }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_and_key_agree() {
        let e = Edge::new(9, 2);
        assert_eq!(e.normalized(), Edge::new(2, 9));
        assert_eq!(e.key(), Edge::new(2, 9).key());
        assert_eq!(e.key(), (2u64 << 32) | 9);
    }

    #[test]
    fn other_endpoint() {
        let e = Edge::new(3, 8);
        assert_eq!(e.other(3), 8);
        assert_eq!(e.other(8), 3);
    }

    #[test]
    fn graph_basics() {
        let g = Graph::from_tuples(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degrees(), vec![1, 2, 2, 1]);
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range() {
        let _ = Graph::from_tuples(3, [(0, 3)]);
    }

    #[test]
    #[should_panic]
    fn rejects_self_loop() {
        let _ = Graph::from_tuples(3, [(1, 1)]);
    }

    #[test]
    fn lenient_dedups_and_drops_loops() {
        let g = Graph::from_edges_lenient(
            4,
            [
                Edge::new(0, 1),
                Edge::new(1, 0),
                Edge::new(2, 2),
                Edge::new(2, 3),
            ],
        );
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn relabel_applies_permutation() {
        let g = Graph::from_tuples(3, [(0, 1), (1, 2)]);
        let h = g.relabel(&[2, 0, 1]);
        assert_eq!(h.edges(), &[Edge::new(2, 0), Edge::new(0, 1)]);
    }

    #[test]
    #[should_panic]
    fn relabel_rejects_non_permutation() {
        let g = Graph::from_tuples(3, [(0, 1)]);
        let _ = g.relabel(&[0, 0, 1]);
    }

    #[test]
    fn subgraph_keeps_selected_edges() {
        let g = Graph::from_tuples(4, [(0, 1), (1, 2), (2, 3)]);
        let h = g.edge_subgraph(|i| i != 1);
        assert_eq!(h.m(), 2);
        assert_eq!(h.edges()[1], Edge::new(2, 3));
    }
}

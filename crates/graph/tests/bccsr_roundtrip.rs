//! Property round-trip for the out-of-core ingestion path: an
//! arbitrary graph written as a text edge list, loaded back, converted
//! to the binary `.bccsr` format, and reopened as an mmap-backed view
//! must be edge-for-edge identical to the in-memory build — same
//! vertex count, same edge list (order and orientation included), same
//! degrees, and the same per-vertex CSR adjacency.

use bcc_graph::bccsr::{self, MappedCsr};
use bcc_graph::{io, Csr, Edge, GraphBuilder};
use proptest::prelude::*;

fn tmp(case: &str, name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("bccsr-prop-{}-{case}-{name}", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn text_to_bccsr_view_matches_in_memory_build(
        n in 1u32..80,
        pairs in proptest::collection::vec((0u32..80u32, 0u32..80u32), 0..200),
    ) {
        // Arbitrary multigraph over n vertices: duplicates and both
        // orientations allowed (the strict path preserves them); only
        // self loops are invalid and get filtered here.
        let edges: Vec<Edge> = pairs
            .iter()
            .map(|&(a, b)| Edge::new(a % n, b % n))
            .filter(|e| e.u != e.v)
            .collect();
        let g = GraphBuilder::new(n).edges(edges.iter().copied()).build().unwrap();

        // Text round-trip: the header keeps n exact and the strict
        // loader preserves edge order and orientation.
        let tpath = tmp("rt", "g.txt");
        {
            let mut f = std::fs::File::create(&tpath).unwrap();
            io::write_text(&g, &mut f).unwrap();
        }
        let loaded = io::load(&tpath).unwrap();
        prop_assert!(!loaded.is_mapped());
        prop_assert_eq!(loaded.n(), g.n());
        prop_assert_eq!(loaded.edges(), g.edges());

        // Binary round-trip: convert, reopen verified, and the mapped
        // view serves the identical accessor surface.
        let bpath = tmp("rt", "g.bccsr");
        bccsr::write(&bpath, &loaded).unwrap();
        let mapped = MappedCsr::open_graph(&bpath).unwrap();
        prop_assert!(mapped.is_mapped());
        prop_assert_eq!(mapped.n(), g.n());
        prop_assert_eq!(mapped.m(), g.m());
        prop_assert_eq!(mapped.edges(), g.edges());
        prop_assert_eq!(mapped.degrees(), g.degrees());

        // CSR equivalence per vertex: the zero-copy adjacency read out
        // of the file matches the one materialized from memory.
        let owned = Csr::build(&g);
        let zero_copy = Csr::build(&mapped);
        prop_assert!(zero_copy.is_mapped());
        for v in 0..n {
            prop_assert_eq!(owned.neighbors(v), zero_copy.neighbors(v));
            prop_assert_eq!(owned.edge_ids(v), zero_copy.edge_ids(v));
        }

        std::fs::remove_file(&tpath).ok();
        std::fs::remove_file(&bpath).ok();
    }
}

//! Property tests for the rebuilt traversal kernels (satellite of the
//! direction-optimizing BFS + FastSV PR).
//!
//! Two oracles:
//!
//! * The hybrid BFS must produce the **same `level[]`** as the
//!   sequential queue BFS on every graph (direction switching changes
//!   the order of discovery within a level, never the level itself),
//!   and its parent array must be a valid BFS tree: the parent edge
//!   exists in the graph and `level[parent[v]] == level[v] - 1`.
//! * FastSV must induce the **same partition** as classic SV on random,
//!   disconnected, and self-loop/duplicate-edge inputs, with matching
//!   component counts and spanning-forest sizes.

use bcc_connectivity::bfs::{bfs_tree, bfs_tree_seq};
use bcc_connectivity::sv::connected_components_with;
use bcc_connectivity::tuning::{SvVariant, TraversalTuning};
use bcc_graph::{gen, Csr, Edge, Graph};
use bcc_smp::Pool;
use proptest::prelude::*;

const NIL: u32 = u32::MAX;

/// Strategy: a connected graph spanning sparse-to-dense shapes.
fn connected_graph() -> impl Strategy<Value = Graph> {
    (8u32..80, 0usize..400, any::<u64>()).prop_map(|(n, extra, seed)| {
        let m = ((n as usize - 1) + extra).min(gen::max_edges(n));
        gen::random_connected(n, m, seed)
    })
}

/// Strategy: a raw edge list over `n` vertices that may contain
/// self-loops, duplicate edges, and isolated vertices — the shape the
/// SV kernels see from the step-6 auxiliary graph.
fn raw_edge_list() -> impl Strategy<Value = (u32, Vec<Edge>)> {
    (4u32..60, 0usize..150, any::<u64>()).prop_flat_map(|(n, m, _seed)| {
        (
            Just(n),
            proptest::collection::vec((0..n, 0..n), 0..m.max(1)),
        )
            .prop_map(|(n, pairs)| {
                let edges = pairs.into_iter().map(|(u, v)| Edge::new(u, v)).collect();
                (n, edges)
            })
    })
}

/// Canonical partition fingerprint: relabels components by first
/// appearance so two labelings compare equal iff they induce the same
/// partition of the vertices.
fn canonical_partition(label: &[u32]) -> Vec<u32> {
    let mut rename = std::collections::HashMap::new();
    label
        .iter()
        .map(|&l| {
            let next = rename.len() as u32;
            *rename.entry(l).or_insert(next)
        })
        .collect()
}

fn check_bfs_tree_valid(g: &Graph, tree: &bcc_connectivity::BfsTree, root: u32) {
    assert_eq!(tree.parent[root as usize], root);
    assert_eq!(tree.level[root as usize], 0);
    let mut reached = 0;
    for v in 0..g.n() {
        let p = tree.parent[v as usize];
        if p == NIL {
            assert_eq!(tree.level[v as usize], NIL, "unreached vertex has a level");
            assert_eq!(tree.parent_eid[v as usize], NIL);
            continue;
        }
        reached += 1;
        if v == root {
            continue;
        }
        // Parent is one level up and the parent edge really joins them.
        assert_eq!(
            tree.level[p as usize] + 1,
            tree.level[v as usize],
            "parent level must be child level - 1 (v={v})"
        );
        let eid = tree.parent_eid[v as usize] as usize;
        let e = g.edges()[eid];
        assert!(
            (e.u == v && e.v == p) || (e.u == p && e.v == v),
            "parent_eid {eid} does not join {v} and {p}"
        );
    }
    assert_eq!(reached, tree.reached, "reached count mismatch");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hybrid_bfs_levels_match_sequential_oracle(g in connected_graph(), root_pick in any::<u32>()) {
        let root = root_pick % g.n();
        let csr = Csr::build(&g);
        let oracle = bfs_tree_seq(&csr, root);
        for p in [1usize, 2] {
            let pool = Pool::new(p);
            // Force the aggressive heuristic (alpha = 1 switches early)
            // as well as the default, so bottom-up sweeps actually run
            // on these small graphs.
            for alpha in [1u32, TraversalTuning::fast().alpha] {
                let tuning = TraversalTuning { alpha, ..TraversalTuning::fast() };
                let tree = bfs_tree(&pool, &csr, root, &tuning);
                prop_assert_eq!(&tree.level, &oracle.level, "p={} alpha={}", p, alpha);
                prop_assert_eq!(tree.reached, oracle.reached);
                prop_assert_eq!(tree.levels, oracle.levels);
                check_bfs_tree_valid(&g, &tree, root);
                // The tree-edge id list is exactly the non-root parent
                // edges (the satellite's pre-sized fast path).
                prop_assert_eq!(tree.tree_edge_ids().len(), tree.reached as usize - 1);
            }
        }
    }

    #[test]
    fn fastsv_partition_matches_classic_on_random_graphs(
        n in 6u32..80,
        m in 0usize..200,
        seed in any::<u64>(),
    ) {
        // random_gnm is frequently disconnected at these densities.
        let g = gen::random_gnm(n, m.min(gen::max_edges(n)), seed);
        let pool = Pool::new(2);
        let classic = connected_components_with(&pool, g.n(), g.edges(), SvVariant::Classic);
        let fast = connected_components_with(&pool, g.n(), g.edges(), SvVariant::FastSv);
        prop_assert_eq!(classic.num_components, fast.num_components);
        prop_assert_eq!(
            canonical_partition(&classic.label),
            canonical_partition(&fast.label)
        );
        // Both variants produce spanning forests of the same size.
        prop_assert_eq!(classic.tree_edges.len(), fast.tree_edges.len());
        prop_assert_eq!(
            classic.tree_edges.len(),
            (g.n() - classic.num_components) as usize
        );
    }

    #[test]
    fn fastsv_matches_classic_on_self_loops_and_duplicates((n, edges) in raw_edge_list()) {
        let pool = Pool::new(2);
        let classic = connected_components_with(&pool, n, &edges, SvVariant::Classic);
        let fast = connected_components_with(&pool, n, &edges, SvVariant::FastSv);
        prop_assert_eq!(classic.num_components, fast.num_components);
        prop_assert_eq!(
            canonical_partition(&classic.label),
            canonical_partition(&fast.label)
        );
        // No spanning forest edge may be a self-loop.
        for &eid in &fast.tree_edges {
            let e = edges[eid as usize];
            prop_assert_ne!(e.u, e.v, "self-loop in the spanning forest");
        }
    }
}

//! Shiloach–Vishkin-family connected components with spanning-forest
//! recording: the classic synchronous graft-and-shortcut rounds and a
//! FastSV-style asynchronous variant.
//!
//! **Classic** ([`SvVariant::Classic`]): rounds of (a) *graft* — for
//! every edge whose endpoints currently have different roots, CAS the
//! larger root onto the smaller label — and (b) *shortcut* —
//! pointer-jump every vertex until the structure is flat, iterated to a
//! fixpoint. Work is O((n + m) · rounds) with O(log n) rounds, and the
//! fixpoint check costs one extra verification round.
//!
//! **FastSV** ([`SvVariant::FastSv`]): each edge is resolved *completely*
//! in a single sweep — chase both endpoints to their roots (compacting
//! the paths walked with `fetch_min` as we go), hook the higher root
//! onto the lower by CAS, and on a lost race re-chase and retry instead
//! of deferring to a next round. A lost CAS means another thread merged
//! that root, so total retries are bounded by the n − 1 possible merges;
//! after one sweep plus a flattening pass the labeling is final — no
//! verification round, `rounds == 1` whenever there are edges.
//!
//! Both variants share the soundness argument: labels only decrease
//! (grafts hook higher roots onto lower labels, compaction writes a
//! chain minimum), so the pointer structure is acyclic at every instant
//! and each CAS win merges two genuinely distinct trees; the winning
//! edges therefore form a spanning forest (the paper's observation that
//! "grafting defines the parent relationship naturally", §3.2).

use crate::tuning::SvVariant;
use bcc_graph::Edge;
use bcc_smp::atomic::as_atomic_u32;
use bcc_smp::workspace::{alloc_cap, alloc_filled, alloc_iota, give_opt};
use bcc_smp::{BccWorkspace, Pool, SharedSlice, NIL};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Output of [`connected_components`].
#[derive(Clone, Debug)]
pub struct SvResult {
    /// `label[v]` is the component representative (the minimum-reachable
    /// grafting fixpoint; equal labels ⇔ same component).
    pub label: Vec<u32>,
    /// Indices into the input edge list forming a spanning forest:
    /// exactly `n - num_components` edges.
    pub tree_edges: Vec<u32>,
    /// Number of connected components (isolated vertices included).
    pub num_components: u32,
    /// Graft rounds executed (exposed for the benchmarks). Classic runs
    /// O(log n) rounds plus a verification round; FastSV resolves every
    /// edge in its single sweep, so this is 1 whenever edges exist.
    pub rounds: u32,
}

impl SvResult {
    /// Returns the result's owned arrays to `ws` for reuse. Call this
    /// instead of dropping when the result came from a `_ws`
    /// constructor.
    pub fn recycle(self, ws: &BccWorkspace) {
        ws.give(self.label);
        ws.give(self.tree_edges);
    }
}

/// Connected components over `edges` on vertex set `0..n` with the
/// default variant ([`SvVariant::FastSv`]).
///
/// ```
/// use bcc_connectivity::sv::connected_components;
/// use bcc_graph::Edge;
/// use bcc_smp::Pool;
///
/// let edges = vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(3, 4)];
/// let r = connected_components(&Pool::new(2), 5, &edges);
/// assert_eq!(r.num_components, 2);
/// assert_eq!(r.tree_edges.len(), 3); // spanning forest
/// assert_eq!(r.label[0], r.label[2]);
/// assert_ne!(r.label[0], r.label[3]);
/// ```
pub fn connected_components(pool: &Pool, n: u32, edges: &[Edge]) -> SvResult {
    connected_components_with(pool, n, edges, SvVariant::FastSv)
}

/// Connected components with an explicit algorithm [`SvVariant`].
pub fn connected_components_with(
    pool: &Pool,
    n: u32,
    edges: &[Edge],
    variant: SvVariant,
) -> SvResult {
    connected_components_impl(pool, n, edges, variant, None)
}

/// [`connected_components_with`] with the result's arrays and all
/// scratch taken from `ws`; return them with [`SvResult::recycle`].
pub fn connected_components_with_ws(
    pool: &Pool,
    n: u32,
    edges: &[Edge],
    variant: SvVariant,
    ws: &BccWorkspace,
) -> SvResult {
    connected_components_impl(pool, n, edges, variant, Some(ws))
}

/// [`connected_components_with_ws`] restricted to the edge subset where
/// `keep(i)` is true, without materializing that subset.
///
/// The recorded `tree_edges` index the **full** input list, so callers
/// filtering a graph in place (FAST-BCC masks out BFS-tree edges to
/// find its certificate's non-tree forest) get original edge ids back
/// with zero O(m) scratch — the predicate replaces the compacted copy
/// the TV-filter pipeline builds.
pub fn connected_components_masked_with_ws(
    pool: &Pool,
    n: u32,
    edges: &[Edge],
    keep: &(impl Fn(usize) -> bool + Sync),
    variant: SvVariant,
    ws: &BccWorkspace,
) -> SvResult {
    match variant {
        SvVariant::Classic => classic_sv(pool, n, edges, keep, Some(ws)),
        SvVariant::FastSv => fast_sv(pool, n, edges, keep, Some(ws)),
    }
}

fn connected_components_impl(
    pool: &Pool,
    n: u32,
    edges: &[Edge],
    variant: SvVariant,
    ws: Option<&BccWorkspace>,
) -> SvResult {
    match variant {
        SvVariant::Classic => classic_sv(pool, n, edges, &|_| true, ws),
        SvVariant::FastSv => fast_sv(pool, n, edges, &|_| true, ws),
    }
}

/// The classic synchronous graft-and-shortcut rounds (paper §3.2).
fn classic_sv(
    pool: &Pool,
    n: u32,
    edges: &[Edge],
    keep: &(impl Fn(usize) -> bool + Sync),
    ws: Option<&BccWorkspace>,
) -> SvResult {
    let n_us = n as usize;
    let m = edges.len();
    let mut label: Vec<u32> = alloc_iota(ws, n_us);
    // graft_edge[r] = index of the edge that grafted root r (NIL if r
    // was never grafted). Each slot is CAS-claimed at most once.
    let mut graft_edge: Vec<u32> = alloc_filled(ws, n_us, NIL);
    let mut rounds = 0u32;

    if n > 0 && m > 0 {
        let label_a = as_atomic_u32(&mut label);
        let graft_a = as_atomic_u32(&mut graft_edge);
        let changed = AtomicBool::new(true);
        let shortcut_live = AtomicBool::new(true);
        let round_ctr = AtomicU32::new(0);

        pool.run(|ctx| {
            loop {
                // --- check fixpoint from the previous round ---
                ctx.barrier();
                if !changed.load(Ordering::Acquire) {
                    break;
                }
                ctx.barrier();
                if ctx.is_leader() {
                    changed.store(false, Ordering::Release);
                    round_ctr.fetch_add(1, Ordering::Relaxed);
                }
                ctx.barrier();

                // --- graft phase ---
                let mut local_changed = false;
                for i in ctx.block_range(m) {
                    if !keep(i) {
                        continue;
                    }
                    let e = edges[i];
                    let ru = find_root(label_a, e.u);
                    let rv = find_root(label_a, e.v);
                    if ru == rv {
                        continue;
                    }
                    let (hi, lo) = if ru > rv { (ru, rv) } else { (rv, ru) };
                    if label_a[hi as usize]
                        .compare_exchange(hi, lo, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        // This root merges exactly once: record the edge.
                        let prev = graft_a[hi as usize].swap(i as u32, Ordering::Relaxed);
                        debug_assert_eq!(prev, NIL);
                        local_changed = true;
                    } else {
                        // Someone grafted hi concurrently; the edge will
                        // be reconsidered next round if still needed.
                        local_changed = true;
                    }
                }
                if local_changed {
                    changed.store(true, Ordering::Release);
                }
                ctx.barrier();

                // --- shortcut phase: jump until flat ---
                loop {
                    ctx.barrier();
                    if ctx.is_leader() {
                        shortcut_live.store(false, Ordering::Release);
                    }
                    ctx.barrier();
                    let mut any = false;
                    for v in ctx.block_range(n_us) {
                        let d = label_a[v].load(Ordering::Relaxed);
                        let dd = label_a[d as usize].load(Ordering::Relaxed);
                        if d != dd {
                            label_a[v].store(dd, Ordering::Relaxed);
                            any = true;
                        }
                    }
                    if any {
                        shortcut_live.store(true, Ordering::Release);
                    }
                    ctx.barrier();
                    if !shortcut_live.load(Ordering::Acquire) {
                        break;
                    }
                }
            }
        });
        rounds = round_ctr.load(Ordering::Relaxed);
    }

    finish(n, label, graft_edge, rounds, ws)
}

/// FastSV-style asynchronous hooking: one sweep over the edges with
/// in-place CAS retry and path compaction, then one flattening pass.
fn fast_sv(
    pool: &Pool,
    n: u32,
    edges: &[Edge],
    keep: &(impl Fn(usize) -> bool + Sync),
    ws: Option<&BccWorkspace>,
) -> SvResult {
    let n_us = n as usize;
    let m = edges.len();
    let mut label: Vec<u32> = alloc_iota(ws, n_us);
    let mut graft_edge: Vec<u32> = alloc_filled(ws, n_us, NIL);
    let mut rounds = 0u32;

    if n > 0 && m > 0 {
        let label_a = as_atomic_u32(&mut label);
        let graft_a = as_atomic_u32(&mut graft_edge);

        pool.run(|ctx| {
            // --- single hooking sweep: resolve each edge to completion ---
            for i in ctx.block_range(m) {
                if !keep(i) {
                    continue;
                }
                let e = edges[i];
                loop {
                    let ru = find_root_compact(label_a, e.u);
                    let rv = find_root_compact(label_a, e.v);
                    if ru == rv {
                        break;
                    }
                    let (hi, lo) = if ru > rv { (ru, rv) } else { (rv, ru) };
                    if label_a[hi as usize]
                        .compare_exchange(hi, lo, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        let prev = graft_a[hi as usize].swap(i as u32, Ordering::Relaxed);
                        debug_assert_eq!(prev, NIL);
                        break;
                    }
                    // Lost the race: another thread merged `hi`, i.e. the
                    // forest shrank — re-chase the (new) roots and retry.
                    // Total retries across all threads are bounded by the
                    // n - 1 possible merges.
                }
            }
            ctx.barrier();
            // --- flatten: the forest is now fixed, so one pass of
            // walk-to-root stores suffices (stores only ever write root
            // values, which are chain minima, preserving monotonicity
            // for concurrent walkers). Root slots are left untouched.
            for v in ctx.block_range(n_us) {
                let r = find_root(label_a, v as u32);
                if label_a[v].load(Ordering::Relaxed) != r {
                    label_a[v].store(r, Ordering::Relaxed);
                }
            }
        });
        rounds = 1;
    }

    finish(n, label, graft_edge, rounds, ws)
}

/// Collects tree edges and counts components.
fn finish(
    n: u32,
    label: Vec<u32>,
    graft_edge: Vec<u32>,
    rounds: u32,
    ws: Option<&BccWorkspace>,
) -> SvResult {
    let mut tree_edges: Vec<u32> = alloc_cap(ws, graft_edge.len());
    tree_edges.extend(graft_edge.iter().copied().filter(|&e| e != NIL));
    give_opt(ws, graft_edge);
    let num_components = n - tree_edges.len() as u32;
    SvResult {
        label,
        tree_edges,
        num_components,
        rounds,
    }
}

/// Follows labels to the current root (labels only decrease, so this
/// walk terminates even under concurrent updates).
#[inline]
fn find_root(label: &[AtomicU32], v: u32) -> u32 {
    let mut x = v;
    loop {
        let d = label[x as usize].load(Ordering::Acquire);
        if d == x {
            return x;
        }
        x = d;
    }
}

/// [`find_root`] plus aggressive path-shortcutting: every non-root slot
/// on the walked chain is lowered toward the discovered root with
/// `fetch_min`, so later chases through the same region are O(1)-ish.
///
/// Only slots *observed* to be non-roots are written (a slot whose label
/// has ever dropped below its index can never become a root again), and
/// `fetch_min` keeps labels monotonically decreasing, so root slots are
/// never clobbered and grafting's CAS/forest-recording invariants hold.
#[inline]
fn find_root_compact(label: &[AtomicU32], v: u32) -> u32 {
    let root = find_root(label, v);
    let mut x = v;
    while x != root {
        let d = label[x as usize].load(Ordering::Acquire);
        if d == x {
            break; // x is (still) a root; never write root slots
        }
        label[x as usize].fetch_min(root, Ordering::AcqRel);
        x = d;
    }
    root
}

/// Relabels `label` so components are numbered `0..k` in order of their
/// smallest vertex, in parallel. Returns `k`.
pub fn normalize_labels(pool: &Pool, label: &mut [u32]) -> u32 {
    normalize_labels_impl(pool, label, None)
}

/// [`normalize_labels`] with scratch taken from (and returned to) `ws`.
pub fn normalize_labels_ws(pool: &Pool, label: &mut [u32], ws: &BccWorkspace) -> u32 {
    normalize_labels_impl(pool, label, Some(ws))
}

fn normalize_labels_impl(pool: &Pool, label: &mut [u32], ws: Option<&BccWorkspace>) -> u32 {
    let n = label.len();
    if n == 0 {
        return 0;
    }
    // A vertex is a representative iff label[v] == v.
    let mut index = alloc_filled(ws, n, 0u32);
    {
        let idx_s = SharedSlice::new(&mut index);
        let label_ro: &[u32] = label;
        pool.run(|ctx| {
            for v in ctx.block_range(n) {
                unsafe { idx_s.write(v, u32::from(label_ro[v] == v as u32)) };
            }
        });
    }
    let k = match ws {
        Some(ws) => bcc_primitives::scan::exclusive_scan_par_ws(pool, &mut index, ws),
        None => bcc_primitives::scan::exclusive_scan_par(pool, &mut index),
    };
    {
        let label_s = SharedSlice::new(label);
        let index_ro: &[u32] = &index;
        pool.run(|ctx| {
            for v in ctx.block_range(n) {
                let rep = label_s.get(v) as usize;
                unsafe { label_s.write(v, index_ro[rep]) };
            }
        });
    }
    give_opt(ws, index);
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use bcc_graph::{gen, Graph, GraphBuilder};

    const VARIANTS: [SvVariant; 2] = [SvVariant::Classic, SvVariant::FastSv];

    fn check_against_oracle(g: &Graph, p: usize, variant: SvVariant) {
        let pool = Pool::new(p);
        let res = connected_components_with(&pool, g.n(), g.edges(), variant);
        let oracle = seq::components_union_find(g.n(), g.edges());

        // Same partition (labels equal iff oracle labels equal).
        for e in g.edges() {
            assert_eq!(
                res.label[e.u as usize], res.label[e.v as usize],
                "edge endpoints must share a label ({variant:?})"
            );
        }
        let mut pairs: Vec<(u32, u32)> = res
            .label
            .iter()
            .zip(oracle.label.iter())
            .map(|(&a, &b)| (a, b))
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        let mut by_ours: Vec<u32> = pairs.iter().map(|&(a, _)| a).collect();
        let mut by_oracle: Vec<u32> = pairs.iter().map(|&(_, b)| b).collect();
        by_ours.sort_unstable();
        by_ours.dedup();
        by_oracle.sort_unstable();
        by_oracle.dedup();
        assert_eq!(by_ours.len(), pairs.len(), "label mapping not 1:1");
        assert_eq!(by_oracle.len(), pairs.len(), "label mapping not 1:1");

        assert_eq!(res.num_components, oracle.count);

        // Tree edges form a spanning forest: right count, acyclic.
        assert_eq!(res.tree_edges.len() as u32, g.n() - oracle.count);
        let forest: Vec<_> = res
            .tree_edges
            .iter()
            .map(|&i| g.edges()[i as usize])
            .collect();
        let fres = seq::components_union_find(g.n(), &forest);
        assert_eq!(
            fres.count, oracle.count,
            "forest must connect exactly the same components ({variant:?})"
        );
    }

    #[test]
    fn matches_oracle_on_families() {
        for variant in VARIANTS {
            for p in [1, 2, 4] {
                check_against_oracle(&gen::path(50), p, variant);
                check_against_oracle(&gen::cycle(33), p, variant);
                check_against_oracle(&gen::star(40), p, variant);
                check_against_oracle(&gen::complete(20), p, variant);
                check_against_oracle(&gen::torus(4, 5), p, variant);
                check_against_oracle(&gen::random_connected(500, 1500, p as u64), p, variant);
                // Disconnected:
                check_against_oracle(&gen::random_gnm(500, 400, p as u64), p, variant);
            }
        }
    }

    #[test]
    fn self_loops_and_duplicate_edges() {
        // `Graph` forbids self-loops, but the SV kernels take raw edge
        // lists (step 6 feeds them auxiliary-graph edges), so they must
        // tolerate loops and duplicates directly.
        let edges = vec![
            Edge::new(0, 0),
            Edge::new(0, 1),
            Edge::new(1, 0),
            Edge::new(2, 2),
            Edge::new(3, 4),
            Edge::new(3, 4),
        ];
        let oracle = seq::components_union_find(6, &edges);
        assert_eq!(oracle.count, 4); // {0,1} {2} {3,4} {5}
        for variant in VARIANTS {
            for p in [1, 3] {
                let pool = Pool::new(p);
                let r = connected_components_with(&pool, 6, &edges, variant);
                assert_eq!(r.num_components, 4, "{variant:?}");
                assert_eq!(r.tree_edges.len(), 2);
                assert_eq!(r.label[0], r.label[1]);
                assert_eq!(r.label[3], r.label[4]);
                assert_ne!(r.label[0], r.label[2]);
                // A self-loop is never a tree edge.
                for &i in &r.tree_edges {
                    let e = edges[i as usize];
                    assert_ne!(e.u, e.v);
                }
            }
        }
    }

    #[test]
    fn empty_and_trivial() {
        let pool = Pool::new(2);
        for variant in VARIANTS {
            let empty = GraphBuilder::new(0).build().unwrap();
            let r = connected_components_with(&pool, empty.n(), empty.edges(), variant);
            assert_eq!(r.num_components, 0);
            assert!(r.tree_edges.is_empty());
            assert_eq!(r.rounds, 0);

            let isolated = GraphBuilder::new(5).build().unwrap();
            let r = connected_components_with(&pool, isolated.n(), isolated.edges(), variant);
            assert_eq!(r.num_components, 5);
            assert_eq!(r.label, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn single_edge() {
        let pool = Pool::new(3);
        let g = GraphBuilder::new(2).edges([(0, 1)]).build().unwrap();
        for variant in VARIANTS {
            let r = connected_components_with(&pool, g.n(), g.edges(), variant);
            assert_eq!(r.num_components, 1);
            assert_eq!(r.tree_edges, vec![0]);
        }
    }

    #[test]
    fn parallel_edges_between_components_yield_single_tree_edge_each_merge() {
        // Many edges between the same pair of big stars: only one merge.
        let mut edges = vec![];
        for v in 1..10u32 {
            edges.push((0, v));
        }
        for v in 11..20u32 {
            edges.push((10, v));
        }
        edges.push((3, 13));
        edges.push((4, 14));
        edges.push((5, 15));
        let g = GraphBuilder::new(20).edges(edges).build().unwrap();
        for variant in VARIANTS {
            for p in [1, 4] {
                let pool = Pool::new(p);
                let r = connected_components_with(&pool, g.n(), g.edges(), variant);
                assert_eq!(r.num_components, 1);
                assert_eq!(r.tree_edges.len(), 19);
            }
        }
    }

    #[test]
    fn normalize_labels_gives_dense_ids() {
        let pool = Pool::new(2);
        let g = gen::random_gnm(100, 60, 5);
        let mut r = connected_components(&pool, g.n(), g.edges());
        let k = normalize_labels(&pool, &mut r.label);
        assert_eq!(k, r.num_components);
        let max = r.label.iter().copied().max().unwrap();
        assert_eq!(max + 1, k);
        // Still a valid labeling of the same partition.
        let oracle = seq::components_union_find(g.n(), g.edges());
        for e in g.edges() {
            assert_eq!(r.label[e.u as usize], r.label[e.v as usize]);
        }
        assert_eq!(oracle.count, k);
    }

    #[test]
    fn fastsv_labels_are_flat_and_minimal() {
        // After FastSV, every label must point directly at the component
        // minimum (flattening is part of the algorithm, not a cleanup).
        let g = gen::random_connected(400, 900, 9);
        let pool = Pool::new(4);
        let r = connected_components_with(&pool, g.n(), g.edges(), SvVariant::FastSv);
        let oracle = seq::components_union_find(g.n(), g.edges());
        // Component minimum per oracle label.
        let mut min_of = std::collections::HashMap::new();
        for v in 0..g.n() {
            let e = min_of.entry(oracle.label[v as usize]).or_insert(v);
            if v < *e {
                *e = v;
            }
        }
        for v in 0..g.n() {
            assert_eq!(r.label[v as usize], min_of[&oracle.label[v as usize]]);
        }
    }

    #[test]
    fn ws_variants_match_plain_and_reach_zero_miss_steady_state() {
        let ws = BccWorkspace::new();
        let pool = Pool::new(4);
        let g = gen::random_gnm(300, 500, 11);
        for variant in VARIANTS {
            let plain = connected_components_with(&pool, g.n(), g.edges(), variant);
            // Warm-up run populates the shelves; the rerun must be all hits.
            let mut warm = connected_components_with_ws(&pool, g.n(), g.edges(), variant, &ws);
            assert_eq!(warm.num_components, plain.num_components);
            normalize_labels_ws(&pool, &mut warm.label, &ws);
            warm.recycle(&ws);
            let before = ws.stats();
            let mut again = connected_components_with_ws(&pool, g.n(), g.edges(), variant, &ws);
            assert_eq!(again.num_components, plain.num_components);
            assert_eq!(again.tree_edges.len(), plain.tree_edges.len());
            let k = normalize_labels_ws(&pool, &mut again.label, &ws);
            assert_eq!(k, again.num_components);
            again.recycle(&ws);
            let delta = ws.stats().delta_since(&before);
            assert_eq!(delta.misses, 0, "steady-state rerun must not miss");
        }
    }

    #[test]
    fn masked_matches_materialized_subset() {
        // Keep only even-indexed edges; the masked run must agree with
        // running on the physically filtered list, and its tree_edges
        // must index the full list (all even, and only kept edges).
        let ws = BccWorkspace::new();
        for seed in 0..3u64 {
            let g = gen::random_gnm(200, 500, seed);
            let subset: Vec<Edge> = g
                .edges()
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 2 == 0)
                .map(|(_, &e)| e)
                .collect();
            for variant in VARIANTS {
                for p in [1, 4] {
                    let pool = Pool::new(p);
                    let masked = connected_components_masked_with_ws(
                        &pool,
                        g.n(),
                        g.edges(),
                        &|i| i % 2 == 0,
                        variant,
                        &ws,
                    );
                    let dense = connected_components_with(&pool, g.n(), &subset, variant);
                    assert_eq!(masked.num_components, dense.num_components, "{variant:?}");
                    assert_eq!(masked.tree_edges.len(), dense.tree_edges.len());
                    for &i in &masked.tree_edges {
                        assert_eq!(i % 2, 0, "tree edge {i} was masked out");
                    }
                    // Same partition.
                    for v in 0..g.n() as usize {
                        for w in 0..g.n() as usize {
                            if v < w {
                                assert_eq!(
                                    masked.label[v] == masked.label[w],
                                    dense.label[v] == dense.label[w],
                                );
                            }
                        }
                    }
                    masked.recycle(&ws);
                }
            }
        }
    }

    #[test]
    fn rounds_are_reported_and_fastsv_is_strictly_lower() {
        let pool = Pool::new(2);
        let g = gen::path(1000);
        let classic = connected_components_with(&pool, g.n(), g.edges(), SvVariant::Classic);
        let fast = connected_components_with(&pool, g.n(), g.edges(), SvVariant::FastSv);
        assert_eq!(classic.num_components, 1);
        assert_eq!(fast.num_components, 1);
        assert!(classic.rounds >= 2, "classic pays a verification round");
        assert_eq!(fast.rounds, 1, "FastSV resolves everything in one sweep");
        assert!(fast.rounds < classic.rounds);
    }
}

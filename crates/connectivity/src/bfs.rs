//! Breadth-first search trees: sequential, level-synchronous top-down,
//! and direction-optimizing hybrid.
//!
//! TV-filter's correctness (paper Lemma 1) requires the primary spanning
//! tree to be a **BFS** tree: a nontree edge of a BFS tree never joins an
//! ancestor/descendant pair more than one level apart. Any
//! level-synchronous expansion produces one, which leaves the expansion
//! *direction* free per level:
//!
//! * **top-down** — frontier vertices claim unvisited neighbors by CAS
//!   (examines every out-arc of the frontier);
//! * **bottom-up** — unvisited vertices scan their own arcs for a
//!   frontier member and adopt the first one found (examines at most
//!   one *hit* per unvisited vertex, and no CAS: each vertex claims
//!   itself).
//!
//! The hybrid ([`BfsStrategy::Hybrid`]) switches by the standard
//! frontier-edge heuristic (Beamer et al., SC'12): go bottom-up when the
//! frontier's out-arcs exceed `remaining_arcs / α`, return top-down when
//! the frontier shrinks below `n / β`. Bottom-up runs as a **single
//! contiguous phase**: the first sweep covers every vertex, later sweeps
//! revisit only the survivors of the previous one (the unvisited set
//! only shrinks), and once the exit condition fires the sweep never
//! re-engages — near the end of the traversal the entry test becomes
//! trivially true and re-entering would pay a full sweep for a handful
//! of claims. On low-diameter graphs the one or two "fat" levels carry
//! almost all edges, and the bottom-up sweep short-circuits most of
//! their examinations — a work reduction, so it pays at any thread
//! count. Frontier membership during bottom-up sweeps is a shared
//! [`Bitmap`], and the unvisited set is a second bitmap swept
//! word-at-a-time (64 vertices per load, claims cleared with one plain
//! store per word); top-down levels pull degree-weighted chunks from a
//! [`ChunkCounter`] so hub vertices cannot serialize a chunk behind one
//! thread.

use crate::tuning::{BfsStrategy, TraversalTuning};
use bcc_graph::Csr;
use bcc_smp::atomic::as_atomic_u32;
use bcc_smp::workspace::{alloc_cap, alloc_filled, give_opt};
use bcc_smp::{BccWorkspace, Bitmap, ChunkCounter, Pool, NIL};
use std::sync::atomic::Ordering;

/// How one BFS level was discovered (recorded per level for telemetry
/// and the `bcc-bench` ablation columns).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BfsDirection {
    /// Frontier-expands-outward (classic).
    TopDown,
    /// Unvisited-vertices-look-back (direction-optimized sweep).
    BottomUp,
}

/// A rooted BFS tree (or partial tree if the graph is disconnected).
#[derive(Clone, Debug)]
pub struct BfsTree {
    /// `parent[v]`; `parent[root] == root`, unreachable vertices `NIL`.
    pub parent: Vec<u32>,
    /// Edge id (index into the graph's edge list) of the parent edge;
    /// `NIL` for the root and unreachable vertices.
    pub parent_eid: Vec<u32>,
    /// `level[v]` = BFS depth; `u32::MAX` if unreachable.
    pub level: Vec<u32>,
    /// Number of vertices reached (including the root).
    pub reached: u32,
    /// Number of BFS levels (eccentricity of the root + 1); this is the
    /// `O(d)` factor in TV-filter's running time.
    pub levels: u32,
    /// Vertices discovered at each depth (`frontier_sizes[0] == 1`, the
    /// root; `frontier_sizes.len() == levels`). The raw material for
    /// effective-diameter estimates.
    pub frontier_sizes: Vec<u32>,
    /// Direction used to discover each depth (`directions[0]` is the
    /// root's trivial `TopDown`); parallel to `frontier_sizes`.
    pub directions: Vec<BfsDirection>,
}

impl BfsTree {
    /// Returns the tree's large per-vertex arrays to `ws` for reuse.
    /// `frontier_sizes` and `directions` are dropped plainly — they are
    /// tiny (one slot per level) and routinely escape into telemetry.
    pub fn recycle(self, ws: &BccWorkspace) {
        ws.give(self.parent);
        ws.give(self.parent_eid);
        ws.give(self.level);
    }

    /// Indices of the tree edges (one per reached non-root vertex).
    pub fn tree_edge_ids(&self) -> Vec<u32> {
        let mut ids = Vec::with_capacity(self.reached.saturating_sub(1) as usize);
        ids.extend(self.parent_eid.iter().copied().filter(|&e| e != NIL));
        ids
    }

    /// Number of levels that were discovered bottom-up.
    pub fn bottom_up_levels(&self) -> u32 {
        self.directions
            .iter()
            .filter(|&&d| d == BfsDirection::BottomUp)
            .count() as u32
    }

    /// Effective diameter at quantile `q` (e.g. `0.9`): the smallest
    /// depth by which at least `q * reached` vertices have been
    /// discovered. Returns 0 for empty trees.
    pub fn effective_diameter(&self, q: f64) -> u32 {
        let target = (q * self.reached as f64).ceil() as u64;
        let mut cum = 0u64;
        for (d, &s) in self.frontier_sizes.iter().enumerate() {
            cum += u64::from(s);
            if cum >= target {
                return d as u32;
            }
        }
        self.frontier_sizes.len().saturating_sub(1) as u32
    }
}

/// Sequential BFS tree from `root`.
pub fn bfs_tree_seq(csr: &Csr, root: u32) -> BfsTree {
    bfs_tree_seq_impl(csr, root, None)
}

fn bfs_tree_seq_impl(csr: &Csr, root: u32, ws: Option<&BccWorkspace>) -> BfsTree {
    let n = csr.n() as usize;
    let mut parent = alloc_filled(ws, n, NIL);
    let mut parent_eid = alloc_filled(ws, n, NIL);
    let mut level = alloc_filled(ws, n, u32::MAX);
    if n == 0 {
        return BfsTree {
            parent,
            parent_eid,
            level,
            reached: 0,
            levels: 0,
            frontier_sizes: vec![],
            directions: vec![],
        };
    }
    parent[root as usize] = root;
    level[root as usize] = 0;
    let mut frontier: Vec<u32> = alloc_cap(ws, n);
    frontier.push(root);
    let mut next: Vec<u32> = alloc_cap(ws, n);
    let mut reached = 1u32;
    let mut depth = 0u32;
    let mut frontier_sizes = vec![1u32];
    while !frontier.is_empty() {
        depth += 1;
        for &v in &frontier {
            for (w, eid) in csr.arcs(v) {
                if parent[w as usize] == NIL {
                    parent[w as usize] = v;
                    parent_eid[w as usize] = eid;
                    level[w as usize] = depth;
                    reached += 1;
                    next.push(w);
                }
            }
        }
        if !next.is_empty() {
            frontier_sizes.push(next.len() as u32);
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    give_opt(ws, frontier);
    give_opt(ws, next);
    let directions = vec![BfsDirection::TopDown; frontier_sizes.len()];
    BfsTree {
        parent,
        parent_eid,
        level,
        reached,
        levels: depth, // last increment found an empty level
        frontier_sizes,
        directions,
    }
}

/// Level-synchronous parallel BFS tree from `root` with the default
/// tuning (direction-optimizing hybrid).
pub fn bfs_tree_par(pool: &Pool, csr: &Csr, root: u32) -> BfsTree {
    bfs_tree(pool, csr, root, &TraversalTuning::default())
}

/// Per-chunk edge budget for degree-weighted frontier scheduling.
const EDGE_BUDGET: usize = 2048;

/// Bitmap words (64 vertices each) per dynamically scheduled bottom-up
/// sweep chunk: small enough that dynamic scheduling still balances a
/// skewed word, large enough that the chunk counter's atomic is cold.
const SWEEP_WORDS_PER_CHUNK: usize = 16;

/// BFS tree from `root` under explicit [`TraversalTuning`].
///
/// Top-down levels CAS-claim neighbors from dynamically scheduled,
/// degree-weighted frontier chunks; bottom-up levels sweep the
/// unvisited vertices against a frontier bitmap. With
/// [`BfsStrategy::TopDown`] and a single thread (or a tiny graph) this
/// falls back to [`bfs_tree_seq`]; the hybrid always runs its own loop
/// so the direction optimization applies at every thread count.
pub fn bfs_tree(pool: &Pool, csr: &Csr, root: u32, tuning: &TraversalTuning) -> BfsTree {
    bfs_tree_impl(pool, csr, root, tuning, None)
}

/// [`bfs_tree`] with the tree's per-vertex arrays, the frontier, the
/// bottom-up bitmap, and the unvisited-domain scratch taken from `ws`;
/// return the tree's buffers with [`BfsTree::recycle`]. (Per-thread
/// frontier chunks inside a level remain ordinary allocations.)
pub fn bfs_tree_ws(
    pool: &Pool,
    csr: &Csr,
    root: u32,
    tuning: &TraversalTuning,
    ws: &BccWorkspace,
) -> BfsTree {
    bfs_tree_impl(pool, csr, root, tuning, Some(ws))
}

fn bfs_tree_impl(
    pool: &Pool,
    csr: &Csr,
    root: u32,
    tuning: &TraversalTuning,
    ws: Option<&BccWorkspace>,
) -> BfsTree {
    let n = csr.n() as usize;
    let hybrid = tuning.bfs == BfsStrategy::Hybrid;
    if n == 0 || (!hybrid && (pool.threads() == 1 || n < 1 << 12)) {
        return bfs_tree_seq_impl(csr, root, ws);
    }
    let alpha = tuning.alpha.max(1) as usize;
    let beta = tuning.beta.max(1) as usize;

    let mut parent = alloc_filled(ws, n, NIL);
    let mut parent_eid = alloc_filled(ws, n, NIL);
    let mut level = alloc_filled(ws, n, u32::MAX);
    parent[root as usize] = root;
    level[root as usize] = 0;

    let parent_a = as_atomic_u32(&mut parent);
    let eid_a = as_atomic_u32(&mut parent_eid);
    let level_a = as_atomic_u32(&mut level);

    let mut frontier: Vec<u32> = alloc_cap(ws, n);
    frontier.push(root);
    let mut frontier_arcs = csr.degree(root);
    let mut remaining_arcs = 2 * csr.m() - frontier_arcs;
    let mut reached = 1u32;
    let mut depth = 0u32;
    let mut frontier_sizes = vec![1u32];
    let mut directions = vec![BfsDirection::TopDown];

    // Allocated on the first bottom-up level, reused afterwards.
    let mut frontier_bm: Option<Bitmap> = None;
    // Bit v set ⇔ v still unclaimed after the previous bottom-up sweep:
    // the sweep domain only shrinks, so later levels never rescan what
    // an earlier level already claimed. A bitmap instead of a `Vec<u32>`
    // domain: 32× less sweep-state traffic, zero words answer 64
    // vertices in one load, and claims clear their bit with one
    // whole-word store at the end of the word (each thread owns whole
    // words of the sweep, so no atomics).
    let mut unvisited: Option<Bitmap> = None;
    let mut bottom_up = false;
    let mut bottom_up_done = false;

    while !frontier.is_empty() {
        if hybrid {
            // Beamer's direction heuristic, evaluated pre-expansion.
            // Bottom-up is a single contiguous phase: once the frontier
            // thins back out the sweep never re-engages — late levels
            // have few unvisited vertices, so a re-entered sweep would
            // pay the full vertex scan for almost no claims (and the
            // shrinking `remaining_arcs` makes the entry test trivially
            // true near the end, which used to cause T/B thrash).
            if !bottom_up && !bottom_up_done {
                bottom_up = frontier.len() > 1 && frontier_arcs * alpha > remaining_arcs;
            } else if bottom_up {
                bottom_up = frontier.len() * beta >= n;
                bottom_up_done = !bottom_up;
            }
        }
        depth += 1;

        let (next, next_arcs) = if bottom_up {
            let bm = frontier_bm.get_or_insert_with(|| match ws {
                Some(ws) => Bitmap::new_in(n, ws),
                None => Bitmap::new(n),
            });
            bm.clear();
            for &v in &frontier {
                // Single-threaded fill phase: no other thread touches the
                // bitmap until the next pool barrier.
                bm.set_unsync(v as usize);
            }
            // Sweep domain: every unvisited vertex on the first
            // bottom-up level (the bitmap is built from `parent` in one
            // word-partitioned pass), then only the survivors of the
            // previous sweep.
            let unvis = unvisited.get_or_insert_with(|| {
                let unvis = match ws {
                    Some(ws) => Bitmap::new_in(n, ws),
                    None => Bitmap::new(n),
                };
                pool.run(|ctx| {
                    for w in ctx.block_range_of(Bitmap::word_range_of(0..n)) {
                        let hi = (w * 64 + 64).min(n);
                        let mut bits = 0u64;
                        for (b, p) in parent_a[w * 64..hi].iter().enumerate() {
                            bits |= u64::from(p.load(Ordering::Relaxed) == NIL) << b;
                        }
                        unvis.store_word_unsync(w, bits);
                    }
                });
                unvis
            });
            let work = ChunkCounter::new(unvis.words().max(1), SWEEP_WORDS_PER_CHUNK);
            let unvis_ro: &Bitmap = unvis;
            let parts = pool.run_map(|_ctx| {
                let mut local = Vec::new();
                let mut local_arcs = 0usize;
                while let Some(words) = work.next_chunk() {
                    for w in words {
                        // One load answers 64 vertices; claimed bits are
                        // cleared with one plain whole-word store (this
                        // thread owns the word for the whole sweep).
                        let bits = unvis_ro.load_word(w);
                        let mut remaining = bits;
                        let mut probe = bits;
                        while probe != 0 {
                            let b = probe.trailing_zeros() as usize;
                            probe &= probe - 1;
                            let v = (w * 64 + b) as u32;
                            // Scan only the neighbor slice until the
                            // first frontier hit; the parallel edge-id
                            // slice is touched once, on the hit.
                            let nbrs = csr.neighbors(v);
                            if let Some(k) = nbrs.iter().position(|&x| bm.test(x as usize)) {
                                // Only this thread owns v: plain stores,
                                // no CAS.
                                let x = nbrs[k];
                                let eid = csr.edge_ids(v)[k];
                                parent_a[v as usize].store(x, Ordering::Relaxed);
                                eid_a[v as usize].store(eid, Ordering::Relaxed);
                                level_a[v as usize].store(depth, Ordering::Relaxed);
                                local.push(v);
                                local_arcs += nbrs.len();
                                remaining &= !(1u64 << b);
                            }
                        }
                        if remaining != bits {
                            unvis_ro.store_word_unsync(w, remaining);
                        }
                    }
                }
                (local, local_arcs)
            });
            concat_parts(parts, ws)
        } else {
            let work =
                ChunkCounter::weighted(frontier.len(), EDGE_BUDGET, |i| csr.degree(frontier[i]));
            let frontier_ro: &[u32] = &frontier;
            let parts = pool.run_map(|_ctx| {
                let mut local = Vec::new();
                let mut local_arcs = 0usize;
                while let Some(chunk) = work.next_chunk() {
                    for &v in &frontier_ro[chunk] {
                        for (w, eid) in csr.arcs(v) {
                            if parent_a[w as usize].load(Ordering::Relaxed) == NIL
                                && parent_a[w as usize]
                                    .compare_exchange(NIL, v, Ordering::AcqRel, Ordering::Acquire)
                                    .is_ok()
                            {
                                // Winner writes the auxiliary fields.
                                eid_a[w as usize].store(eid, Ordering::Relaxed);
                                level_a[w as usize].store(depth, Ordering::Relaxed);
                                local.push(w);
                                local_arcs += csr.degree(w);
                            }
                        }
                    }
                }
                (local, local_arcs)
            });
            concat_parts(parts, ws)
        };

        reached += next.len() as u32;
        remaining_arcs -= next_arcs;
        frontier_arcs = next_arcs;
        if !next.is_empty() {
            frontier_sizes.push(next.len() as u32);
            directions.push(if bottom_up {
                BfsDirection::BottomUp
            } else {
                BfsDirection::TopDown
            });
        }
        give_opt(ws, std::mem::replace(&mut frontier, next));
    }

    give_opt(ws, frontier);
    if let Some(ws) = ws {
        if let Some(u) = unvisited.take() {
            u.recycle(ws);
        }
        if let Some(bm) = frontier_bm.take() {
            bm.recycle(ws);
        }
    }

    BfsTree {
        parent,
        parent_eid,
        level,
        reached,
        levels: depth,
        frontier_sizes,
        directions,
    }
}

/// Concatenates per-thread `(vertices, arc_count)` buffers.
fn concat_parts(parts: Vec<(Vec<u32>, usize)>, ws: Option<&BccWorkspace>) -> (Vec<u32>, usize) {
    let mut next: Vec<u32> = alloc_cap(ws, parts.iter().map(|(b, _)| b.len()).sum());
    let mut arcs = 0usize;
    for (mut b, a) in parts {
        next.append(&mut b);
        arcs += a;
    }
    (next, arcs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::assert_valid_rooted_tree;
    use bcc_graph::{gen, GraphBuilder};

    #[test]
    fn seq_levels_on_path() {
        let g = gen::path(6);
        let csr = Csr::build(&g);
        let t = bfs_tree_seq(&csr, 0);
        assert_eq!(t.level, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(t.reached, 6);
        assert_eq!(t.levels, 6); // includes final empty-frontier level
        assert_eq!(t.parent, vec![0, 0, 1, 2, 3, 4]);
        assert_eq!(t.tree_edge_ids().len(), 5);
        assert_eq!(t.frontier_sizes, vec![1; 6]);
        assert_eq!(t.effective_diameter(1.0), 5);
        assert_eq!(t.bottom_up_levels(), 0);
    }

    #[test]
    fn bfs_tree_property_levels_differ_by_one() {
        // In a BFS tree, every graph edge spans at most one level.
        let g = gen::random_connected(800, 3000, 17);
        let csr = Csr::build(&g);
        for tuning in [TraversalTuning::classic(), TraversalTuning::fast()] {
            for p in [1, 4] {
                let pool = Pool::new(p);
                let t = bfs_tree(&pool, &csr, 0, &tuning);
                assert_eq!(t.reached, g.n());
                assert_valid_rooted_tree(&g, &t.parent, 0);
                for e in g.edges() {
                    let lu = t.level[e.u as usize] as i64;
                    let lv = t.level[e.v as usize] as i64;
                    assert!((lu - lv).abs() <= 1, "edge {e:?} spans levels {lu},{lv}");
                }
                // Parent is exactly one level up.
                for v in 0..g.n() {
                    if v != 0 {
                        let p = t.parent[v as usize];
                        assert_eq!(t.level[v as usize], t.level[p as usize] + 1);
                    }
                }
            }
        }
    }

    #[test]
    fn hybrid_switches_bottom_up_on_dense_graphs_and_matches_seq_levels() {
        // A dense random graph has 2-3 BFS levels carrying nearly all
        // edges: the heuristic must fire, and levels must still match
        // the sequential oracle exactly.
        let g = gen::random_connected(2000, 30_000, 5);
        let csr = Csr::build(&g);
        let s = bfs_tree_seq(&csr, 0);
        for p in [1, 4] {
            let pool = Pool::new(p);
            let t = bfs_tree(&pool, &csr, 0, &TraversalTuning::fast());
            assert_eq!(t.level, s.level, "p={p}");
            assert_eq!(t.levels, s.levels);
            assert_eq!(t.frontier_sizes, s.frontier_sizes);
            assert!(
                t.bottom_up_levels() >= 1,
                "direction heuristic never fired: {:?} (sizes {:?})",
                t.directions,
                t.frontier_sizes
            );
            assert_valid_rooted_tree(&g, &t.parent, 0);
        }
    }

    #[test]
    fn parent_eid_points_to_real_edges() {
        let g = gen::torus(5, 7);
        let csr = Csr::build(&g);
        let pool = Pool::new(3);
        for tuning in [TraversalTuning::classic(), TraversalTuning::fast()] {
            let t = bfs_tree(&pool, &csr, 3, &tuning);
            for v in 0..g.n() {
                let eid = t.parent_eid[v as usize];
                if v == 3 {
                    assert_eq!(eid, NIL);
                    continue;
                }
                let e = g.edges()[eid as usize];
                let p = t.parent[v as usize];
                assert!((e.u == v && e.v == p) || (e.v == v && e.u == p));
            }
        }
    }

    #[test]
    fn disconnected_graph_partial_tree() {
        let g = GraphBuilder::new(5)
            .edges([(0, 1), (1, 2), (3, 4)])
            .build()
            .unwrap();
        let csr = Csr::build(&g);
        let t = bfs_tree_seq(&csr, 0);
        assert_eq!(t.reached, 3);
        assert_eq!(t.parent[3], NIL);
        assert_eq!(t.parent[4], NIL);
        // The hybrid agrees on partial trees.
        let pool = Pool::new(2);
        let h = bfs_tree(&pool, &csr, 0, &TraversalTuning::fast());
        assert_eq!(h.reached, 3);
        assert_eq!(h.level, t.level);
    }

    #[test]
    fn par_bfs_forced_parallel_path_small_graph() {
        // Force the parallel path by using a graph above the threshold.
        let g = gen::random_connected(5000, 15_000, 2);
        let csr = Csr::build(&g);
        let pool = Pool::new(4);
        let s = bfs_tree_seq(&csr, 100);
        for tuning in [TraversalTuning::classic(), TraversalTuning::fast()] {
            let t = bfs_tree(&pool, &csr, 100, &tuning);
            assert_eq!(t.reached, 5000);
            assert_valid_rooted_tree(&g, &t.parent, 100);
            // Levels must match the sequential BFS (levels are unique
            // even though parents are not).
            assert_eq!(t.level, s.level);
            assert_eq!(t.levels, s.levels);
            assert_eq!(t.frontier_sizes, s.frontier_sizes);
        }
    }

    #[test]
    fn effective_diameter_quantiles() {
        let t = BfsTree {
            parent: vec![],
            parent_eid: vec![],
            level: vec![],
            reached: 100,
            levels: 4,
            frontier_sizes: vec![1, 9, 80, 10],
            directions: vec![BfsDirection::TopDown; 4],
        };
        assert_eq!(t.effective_diameter(0.05), 1);
        assert_eq!(t.effective_diameter(0.9), 2);
        assert_eq!(t.effective_diameter(1.0), 3);
    }

    #[test]
    fn ws_variant_matches_and_reaches_zero_miss_steady_state() {
        let ws = BccWorkspace::new();
        let g = gen::random_connected(2000, 30_000, 5);
        let csr = Csr::build(&g);
        let pool = Pool::new(4);
        for tuning in [TraversalTuning::classic(), TraversalTuning::fast()] {
            let plain = bfs_tree(&pool, &csr, 0, &tuning);
            let warm = bfs_tree_ws(&pool, &csr, 0, &tuning, &ws);
            assert_eq!(warm.level, plain.level);
            warm.recycle(&ws);
            let before = ws.stats();
            let again = bfs_tree_ws(&pool, &csr, 0, &tuning, &ws);
            assert_eq!(again.level, plain.level);
            assert_eq!(again.frontier_sizes, plain.frontier_sizes);
            again.recycle(&ws);
            let delta = ws.stats().delta_since(&before);
            assert_eq!(delta.misses, 0, "steady-state rerun must not miss");
        }
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build().unwrap();
        let csr = Csr::build(&g);
        let t = bfs_tree_seq(&csr, 0);
        assert_eq!(t.reached, 0);
        let pool = Pool::new(2);
        let h = bfs_tree(&pool, &csr, 0, &TraversalTuning::fast());
        assert_eq!(h.reached, 0);
        assert_eq!(h.levels, 0);
    }
}

//! Breadth-first search trees, sequential and level-synchronous parallel.
//!
//! TV-filter's correctness (paper Lemma 1) requires the primary spanning
//! tree to be a **BFS** tree: a nontree edge of a BFS tree never joins an
//! ancestor/descendant pair more than one level apart. The parallel
//! version is the standard level-synchronous frontier expansion with
//! CAS-claimed parents and dynamically scheduled chunks (frontier
//! vertices have irregular degrees).

use bcc_graph::Csr;
use bcc_smp::atomic::as_atomic_u32;
use bcc_smp::{ChunkCounter, Pool, NIL};
use std::sync::atomic::Ordering;

/// A rooted BFS tree (or partial tree if the graph is disconnected).
#[derive(Clone, Debug)]
pub struct BfsTree {
    /// `parent[v]`; `parent[root] == root`, unreachable vertices `NIL`.
    pub parent: Vec<u32>,
    /// Edge id (index into the graph's edge list) of the parent edge;
    /// `NIL` for the root and unreachable vertices.
    pub parent_eid: Vec<u32>,
    /// `level[v]` = BFS depth; `u32::MAX` if unreachable.
    pub level: Vec<u32>,
    /// Number of vertices reached (including the root).
    pub reached: u32,
    /// Number of BFS levels (eccentricity of the root + 1); this is the
    /// `O(d)` factor in TV-filter's running time.
    pub levels: u32,
}

impl BfsTree {
    /// Indices of the tree edges (one per reached non-root vertex).
    pub fn tree_edge_ids(&self) -> Vec<u32> {
        self.parent_eid
            .iter()
            .copied()
            .filter(|&e| e != NIL)
            .collect()
    }
}

/// Sequential BFS tree from `root`.
pub fn bfs_tree_seq(csr: &Csr, root: u32) -> BfsTree {
    let n = csr.n() as usize;
    let mut parent = vec![NIL; n];
    let mut parent_eid = vec![NIL; n];
    let mut level = vec![u32::MAX; n];
    if n == 0 {
        return BfsTree {
            parent,
            parent_eid,
            level,
            reached: 0,
            levels: 0,
        };
    }
    parent[root as usize] = root;
    level[root as usize] = 0;
    let mut frontier = vec![root];
    let mut next = Vec::new();
    let mut reached = 1u32;
    let mut depth = 0u32;
    while !frontier.is_empty() {
        depth += 1;
        for &v in &frontier {
            for (w, eid) in csr.arcs(v) {
                if parent[w as usize] == NIL {
                    parent[w as usize] = v;
                    parent_eid[w as usize] = eid;
                    level[w as usize] = depth;
                    reached += 1;
                    next.push(w);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    BfsTree {
        parent,
        parent_eid,
        level,
        reached,
        levels: depth, // last increment found an empty level
    }
}

/// Level-synchronous parallel BFS tree from `root`.
///
/// Each level: threads pull chunks of the frontier from a shared
/// counter, claim unvisited neighbors by CAS on the parent array, and
/// buffer them locally; buffers are concatenated into the next frontier.
pub fn bfs_tree_par(pool: &Pool, csr: &Csr, root: u32) -> BfsTree {
    let n = csr.n() as usize;
    if pool.threads() == 1 || n < 1 << 12 {
        return bfs_tree_seq(csr, root);
    }
    let mut parent = vec![NIL; n];
    let mut parent_eid = vec![NIL; n];
    let mut level = vec![u32::MAX; n];
    parent[root as usize] = root;
    level[root as usize] = 0;
    let mut frontier = vec![root];
    let mut reached = 1u32;
    let mut depth = 0u32;

    let parent_a = as_atomic_u32(&mut parent);
    let eid_a = as_atomic_u32(&mut parent_eid);
    let level_a = as_atomic_u32(&mut level);

    while !frontier.is_empty() {
        depth += 1;
        let work = ChunkCounter::new(frontier.len(), 64);
        let frontier_ro: &[u32] = &frontier;
        let buffers: Vec<Vec<u32>> = pool.run_map(|_ctx| {
            let mut local = Vec::new();
            while let Some(chunk) = work.next_chunk() {
                for &v in &frontier_ro[chunk] {
                    for (w, eid) in csr.arcs(v) {
                        if parent_a[w as usize].load(Ordering::Relaxed) == NIL
                            && parent_a[w as usize]
                                .compare_exchange(NIL, v, Ordering::AcqRel, Ordering::Acquire)
                                .is_ok()
                        {
                            // Winner writes the auxiliary fields.
                            eid_a[w as usize].store(eid, Ordering::Relaxed);
                            level_a[w as usize].store(depth, Ordering::Relaxed);
                            local.push(w);
                        }
                    }
                }
            }
            local
        });
        let mut next = Vec::with_capacity(buffers.iter().map(Vec::len).sum());
        for mut b in buffers {
            next.append(&mut b);
        }
        reached += next.len() as u32;
        frontier = next;
    }

    BfsTree {
        parent,
        parent_eid,
        level,
        reached,
        levels: depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::assert_valid_rooted_tree;
    use bcc_graph::{gen, Graph};

    #[test]
    fn seq_levels_on_path() {
        let g = gen::path(6);
        let csr = Csr::build(&g);
        let t = bfs_tree_seq(&csr, 0);
        assert_eq!(t.level, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(t.reached, 6);
        assert_eq!(t.levels, 6); // includes final empty-frontier level
        assert_eq!(t.parent, vec![0, 0, 1, 2, 3, 4]);
        assert_eq!(t.tree_edge_ids().len(), 5);
    }

    #[test]
    fn bfs_tree_property_levels_differ_by_one() {
        // In a BFS tree, every graph edge spans at most one level.
        let g = gen::random_connected(800, 3000, 17);
        let csr = Csr::build(&g);
        for p in [1, 4] {
            let pool = Pool::new(p);
            let t = bfs_tree_par(&pool, &csr, 0);
            assert_eq!(t.reached, g.n());
            assert_valid_rooted_tree(&g, &t.parent, 0);
            for e in g.edges() {
                let lu = t.level[e.u as usize] as i64;
                let lv = t.level[e.v as usize] as i64;
                assert!((lu - lv).abs() <= 1, "edge {e:?} spans levels {lu},{lv}");
            }
            // Parent is exactly one level up.
            for v in 0..g.n() {
                if v != 0 {
                    let p = t.parent[v as usize];
                    assert_eq!(t.level[v as usize], t.level[p as usize] + 1);
                }
            }
        }
    }

    #[test]
    fn parent_eid_points_to_real_edges() {
        let g = gen::torus(5, 7);
        let csr = Csr::build(&g);
        let pool = Pool::new(3);
        let t = bfs_tree_par(&pool, &csr, 3);
        for v in 0..g.n() {
            let eid = t.parent_eid[v as usize];
            if v == 3 {
                assert_eq!(eid, NIL);
                continue;
            }
            let e = g.edges()[eid as usize];
            let p = t.parent[v as usize];
            assert!((e.u == v && e.v == p) || (e.v == v && e.u == p));
        }
    }

    #[test]
    fn disconnected_graph_partial_tree() {
        let g = Graph::from_tuples(5, [(0, 1), (1, 2), (3, 4)]);
        let csr = Csr::build(&g);
        let t = bfs_tree_seq(&csr, 0);
        assert_eq!(t.reached, 3);
        assert_eq!(t.parent[3], NIL);
        assert_eq!(t.parent[4], NIL);
    }

    #[test]
    fn par_bfs_forced_parallel_path_small_graph() {
        // Force the parallel path by using a graph above the threshold.
        let g = gen::random_connected(5000, 15_000, 2);
        let csr = Csr::build(&g);
        let pool = Pool::new(4);
        let t = bfs_tree_par(&pool, &csr, 100);
        assert_eq!(t.reached, 5000);
        assert_valid_rooted_tree(&g, &t.parent, 100);
        // Levels must match the sequential BFS (levels are unique even
        // though parents are not).
        let s = bfs_tree_seq(&csr, 100);
        assert_eq!(t.level, s.level);
        assert_eq!(t.levels, s.levels);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0, vec![]);
        let csr = Csr::build(&g);
        let t = bfs_tree_seq(&csr, 0);
        assert_eq!(t.reached, 0);
    }
}

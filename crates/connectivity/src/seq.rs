//! Sequential connectivity baselines (test oracles and fallbacks).

use bcc_graph::{Csr, Edge, Graph};
use bcc_smp::NIL;

/// Result of a sequential components computation.
pub struct SeqComponents {
    /// `label[v]` = component representative of `v`.
    pub label: Vec<u32>,
    /// Number of components.
    pub count: u32,
}

/// Union-find (path halving + union by label minimum) components.
pub fn components_union_find(n: u32, edges: &[Edge]) -> SeqComponents {
    let mut parent: Vec<u32> = (0..n).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            let g = parent[parent[x as usize] as usize];
            parent[x as usize] = g;
            x = g;
        }
        x
    }
    let mut count = n;
    for e in edges {
        let ru = find(&mut parent, e.u);
        let rv = find(&mut parent, e.v);
        if ru != rv {
            // Union onto the smaller label so representatives are the
            // minimum vertex of the component (matches SV's fixpoint).
            let (hi, lo) = if ru > rv { (ru, rv) } else { (rv, ru) };
            parent[hi as usize] = lo;
            count -= 1;
        }
    }
    let label: Vec<u32> = (0..n).map(|v| find(&mut parent, v)).collect();
    SeqComponents { label, count }
}

/// Iterative DFS rooted spanning tree of the component containing
/// `root`. `parent[root] == root`; unreachable vertices get `NIL`.
pub fn dfs_tree(csr: &Csr, root: u32) -> Vec<u32> {
    let n = csr.n() as usize;
    let mut parent = vec![NIL; n];
    if n == 0 {
        return parent;
    }
    parent[root as usize] = root;
    let mut stack = vec![root];
    while let Some(v) = stack.pop() {
        for &w in csr.neighbors(v) {
            if parent[w as usize] == NIL {
                parent[w as usize] = v;
                stack.push(w);
            }
        }
    }
    parent
}

/// Checks that `parent` encodes a spanning tree of the connected graph
/// `g` rooted at `root`: parent edges exist in `g`, every vertex reaches
/// the root, no cycles.
pub fn assert_valid_rooted_tree(g: &Graph, parent: &[u32], root: u32) {
    let n = g.n() as usize;
    assert_eq!(parent.len(), n);
    assert_eq!(parent[root as usize], root, "root must be self-parented");

    // Every parent edge must be a real edge.
    let mut keys: Vec<u64> = g.edges().iter().map(|e| e.key()).collect();
    keys.sort_unstable();
    for v in 0..n as u32 {
        if v == root {
            continue;
        }
        let p = parent[v as usize];
        assert!(p != NIL, "vertex {v} not covered by tree");
        let k = Edge::new(p, v).key();
        assert!(
            keys.binary_search(&k).is_ok(),
            "tree edge ({p},{v}) is not a graph edge"
        );
    }

    // Every vertex reaches the root without revisiting (no cycles).
    let mut depth: Vec<i64> = vec![-1; n];
    depth[root as usize] = 0;
    for v in 0..n as u32 {
        // Walk up collecting the path until a known depth.
        let mut path = vec![];
        let mut x = v;
        while depth[x as usize] < 0 {
            path.push(x);
            x = parent[x as usize];
            assert!(path.len() <= n, "cycle detected in parent structure at {v}");
        }
        let mut d = depth[x as usize];
        for &y in path.iter().rev() {
            d += 1;
            depth[y as usize] = d;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graph::gen;
    use bcc_graph::GraphBuilder;

    #[test]
    fn union_find_counts() {
        let g = gen::random_gnm(100, 50, 3);
        let res = components_union_find(g.n(), g.edges());
        assert_eq!(
            res.count as usize,
            bcc_graph::validate::count_components(&g)
        );
    }

    #[test]
    fn dfs_tree_spans_connected_graph() {
        let g = gen::random_connected(300, 900, 1);
        let csr = Csr::build(&g);
        let parent = dfs_tree(&csr, 0);
        assert_valid_rooted_tree(&g, &parent, 0);
    }

    #[test]
    fn dfs_tree_leaves_unreachable_nil() {
        let g = GraphBuilder::new(4)
            .edges([(0, 1), (2, 3)])
            .build()
            .unwrap();
        let csr = Csr::build(&g);
        let parent = dfs_tree(&csr, 0);
        assert_eq!(parent[2], NIL);
        assert_eq!(parent[3], NIL);
        assert_eq!(parent[1], 0);
    }

    #[test]
    #[should_panic]
    fn invalid_tree_detected() {
        let g = gen::path(4); // 0-1-2-3
                              // parent claims edge (0,2) which does not exist.
        let parent = vec![0, 0, 0, 2];
        assert_valid_rooted_tree(&g, &parent, 0);
    }
}

#![warn(missing_docs)]
//! Parallel connectivity and spanning-tree algorithms.
//!
//! Three ways to get a spanning structure, mirroring the paper's §3:
//!
//! * [`sv`] — the Shiloach–Vishkin graft-and-shortcut connected
//!   components algorithm on an edge list, recording the grafting edges
//!   to obtain a spanning forest. TV's step 1 and step 6 both use it.
//! * [`bfs`] — level-synchronous breadth-first search producing a
//!   *rooted* tree directly (merging the paper's Spanning-tree and
//!   Root-tree steps), and the BFS tree required by TV-filter's
//!   correctness lemmas (Lemma 1 needs T to be a BFS tree).
//! * [`traversal`] — the Bader–Cong work-stealing graph-traversal
//!   spanning tree, the fastest rooted-spanning-tree method of their
//!   earlier study, used by TV-opt.
//!
//! [`boruvka`] adds the parallel minimum spanning forest of the
//! authors' companion study (paper ref. [4]); [`seq`] holds the
//! sequential baselines (union-find, DFS tree) the tests use as
//! oracles.

pub mod as_sync;
pub mod bfs;
pub mod boruvka;
pub mod seq;
pub mod sv;
pub mod traversal;
pub mod tuning;

pub use as_sync::awerbuch_shiloach;
pub use bfs::{bfs_tree, bfs_tree_par, bfs_tree_seq, bfs_tree_ws, BfsDirection, BfsTree};
pub use boruvka::{minimum_spanning_forest, MsfResult, WeightedEdge};
pub use sv::{
    connected_components, connected_components_masked_with_ws, connected_components_with,
    connected_components_with_ws, SvResult,
};
pub use traversal::work_stealing_tree;
pub use tuning::{BfsStrategy, SvVariant, TraversalTuning};

//! Synchronous Awerbuch–Shiloach connected components.
//!
//! The PRAM-faithful variant of graft-and-shortcut (Awerbuch & Shiloach
//! 1987, the algorithm the paper cites alongside Shiloach–Vishkin):
//! every round performs, in lockstep across threads,
//!
//! 1. **star detection** — a tree is a star iff it has depth ≤ 1;
//! 2. **conditional graft** — star roots hook onto *smaller* neighbor
//!    labels;
//! 3. **star re-detection**, then **unconditional graft** — stars that
//!    stayed stagnant hook onto *any* different neighbor label (safe:
//!    two adjacent stagnant stars cannot both survive step 2);
//! 4. **pointer jumping** until the forest is flat.
//!
//! Guaranteed O(log n) rounds, at the price of touching every edge in
//! both graft sub-steps — the work/overhead trade the asynchronous
//! [`crate::sv`] implementation makes differently. Both are exposed so
//! the bench crate can compare them (ABL-SPT).

use crate::sv::SvResult;
use bcc_graph::Edge;
use bcc_smp::atomic::as_atomic_u32;
use bcc_smp::{Pool, NIL};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Connected components by the synchronous Awerbuch–Shiloach algorithm.
/// Output contract matches [`crate::sv::connected_components`].
pub fn awerbuch_shiloach(pool: &Pool, n: u32, edges: &[Edge]) -> SvResult {
    let n_us = n as usize;
    let m = edges.len();
    let mut label: Vec<u32> = (0..n).collect();
    let mut graft_edge: Vec<u32> = vec![NIL; n_us];
    let mut rounds = 0u32;

    if n > 0 && m > 0 {
        let label_a = as_atomic_u32(&mut label);
        let graft_a = as_atomic_u32(&mut graft_edge);
        let star: Vec<AtomicBool> = (0..n_us).map(|_| AtomicBool::new(false)).collect();
        let changed = AtomicBool::new(true);
        let live = AtomicBool::new(true);
        let round_ctr = AtomicU32::new(0);

        // One graft attempt: hook the root of `hi_root` onto `lo`,
        // recording the winning edge. Exactly one CAS can win per root.
        let try_graft = |hi_root: u32, lo: u32, eid: u32| -> bool {
            if label_a[hi_root as usize]
                .compare_exchange(hi_root, lo, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                graft_a[hi_root as usize].swap(eid, Ordering::Relaxed);
                true
            } else {
                false
            }
        };

        // Star detection (Awerbuch–Shiloach): star[v]=true; vertices
        // whose grandparent differs from their parent clear themselves
        // AND their grandparent; finally inherit the parent's flag.
        let detect_star = |ctx: &bcc_smp::Ctx| {
            for v in ctx.block_range(n_us) {
                star[v].store(true, Ordering::Relaxed);
            }
            ctx.barrier();
            for v in ctx.block_range(n_us) {
                let p = label_a[v].load(Ordering::Relaxed);
                let gp = label_a[p as usize].load(Ordering::Relaxed);
                if p != gp {
                    star[v].store(false, Ordering::Relaxed);
                    star[gp as usize].store(false, Ordering::Relaxed);
                }
            }
            ctx.barrier();
            for v in ctx.block_range(n_us) {
                let p = label_a[v].load(Ordering::Relaxed);
                if !star[p as usize].load(Ordering::Relaxed) {
                    star[v].store(false, Ordering::Relaxed);
                }
            }
            ctx.barrier();
        };

        pool.run(|ctx| loop {
            ctx.barrier();
            if !changed.load(Ordering::Acquire) {
                break;
            }
            ctx.barrier();
            if ctx.is_leader() {
                changed.store(false, Ordering::Release);
                round_ctr.fetch_add(1, Ordering::Relaxed);
            }
            ctx.barrier();

            // 1–2: conditional graft of stars onto smaller labels.
            detect_star(ctx);
            let mut local_changed = false;
            for i in ctx.block_range(m) {
                let e = edges[i];
                for (a, b) in [(e.u, e.v), (e.v, e.u)] {
                    if star[a as usize].load(Ordering::Relaxed) {
                        let da = label_a[a as usize].load(Ordering::Relaxed);
                        let db = label_a[b as usize].load(Ordering::Relaxed);
                        if db < da && try_graft(da, db, i as u32) {
                            local_changed = true;
                        }
                    }
                }
            }
            ctx.barrier();

            // 3: stagnant stars graft onto any different neighbor label.
            detect_star(ctx);
            for i in ctx.block_range(m) {
                let e = edges[i];
                for (a, b) in [(e.u, e.v), (e.v, e.u)] {
                    if star[a as usize].load(Ordering::Relaxed) {
                        let da = label_a[a as usize].load(Ordering::Relaxed);
                        let db = label_a[b as usize].load(Ordering::Relaxed);
                        if db != da && try_graft(da, db, i as u32) {
                            local_changed = true;
                        }
                    }
                }
            }
            if local_changed {
                changed.store(true, Ordering::Release);
            }
            ctx.barrier();

            // 4: pointer jumping until flat.
            loop {
                ctx.barrier();
                if ctx.is_leader() {
                    live.store(false, Ordering::Release);
                }
                ctx.barrier();
                let mut any = false;
                for v in ctx.block_range(n_us) {
                    let p = label_a[v].load(Ordering::Relaxed);
                    let gp = label_a[p as usize].load(Ordering::Relaxed);
                    if p != gp {
                        label_a[v].store(gp, Ordering::Relaxed);
                        any = true;
                    }
                }
                if any {
                    live.store(true, Ordering::Release);
                }
                ctx.barrier();
                if !live.load(Ordering::Acquire) {
                    break;
                }
            }
        });
        rounds = round_ctr.load(Ordering::Relaxed);
    }

    let tree_edges: Vec<u32> = graft_edge.iter().copied().filter(|&e| e != NIL).collect();
    let num_components = n - tree_edges.len() as u32;
    SvResult {
        label,
        tree_edges,
        num_components,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use bcc_graph::{gen, Graph};

    fn check(g: &Graph, p: usize) {
        let pool = Pool::new(p);
        let res = awerbuch_shiloach(&pool, g.n(), g.edges());
        let oracle = seq::components_union_find(g.n(), g.edges());
        assert_eq!(res.num_components, oracle.count, "count (p={p})");
        for e in g.edges() {
            assert_eq!(res.label[e.u as usize], res.label[e.v as usize]);
        }
        // Partition equivalence via pair canonicalization.
        let mut pairs: Vec<(u32, u32)> = res
            .label
            .iter()
            .zip(oracle.label.iter())
            .map(|(&a, &b)| (a, b))
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len() as u32, oracle.count);
        // Forest validity.
        assert_eq!(res.tree_edges.len() as u32, g.n() - oracle.count);
        let forest: Vec<Edge> = res
            .tree_edges
            .iter()
            .map(|&i| g.edges()[i as usize])
            .collect();
        assert_eq!(
            seq::components_union_find(g.n(), &forest).count,
            oracle.count,
            "recorded graft edges must form a spanning forest"
        );
    }

    #[test]
    fn families_match_oracle() {
        for p in [1, 2, 4] {
            check(&gen::path(64), p);
            check(&gen::cycle(65), p);
            check(&gen::star(50), p);
            check(&gen::complete(24), p);
            check(&gen::torus(5, 6), p);
            check(&gen::random_connected(800, 2400, p as u64), p);
            check(&gen::random_gnm(800, 500, p as u64), p);
        }
    }

    #[test]
    fn logarithmic_round_bound_on_paths() {
        // Paths are the adversarial case for hooking algorithms; the
        // synchronous algorithm still converges in O(log n) rounds.
        for &n in &[256u32, 1024, 4096] {
            let g = gen::path(n);
            let pool = Pool::new(2);
            let r = awerbuch_shiloach(&pool, g.n(), g.edges());
            assert_eq!(r.num_components, 1);
            let bound = 4 * (32 - n.leading_zeros()) + 8;
            assert!(
                r.rounds <= bound,
                "n={n}: {} rounds exceeds bound {bound}",
                r.rounds
            );
        }
    }

    #[test]
    fn trivial_inputs() {
        let pool = Pool::new(3);
        let r = awerbuch_shiloach(&pool, 0, &[]);
        assert_eq!(r.num_components, 0);
        let r = awerbuch_shiloach(&pool, 6, &[]);
        assert_eq!(r.num_components, 6);
    }

    #[test]
    fn agrees_with_async_sv() {
        for seed in 0..4u64 {
            let g = gen::random_gnm(300, 350, seed);
            let pool = Pool::new(4);
            let a = awerbuch_shiloach(&pool, g.n(), g.edges());
            let b = crate::sv::connected_components(&pool, g.n(), g.edges());
            assert_eq!(a.num_components, b.num_components);
        }
    }
}

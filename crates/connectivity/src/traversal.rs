//! Work-stealing graph-traversal rooted spanning tree (Bader–Cong).
//!
//! The paper's TV-opt replaces the Shiloach–Vishkin spanning tree with
//! the authors' earlier "work-stealing graph-traversal spanning tree"
//! [Bader & Cong, IPDPS 2004]: every thread performs a DFS-like
//! traversal from its own sub-root, claiming vertices with CAS; idle
//! threads steal unexpanded vertices from busy ones. The result is a
//! *rooted* spanning tree (parent array) produced in one pass — merging
//! the paper's Spanning-tree and Root-tree steps.
//!
//! Expected running time O((n + m)/p) with high probability on graphs
//! whose traversal frontier stays wide.

use bcc_graph::Csr;
use bcc_smp::atomic::as_atomic_u32;
use bcc_smp::{Pool, NIL};
use crossbeam_deque::{Steal, Stealer, Worker};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Rooted spanning tree produced by the work-stealing traversal.
#[derive(Clone, Debug)]
pub struct SpanningTree {
    /// `parent[v]`; `parent[root] == root`; `NIL` if unreachable.
    pub parent: Vec<u32>,
    /// Edge id of the parent edge (index into the edge list); `NIL` for
    /// the root / unreachable vertices.
    pub parent_eid: Vec<u32>,
    /// Vertices reached.
    pub reached: u32,
}

/// Computes a rooted spanning tree of the component containing `root`
/// by parallel work-stealing traversal.
pub fn work_stealing_tree(pool: &Pool, csr: &Csr, root: u32) -> SpanningTree {
    let n = csr.n() as usize;
    let p = pool.threads();
    let mut parent = vec![NIL; n];
    let mut parent_eid = vec![NIL; n];
    if n == 0 {
        return SpanningTree {
            parent,
            parent_eid,
            reached: 0,
        };
    }
    parent[root as usize] = root;

    if p == 1 || n < 1 << 12 {
        // Sequential DFS traversal; same output contract.
        let mut stack = vec![root];
        let mut reached = 1u32;
        while let Some(v) = stack.pop() {
            for (w, eid) in csr.arcs(v) {
                if parent[w as usize] == NIL {
                    parent[w as usize] = v;
                    parent_eid[w as usize] = eid;
                    reached += 1;
                    stack.push(w);
                }
            }
        }
        return SpanningTree {
            parent,
            parent_eid,
            reached,
        };
    }

    let parent_a = as_atomic_u32(&mut parent);
    let eid_a = as_atomic_u32(&mut parent_eid);

    // Per-thread LIFO deques; each claimed vertex is pushed exactly once
    // and popped exactly once, so `expanded == claimed` signals drain.
    let workers: Vec<Worker<u32>> = (0..p).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<u32>> = workers.iter().map(Worker::stealer).collect();
    workers[0].push(root);
    let claimed = AtomicUsize::new(1);
    let expanded = AtomicUsize::new(0);

    // Hand each thread its own worker through a mutex-free slot vector.
    let slots: Vec<std::sync::Mutex<Option<Worker<u32>>>> = workers
        .into_iter()
        .map(|w| std::sync::Mutex::new(Some(w)))
        .collect();

    pool.run(|ctx| {
        let worker = slots[ctx.tid()].lock().unwrap().take().unwrap();
        let mut spins = 0u32;
        loop {
            let v = worker.pop().or_else(|| {
                // Steal round-robin starting after our own id.
                for k in 1..p {
                    let s = &stealers[(ctx.tid() + k) % p];
                    loop {
                        match s.steal() {
                            Steal::Success(v) => return Some(v),
                            Steal::Empty => break,
                            Steal::Retry => continue,
                        }
                    }
                }
                None
            });
            match v {
                Some(v) => {
                    spins = 0;
                    for (w, eid) in csr.arcs(v) {
                        if parent_a[w as usize].load(Ordering::Relaxed) == NIL
                            && parent_a[w as usize]
                                .compare_exchange(NIL, v, Ordering::AcqRel, Ordering::Acquire)
                                .is_ok()
                        {
                            eid_a[w as usize].store(eid, Ordering::Relaxed);
                            claimed.fetch_add(1, Ordering::Relaxed);
                            worker.push(w);
                        }
                    }
                    expanded.fetch_add(1, Ordering::AcqRel);
                }
                None => {
                    // Quiescent when every claimed vertex is expanded.
                    if expanded.load(Ordering::Acquire) == claimed.load(Ordering::Acquire) {
                        break;
                    }
                    bcc_smp::barrier::backoff(&mut spins);
                }
            }
        }
    });

    let reached = claimed.load(Ordering::Relaxed) as u32;
    SpanningTree {
        parent,
        parent_eid,
        reached,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::assert_valid_rooted_tree;
    use bcc_graph::{gen, GraphBuilder};

    #[test]
    fn sequential_path_small_graphs() {
        let g = gen::cycle(10);
        let csr = Csr::build(&g);
        let pool = Pool::new(1);
        let t = work_stealing_tree(&pool, &csr, 0);
        assert_eq!(t.reached, 10);
        assert_valid_rooted_tree(&g, &t.parent, 0);
    }

    #[test]
    fn parallel_spans_random_graphs() {
        let g = gen::random_connected(20_000, 60_000, 5);
        let csr = Csr::build(&g);
        for p in [2, 4, 8] {
            let pool = Pool::new(p);
            let t = work_stealing_tree(&pool, &csr, 7);
            assert_eq!(t.reached, g.n(), "p={p}");
            assert_valid_rooted_tree(&g, &t.parent, 7);
        }
    }

    #[test]
    fn parent_eids_match_edges() {
        let g = gen::random_connected(5000, 12_000, 9);
        let csr = Csr::build(&g);
        let pool = Pool::new(4);
        let t = work_stealing_tree(&pool, &csr, 0);
        for v in 1..g.n() {
            let eid = t.parent_eid[v as usize];
            assert_ne!(eid, NIL);
            let e = g.edges()[eid as usize];
            let p = t.parent[v as usize];
            assert!((e.u == v && e.v == p) || (e.v == v && e.u == p));
        }
    }

    #[test]
    fn unreachable_vertices_stay_nil() {
        let g = GraphBuilder::new(6)
            .edges([(0, 1), (1, 2), (3, 4), (4, 5)])
            .build()
            .unwrap();
        let csr = Csr::build(&g);
        let pool = Pool::new(2);
        let t = work_stealing_tree(&pool, &csr, 0);
        assert_eq!(t.reached, 3);
        assert_eq!(t.parent[3], NIL);
        assert_eq!(t.parent[5], NIL);
    }

    #[test]
    fn star_graph_contention() {
        // All vertices adjacent to the hub: maximal CAS contention.
        let g = gen::star(30_000);
        let csr = Csr::build(&g);
        let pool = Pool::new(4);
        let t = work_stealing_tree(&pool, &csr, 0);
        assert_eq!(t.reached, 30_000);
        for v in 1..30_000 {
            assert_eq!(t.parent[v as usize], 0);
        }
    }

    #[test]
    fn path_graph_serial_dependency() {
        // A long path defeats parallelism but must still be correct.
        let g = gen::path(20_000);
        let csr = Csr::build(&g);
        let pool = Pool::new(4);
        let t = work_stealing_tree(&pool, &csr, 0);
        assert_eq!(t.reached, 20_000);
        assert_valid_rooted_tree(&g, &t.parent, 0);
    }
}

//! Parallel Borůvka minimum spanning forest.
//!
//! The paper's §1 cites the authors' companion study of shared-memory
//! minimum spanning forests [4] (Bader & Cong, IPDPS 2004) among the
//! fundamental primitives of their research programme; this module is
//! that algorithm in the same SPMD style as the rest of the crate:
//! rounds of
//!
//! 1. every component finds its minimum incident edge (parallel over
//!    edges, atomic min on a packed `(weight, edge id)` key — the edge
//!    id tie-break totally orders keys, making the MSF unique and the
//!    output deterministic);
//! 2. components hook along their chosen edges, synchronously: targets
//!    are computed against frozen labels, then applied after a barrier
//!    with the classic 2-cycle breaker (the strict key order makes
//!    longer cycles impossible, so breaking mutual pairs suffices);
//! 3. pointer jumping flattens the labels.
//!
//! O(log n) rounds; each round is O(n + m) work.

use bcc_smp::atomic::as_atomic_u32;
use bcc_smp::{Pool, NIL};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// An undirected edge with a `u32` weight.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct WeightedEdge {
    /// First endpoint.
    pub u: u32,
    /// Second endpoint.
    pub v: u32,
    /// Weight.
    pub w: u32,
}

impl WeightedEdge {
    /// Creates a weighted edge.
    pub fn new(u: u32, v: u32, w: u32) -> Self {
        WeightedEdge { u, v, w }
    }
}

/// Output of [`minimum_spanning_forest`].
#[derive(Clone, Debug)]
pub struct MsfResult {
    /// Indices of the forest edges, ascending; `n - num_components`
    /// entries. Unique (hence thread-count independent) because ties
    /// break on edge index.
    pub tree_edges: Vec<u32>,
    /// Sum of the forest's weights.
    pub total_weight: u64,
    /// Connected components (isolated vertices included).
    pub num_components: u32,
    /// Borůvka rounds executed.
    pub rounds: u32,
}

const NO_KEY: u64 = u64::MAX;

/// Computes the minimum spanning forest of the weighted graph on
/// vertices `0..n`. Self loops are ignored; parallel edges are fine
/// (the cheapest, lowest-index one wins).
pub fn minimum_spanning_forest(pool: &Pool, n: u32, edges: &[WeightedEdge]) -> MsfResult {
    let n_us = n as usize;
    let m = edges.len();
    assert!(m < (1usize << 32), "edge indices must fit in u32");
    let mut label: Vec<u32> = (0..n).collect();
    let mut target = vec![NIL; n_us];
    let mut picked = vec![false; m];
    let mut rounds = 0u32;

    if n > 0 && m > 0 {
        let label_a = as_atomic_u32(&mut label);
        let target_a = as_atomic_u32(&mut target);
        let best: Vec<AtomicU64> = (0..n_us).map(|_| AtomicU64::new(NO_KEY)).collect();
        let changed = AtomicBool::new(true);
        let live = AtomicBool::new(true);
        let round_ctr = std::sync::atomic::AtomicU32::new(0);
        let picked_flags: Vec<AtomicBool> = (0..m).map(|_| AtomicBool::new(false)).collect();

        pool.run(|ctx| {
            loop {
                ctx.barrier();
                if !changed.load(Ordering::Acquire) {
                    break;
                }
                ctx.barrier();
                if ctx.is_leader() {
                    changed.store(false, Ordering::Release);
                    round_ctr.fetch_add(1, Ordering::Relaxed);
                }
                // Reset the per-root minima.
                for v in ctx.block_range(n_us) {
                    best[v].store(NO_KEY, Ordering::Relaxed);
                }
                ctx.barrier();

                // 1: each component's minimum incident edge.
                for i in ctx.block_range(m) {
                    let e = edges[i];
                    if e.u == e.v {
                        continue;
                    }
                    let ru = find(label_a, e.u);
                    let rv = find(label_a, e.v);
                    if ru == rv {
                        continue;
                    }
                    let key = ((e.w as u64) << 32) | i as u64;
                    fetch_min_u64(&best[ru as usize], key);
                    fetch_min_u64(&best[rv as usize], key);
                }
                ctx.barrier();

                // 2a: compute hook targets against the frozen labels
                // (no label writes happen in this sub-phase, so `find`
                // results are phase-1 roots for every thread).
                for r in ctx.block_range(n_us) {
                    let key = best[r].load(Ordering::Relaxed);
                    let tgt = if key == NO_KEY {
                        NIL
                    } else {
                        let i = (key & 0xFFFF_FFFF) as usize;
                        let e = edges[i];
                        let ru = find(label_a, e.u);
                        let rv = find(label_a, e.v);
                        debug_assert!(r as u32 == ru || r as u32 == rv);
                        if r as u32 == ru {
                            rv
                        } else {
                            ru
                        }
                    };
                    target_a[r].store(tgt, Ordering::Relaxed);
                }
                ctx.barrier();

                // 2b: apply hooks. Only mutual (2-cycle) picks need
                // breaking — the strict total order on keys rules out
                // longer cycles — and the mutual pair always chose the
                // same edge, so exactly one side records it.
                let mut local_changed = false;
                for r in ctx.block_range(n_us) {
                    let tgt = target_a[r].load(Ordering::Relaxed);
                    if tgt == NIL {
                        continue;
                    }
                    let mutual = target_a[tgt as usize].load(Ordering::Relaxed) == r as u32;
                    if mutual && (r as u32) < tgt {
                        continue; // the smaller root of a mutual pair stays
                    }
                    let key = best[r].load(Ordering::Relaxed);
                    let i = (key & 0xFFFF_FFFF) as usize;
                    label_a[r].store(tgt, Ordering::Relaxed);
                    picked_flags[i].store(true, Ordering::Relaxed);
                    local_changed = true;
                }
                if local_changed {
                    changed.store(true, Ordering::Release);
                }
                ctx.barrier();

                // 3: pointer jumping until flat.
                loop {
                    ctx.barrier();
                    if ctx.is_leader() {
                        live.store(false, Ordering::Release);
                    }
                    ctx.barrier();
                    let mut any = false;
                    for v in ctx.block_range(n_us) {
                        let d = label_a[v].load(Ordering::Relaxed);
                        let dd = label_a[d as usize].load(Ordering::Relaxed);
                        if d != dd {
                            label_a[v].store(dd, Ordering::Relaxed);
                            any = true;
                        }
                    }
                    if any {
                        live.store(true, Ordering::Release);
                    }
                    ctx.barrier();
                    if !live.load(Ordering::Acquire) {
                        break;
                    }
                }
            }
        });
        rounds = round_ctr.load(Ordering::Relaxed);
        for (i, f) in picked_flags.iter().enumerate() {
            picked[i] = f.load(Ordering::Relaxed);
        }
    }

    let tree_edges: Vec<u32> = (0..m as u32).filter(|&i| picked[i as usize]).collect();
    let total_weight: u64 = tree_edges.iter().map(|&i| edges[i as usize].w as u64).sum();
    let num_components = n - tree_edges.len() as u32;
    MsfResult {
        tree_edges,
        total_weight,
        num_components,
        rounds,
    }
}

#[inline]
fn find(label: &[std::sync::atomic::AtomicU32], v: u32) -> u32 {
    let mut x = v;
    loop {
        let d = label[x as usize].load(Ordering::Acquire);
        if d == x {
            return x;
        }
        x = d;
    }
}

#[inline]
fn fetch_min_u64(a: &AtomicU64, value: u64) -> bool {
    let mut cur = a.load(Ordering::Relaxed);
    while value < cur {
        match a.compare_exchange_weak(cur, value, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(seen) => cur = seen,
        }
    }
    false
}

/// Sequential Kruskal oracle (unique MSF under the same (w, index)
/// tie-break); used by the tests and available as a baseline.
pub fn kruskal(n: u32, edges: &[WeightedEdge]) -> MsfResult {
    let mut order: Vec<u32> = (0..edges.len() as u32)
        .filter(|&i| edges[i as usize].u != edges[i as usize].v)
        .collect();
    order.sort_unstable_by_key(|&i| ((edges[i as usize].w as u64) << 32) | i as u64);
    let mut parent: Vec<u32> = (0..n).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            let g = parent[parent[x as usize] as usize];
            parent[x as usize] = g;
            x = g;
        }
        x
    }
    let mut tree_edges = Vec::new();
    let mut total_weight = 0u64;
    for i in order {
        let e = edges[i as usize];
        let ru = find(&mut parent, e.u);
        let rv = find(&mut parent, e.v);
        if ru != rv {
            parent[ru.max(rv) as usize] = ru.min(rv);
            tree_edges.push(i);
            total_weight += e.w as u64;
        }
    }
    tree_edges.sort_unstable();
    let num_components = n - tree_edges.len() as u32;
    MsfResult {
        tree_edges,
        total_weight,
        num_components,
        rounds: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn random_weighted(n: u32, m: usize, seed: u64, max_w: u32) -> Vec<WeightedEdge> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..m)
            .map(|_| {
                WeightedEdge::new(
                    rng.gen_range(0..n),
                    rng.gen_range(0..n),
                    rng.gen_range(0..max_w),
                )
            })
            .collect()
    }

    #[test]
    fn hand_worked_square_with_diagonal() {
        // 0-1 (1), 1-2 (2), 2-3 (3), 3-0 (4), 0-2 (5): MSF = first three.
        let edges = vec![
            WeightedEdge::new(0, 1, 1),
            WeightedEdge::new(1, 2, 2),
            WeightedEdge::new(2, 3, 3),
            WeightedEdge::new(3, 0, 4),
            WeightedEdge::new(0, 2, 5),
        ];
        for p in [1, 4] {
            let pool = Pool::new(p);
            let r = minimum_spanning_forest(&pool, 4, &edges);
            assert_eq!(r.tree_edges, vec![0, 1, 2]);
            assert_eq!(r.total_weight, 6);
            assert_eq!(r.num_components, 1);
        }
    }

    #[test]
    fn matches_kruskal_on_random_graphs() {
        for seed in 0..8u64 {
            let n = 200;
            let edges = random_weighted(n, 700, seed, 1000);
            let want = kruskal(n, &edges);
            for p in [1, 3] {
                let pool = Pool::new(p);
                let got = minimum_spanning_forest(&pool, n, &edges);
                assert_eq!(got.tree_edges, want.tree_edges, "seed={seed} p={p}");
                assert_eq!(got.total_weight, want.total_weight);
                assert_eq!(got.num_components, want.num_components);
            }
        }
    }

    #[test]
    fn duplicate_weights_tie_break_deterministically() {
        // All weights equal: MSF must still be unique (lowest indices).
        let n = 50;
        let edges = random_weighted(n, 300, 9, 1);
        let want = kruskal(n, &edges);
        for p in [1, 4] {
            let pool = Pool::new(p);
            let got = minimum_spanning_forest(&pool, n, &edges);
            assert_eq!(got.tree_edges, want.tree_edges, "p={p}");
        }
    }

    #[test]
    fn disconnected_and_self_loops() {
        let edges = vec![
            WeightedEdge::new(0, 1, 5),
            WeightedEdge::new(2, 2, 1), // self loop: ignored
            WeightedEdge::new(3, 4, 2),
        ];
        let pool = Pool::new(2);
        let r = minimum_spanning_forest(&pool, 6, &edges);
        assert_eq!(r.tree_edges, vec![0, 2]);
        assert_eq!(r.num_components, 4); // {0,1}, {2}, {3,4}, {5}
        assert_eq!(r.total_weight, 7);
    }

    #[test]
    fn empty_inputs() {
        let pool = Pool::new(2);
        let r = minimum_spanning_forest(&pool, 0, &[]);
        assert_eq!(r.num_components, 0);
        let r = minimum_spanning_forest(&pool, 5, &[]);
        assert_eq!(r.num_components, 5);
        assert!(r.tree_edges.is_empty());
    }

    #[test]
    fn logarithmic_rounds_on_paths() {
        // A weighted path: Borůvka halves components per round.
        let n = 4096u32;
        let mut rng = StdRng::seed_from_u64(3);
        let edges: Vec<WeightedEdge> = (1..n)
            .map(|v| WeightedEdge::new(v - 1, v, rng.gen_range(0..1_000_000)))
            .collect();
        let pool = Pool::new(2);
        let r = minimum_spanning_forest(&pool, n, &edges);
        assert_eq!(r.num_components, 1);
        assert_eq!(r.tree_edges.len() as u32, n - 1);
        assert!(r.rounds <= 16, "{} rounds", r.rounds);
    }

    #[test]
    fn msf_weight_is_minimal_against_random_spanning_trees() {
        use bcc_graph::gen;
        // Any spanning tree's weight is >= the MSF's.
        let g = gen::random_connected(120, 400, 5);
        let mut rng = StdRng::seed_from_u64(7);
        let edges: Vec<WeightedEdge> = g
            .edges()
            .iter()
            .map(|e| WeightedEdge::new(e.u, e.v, rng.gen_range(1..1000)))
            .collect();
        let pool = Pool::new(2);
        let msf = minimum_spanning_forest(&pool, g.n(), &edges);
        // Compare against the BFS tree's weight.
        let csr = bcc_graph::Csr::build(&g);
        let bfs = crate::bfs::bfs_tree_seq(&csr, 0);
        let bfs_weight: u64 = bfs
            .tree_edge_ids()
            .iter()
            .map(|&i| edges[i as usize].w as u64)
            .sum();
        assert!(msf.total_weight <= bfs_weight);
    }
}

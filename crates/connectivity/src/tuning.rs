//! Ablation knobs for the two traversal hot paths.
//!
//! Both ends of every TV pipeline are traversals: the spanning-tree
//! step (a BFS for TV-filter, Shiloach–Vishkin for TV-SMP) and the
//! step-6 connected-components tail. [`TraversalTuning`] selects the
//! engineered fast variants (direction-optimizing BFS, FastSV-style
//! hooking) or the classic baselines, so `bcc-bench` can ablate the
//! rebuilt kernels against the originals cell by cell.

/// BFS frontier-expansion strategy.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum BfsStrategy {
    /// Classic level-synchronous top-down expansion only.
    TopDown,
    /// Direction-optimizing (Beamer-style) hybrid: top-down while the
    /// frontier is thin, bottom-up sweeps over unvisited vertices once
    /// the frontier's out-edges dominate the remaining graph.
    #[default]
    Hybrid,
}

/// Connected-components / spanning-forest algorithm variant.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum SvVariant {
    /// The classic synchronous graft-and-shortcut rounds (paper §3.2).
    Classic,
    /// FastSV-style rounds: hooking with in-round CAS retry, aggressive
    /// path-shortcutting during root chases, and an early exit that
    /// skips the trailing verification sweep.
    #[default]
    FastSv,
}

/// The traversal knobs threaded from `BccConfig` down to the kernels.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TraversalTuning {
    /// BFS strategy for TV-filter's spanning tree.
    pub bfs: BfsStrategy,
    /// Direction heuristic: switch top-down → bottom-up when the
    /// frontier's out-edge count exceeds `remaining_edges / alpha`
    /// (Beamer's α; higher = later switch).
    pub alpha: u32,
    /// Direction heuristic: switch bottom-up → top-down when the
    /// frontier shrinks below `n / beta` vertices (Beamer's β).
    pub beta: u32,
    /// Connectivity variant for the TV-SMP spanning tree and the shared
    /// step-6 tail.
    pub sv: SvVariant,
}

impl Default for TraversalTuning {
    fn default() -> Self {
        TraversalTuning {
            bfs: BfsStrategy::default(),
            // α = 6 measured best across the bench families: large
            // enough that the fat mid-levels still go bottom-up on
            // random graphs, small enough that spatial graphs with a
            // slowly-widening wavefront don't enter the sweep a level
            // too early (the first sweep is the expensive one — it
            // covers every vertex).
            alpha: 6,
            beta: 20,
            sv: SvVariant::default(),
        }
    }
}

impl TraversalTuning {
    /// The engineered defaults: hybrid BFS + FastSV.
    pub fn fast() -> Self {
        TraversalTuning::default()
    }

    /// Both classic baselines: top-down BFS + classic SV.
    pub fn classic() -> Self {
        TraversalTuning {
            bfs: BfsStrategy::TopDown,
            sv: SvVariant::Classic,
            ..TraversalTuning::default()
        }
    }

    /// Parses an ablation spec: `+`-joined tokens out of `topdown`,
    /// `hybrid`, `classic-sv`, `fastsv` applied on top of the defaults
    /// (`"topdown"` alone still means FastSV for connectivity; write
    /// `"topdown+classic-sv"` for the full classic configuration).
    ///
    /// ```
    /// use bcc_connectivity::{BfsStrategy, SvVariant, TraversalTuning};
    ///
    /// let t: TraversalTuning = "topdown+classic-sv".parse().unwrap();
    /// assert_eq!(t.bfs, BfsStrategy::TopDown);
    /// assert_eq!(t.sv, SvVariant::Classic);
    /// assert!("warp-speed".parse::<TraversalTuning>().is_err());
    /// ```
    pub fn parse_spec(spec: &str) -> Result<Self, String> {
        let mut t = TraversalTuning::default();
        for token in spec.split('+') {
            match token.trim() {
                "topdown" | "top-down" => t.bfs = BfsStrategy::TopDown,
                "hybrid" => t.bfs = BfsStrategy::Hybrid,
                "classic-sv" | "classic" => t.sv = SvVariant::Classic,
                "fastsv" | "fast-sv" => t.sv = SvVariant::FastSv,
                other => return Err(format!("unknown tuning token `{other}`")),
            }
        }
        Ok(t)
    }

    /// Canonical spec string (`parse_spec` round-trips it).
    pub fn spec(&self) -> String {
        format!(
            "{}+{}",
            match self.bfs {
                BfsStrategy::TopDown => "topdown",
                BfsStrategy::Hybrid => "hybrid",
            },
            match self.sv {
                SvVariant::Classic => "classic-sv",
                SvVariant::FastSv => "fastsv",
            }
        )
    }
}

impl std::str::FromStr for TraversalTuning {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        TraversalTuning::parse_spec(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_fast_variants() {
        let t = TraversalTuning::default();
        assert_eq!(t.bfs, BfsStrategy::Hybrid);
        assert_eq!(t.sv, SvVariant::FastSv);
        assert_eq!(t, TraversalTuning::fast());
    }

    #[test]
    fn spec_round_trips() {
        for spec in ["hybrid+fastsv", "topdown+classic-sv", "hybrid+classic-sv"] {
            let t = TraversalTuning::parse_spec(spec).unwrap();
            assert_eq!(t.spec(), spec);
            assert_eq!(t, t.spec().parse().unwrap());
        }
        assert_eq!(TraversalTuning::classic().spec(), "topdown+classic-sv");
    }

    #[test]
    fn partial_specs_start_from_defaults() {
        let t = TraversalTuning::parse_spec("topdown").unwrap();
        assert_eq!(t.bfs, BfsStrategy::TopDown);
        assert_eq!(t.sv, SvVariant::FastSv);
        let t = TraversalTuning::parse_spec("classic-sv").unwrap();
        assert_eq!(t.bfs, BfsStrategy::Hybrid);
        assert_eq!(t.sv, SvVariant::Classic);
    }

    #[test]
    fn unknown_tokens_rejected() {
        assert!(TraversalTuning::parse_spec("").is_err());
        assert!(TraversalTuning::parse_spec("hybrid+warp").is_err());
    }
}

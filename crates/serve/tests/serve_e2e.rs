//! End-to-end tests for the bcc-serve daemon: full spawn → submit →
//! shutdown lifecycles over every profile/mode pair, plus the
//! telemetry-sink and migration paths the unit tests exercise only in
//! isolation.

use bcc_query::{EdgeUpdate, Query};
use bcc_serve::{
    component_grid, run_workload, Daemon, Mode, Profile, ServeConfig, ShardedStore, WorkloadConfig,
};
use bcc_smp::{Pool, Telemetry};
use std::sync::Arc;
use std::time::Duration;

fn small_store(n: u32, parts: u32, shards: usize) -> Arc<ShardedStore> {
    let pool = Pool::new(2);
    let g = component_grid(n, parts, 11);
    Arc::new(ShardedStore::new(&pool, &g, shards).unwrap())
}

#[test]
fn known_queries_are_counted_and_classified() {
    let store = small_store(60, 3, 2);
    let daemon = Daemon::spawn(Arc::clone(&store), ServeConfig::default());
    // Component 0 owns 0..20, component 1 owns 20..40: three queries
    // answer true, two answer false.
    for q in [
        Query::Connected(0, 5),
        Query::Connected(1, 10),
        Query::SameBlock(0, 0),
        Query::Connected(0, 25), // cross component: false
        Query::SameBlock(5, 35), // cross component: false
    ] {
        daemon.submit_query(q).unwrap();
    }
    let report = daemon.shutdown();
    assert_eq!(report.answered, 5);
    assert_eq!(report.query_errors, 0);
    assert_eq!(report.positive, 3);
    assert_eq!(report.latency.count(), 5);
    assert_eq!(report.lag_commits.count(), 5);
    // Quiet store: every answer came from the latest epoch.
    assert_eq!(report.lag_commits.max(), 0);
}

#[test]
fn submissions_after_shutdown_are_refused() {
    let store = small_store(60, 3, 2);
    let daemon = Daemon::spawn(Arc::clone(&store), ServeConfig::default());
    daemon.submit_query(Query::Connected(0, 1)).unwrap();
    let report = daemon.shutdown();
    assert_eq!(report.answered, 1);
    // A fresh daemon on the same store works; the dead one's queues
    // are gone (shutdown consumed it), so this is about store reuse.
    let daemon = Daemon::spawn(store, ServeConfig::default());
    daemon.submit_update(EdgeUpdate::Insert(0, 1)).unwrap();
    let report = daemon.shutdown();
    assert_eq!(report.updates_applied, 1);
}

#[test]
fn every_profile_and_mode_runs_clean() {
    for profile in Profile::ALL {
        for mode in [Mode::Closed, Mode::Open { rate: 3_000.0 }] {
            let store = small_store(120, 4, 2);
            let daemon = Daemon::spawn(
                Arc::clone(&store),
                ServeConfig {
                    readers: 2,
                    batch_max: 16,
                    flush_interval: Duration::from_millis(1),
                    ..ServeConfig::default()
                },
            );
            let report = run_workload(
                daemon,
                &WorkloadConfig {
                    profile,
                    mode,
                    duration: Duration::from_millis(60),
                    parts: 4,
                    seed: 5,
                },
            );
            assert!(
                report.serve.writer_error.is_none(),
                "{} / {} writer failed",
                profile.name(),
                mode.name()
            );
            assert_eq!(report.serve.answered, report.offered_queries);
            assert_eq!(report.serve.updates_applied, report.offered_updates);
            assert!(
                report.serve.answered > 0,
                "{} answered none",
                profile.name()
            );
        }
    }
}

#[test]
fn telemetry_sink_sees_every_answer_lag() {
    let sink = Arc::new(Telemetry::new(1));
    let store = small_store(120, 4, 2);
    let daemon = Daemon::spawn(
        Arc::clone(&store),
        ServeConfig {
            readers: 2,
            telemetry: Some(Arc::clone(&sink)),
            batch_max: 4,
            flush_interval: Duration::from_micros(200),
            ..ServeConfig::default()
        },
    );
    let report = run_workload(
        daemon,
        &WorkloadConfig {
            profile: Profile::ChurnHeavy,
            mode: Mode::Closed,
            duration: Duration::from_millis(80),
            parts: 4,
            seed: 17,
        },
    );
    let snap = sink.snapshot();
    assert_eq!(snap.snapshot_lag_samples, report.serve.answered);
    // Sink and report describe the same distribution.
    assert_eq!(
        snap.snapshot_lag_commits_max,
        report.serve.lag_commits.max()
    );
    assert!(snap.snapshot_lag_mean_wall() > Duration::ZERO);
}

#[test]
fn cross_shard_churn_migrates_and_stays_correct() {
    // Two components, one per shard; the writer repeatedly links and
    // unlinks them through the daemon while readers hammer queries.
    let pool = Pool::new(2);
    let g = component_grid(40, 2, 3);
    let store = Arc::new(ShardedStore::new(&pool, &g, 2).unwrap());
    assert_ne!(store.shard_of(0), store.shard_of(20));
    let daemon = Daemon::spawn(
        Arc::clone(&store),
        ServeConfig {
            readers: 2,
            batch_max: 1, // every update commits immediately
            ..ServeConfig::default()
        },
    );
    for round in 0..10 {
        daemon
            .submit_update(if round % 2 == 0 {
                EdgeUpdate::Insert(0, 20)
            } else {
                EdgeUpdate::Remove(0, 20)
            })
            .unwrap();
        for _ in 0..20 {
            daemon.submit_query(Query::Connected(0, 25)).unwrap();
            daemon.submit_query(Query::SameBlock(3, 8)).unwrap();
        }
    }
    let report = daemon.shutdown();
    assert!(report.writer_error.is_none());
    assert_eq!(report.answered, 400);
    assert!(report.migrations >= 1, "no migration happened");
    // Settled state (last update was a removal): disconnected again,
    // and both components live in the once-receiving shard.
    assert!(!store.answer(&Query::Connected(0, 25)).unwrap().as_bool());
    assert_eq!(store.shard_of(0), store.shard_of(20));
}

//! End-to-end tests for the bcc-serve daemon: full spawn → submit →
//! shutdown lifecycles over every profile/mode pair, the telemetry
//! and migration paths, both writer topologies, admission-control
//! shedding, and the TCP front-end — all through the typed
//! [`Request`] / [`Response`] surface.

use bcc_query::{EdgeUpdate, Query};
use bcc_serve::{
    component_grid, run_net_workload, run_workload, Admission, Daemon, Mode, NetClient,
    NetFrontend, Profile, RejectReason, Request, Response, ServeConfig, ShardedStore, SubmitError,
    WorkloadConfig, Writers,
};
use bcc_smp::{Pool, Telemetry};
use std::sync::Arc;
use std::time::Duration;

fn small_store(n: u32, parts: u32, shards: usize) -> Arc<ShardedStore> {
    let pool = Pool::new(2);
    let g = component_grid(n, parts, 11);
    Arc::new(ShardedStore::new(&pool, &g, shards).unwrap())
}

fn query(q: Query) -> Request {
    Request::Query { id: 0, query: q }
}

fn update(u: EdgeUpdate) -> Request {
    Request::Update { id: 0, update: u }
}

#[test]
fn known_queries_are_counted_and_classified() {
    let store = small_store(60, 3, 2);
    let daemon = Daemon::spawn(Arc::clone(&store), ServeConfig::default());
    // Component 0 owns 0..20, component 1 owns 20..40: three queries
    // answer true, two answer false.
    for q in [
        Query::Connected(0, 5),
        Query::Connected(1, 10),
        Query::SameBlock(0, 0),
        Query::Connected(0, 25), // cross component: false
        Query::SameBlock(5, 35), // cross component: false
    ] {
        daemon.submit(query(q)).unwrap();
    }
    let report = daemon.shutdown();
    assert_eq!(report.answered, 5);
    assert_eq!(report.query_errors, 0);
    assert_eq!(report.positive, 3);
    assert_eq!(report.latency.count(), 5);
    assert_eq!(report.lag_commits.count(), 5);
    // Quiet store: every answer came from the latest epoch.
    assert_eq!(report.lag_commits.max(), 0);
}

#[test]
fn submissions_after_shutdown_are_refused() {
    let store = small_store(60, 3, 2);
    let daemon = Daemon::spawn(Arc::clone(&store), ServeConfig::default());
    daemon.submit(query(Query::Connected(0, 1))).unwrap();
    let report = daemon.shutdown();
    assert_eq!(report.answered, 1);
    // A fresh daemon on the same store works; the dead one's queues
    // are gone (shutdown consumed it), so this is about store reuse.
    let daemon = Daemon::spawn(store, ServeConfig::default());
    daemon.submit(update(EdgeUpdate::Insert(0, 1))).unwrap();
    let report = daemon.shutdown();
    assert_eq!(report.updates_applied, 1);
}

#[test]
fn out_of_range_updates_are_invalid_at_submit() {
    let store = small_store(60, 3, 2);
    let daemon = Daemon::spawn(store, ServeConfig::default());
    let req = update(EdgeUpdate::Insert(0, 10_000));
    match daemon.submit(req) {
        Err(SubmitError::Invalid(r)) => assert_eq!(r, req),
        other => panic!("expected Invalid, got {other:?}"),
    }
    let report = daemon.shutdown();
    assert_eq!(report.updates_applied, 0);
    assert_eq!(report.shed_updates, 0);
}

#[test]
fn every_profile_and_mode_runs_clean() {
    for writers in [Writers::Single, Writers::PerShard] {
        for profile in Profile::ALL {
            for mode in [Mode::Closed, Mode::Open { rate: 3_000.0 }] {
                let store = small_store(120, 4, 2);
                let daemon = Daemon::spawn(
                    Arc::clone(&store),
                    ServeConfig::builder()
                        .readers(2)
                        .batch_max(16)
                        .flush_interval(Duration::from_millis(1))
                        .writers(writers)
                        .build(),
                );
                let report = run_workload(
                    daemon,
                    &WorkloadConfig {
                        profile,
                        mode,
                        duration: Duration::from_millis(60),
                        parts: 4,
                        seed: 5,
                    },
                );
                assert!(
                    report.serve.writer_error.is_none(),
                    "{} / {} / {} writer failed",
                    writers.name(),
                    profile.name(),
                    mode.name()
                );
                assert_eq!(report.serve.answered, report.offered_queries);
                assert_eq!(report.serve.updates_applied, report.offered_updates);
                assert!(
                    report.serve.answered > 0,
                    "{} answered none",
                    profile.name()
                );
                let expected_threads = match writers {
                    Writers::Single => 1,
                    Writers::PerShard => 2,
                };
                assert_eq!(report.serve.writer_threads, expected_threads);
            }
        }
    }
}

#[test]
fn telemetry_sink_sees_every_answer_lag() {
    let sink = Arc::new(Telemetry::new(1));
    let store = small_store(120, 4, 2);
    let daemon = Daemon::spawn(
        Arc::clone(&store),
        ServeConfig::builder()
            .readers(2)
            .telemetry(Arc::clone(&sink))
            .batch_max(4)
            .flush_interval(Duration::from_micros(200))
            .build(),
    );
    let report = run_workload(
        daemon,
        &WorkloadConfig {
            profile: Profile::ChurnHeavy,
            mode: Mode::Closed,
            duration: Duration::from_millis(80),
            parts: 4,
            seed: 17,
        },
    );
    let snap = sink.snapshot();
    assert_eq!(snap.snapshot_lag_samples, report.serve.answered);
    // Sink and report describe the same distribution.
    assert_eq!(
        snap.snapshot_lag_commits_max,
        report.serve.lag_commits.max()
    );
    assert!(snap.snapshot_lag_mean_wall() > Duration::ZERO);
}

#[test]
fn cross_shard_churn_migrates_and_stays_correct() {
    // Two components, one per shard; the writers repeatedly link and
    // unlink them through the daemon while readers hammer queries.
    let pool = Pool::new(2);
    let g = component_grid(40, 2, 3);
    let store = Arc::new(ShardedStore::new(&pool, &g, 2).unwrap());
    assert_ne!(store.shard_of(0), store.shard_of(20));
    let daemon = Daemon::spawn(
        Arc::clone(&store),
        ServeConfig::builder()
            .readers(2)
            .batch_max(1) // every update commits immediately
            .build(),
    );
    for round in 0..10 {
        daemon
            .submit(update(if round % 2 == 0 {
                EdgeUpdate::Insert(0, 20)
            } else {
                EdgeUpdate::Remove(0, 20)
            }))
            .unwrap();
        for _ in 0..20 {
            daemon.submit(query(Query::Connected(0, 25))).unwrap();
            daemon.submit(query(Query::SameBlock(3, 8))).unwrap();
        }
    }
    let report = daemon.shutdown();
    assert!(report.writer_error.is_none());
    assert_eq!(report.answered, 400);
    assert!(report.migrations >= 1, "no migration happened");
    // Settled state (last update was a removal): disconnected again,
    // and both components live in the once-receiving shard.
    assert!(!store.answer(&Query::Connected(0, 25)).unwrap().as_bool());
    assert_eq!(store.shard_of(0), store.shard_of(20));
}

#[test]
fn per_shard_writers_attribute_commits_to_their_shard() {
    // Updates confined to each shard's components must show up in that
    // shard's commit-latency histogram and nowhere else.
    let store = small_store(120, 4, 2);
    let daemon = Daemon::spawn(
        Arc::clone(&store),
        ServeConfig::builder().batch_max(1).build(),
    );
    // Pick two components that landed in different shards (greedy
    // balancing fills both shards, but which components pair up
    // depends on label order — probe instead of assuming).
    let a = 0u32;
    let b = (1..4)
        .map(|c| c * 30)
        .find(|&v| store.shard_of(v) != store.shard_of(a))
        .expect("two shards over four components must both be populated");
    for _ in 0..5 {
        daemon.submit(update(EdgeUpdate::Insert(a, a + 2))).unwrap();
        daemon.submit(update(EdgeUpdate::Insert(b, b + 2))).unwrap();
    }
    let report = daemon.shutdown();
    assert!(report.writer_error.is_none());
    assert_eq!(report.updates_applied, 10);
    assert_eq!(report.writer_threads, 2);
    let counts: Vec<u64> = report
        .shard_commit_latency
        .iter()
        .map(|h| h.count())
        .collect();
    assert_eq!(counts.len(), 2);
    assert!(
        counts.iter().all(|&c| c > 0),
        "both shards should commit: {counts:?}"
    );
    assert_eq!(report.commit_latency.count(), report.commits);
}

#[test]
fn overload_sheds_updates_with_typed_rejections_in_process() {
    let store = small_store(120, 4, 2);
    // Degenerate watermark: a backlog of 0 sheds every update before
    // it queues, making the contract deterministic.
    let daemon = Daemon::spawn(
        Arc::clone(&store),
        ServeConfig::builder()
            .admission(Admission {
                shed_queue_depth: None,
                shed_backlog: Some(0),
            })
            .build(),
    );
    let req = update(EdgeUpdate::Insert(0, 5));
    for _ in 0..7 {
        match daemon.submit(req) {
            Err(SubmitError::Overloaded(r)) => assert_eq!(r, req),
            other => panic!("expected Overloaded, got {other:?}"),
        }
    }
    assert_eq!(daemon.shed_updates(), 7);
    // Queries are never shed by the update watermarks.
    daemon.submit(query(Query::Connected(0, 1))).unwrap();
    let report = daemon.shutdown();
    assert_eq!(report.shed_updates, 7);
    assert_eq!(report.updates_applied, 0);
    assert_eq!(report.answered, 1);
}

#[test]
fn shed_counts_flow_into_the_telemetry_sink() {
    let sink = Arc::new(Telemetry::new(1));
    let store = small_store(60, 3, 2);
    let daemon = Daemon::spawn(
        store,
        ServeConfig::builder()
            .telemetry(Arc::clone(&sink))
            .admission(Admission {
                shed_queue_depth: None,
                shed_backlog: Some(0),
            })
            .build(),
    );
    for _ in 0..3 {
        let _ = daemon.submit(update(EdgeUpdate::Insert(0, 5)));
    }
    daemon.shutdown();
    assert_eq!(sink.snapshot().sheds, 3);
}

#[test]
fn tcp_round_trip_matches_in_process_answers() {
    let store = small_store(120, 4, 2);
    let daemon = Daemon::spawn(Arc::clone(&store), ServeConfig::default());
    let frontend = NetFrontend::spawn(daemon, "127.0.0.1:0").unwrap();
    let mut client = NetClient::connect(frontend.local_addr()).unwrap();
    // The socket path and the store must agree on every answer.
    for (id, q) in [
        Query::Connected(0, 5),
        Query::Connected(0, 45),
        Query::SameBlock(3, 8),
        Query::IsArticulation(1),
        Query::VertexCutBetween(0, 9),
    ]
    .into_iter()
    .enumerate()
    {
        let resp = client
            .call(&Request::Query {
                id: id as u64,
                query: q,
            })
            .unwrap();
        let expect = store.answer(&q).unwrap();
        assert_eq!(
            resp,
            Response::Answer {
                id: id as u64,
                answer: expect
            }
        );
    }
    let resp = client
        .call(&Request::Update {
            id: 99,
            update: EdgeUpdate::Insert(0, 9),
        })
        .unwrap();
    assert_eq!(resp, Response::Accepted { id: 99 });
    drop(client);
    let report = frontend.shutdown();
    assert_eq!(report.answered, 5);
    assert_eq!(report.updates_applied, 1);
}

#[test]
fn open_loop_tcp_workload_accounts_for_every_request() {
    let store = small_store(120, 4, 2);
    let daemon = Daemon::spawn(
        store,
        ServeConfig::builder()
            .readers(2)
            .batch_max(16)
            .flush_interval(Duration::from_millis(1))
            .build(),
    );
    let frontend = NetFrontend::spawn(daemon, "127.0.0.1:0").unwrap();
    let report = run_net_workload(
        frontend.local_addr(),
        &WorkloadConfig {
            profile: Profile::ChurnHeavy,
            mode: Mode::Open { rate: 3_000.0 },
            duration: Duration::from_millis(120),
            parts: 4,
            seed: 7,
        },
        120,
    )
    .unwrap();
    let offered = report.offered_queries + report.offered_updates;
    assert!(offered > 0);
    assert_eq!(
        report.answered + report.accepted + report.shed + report.rejected_other,
        offered,
        "every request must get exactly one response"
    );
    assert_eq!(report.latency.count(), offered);
    let serve = frontend.shutdown();
    assert_eq!(serve.answered, report.answered);
    assert_eq!(serve.updates_applied, report.accepted);
}

#[test]
fn overloaded_daemon_sheds_over_tcp_while_reads_flow() {
    let store = small_store(120, 4, 2);
    let daemon = Daemon::spawn(
        store,
        ServeConfig::builder()
            .admission(Admission {
                shed_queue_depth: None,
                shed_backlog: Some(0),
            })
            .build(),
    );
    let frontend = NetFrontend::spawn(daemon, "127.0.0.1:0").unwrap();
    let mut client = NetClient::connect(frontend.local_addr()).unwrap();
    for id in 0..4 {
        let resp = client
            .call(&Request::Update {
                id,
                update: EdgeUpdate::Insert(0, 5),
            })
            .unwrap();
        assert_eq!(
            resp,
            Response::Rejected {
                id,
                reason: RejectReason::Overloaded
            }
        );
        // Reads keep answering while update load sheds.
        let resp = client
            .call(&Request::Query {
                id: 100 + id,
                query: Query::Connected(0, 5),
            })
            .unwrap();
        assert!(matches!(resp, Response::Answer { .. }));
    }
    drop(client);
    let report = frontend.shutdown();
    assert_eq!(report.shed_updates, 4);
    assert_eq!(report.answered, 4);
    assert_eq!(report.updates_applied, 0);
}

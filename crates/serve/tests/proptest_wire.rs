//! Property tests for the serve wire protocol: every [`Request`] /
//! [`Response`] the type system can express must survive the codec
//! byte-for-byte, and every way a frame can be damaged — truncation at
//! any byte, an oversized length prefix, trailing garbage, flipped
//! discriminants — must come back as a typed [`WireError`], never a
//! panic, a hang, or a silently wrong value (mirroring the `.bccsr`
//! corruption tests in `bcc-graph`).

use bcc_query::Failure;
use bcc_query::{Answer, EdgeUpdate, Query};
use bcc_serve::wire;
use bcc_serve::{RejectReason, Request, Response, WireError, MAX_FRAME};
use proptest::prelude::*;

/// An arbitrary query: variant picked by `pick`, vertices unbounded
/// u32s (the codec is layout-agnostic; range checks live in the store).
fn query(pick: u8, u: u32, v: u32) -> Query {
    match pick % 7 {
        0 => Query::Connected(u, v),
        1 => Query::SameBlock(u, v),
        2 => Query::IsArticulation(u),
        3 => Query::IsBridge(u, v),
        4 => Query::VertexCutBetween(u, v),
        5 => Query::SurvivesFailure(u, v, Failure::Vertex(u.wrapping_add(v))),
        _ => Query::SurvivesFailure(u, v, Failure::Edge(v, u)),
    }
}

fn request(pick: u8, id: u64, u: u32, v: u32) -> Request {
    match pick % 9 {
        7 => Request::Update {
            id,
            update: EdgeUpdate::Insert(u, v),
        },
        8 => Request::Update {
            id,
            update: EdgeUpdate::Remove(u, v),
        },
        p => Request::Query {
            id,
            query: query(p, u, v),
        },
    }
}

fn response(pick: u8, id: u64, flag: bool, cut: &[u32]) -> Response {
    match pick % 7 {
        0 => Response::Answer {
            id,
            answer: Answer::Bool(flag),
        },
        1 => Response::Answer {
            id,
            answer: Answer::Vertices(cut.to_vec()),
        },
        2 => Response::Accepted { id },
        3 => Response::Rejected {
            id,
            reason: RejectReason::QueueFull,
        },
        4 => Response::Rejected {
            id,
            reason: RejectReason::Overloaded,
        },
        5 => Response::Rejected {
            id,
            reason: RejectReason::ShuttingDown,
        },
        _ => Response::Rejected {
            id,
            reason: RejectReason::Invalid,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_request_round_trips(
        pick in 0u8..9,
        id in proptest::arbitrary::any::<u64>(),
        u in proptest::arbitrary::any::<u32>(),
        v in proptest::arbitrary::any::<u32>(),
    ) {
        let req = request(pick, id, u, v);
        let mut buf = Vec::new();
        wire::encode_request(&req, &mut buf);
        prop_assert_eq!(wire::decode_request(&buf).unwrap(), req);

        // And through a framed stream.
        let mut framed = Vec::new();
        wire::write_request(&mut framed, &req).unwrap();
        prop_assert_eq!(wire::read_request(&mut framed.as_slice()).unwrap(), Some(req));
    }

    #[test]
    fn any_response_round_trips(
        pick in 0u8..7,
        id in proptest::arbitrary::any::<u64>(),
        flag in proptest::arbitrary::any::<bool>(),
        cut in proptest::collection::vec(proptest::arbitrary::any::<u32>(), 0..50),
    ) {
        let resp = response(pick, id, flag, &cut);
        let mut buf = Vec::new();
        wire::encode_response(&resp, &mut buf);
        prop_assert_eq!(wire::decode_response(&buf).unwrap(), resp.clone());

        let mut framed = Vec::new();
        wire::write_response(&mut framed, &resp).unwrap();
        prop_assert_eq!(wire::read_response(&mut framed.as_slice()).unwrap(), Some(resp));
    }

    #[test]
    fn truncating_a_request_payload_anywhere_is_a_typed_error(
        pick in 0u8..9,
        id in proptest::arbitrary::any::<u64>(),
        u in proptest::arbitrary::any::<u32>(),
        v in proptest::arbitrary::any::<u32>(),
        cut_ppm in 0u32..1000,
    ) {
        let req = request(pick, id, u, v);
        let mut buf = Vec::new();
        wire::encode_request(&req, &mut buf);
        let cut = (buf.len() - 1) * cut_ppm as usize / 1000;
        // Every strict prefix must fail decoding — a request that
        // still decodes from fewer bytes would mean trailing fields
        // are silently optional.
        let err = wire::decode_request(&buf[..cut]).unwrap_err();
        prop_assert!(
            matches!(err, WireError::TruncatedPayload),
            "cut at {cut}: {err:?}"
        );
    }

    #[test]
    fn truncating_a_framed_stream_anywhere_is_a_typed_error(
        pick in 0u8..7,
        id in proptest::arbitrary::any::<u64>(),
        flag in proptest::arbitrary::any::<bool>(),
        cut in proptest::collection::vec(proptest::arbitrary::any::<u32>(), 0..20),
        cut_ppm in 0u32..1000,
    ) {
        let resp = response(pick, id, flag, &cut);
        let mut framed = Vec::new();
        wire::write_response(&mut framed, &resp).unwrap();
        let cut_at = 1 + (framed.len() - 2) * cut_ppm as usize / 1000;
        // Cutting mid-frame (header or payload) is TruncatedFrame at
        // the stream layer; a clean EOF before any byte is Ok(None),
        // exercised in the unit tests.
        let err = wire::read_response(&mut &framed[..cut_at]).unwrap_err();
        prop_assert!(
            matches!(err, WireError::TruncatedFrame),
            "cut at {cut_at}/{}: {err:?}", framed.len()
        );
    }

    #[test]
    fn trailing_garbage_is_a_typed_error(
        pick in 0u8..9,
        id in proptest::arbitrary::any::<u64>(),
        u in proptest::arbitrary::any::<u32>(),
        v in proptest::arbitrary::any::<u32>(),
        extra in proptest::collection::vec(0u8..255, 1..16),
    ) {
        let req = request(pick, id, u, v);
        let mut buf = Vec::new();
        wire::encode_request(&req, &mut buf);
        buf.extend_from_slice(&extra);
        prop_assert!(matches!(
            wire::decode_request(&buf).unwrap_err(),
            WireError::TrailingBytes(n) if n == extra.len()
        ));
    }

    #[test]
    fn unknown_tags_and_oversized_lengths_are_typed_errors(
        bad_tag in 0x20u8..0x80,
        id in proptest::arbitrary::any::<u64>(),
        over in (MAX_FRAME as u32 + 1)..u32::MAX,
    ) {
        // Tags in [0x20, 0x80) are unassigned request space.
        let mut buf = vec![bad_tag];
        buf.extend_from_slice(&id.to_le_bytes());
        prop_assert!(matches!(
            wire::decode_request(&buf).unwrap_err(),
            WireError::UnknownTag(t) if t == bad_tag
        ));

        // A length prefix beyond MAX_FRAME is refused before any
        // allocation or payload read.
        let mut stream = Vec::new();
        stream.extend_from_slice(&over.to_le_bytes());
        stream.extend_from_slice(&[0u8; 16]);
        prop_assert!(matches!(
            wire::read_frame(&mut stream.as_slice()).unwrap_err(),
            WireError::Oversized { len } if len == over
        ));
    }

    #[test]
    fn vertices_count_is_validated_before_allocation(
        id in proptest::arbitrary::any::<u64>(),
        claimed in 100u32..u32::MAX,
        actual in 0usize..8,
    ) {
        // An Answer::Vertices frame claiming more entries than the
        // payload holds must fail as truncated, not allocate `claimed`
        // slots and crash.
        let mut buf = vec![0x82]; // TAG_ANSWER_VERTICES
        buf.extend_from_slice(&id.to_le_bytes());
        buf.extend_from_slice(&claimed.to_le_bytes());
        for k in 0..actual {
            buf.extend_from_slice(&(k as u32).to_le_bytes());
        }
        prop_assert!(matches!(
            wire::decode_response(&buf).unwrap_err(),
            WireError::TruncatedPayload
        ));
    }
}

//! `bcc-serve` — run the sharded biconnectivity daemon under a
//! configurable workload and print its SLO numbers, or expose it on a
//! TCP socket for `bcc-serve-client` to drive.
//!
//! ```text
//! bcc-serve [--n 50000] [--parts 16] [--shards 4] [--readers 2]
//!           [--graph <path>]
//!           [--profile read-heavy|churn-heavy|hot-component|update-storm]
//!           [--mode closed|open] [--rate 50000] [--secs 2]
//!           [--batch 64] [--flush-ms 2] [--seed 42]
//!           [--writers single|per-shard]
//!           [--shed-depth N] [--shed-backlog N]
//!           [--listen ADDR]
//! ```
//!
//! By default the daemon serves a generated multi-component instance;
//! `--graph` loads a real dataset instead (text edge list or mmap-ready
//! `.bccsr`, sniffed by `bcc_graph::io::load`), with `--parts` still
//! shaping how the workload spreads its queries and updates across
//! vertex ranges.
//!
//! With `--listen ADDR` the in-process workload driver is skipped:
//! the daemon binds `ADDR` (use port 0 for an ephemeral port; the
//! bound address is printed on stdout as `listening ADDR n N`), serves
//! the wire protocol until `--secs` elapses — or, with `--secs 0`,
//! until stdin reaches EOF so a parent process can manage the
//! lifetime — then shuts down and prints the same report.

use bcc_serve::{
    component_grid, run_workload, Admission, Daemon, Mode, NetFrontend, Profile, ServeConfig,
    ServeReport, ShardedStore, WorkloadConfig, Writers,
};
use bcc_smp::Pool;
use std::io::Read;
use std::sync::Arc;
use std::time::Duration;

fn parse<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn parse_opt<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn print_report(s: &ServeReport) {
    println!(
        "latency    p50 {:?}  p99 {:?}  p999 {:?}  max {:?}",
        s.latency.quantile_duration(0.50),
        s.latency.quantile_duration(0.99),
        s.latency.quantile_duration(0.999),
        Duration::from_nanos(s.latency.max()),
    );
    println!(
        "snapshot lag  p50 {} / p99 {} commits behind; age p99 {:?}",
        s.lag_commits.quantile(0.50),
        s.lag_commits.quantile(0.99),
        s.lag_wall.quantile_duration(0.99),
    );
    println!(
        "writers[{}]: {} updates in {} commits ({} migrations, {} shed), commit p99 {:?}",
        s.writer_threads,
        s.updates_applied,
        s.commits,
        s.migrations,
        s.shed_updates,
        s.commit_latency.quantile_duration(0.99),
    );
    for (i, h) in s.shard_commit_latency.iter().enumerate() {
        if h.count() > 0 {
            println!(
                "  shard {i}: {} commits, p50 {:?}  p99 {:?}",
                h.count(),
                h.quantile_duration(0.50),
                h.quantile_duration(0.99),
            );
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "bcc-serve: sharded biconnectivity query daemon\n\
             --n N          vertices (default 50000)\n\
             --parts K      components in the instance (default 16)\n\
             --graph PATH   serve a graph file (text or .bccsr) instead\n\
             --shards S     store shards (default 4)\n\
             --readers R    reader threads (default 2)\n\
             --profile P    read-heavy | churn-heavy | hot-component | update-storm\n\
             --mode M       closed | open (default open)\n\
             --rate Q       open-loop arrivals/sec (default 50000)\n\
             --secs T       drive duration in seconds (default 2)\n\
             --batch B      writer group-commit size (default 64)\n\
             --flush-ms F   writer flush interval (default 2)\n\
             --seed X       instance + workload seed (default 42)\n\
             --writers W    single | per-shard (default per-shard)\n\
             --shed-depth N   shed updates once a writer queue holds N\n\
             --shed-backlog N shed updates once N are uncommitted\n\
             --listen ADDR  serve the wire protocol on ADDR instead of\n\
                            driving an in-process workload (port 0 for\n\
                            ephemeral; --secs 0 serves until stdin EOF)"
        );
        return;
    }
    let n: u32 = parse(&args, "--n", 50_000);
    let parts: u32 = parse(&args, "--parts", 16);
    let shards: usize = parse(&args, "--shards", 4);
    let readers: usize = parse(&args, "--readers", 2);
    let profile = match parse(&args, "--profile", "read-heavy".to_string()).as_str() {
        "churn-heavy" => Profile::ChurnHeavy,
        "hot-component" => Profile::HotComponent,
        "update-storm" => Profile::UpdateStorm,
        _ => Profile::ReadHeavy,
    };
    let mode = match parse(&args, "--mode", "open".to_string()).as_str() {
        "closed" => Mode::Closed,
        _ => Mode::Open {
            rate: parse(&args, "--rate", 50_000.0),
        },
    };
    let secs: f64 = parse(&args, "--secs", 2.0);
    let batch_max: usize = parse(&args, "--batch", 64);
    let flush_ms: u64 = parse(&args, "--flush-ms", 2);
    let seed: u64 = parse(&args, "--seed", 42);
    let writers = match parse(&args, "--writers", "per-shard".to_string()).as_str() {
        "single" => Writers::Single,
        _ => Writers::PerShard,
    };
    let admission = Admission {
        shed_queue_depth: parse_opt(&args, "--shed-depth"),
        shed_backlog: parse_opt(&args, "--shed-backlog"),
    };
    let listen: Option<String> = parse_opt(&args, "--listen");
    let graph_path = args
        .iter()
        .position(|a| a == "--graph")
        .and_then(|i| args.get(i + 1))
        .cloned();

    // A real dataset (`--graph`) replaces the generated instance; the
    // workload still spreads itself over `--parts` vertex ranges.
    let g = match &graph_path {
        Some(path) => bcc_graph::io::load(path).unwrap_or_else(|e| {
            eprintln!("bcc-serve: {path}: {e}");
            std::process::exit(2);
        }),
        None => component_grid(n, parts, seed),
    };
    let n = g.n();
    let pool = Pool::new(readers.max(2));
    let store = Arc::new(ShardedStore::new(&pool, &g, shards).expect("seed build"));
    let config = ServeConfig::builder()
        .readers(readers)
        .batch_max(batch_max)
        .flush_interval(Duration::from_millis(flush_ms))
        .writers(writers)
        .admission(admission)
        .build();
    let daemon = Daemon::spawn(Arc::clone(&store), config);

    if let Some(addr) = listen {
        let frontend = NetFrontend::spawn(daemon, addr.as_str()).unwrap_or_else(|e| {
            eprintln!("bcc-serve: bind {addr}: {e}");
            std::process::exit(2);
        });
        // Machine-readable: clients parse the bound address and the
        // vertex count (the workload generator needs the layout).
        println!("listening {} n {n}", frontend.local_addr());
        if secs > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(secs));
        } else {
            // Serve until whoever spawned us closes our stdin.
            let mut sink = Vec::new();
            let _ = std::io::stdin().read_to_end(&mut sink);
        }
        let report = frontend.shutdown();
        if let Some(e) = &report.writer_error {
            eprintln!("writer error: {e}");
            std::process::exit(1);
        }
        println!(
            "served {} answers, {} update commits over TCP",
            report.answered, report.updates_applied
        );
        print_report(&report);
        return;
    }

    println!(
        "instance: {}n = {n}, {parts} components, {shards} shards; \
         {readers} readers, {} writer(s), profile {}, mode {}",
        graph_path
            .as_deref()
            .map(|p| format!("{p}, "))
            .unwrap_or_default(),
        writers.name(),
        profile.name(),
        mode.name()
    );
    let report = run_workload(
        daemon,
        &WorkloadConfig {
            profile,
            mode,
            duration: Duration::from_secs_f64(secs),
            parts,
            seed,
        },
    );

    if let Some(e) = &report.serve.writer_error {
        eprintln!("writer error: {e}");
        std::process::exit(1);
    }
    println!(
        "drove {} queries + {} updates in {:?} ({:.0} answered queries/s)",
        report.offered_queries,
        report.offered_updates,
        report.wall,
        report.queries_per_sec()
    );
    print_report(&report.serve);
}

//! `bcc-serve` — run the sharded biconnectivity daemon under a
//! configurable workload and print its SLO numbers.
//!
//! ```text
//! bcc-serve [--n 50000] [--parts 16] [--shards 4] [--readers 2]
//!           [--graph <path>]
//!           [--profile read-heavy|churn-heavy|hot-component]
//!           [--mode closed|open] [--rate 50000] [--secs 2]
//!           [--batch 64] [--flush-ms 2] [--seed 42]
//! ```
//!
//! By default the daemon serves a generated multi-component instance;
//! `--graph` loads a real dataset instead (text edge list or mmap-ready
//! `.bccsr`, sniffed by `bcc_graph::io::load`), with `--parts` still
//! shaping how the workload spreads its queries and updates across
//! vertex ranges.

use bcc_serve::{
    component_grid, run_workload, Daemon, Mode, Profile, ServeConfig, ShardedStore, WorkloadConfig,
};
use bcc_smp::Pool;
use std::sync::Arc;
use std::time::Duration;

fn parse<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "bcc-serve: sharded biconnectivity query daemon\n\
             --n N          vertices (default 50000)\n\
             --parts K      components in the instance (default 16)\n\
             --graph PATH   serve a graph file (text or .bccsr) instead\n\
             --shards S     store shards (default 4)\n\
             --readers R    reader threads (default 2)\n\
             --profile P    read-heavy | churn-heavy | hot-component\n\
             --mode M       closed | open (default open)\n\
             --rate Q       open-loop arrivals/sec (default 50000)\n\
             --secs T       drive duration in seconds (default 2)\n\
             --batch B      writer group-commit size (default 64)\n\
             --flush-ms F   writer flush interval (default 2)\n\
             --seed X       instance + workload seed (default 42)"
        );
        return;
    }
    let n: u32 = parse(&args, "--n", 50_000);
    let parts: u32 = parse(&args, "--parts", 16);
    let shards: usize = parse(&args, "--shards", 4);
    let readers: usize = parse(&args, "--readers", 2);
    let profile = match parse(&args, "--profile", "read-heavy".to_string()).as_str() {
        "churn-heavy" => Profile::ChurnHeavy,
        "hot-component" => Profile::HotComponent,
        _ => Profile::ReadHeavy,
    };
    let mode = match parse(&args, "--mode", "open".to_string()).as_str() {
        "closed" => Mode::Closed,
        _ => Mode::Open {
            rate: parse(&args, "--rate", 50_000.0),
        },
    };
    let secs: f64 = parse(&args, "--secs", 2.0);
    let batch_max: usize = parse(&args, "--batch", 64);
    let flush_ms: u64 = parse(&args, "--flush-ms", 2);
    let seed: u64 = parse(&args, "--seed", 42);
    let graph_path = args
        .iter()
        .position(|a| a == "--graph")
        .and_then(|i| args.get(i + 1))
        .cloned();

    // A real dataset (`--graph`) replaces the generated instance; the
    // workload still spreads itself over `--parts` vertex ranges.
    let g = match &graph_path {
        Some(path) => bcc_graph::io::load(path).unwrap_or_else(|e| {
            eprintln!("bcc-serve: {path}: {e}");
            std::process::exit(2);
        }),
        None => component_grid(n, parts, seed),
    };
    let n = g.n();
    println!(
        "instance: {}n = {n}, {parts} components, {shards} shards; \
         {readers} readers, profile {}, mode {}",
        graph_path
            .as_deref()
            .map(|p| format!("{p}, "))
            .unwrap_or_default(),
        profile.name(),
        mode.name()
    );
    let pool = Pool::new(readers.max(2));
    let store = Arc::new(ShardedStore::new(&pool, &g, shards).expect("seed build"));
    let daemon = Daemon::spawn(
        Arc::clone(&store),
        ServeConfig {
            readers,
            batch_max,
            flush_interval: Duration::from_millis(flush_ms),
            ..ServeConfig::default()
        },
    );
    let report = run_workload(
        daemon,
        &WorkloadConfig {
            profile,
            mode,
            duration: Duration::from_secs_f64(secs),
            parts,
            seed,
        },
    );

    if let Some(e) = &report.serve.writer_error {
        eprintln!("writer error: {e}");
        std::process::exit(1);
    }
    let s = &report.serve;
    println!(
        "drove {} queries + {} updates in {:?} ({:.0} answered queries/s)",
        report.offered_queries,
        report.offered_updates,
        report.wall,
        report.queries_per_sec()
    );
    println!(
        "latency    p50 {:?}  p99 {:?}  p999 {:?}  max {:?}",
        s.latency.quantile_duration(0.50),
        s.latency.quantile_duration(0.99),
        s.latency.quantile_duration(0.999),
        Duration::from_nanos(s.latency.max()),
    );
    println!(
        "snapshot lag  p50 {} / p99 {} commits behind; age p99 {:?}",
        s.lag_commits.quantile(0.50),
        s.lag_commits.quantile(0.99),
        s.lag_wall.quantile_duration(0.99),
    );
    println!(
        "writer: {} updates in {} commits ({} migrations), commit p99 {:?}",
        s.updates_applied,
        s.commits,
        s.migrations,
        s.commit_latency.quantile_duration(0.99),
    );
}

//! `bcc-serve-client` — drive a `bcc-serve --listen` daemon over TCP
//! with the same deterministic workloads the in-process driver uses,
//! and print round-trip SLO numbers measured from the client side.
//!
//! ```text
//! bcc-serve-client --addr HOST:PORT --n N
//!                  [--profile read-heavy|churn-heavy|hot-component|update-storm]
//!                  [--mode closed|open] [--rate 20000] [--secs 2]
//!                  [--parts 16] [--seed 42]
//! ```
//!
//! `--n` must match the served instance's vertex count (the workload
//! generator needs the component layout); `bcc-serve --listen` prints
//! it as `listening ADDR n N` at startup.

use bcc_serve::{run_net_workload, Mode, Profile, WorkloadConfig};
use std::time::Duration;

fn parse<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "bcc-serve-client: TCP workload driver for bcc-serve --listen\n\
             --addr A       server address (required), e.g. 127.0.0.1:7731\n\
             --n N          served instance's vertex count (required)\n\
             --profile P    read-heavy | churn-heavy | hot-component | update-storm\n\
             --mode M       closed | open (default open)\n\
             --rate Q       open-loop arrivals/sec (default 20000)\n\
             --secs T       drive duration in seconds (default 2)\n\
             --parts K      component count of the served instance\n\
             --seed X       workload seed (default 42)"
        );
        return;
    }
    let addr = parse(&args, "--addr", String::new());
    let n: u32 = parse(&args, "--n", 0);
    if addr.is_empty() || n == 0 {
        eprintln!("bcc-serve-client: --addr and --n are required (see --help)");
        std::process::exit(2);
    }
    let profile = match parse(&args, "--profile", "read-heavy".to_string()).as_str() {
        "churn-heavy" => Profile::ChurnHeavy,
        "hot-component" => Profile::HotComponent,
        "update-storm" => Profile::UpdateStorm,
        _ => Profile::ReadHeavy,
    };
    let mode = match parse(&args, "--mode", "open".to_string()).as_str() {
        "closed" => Mode::Closed,
        _ => Mode::Open {
            rate: parse(&args, "--rate", 20_000.0),
        },
    };
    let cfg = WorkloadConfig {
        profile,
        mode,
        duration: Duration::from_secs_f64(parse(&args, "--secs", 2.0)),
        parts: parse(&args, "--parts", 16),
        seed: parse(&args, "--seed", 42),
    };

    let report = match run_net_workload(addr.as_str(), &cfg, n) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bcc-serve-client: {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "offered {} queries + {} updates in {:?} ({:.0} responses/s)",
        report.offered_queries,
        report.offered_updates,
        report.wall,
        report.responses_per_sec()
    );
    println!(
        "answered {}  accepted {}  shed {}  rejected {}",
        report.answered, report.accepted, report.shed, report.rejected_other
    );
    println!(
        "round-trip  p50 {:?}  p99 {:?}  p999 {:?}  max {:?}",
        report.latency.quantile_duration(0.50),
        report.latency.quantile_duration(0.99),
        report.latency.quantile_duration(0.999),
        Duration::from_nanos(report.latency.max()),
    );
    let lost = (report.offered_queries + report.offered_updates)
        .saturating_sub(report.answered + report.accepted + report.shed + report.rejected_other);
    if lost > 0 {
        eprintln!("bcc-serve-client: {lost} requests got no response");
        std::process::exit(1);
    }
}

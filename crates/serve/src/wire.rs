//! Length-prefixed binary codec for [`Request`]/[`Response`] — the
//! daemon's TCP wire format.
//!
//! One frame per message:
//!
//! ```text
//! [ len: u32 LE ][ payload: len bytes ]
//! payload = [ tag: u8 ][ id: u64 LE ][ variant body … ]
//! ```
//!
//! All integers are little-endian. `len` covers the payload only and
//! is capped at [`MAX_FRAME`]; a peer announcing more is rejected
//! before any allocation, so a corrupt or hostile length prefix cannot
//! balloon memory. Tags (the full table lives in ALGORITHMS.md §16):
//!
//! | tag    | message                                   |
//! |--------|-------------------------------------------|
//! | `0x01` | `Query::Connected(u, v)`                  |
//! | `0x02` | `Query::SameBlock(u, v)`                  |
//! | `0x03` | `Query::IsArticulation(v)`                |
//! | `0x04` | `Query::IsBridge(u, v)`                   |
//! | `0x05` | `Query::VertexCutBetween(u, v)`           |
//! | `0x06` | `Query::SurvivesFailure(u, v, failure)`   |
//! | `0x10` | `EdgeUpdate::Insert(u, v)`                |
//! | `0x11` | `EdgeUpdate::Remove(u, v)`                |
//! | `0x81` | `Response::Answer` with `Answer::Bool`    |
//! | `0x82` | `Response::Answer` with `Answer::Vertices`|
//! | `0x90` | `Response::Accepted`                      |
//! | `0xE0` | `Response::Rejected(reason: u8)`          |
//!
//! A `SurvivesFailure` body carries `failure` as `0x00 v:u32`
//! (vertex) or `0x01 a:u32 b:u32` (edge); a `Rejected` reason byte is
//! `0` queue-full, `1` overloaded, `2` shutting-down, `3` invalid.
//!
//! Decoding is strict: unknown tags, short bodies, trailing bytes,
//! and out-of-range discriminants are all typed [`WireError`]s
//! (mirroring the `.bccsr` loader's corruption handling — a bad peer
//! produces a diagnosis, never a panic or a misparse).

use crate::api::{RejectReason, Request, Response};
use bcc_query::{Answer, EdgeUpdate, Failure, Query};
use std::io::{self, Read, Write};

/// Hard cap on one frame's payload length. Chosen so the largest
/// legitimate message — a `VertexCutBetween` answer enumerating a cut
/// — fits for any plausible component, while a corrupt length prefix
/// cannot demand gigabytes.
pub const MAX_FRAME: usize = 1 << 20;

/// Why a frame or payload failed to decode.
#[derive(Debug)]
pub enum WireError {
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized {
        /// The announced payload length.
        len: u32,
    },
    /// The stream ended inside a frame (header or payload).
    TruncatedFrame,
    /// The payload ended before its variant body was complete.
    TruncatedPayload,
    /// The payload's leading tag byte is not in the table.
    UnknownTag(u8),
    /// A discriminant byte (failure kind, reject reason, bool) is out
    /// of range for its field.
    BadDiscriminant(u8),
    /// Bytes remained after a complete message was decoded.
    TrailingBytes(usize),
    /// The underlying stream failed.
    Io(io::Error),
}

impl PartialEq for WireError {
    fn eq(&self, other: &Self) -> bool {
        use WireError::*;
        match (self, other) {
            (Oversized { len: a }, Oversized { len: b }) => a == b,
            (TruncatedFrame, TruncatedFrame) => true,
            (TruncatedPayload, TruncatedPayload) => true,
            (UnknownTag(a), UnknownTag(b)) => a == b,
            (BadDiscriminant(a), BadDiscriminant(b)) => a == b,
            (TrailingBytes(a), TrailingBytes(b)) => a == b,
            // Io errors never compare equal (they carry no stable id).
            _ => false,
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Oversized { len } => {
                write!(f, "frame announces {len} bytes (cap {MAX_FRAME})")
            }
            WireError::TruncatedFrame => write!(f, "stream ended mid-frame"),
            WireError::TruncatedPayload => write!(f, "payload shorter than its message"),
            WireError::UnknownTag(t) => write!(f, "unknown message tag {t:#04x}"),
            WireError::BadDiscriminant(d) => write!(f, "discriminant {d} out of range"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::Io(e) => write!(f, "stream error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

// Message tags. Requests sit below 0x80, responses at or above, so a
// stray frame on the wrong side of the connection fails loudly.
const TAG_CONNECTED: u8 = 0x01;
const TAG_SAME_BLOCK: u8 = 0x02;
const TAG_IS_ARTICULATION: u8 = 0x03;
const TAG_IS_BRIDGE: u8 = 0x04;
const TAG_VERTEX_CUT: u8 = 0x05;
const TAG_SURVIVES: u8 = 0x06;
const TAG_INSERT: u8 = 0x10;
const TAG_REMOVE: u8 = 0x11;
const TAG_ANSWER_BOOL: u8 = 0x81;
const TAG_ANSWER_VERTICES: u8 = 0x82;
const TAG_ACCEPTED: u8 = 0x90;
const TAG_REJECTED: u8 = 0xE0;

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Strict little-endian reader over one payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::TruncatedPayload)?;
        if end > self.buf.len() {
            return Err(WireError::TruncatedPayload);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn finish(self) -> Result<(), WireError> {
        let left = self.buf.len() - self.pos;
        if left != 0 {
            return Err(WireError::TrailingBytes(left));
        }
        Ok(())
    }
}

/// Appends `req`'s payload bytes (no length prefix) to `buf`.
pub fn encode_request(req: &Request, buf: &mut Vec<u8>) {
    match *req {
        Request::Query { id, query } => {
            let (tag, a, b, failure) = match query {
                Query::Connected(u, v) => (TAG_CONNECTED, u, v, None),
                Query::SameBlock(u, v) => (TAG_SAME_BLOCK, u, v, None),
                Query::IsArticulation(v) => (TAG_IS_ARTICULATION, v, 0, None),
                Query::IsBridge(u, v) => (TAG_IS_BRIDGE, u, v, None),
                Query::VertexCutBetween(u, v) => (TAG_VERTEX_CUT, u, v, None),
                Query::SurvivesFailure(u, v, f) => (TAG_SURVIVES, u, v, Some(f)),
            };
            buf.push(tag);
            put_u64(buf, id);
            put_u32(buf, a);
            if tag != TAG_IS_ARTICULATION {
                put_u32(buf, b);
            }
            match failure {
                None => {}
                Some(Failure::Vertex(x)) => {
                    buf.push(0);
                    put_u32(buf, x);
                }
                Some(Failure::Edge(x, y)) => {
                    buf.push(1);
                    put_u32(buf, x);
                    put_u32(buf, y);
                }
            }
        }
        Request::Update { id, update } => {
            let (tag, u, v) = match update {
                EdgeUpdate::Insert(u, v) => (TAG_INSERT, u, v),
                EdgeUpdate::Remove(u, v) => (TAG_REMOVE, u, v),
            };
            buf.push(tag);
            put_u64(buf, id);
            put_u32(buf, u);
            put_u32(buf, v);
        }
    }
}

/// Decodes one request payload (strict: the whole slice must be
/// consumed).
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut r = Reader::new(payload);
    let tag = r.u8()?;
    let id = r.u64()?;
    let req = match tag {
        TAG_IS_ARTICULATION => Request::Query {
            id,
            query: Query::IsArticulation(r.u32()?),
        },
        TAG_CONNECTED | TAG_SAME_BLOCK | TAG_IS_BRIDGE | TAG_VERTEX_CUT => {
            let (u, v) = (r.u32()?, r.u32()?);
            let query = match tag {
                TAG_CONNECTED => Query::Connected(u, v),
                TAG_SAME_BLOCK => Query::SameBlock(u, v),
                TAG_IS_BRIDGE => Query::IsBridge(u, v),
                _ => Query::VertexCutBetween(u, v),
            };
            Request::Query { id, query }
        }
        TAG_SURVIVES => {
            let (u, v) = (r.u32()?, r.u32()?);
            let failure = match r.u8()? {
                0 => Failure::Vertex(r.u32()?),
                1 => Failure::Edge(r.u32()?, r.u32()?),
                d => return Err(WireError::BadDiscriminant(d)),
            };
            Request::Query {
                id,
                query: Query::SurvivesFailure(u, v, failure),
            }
        }
        TAG_INSERT | TAG_REMOVE => {
            let (u, v) = (r.u32()?, r.u32()?);
            let update = if tag == TAG_INSERT {
                EdgeUpdate::Insert(u, v)
            } else {
                EdgeUpdate::Remove(u, v)
            };
            Request::Update { id, update }
        }
        t => return Err(WireError::UnknownTag(t)),
    };
    r.finish()?;
    Ok(req)
}

/// Appends `resp`'s payload bytes (no length prefix) to `buf`.
pub fn encode_response(resp: &Response, buf: &mut Vec<u8>) {
    match resp {
        Response::Answer { id, answer } => match answer {
            Answer::Bool(b) => {
                buf.push(TAG_ANSWER_BOOL);
                put_u64(buf, *id);
                buf.push(*b as u8);
            }
            Answer::Vertices(vs) => {
                buf.push(TAG_ANSWER_VERTICES);
                put_u64(buf, *id);
                put_u32(buf, vs.len() as u32);
                for &v in vs {
                    put_u32(buf, v);
                }
            }
        },
        Response::Accepted { id } => {
            buf.push(TAG_ACCEPTED);
            put_u64(buf, *id);
        }
        Response::Rejected { id, reason } => {
            buf.push(TAG_REJECTED);
            put_u64(buf, *id);
            buf.push(match reason {
                RejectReason::QueueFull => 0,
                RejectReason::Overloaded => 1,
                RejectReason::ShuttingDown => 2,
                RejectReason::Invalid => 3,
            });
        }
    }
}

/// Decodes one response payload (strict: the whole slice must be
/// consumed, and a `Vertices` count must match the bytes present).
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut r = Reader::new(payload);
    let tag = r.u8()?;
    let id = r.u64()?;
    let resp = match tag {
        TAG_ANSWER_BOOL => {
            let b = match r.u8()? {
                0 => false,
                1 => true,
                d => return Err(WireError::BadDiscriminant(d)),
            };
            Response::Answer {
                id,
                answer: Answer::Bool(b),
            }
        }
        TAG_ANSWER_VERTICES => {
            let count = r.u32()? as usize;
            // The count must be consistent with the frame before any
            // allocation sized by it (corrupt counts cannot balloon).
            if count > (payload.len() - r.pos) / 4 {
                return Err(WireError::TruncatedPayload);
            }
            let mut vs = Vec::with_capacity(count);
            for _ in 0..count {
                vs.push(r.u32()?);
            }
            Response::Answer {
                id,
                answer: Answer::Vertices(vs),
            }
        }
        TAG_ACCEPTED => Response::Accepted { id },
        TAG_REJECTED => {
            let reason = match r.u8()? {
                0 => RejectReason::QueueFull,
                1 => RejectReason::Overloaded,
                2 => RejectReason::ShuttingDown,
                3 => RejectReason::Invalid,
                d => return Err(WireError::BadDiscriminant(d)),
            };
            Response::Rejected { id, reason }
        }
        t => return Err(WireError::UnknownTag(t)),
    };
    r.finish()?;
    Ok(resp)
}

/// Writes one `[len][payload]` frame. `payload` must fit [`MAX_FRAME`]
/// (encoders never exceed it for in-range graphs; this guards the
/// invariant).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME {
        return Err(WireError::Oversized {
            len: payload.len() as u32,
        });
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Reads one frame's payload. `Ok(None)` is a *clean* end of stream
/// (EOF exactly on a frame boundary); EOF inside a frame is
/// [`WireError::TruncatedFrame`]; an announced length beyond
/// [`MAX_FRAME`] is rejected before reading the payload.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut header = [0u8; 4];
    match read_exact_or_eof(r, &mut header)? {
        Eof::Clean => return Ok(None),
        Eof::Mid => return Err(WireError::TruncatedFrame),
        Eof::Filled => {}
    }
    let len = u32::from_le_bytes(header);
    if len as usize > MAX_FRAME {
        return Err(WireError::Oversized { len });
    }
    let mut payload = vec![0u8; len as usize];
    match read_exact_or_eof(r, &mut payload)? {
        Eof::Filled => Ok(Some(payload)),
        // A header was read, so EOF before the payload's first byte is
        // still mid-frame (zero-length payloads report Filled).
        Eof::Clean | Eof::Mid => Err(WireError::TruncatedFrame),
    }
}

enum Eof {
    /// The buffer was filled completely.
    Filled,
    /// EOF before the first byte (empty buffers count as filled).
    Clean,
    /// EOF after some but not all bytes.
    Mid,
}

fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<Eof, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Ok(if filled == 0 { Eof::Clean } else { Eof::Mid }),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(Eof::Filled)
}

/// Convenience: encode + frame a request onto `w`.
pub fn write_request(w: &mut impl Write, req: &Request) -> Result<(), WireError> {
    let mut buf = Vec::with_capacity(32);
    encode_request(req, &mut buf);
    write_frame(w, &buf)
}

/// Convenience: encode + frame a response onto `w`.
pub fn write_response(w: &mut impl Write, resp: &Response) -> Result<(), WireError> {
    let mut buf = Vec::with_capacity(32);
    encode_response(resp, &mut buf);
    write_frame(w, &buf)
}

/// Convenience: read + decode one request (None on clean EOF).
pub fn read_request(r: &mut impl Read) -> Result<Option<Request>, WireError> {
    match read_frame(r)? {
        None => Ok(None),
        Some(p) => decode_request(&p).map(Some),
    }
}

/// Convenience: read + decode one response (None on clean EOF).
pub fn read_response(r: &mut impl Read) -> Result<Option<Response>, WireError> {
    match read_frame(r)? {
        None => Ok(None),
        Some(p) => decode_response(&p).map(Some),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        assert_eq!(decode_request(&buf), Ok(req));
    }

    fn roundtrip_resp(resp: Response) {
        let mut buf = Vec::new();
        encode_response(&resp, &mut buf);
        assert_eq!(decode_response(&buf).unwrap(), resp);
    }

    #[test]
    fn every_variant_round_trips() {
        for q in [
            Query::Connected(0, u32::MAX),
            Query::SameBlock(1, 2),
            Query::IsArticulation(3),
            Query::IsBridge(4, 5),
            Query::VertexCutBetween(6, 7),
            Query::SurvivesFailure(8, 9, Failure::Vertex(10)),
            Query::SurvivesFailure(8, 9, Failure::Edge(10, 11)),
        ] {
            roundtrip_req(Request::Query {
                id: u64::MAX,
                query: q,
            });
        }
        for u in [EdgeUpdate::Insert(0, 1), EdgeUpdate::Remove(2, 3)] {
            roundtrip_req(Request::Update { id: 42, update: u });
        }
        roundtrip_resp(Response::Answer {
            id: 1,
            answer: Answer::Bool(true),
        });
        roundtrip_resp(Response::Answer {
            id: 2,
            answer: Answer::Vertices(vec![]),
        });
        roundtrip_resp(Response::Answer {
            id: 3,
            answer: Answer::Vertices(vec![7, 8, 9]),
        });
        roundtrip_resp(Response::Accepted { id: 4 });
        for reason in [
            RejectReason::QueueFull,
            RejectReason::Overloaded,
            RejectReason::ShuttingDown,
            RejectReason::Invalid,
        ] {
            roundtrip_resp(Response::Rejected { id: 5, reason });
        }
    }

    #[test]
    fn frames_round_trip_over_a_stream() {
        let mut wire = Vec::new();
        let req = Request::Query {
            id: 9,
            query: Query::Connected(1, 2),
        };
        let resp = Response::Accepted { id: 9 };
        write_request(&mut wire, &req).unwrap();
        write_response(&mut wire, &resp).unwrap();
        let mut r = &wire[..];
        assert_eq!(read_request(&mut r).unwrap(), Some(req));
        assert_eq!(read_response(&mut r).unwrap(), Some(resp));
        assert_eq!(read_request(&mut r).unwrap(), None); // clean EOF
    }

    #[test]
    fn malformed_frames_are_typed_errors() {
        // Unknown tag.
        let mut buf = vec![0x7Fu8];
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert_eq!(decode_request(&buf), Err(WireError::UnknownTag(0x7F)));
        // Truncated body.
        let mut buf = Vec::new();
        encode_request(
            &Request::Query {
                id: 0,
                query: Query::Connected(1, 2),
            },
            &mut buf,
        );
        assert_eq!(
            decode_request(&buf[..buf.len() - 1]),
            Err(WireError::TruncatedPayload)
        );
        // Trailing garbage.
        buf.push(0xAA);
        assert_eq!(decode_request(&buf), Err(WireError::TrailingBytes(1)));
        // Bad failure discriminant.
        let mut buf = vec![TAG_SURVIVES];
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.push(9);
        assert_eq!(decode_request(&buf), Err(WireError::BadDiscriminant(9)));
        // Vertices count larger than the frame: refused pre-allocation.
        let mut buf = vec![TAG_ANSWER_VERTICES];
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode_response(&buf).unwrap_err(),
            WireError::TruncatedPayload
        );
    }

    #[test]
    fn stream_level_errors_are_typed() {
        // Oversized announced length: refused before payload read.
        let mut wire = Vec::new();
        wire.extend_from_slice(&((MAX_FRAME as u32) + 1).to_le_bytes());
        assert_eq!(
            read_frame(&mut &wire[..]).unwrap_err(),
            WireError::Oversized {
                len: MAX_FRAME as u32 + 1
            }
        );
        // EOF mid-header and mid-payload.
        let mut wire = Vec::new();
        write_request(
            &mut wire,
            &Request::Update {
                id: 3,
                update: EdgeUpdate::Insert(1, 2),
            },
        )
        .unwrap();
        for cut in [2, 7, wire.len() - 1] {
            assert_eq!(
                read_frame(&mut &wire[..cut]).unwrap_err(),
                WireError::TruncatedFrame,
                "cut at {cut}"
            );
        }
        // Oversized outgoing payload is refused locally.
        let big = vec![0u8; MAX_FRAME + 1];
        assert!(matches!(
            write_frame(&mut Vec::new(), &big),
            Err(WireError::Oversized { .. })
        ));
    }
}

#![warn(missing_docs)]
//! # bcc-serve — a sharded biconnectivity query daemon
//!
//! The workspace's serving layer: everything PRs 1–5 built — the
//! epoch-snapshot [`IndexStore`](bcc_query::IndexStore), pool-parallel
//! batches, component-scoped transactional commits — driven like
//! production and measured in production's units (throughput, tail
//! latency, staleness) instead of the paper's batch wall-clock.
//!
//! * [`ShardedStore`] — connected components partitioned across
//!   independent stores behind an atomic routing table; a commit only
//!   stalls the shard it touches, and cross-shard inserts migrate the
//!   donor component with reader-consistent ordering.
//! * [`Daemon`] — N reader threads pulling [`QueryJob`]s from a
//!   bounded MPMC queue and answering from the routed shard's current
//!   snapshot (never blocking on commits); one writer thread draining
//!   the update stream with group-commit batching
//!   ([`ServeConfig::batch_max`] / [`ServeConfig::flush_interval`]).
//! * [`LatencyHistogram`] — HDR-style log-linear recorder behind the
//!   p50/p99/p999 latency and snapshot-lag numbers in [`ServeReport`].
//! * [`workload`] — closed-loop and open-loop (fixed-arrival-rate,
//!   coordinated-omission-free) drivers over read-heavy, churn-heavy,
//!   and adversarial hot-component mixes; the `serve/*` benchmark
//!   cells and the `bcc-serve` binary are thin wrappers around
//!   [`run_workload`].
//!
//! ```
//! use bcc_serve::{component_grid, Daemon, ServeConfig, ShardedStore};
//! use bcc_query::Query;
//! use bcc_smp::Pool;
//! use std::sync::Arc;
//!
//! let pool = Pool::new(2);
//! let g = component_grid(120, 4, 42);
//! let store = Arc::new(ShardedStore::new(&pool, &g, 2).unwrap());
//! let daemon = Daemon::spawn(Arc::clone(&store), ServeConfig::default());
//! daemon.submit_query(Query::SameBlock(0, 5)).unwrap();
//! let report = daemon.shutdown();
//! assert_eq!(report.answered, 1);
//! ```

pub mod daemon;
pub mod hist;
pub mod shard;
pub mod workload;

pub use daemon::{Daemon, QueryJob, ServeConfig, ServeReport};
pub use hist::LatencyHistogram;
pub use shard::{ApplySummary, LaggedAnswer, ServeError, ShardedStore};
pub use workload::{component_grid, run_workload, Mode, Profile, WorkloadConfig, WorkloadReport};

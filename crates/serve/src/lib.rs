#![warn(missing_docs)]
//! # bcc-serve — a sharded biconnectivity query daemon
//!
//! The workspace's serving layer: everything PRs 1–5 built — the
//! epoch-snapshot [`IndexStore`](bcc_query::IndexStore), pool-parallel
//! batches, component-scoped transactional commits — driven like
//! production and measured in production's units (throughput, tail
//! latency, staleness) instead of the paper's batch wall-clock.
//!
//! * [`ShardedStore`] — connected components partitioned across
//!   independent stores behind an atomic routing table; a commit only
//!   stalls the shard it touches, and cross-shard inserts migrate the
//!   donor component with reader-consistent ordering.
//! * [`Request`] / [`Response`] — the typed request surface *and* the
//!   TCP wire format's data model; one [`Daemon::submit`] entry point
//!   serves in-process callers, workload drivers, and the socket.
//! * [`Daemon`] — N reader threads pulling [`QueryJob`]s from a
//!   bounded MPMC queue and answering from the routed shard's current
//!   snapshot (never blocking on commits); per-shard writer threads
//!   (or one, for the `writers=1` ablation) draining the update stream
//!   with group-commit batching ([`ServeConfig::batch_max`] /
//!   [`ServeConfig::flush_interval`]) and watermark-based admission
//!   control shedding update load with typed rejections.
//! * [`net`] — a length-prefixed binary protocol over TCP
//!   (`bcc-serve --listen` / `bcc-serve-client`), std-only.
//! * [`LatencyHistogram`] — HDR-style log-linear recorder behind the
//!   p50/p99/p999 latency and snapshot-lag numbers in [`ServeReport`].
//! * [`workload`] — closed-loop and open-loop (fixed-arrival-rate,
//!   coordinated-omission-free) drivers over read-heavy, churn-heavy,
//!   and adversarial hot-component mixes; the `serve/*` benchmark
//!   cells and the `bcc-serve` binary are thin wrappers around
//!   [`run_workload`].
//!
//! ```
//! use bcc_serve::{component_grid, Daemon, ServeConfig, ShardedStore};
//! use bcc_query::Query;
//! use bcc_smp::Pool;
//! use std::sync::Arc;
//!
//! use bcc_serve::Request;
//!
//! let pool = Pool::new(2);
//! let g = component_grid(120, 4, 42);
//! let store = Arc::new(ShardedStore::new(&pool, &g, 2).unwrap());
//! let daemon = Daemon::spawn(Arc::clone(&store), ServeConfig::default());
//! daemon
//!     .submit(Request::Query { id: 1, query: Query::SameBlock(0, 5) })
//!     .unwrap();
//! let report = daemon.shutdown();
//! assert_eq!(report.answered, 1);
//! ```

pub mod api;
pub mod daemon;
pub mod hist;
pub mod net;
pub mod shard;
pub mod wire;
pub mod workload;

pub use api::{RejectReason, Request, Response, SubmitError};
pub use daemon::{
    Admission, Daemon, QueryJob, ReplySink, ServeConfig, ServeConfigBuilder, ServeReport, Writers,
};
pub use hist::LatencyHistogram;
pub use net::{run_net_workload, NetClient, NetFrontend, NetWorkloadReport};
pub use shard::{
    ApplySummary, LaggedAnswer, MigrateOutcome, ServeError, ShardCommit, ShardedStore,
};
pub use wire::{WireError, MAX_FRAME};
pub use workload::{component_grid, run_workload, Mode, Profile, WorkloadConfig, WorkloadReport};

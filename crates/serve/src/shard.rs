//! Sharding the component-scoped store: commits only stall the shard
//! they touch.
//!
//! A single [`IndexStore`] already scopes each commit to the connected
//! components its batch touches, but all commits still serialize on
//! one commit lock and readers of untouched components still observe
//! the store-wide epoch bump. [`ShardedStore`] splits the graph's
//! connected components across `S` independent `IndexStore`s. Every
//! shard spans the **full global vertex-id space** but holds only its
//! owned components' edges — a vertex owned elsewhere is simply
//! isolated there. That one invariant makes cross-shard queries
//! correct with no translation layer: if `u` and `v` live in different
//! shards they are in different components of the real graph, and the
//! shard `u` routes to answers exactly that (`v` is isolated → not
//! connected, not same-block, cannot be separated from anything).
//!
//! # Routing
//!
//! A per-vertex atomic routing table maps vertex → shard. Queries read
//! it once (`Acquire`) and answer entirely from the routed shard's
//! snapshot. Same-shard updates batch into that shard's transaction.
//! A cross-shard insert `{u, v}` is a *component migration*: `v`'s
//! whole component moves into `u`'s shard in three steps, each of
//! which leaves every reader-visible state consistent —
//!
//! 1. commit the component's edges plus the new edge into `u`'s shard
//!    (readers routed to `v`'s old shard still see the pre-merge
//!    component there; readers routed to `u`'s shard already see the
//!    merged one),
//! 2. flip the moved vertices' routing entries to `u`'s shard,
//! 3. commit the removal of the moved edges from the old shard
//!    (cleanup; nothing routes there anymore).
//!
//! Readers between steps observe either the old consistent state or
//! the new consistent state, never a torn mix, because every answer
//! comes from a single epoch snapshot of a single shard.
//!
//! # Parallel writers
//!
//! Each shard carries a *writer lock* (separate from the store's
//! internal commit lock) and its own dedicated SPMD pool, so commits
//! on different shards proceed genuinely in parallel. The protocol the
//! daemon's per-shard writer threads rely on:
//!
//! * [`commit_shard`](ShardedStore::commit_shard) holds shard `s`'s
//!   writer lock, re-checks every staged update's routing *under the
//!   lock*, commits the ones that still belong, and hands back
//!   *strays* (re-routed by a migration while they sat in the queue)
//!   and *cross-shard inserts* for the caller to re-dispatch. It never
//!   takes a second lock, so shard writers cannot deadlock.
//! * [`migrate`](ShardedStore::migrate) (the coordinator path) locks
//!   the two shards **in index order**, re-checks routing, and only
//!   then runs the three-step migration. Routing entries flip *only*
//!   while both involved writer locks are held — which is what makes
//!   the flush-time re-check sound: while a shard writer holds its
//!   lock, no component can migrate into or out of that shard.

use bcc_core::{Algorithm, BccError};
use bcc_graph::{Edge, Graph, GraphBuilder};
use bcc_query::{Answer, CommitStats, EdgeUpdate, IndexStore, Query, Snapshot};
use bcc_smp::Pool;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Why a serving-layer operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// An update or query named a vertex outside the store's fixed
    /// vertex universe (`>= n`). The daemon's id space is sized at
    /// startup; grow it by building a new store.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u32,
        /// The store's vertex-universe size.
        n: u32,
    },
    /// A shard rebuild failed inside `bcc-core`.
    Rebuild(BccError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} outside the store's universe (n = {n})")
            }
            ServeError::Rebuild(e) => write!(f, "shard rebuild failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<BccError> for ServeError {
    fn from(e: BccError) -> Self {
        ServeError::Rebuild(e)
    }
}

/// What one [`ShardedStore::apply`] call did across shards.
#[derive(Clone, Debug, Default)]
pub struct ApplySummary {
    /// Commits issued (one per flushed shard batch, plus two per
    /// migration).
    pub commits: usize,
    /// Cross-shard component migrations performed.
    pub migrations: usize,
    /// Vertices moved between shards by those migrations.
    pub migrated_vertices: usize,
    /// `(shard, rebuild statistics)` per commit, in commit order — the
    /// shard attribution feeds the daemon's per-shard commit-latency
    /// histograms.
    pub stats: Vec<(usize, CommitStats)>,
}

/// What one [`ShardedStore::commit_shard`] call did.
#[derive(Debug, Default)]
pub struct ShardCommit {
    /// Updates resolved by this call: committed into the shard, or
    /// discharged as no-ops (self-loops, removals of edges that cannot
    /// exist because they would span shards).
    pub applied: usize,
    /// Rebuild statistics of the commit (`None` when nothing needed
    /// committing).
    pub stats: Option<CommitStats>,
    /// Same-shard updates whose component migrated to another shard
    /// between enqueue and flush; the caller re-dispatches them to the
    /// owning shard.
    pub strays: Vec<EdgeUpdate>,
    /// Inserts that turned out to span shards at flush time; the
    /// caller hands them to the migration coordinator.
    pub cross_shard: Vec<EdgeUpdate>,
}

/// What one [`ShardedStore::migrate`] call did.
#[derive(Debug, Default)]
pub struct MigrateOutcome {
    /// Whether a cross-shard migration actually ran (`false` when the
    /// endpoints already shared a shard by the time the locks were
    /// held — the insert still committed).
    pub migrated: bool,
    /// Vertices moved between shards.
    pub migrated_vertices: usize,
    /// `(shard, rebuild statistics)` per commit issued.
    pub stats: Vec<(usize, CommitStats)>,
}

/// An answer plus the snapshot-lag it was served at.
#[derive(Clone, Debug)]
pub struct LaggedAnswer {
    /// The answer itself.
    pub answer: Answer,
    /// How many commits behind its shard's latest epoch the answering
    /// snapshot was.
    pub lag_commits: u64,
    /// Wall-clock age of the answering snapshot.
    pub lag_wall: Duration,
}

/// `S` independent component-partitioned [`IndexStore`]s behind an
/// atomic routing table (see the [module docs](self)).
pub struct ShardedStore {
    shards: Vec<IndexStore>,
    /// Per-shard writer locks (see the module docs). Distinct from the
    /// stores' internal commit locks: these serialize the *routing
    /// re-check + commit* critical section, and migrations hold two of
    /// them (index order) while flipping routing entries.
    writer_locks: Vec<Mutex<()>>,
    routing: Vec<AtomicU32>,
    n: u32,
}

impl ShardedStore {
    /// Partitions `g`'s connected components across `num_shards`
    /// stores (greedy balance by vertex count, largest first) and
    /// builds each shard's epoch-0 index. Each shard gets its own
    /// **dedicated** `Pool` (same thread count as `pool`) — `Pool`
    /// clones share workers and serialize their phases, so dedicated
    /// pools are what lets per-shard writers commit concurrently.
    /// Shards rebuild with TV-filter; use
    /// [`with_algorithm`](ShardedStore::with_algorithm) to choose.
    pub fn new(pool: &Pool, g: &Graph, num_shards: usize) -> Result<Self, ServeError> {
        Self::with_algorithm(pool, g, num_shards, Algorithm::TvFilter)
    }

    /// [`new`](ShardedStore::new) with an explicit labeling
    /// [`Algorithm`] for every shard's rebuilds (e.g.
    /// [`Algorithm::FastBcc`] to bound commit-time auxiliary space by
    /// O(n) on very large shards).
    pub fn with_algorithm(
        pool: &Pool,
        g: &Graph,
        num_shards: usize,
        alg: Algorithm,
    ) -> Result<Self, ServeError> {
        assert!(num_shards >= 1, "need at least one shard");
        let n = g.n();

        // Component labels of the seed graph.
        let cc = bcc_connectivity::sv::connected_components(pool, n, g.edges());
        let mut labels = cc.label;
        let k = bcc_connectivity::sv::normalize_labels(pool, &mut labels);

        // Greedy balance: biggest components first, each to the
        // currently lightest shard.
        let mut comp_size = vec![0u64; k as usize];
        for &l in &labels {
            comp_size[l as usize] += 1;
        }
        let mut order: Vec<u32> = (0..k).collect();
        order.sort_by_key(|&c| std::cmp::Reverse(comp_size[c as usize]));
        let mut shard_load = vec![0u64; num_shards];
        let mut comp_shard = vec![0u32; k as usize];
        for c in order {
            let s = (0..num_shards).min_by_key(|&s| shard_load[s]).unwrap();
            comp_shard[c as usize] = s as u32;
            shard_load[s] += comp_size[c as usize];
        }

        let routing: Vec<AtomicU32> = labels
            .iter()
            .map(|&l| AtomicU32::new(comp_shard[l as usize]))
            .collect();

        // Each shard: the full vertex universe, only its own edges.
        let mut shard_edges: Vec<Vec<Edge>> = vec![Vec::new(); num_shards];
        for &e in g.edges() {
            let s = comp_shard[labels[e.u as usize] as usize] as usize;
            shard_edges[s].push(e);
        }
        let shards = shard_edges
            .into_iter()
            .map(|edges| {
                IndexStore::with_algorithm(
                    Pool::new(pool.threads()),
                    GraphBuilder::new(n).edges(edges).build().unwrap(),
                    alg,
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        let writer_locks = (0..shards.len()).map(|_| Mutex::new(())).collect();

        Ok(ShardedStore {
            shards,
            writer_locks,
            routing,
            n,
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Size of the fixed vertex universe.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// The shard currently owning vertex `v`.
    pub fn shard_of(&self, v: u32) -> usize {
        self.routing[v as usize].load(Ordering::Acquire) as usize
    }

    /// The shard-local store at index `s` (tests, lag probes).
    pub fn shard(&self, s: usize) -> &IndexStore {
        &self.shards[s]
    }

    /// Latest published epoch of every shard.
    pub fn latest_epochs(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.latest_epoch()).collect()
    }

    /// The vertex a query routes by: every query's answer is local to
    /// one component, and that component's shard is the first-named
    /// vertex's (cross-component pairs short out identically in any
    /// shard that isolates one of them).
    fn route_vertex(q: &Query) -> u32 {
        match *q {
            Query::Connected(u, _)
            | Query::SameBlock(u, _)
            | Query::IsBridge(u, _)
            | Query::VertexCutBetween(u, _)
            | Query::SurvivesFailure(u, _, _) => u,
            Query::IsArticulation(v) => v,
        }
    }

    fn check_vertex(&self, v: u32) -> Result<(), ServeError> {
        if v >= self.n {
            return Err(ServeError::VertexOutOfRange {
                vertex: v,
                n: self.n,
            });
        }
        Ok(())
    }

    fn check_query(&self, q: &Query) -> Result<(), ServeError> {
        use bcc_query::Failure;
        let check = |v| self.check_vertex(v);
        match *q {
            Query::IsArticulation(v) => check(v),
            Query::Connected(u, v)
            | Query::SameBlock(u, v)
            | Query::IsBridge(u, v)
            | Query::VertexCutBetween(u, v) => check(u).and_then(|_| check(v)),
            Query::SurvivesFailure(u, v, f) => {
                check(u)?;
                check(v)?;
                match f {
                    Failure::Vertex(x) => check(x),
                    Failure::Edge(a, b) => check(a).and_then(|_| check(b)),
                }
            }
        }
    }

    /// Routes and answers one query from the owning shard's current
    /// snapshot.
    pub fn answer(&self, q: &Query) -> Result<Answer, ServeError> {
        self.check_query(q)?;
        let shard = &self.shards[self.shard_of(Self::route_vertex(q))];
        Ok(shard.load().index.answer(q))
    }

    /// Like [`answer`](Self::answer), also reporting the snapshot-lag
    /// the answer was served at — in commits behind the shard's latest
    /// epoch and in snapshot wall-clock age.
    pub fn answer_with_lag(&self, q: &Query) -> Result<LaggedAnswer, ServeError> {
        self.check_query(q)?;
        let shard = &self.shards[self.shard_of(Self::route_vertex(q))];
        let snap = shard.load();
        let answer = snap.index.answer(q);
        Ok(LaggedAnswer {
            answer,
            lag_commits: shard.lag_of(&snap),
            lag_wall: snap.age(),
        })
    }

    /// Commits `batch` into shard `s` under its writer lock, re-checking
    /// each update's routing there (see the module docs). Returns what
    /// was applied plus the updates that no longer belong to `s` —
    /// never taking a second lock, so any number of per-shard writers
    /// can run concurrently.
    pub fn commit_shard(&self, s: usize, batch: &[EdgeUpdate]) -> Result<ShardCommit, ServeError> {
        let mut out = ShardCommit::default();
        if batch.is_empty() {
            return Ok(out);
        }
        let _guard = self.writer_locks[s].lock().unwrap();
        let mut txn = self.shards[s].begin();
        let mut staged = 0usize;
        for &up in batch {
            let (u, v) = match up {
                EdgeUpdate::Insert(u, v) | EdgeUpdate::Remove(u, v) => (u, v),
            };
            self.check_vertex(u)?;
            self.check_vertex(v)?;
            if u == v {
                out.applied += 1;
                continue;
            }
            let (su, sv) = (self.shard_of(u), self.shard_of(v));
            if su == s && sv == s {
                txn.push(up);
                staged += 1;
            } else if su == sv {
                // A migration moved the component while this update
                // queued; it belongs to shard `su` now.
                out.strays.push(up);
            } else {
                match up {
                    // Edges never span shards: such a removal is a no-op.
                    EdgeUpdate::Remove(..) => out.applied += 1,
                    EdgeUpdate::Insert(..) => out.cross_shard.push(up),
                }
            }
        }
        if staged > 0 {
            let snap = txn.commit()?;
            out.applied += staged;
            out.stats = Some(snap.stats);
        }
        Ok(out)
    }

    /// The coordinator path for an insert whose endpoints route to
    /// different shards: locks both writer locks in index order,
    /// re-checks routing under them, and either migrates `v`'s
    /// component into `u`'s shard or — if a racing resolution already
    /// merged their routing — plain-commits the insert.
    pub fn migrate(&self, u: u32, v: u32) -> Result<MigrateOutcome, ServeError> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        let mut out = MigrateOutcome::default();
        if u == v {
            return Ok(out);
        }
        loop {
            let (su, sv) = (self.shard_of(u), self.shard_of(v));
            if su == sv {
                let _guard = self.writer_locks[su].lock().unwrap();
                if self.shard_of(u) != su || self.shard_of(v) != su {
                    continue; // routing moved before we held the lock
                }
                let mut txn = self.shards[su].begin();
                txn.insert(u, v);
                let snap = txn.commit()?;
                out.stats.push((su, snap.stats));
                return Ok(out);
            }
            let (lo, hi) = (su.min(sv), su.max(sv));
            let _g1 = self.writer_locks[lo].lock().unwrap();
            let _g2 = self.writer_locks[hi].lock().unwrap();
            if self.shard_of(u) != su || self.shard_of(v) != sv {
                continue;
            }
            let mut summary = ApplySummary::default();
            self.migrate_locked(u, su, v, sv, &mut summary)?;
            out.migrated = true;
            out.migrated_vertices = summary.migrated_vertices;
            out.stats = summary.stats;
            return Ok(out);
        }
    }

    /// Applies a batch of updates, preserving order, committing each
    /// touched shard at most once per contiguous run (a cross-shard
    /// insert flushes the two shards involved, migrates, then
    /// continues batching). **Single-writer**: concurrent `apply`
    /// calls are not linearized against each other; the daemon's
    /// `writers = single` topology funnels all updates through one
    /// writer thread (per-shard writers use
    /// [`commit_shard`](Self::commit_shard) /
    /// [`migrate`](Self::migrate) instead).
    pub fn apply(&self, updates: &[EdgeUpdate]) -> Result<ApplySummary, ServeError> {
        let mut pending: Vec<Vec<EdgeUpdate>> = vec![Vec::new(); self.shards.len()];
        let mut summary = ApplySummary::default();
        for &up in updates {
            let (u, v) = match up {
                EdgeUpdate::Insert(u, v) | EdgeUpdate::Remove(u, v) => (u, v),
            };
            self.check_vertex(u)?;
            self.check_vertex(v)?;
            if u == v {
                continue;
            }
            let (su, sv) = (self.shard_of(u), self.shard_of(v));
            if su == sv {
                pending[su].push(up);
                continue;
            }
            match up {
                // A removal across shards names an edge that cannot
                // exist (edges never span shards): a no-op.
                EdgeUpdate::Remove(..) => continue,
                EdgeUpdate::Insert(..) => {
                    // Order: everything staged for the two shards must
                    // land before the migration reads their snapshots.
                    for s in [su, sv] {
                        self.flush(s, &mut pending[s], &mut summary)?;
                    }
                    self.migrate_insert(u, su, v, sv, &mut summary)?;
                }
            }
        }
        for (s, slot) in pending.iter_mut().enumerate() {
            let mut batch = std::mem::take(slot);
            self.flush(s, &mut batch, &mut summary)?;
        }
        Ok(summary)
    }

    fn flush(
        &self,
        s: usize,
        batch: &mut Vec<EdgeUpdate>,
        summary: &mut ApplySummary,
    ) -> Result<(), ServeError> {
        if batch.is_empty() {
            return Ok(());
        }
        let _guard = self.writer_locks[s].lock().unwrap();
        let mut txn = self.shards[s].begin();
        txn.extend(batch.drain(..));
        let snap = txn.commit()?;
        summary.commits += 1;
        summary.stats.push((s, snap.stats));
        Ok(())
    }

    /// [`migrate_locked`](Self::migrate_locked) behind both writer
    /// locks, for the single-writer [`apply`](Self::apply) path (which
    /// holds no locks when it reaches a migration).
    fn migrate_insert(
        &self,
        u: u32,
        su: usize,
        v: u32,
        sv: usize,
        summary: &mut ApplySummary,
    ) -> Result<(), ServeError> {
        let (lo, hi) = (su.min(sv), su.max(sv));
        let _g1 = self.writer_locks[lo].lock().unwrap();
        let _g2 = self.writer_locks[hi].lock().unwrap();
        self.migrate_locked(u, su, v, sv, summary)
    }

    /// Moves `v`'s whole component from shard `sv` into `su` and adds
    /// the new edge `{u, v}` (see the module docs for why each step
    /// keeps readers consistent). Caller holds **both** shards' writer
    /// locks — routing entries only ever flip inside this function,
    /// under those locks.
    fn migrate_locked(
        &self,
        u: u32,
        su: usize,
        v: u32,
        sv: usize,
        summary: &mut ApplySummary,
    ) -> Result<(), ServeError> {
        let donor: Arc<Snapshot> = self.shards[sv].load();
        let moved_verts: Vec<u32> = match donor.index.component_handle(v) {
            Some(c) => c.vertices().to_vec(),
            None => vec![v], // isolated vertex: nothing but v moves
        };
        let moved_edges: Vec<Edge> = donor
            .graph
            .edges()
            .iter()
            .filter(|e| donor.index.connected(e.u, v))
            .copied()
            .collect();

        // 1. The receiving shard gains the component and the new edge.
        let mut txn = self.shards[su].begin();
        for e in &moved_edges {
            txn.insert(e.u, e.v);
        }
        txn.insert(u, v);
        let snap = txn.commit()?;
        summary.commits += 1;
        summary.stats.push((su, snap.stats));

        // 2. Route the moved vertices to their new home.
        for &w in &moved_verts {
            self.routing[w as usize].store(su as u32, Ordering::Release);
        }

        // 3. Cleanup: the donor shard drops the moved edges.
        if !moved_edges.is_empty() {
            let mut txn = self.shards[sv].begin();
            for e in &moved_edges {
                txn.remove(e.u, e.v);
            }
            let snap = txn.commit()?;
            summary.commits += 1;
            summary.stats.push((sv, snap.stats));
        }

        summary.migrations += 1;
        summary.migrated_vertices += moved_verts.len();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_query::Failure;

    /// Disjoint 5-cycles on contiguous ranges: component c owns
    /// vertices 5c .. 5c+4.
    fn cycles(k: u32) -> Graph {
        GraphBuilder::new(5 * k)
            .edges((0..k).flat_map(|c| (0..5).map(move |i| (5 * c + i, 5 * c + (i + 1) % 5))))
            .build()
            .unwrap()
    }

    #[test]
    fn fast_bcc_shards_answer_identically() {
        let pool = Pool::new(2);
        let g = cycles(4);
        let a = ShardedStore::new(&pool, &g, 2).unwrap();
        let b = ShardedStore::with_algorithm(&pool, &g, 2, Algorithm::FastBcc).unwrap();
        for u in 0..g.n() {
            for v in 0..g.n() {
                for q in [
                    Query::Connected(u, v),
                    Query::SameBlock(u, v),
                    Query::IsBridge(u, v),
                    Query::IsArticulation(u),
                ] {
                    assert_eq!(a.answer(&q).unwrap(), b.answer(&q).unwrap());
                }
            }
        }
    }

    #[test]
    fn construction_partitions_components_not_vertices() {
        let pool = Pool::new(2);
        let store = ShardedStore::new(&pool, &cycles(6), 3).unwrap();
        assert_eq!(store.num_shards(), 3);
        // Every component's 5 vertices share a shard.
        for c in 0..6u32 {
            let s = store.shard_of(5 * c);
            for i in 1..5 {
                assert_eq!(store.shard_of(5 * c + i), s);
            }
        }
        // Greedy balance on equal sizes: two components per shard.
        let mut per_shard = [0u32; 3];
        for c in 0..6u32 {
            per_shard[store.shard_of(5 * c)] += 1;
        }
        assert_eq!(per_shard, [2, 2, 2]);
    }

    #[test]
    fn cross_shard_queries_short_out_correctly() {
        let pool = Pool::new(2);
        let store = ShardedStore::new(&pool, &cycles(4), 2).unwrap();
        // Pick two vertices guaranteed to sit in different shards.
        let (a, b) = (
            0u32,
            (0..4)
                .map(|c| 5 * c)
                .find(|&v| store.shard_of(v) != store.shard_of(0))
                .unwrap(),
        );
        assert!(!store.answer(&Query::Connected(a, b)).unwrap().as_bool());
        assert!(!store.answer(&Query::SameBlock(a, b)).unwrap().as_bool());
        assert!(!store.answer(&Query::IsBridge(a, b)).unwrap().as_bool());
        // A failure in another component cannot separate a and its ring
        // neighbours.
        assert!(store
            .answer(&Query::SurvivesFailure(a, 2, Failure::Vertex(b)))
            .unwrap()
            .as_bool());
        assert_eq!(
            store.answer(&Query::VertexCutBetween(a, b)).unwrap(),
            Answer::Vertices(Vec::new())
        );
    }

    #[test]
    fn same_shard_updates_commit_only_that_shard() {
        let pool = Pool::new(2);
        let store = ShardedStore::new(&pool, &cycles(4), 2).unwrap();
        let s0 = store.shard_of(0);
        let before = store.latest_epochs();
        let summary = store
            .apply(&[EdgeUpdate::Remove(0, 1), EdgeUpdate::Remove(2, 3)])
            .unwrap();
        assert_eq!(summary.commits, 1);
        assert_eq!(summary.migrations, 0);
        let after = store.latest_epochs();
        for s in 0..2 {
            let expect = before[s] + if s == s0 { 1 } else { 0 };
            assert_eq!(after[s], expect, "only the touched shard advances");
        }
        // Ring minus two edges: 0 and the far side disconnect… no —
        // removing (0,1) and (2,3) leaves the path 3-4-0 and 1-2.
        assert!(!store.answer(&Query::Connected(1, 4)).unwrap().as_bool());
        assert!(store.answer(&Query::Connected(3, 0)).unwrap().as_bool());
    }

    #[test]
    fn cross_shard_insert_migrates_the_component() {
        let pool = Pool::new(2);
        let store = ShardedStore::new(&pool, &cycles(4), 2).unwrap();
        let b = (0..4)
            .map(|c| 5 * c)
            .find(|&v| store.shard_of(v) != store.shard_of(0))
            .unwrap();
        let summary = store.apply(&[EdgeUpdate::Insert(0, b)]).unwrap();
        assert_eq!(summary.migrations, 1);
        assert_eq!(summary.migrated_vertices, 5);
        // The whole donor component now routes to 0's shard…
        for i in 0..5 {
            assert_eq!(store.shard_of(b + i), store.shard_of(0));
        }
        // …and the merged component answers as one: {0,b} is a bridge
        // between the two rings.
        assert!(store.answer(&Query::Connected(0, b + 2)).unwrap().as_bool());
        assert!(store.answer(&Query::IsBridge(0, b)).unwrap().as_bool());
        assert!(!store
            .answer(&Query::SurvivesFailure(1, b + 1, Failure::Edge(0, b)))
            .unwrap()
            .as_bool());
        // The donor shard dropped the edges it no longer owns.
        let donor = store.shard(1 - store.shard_of(0)); // two shards
        assert!(donor.load().graph.m() < 10);
    }

    #[test]
    fn migration_then_removal_round_trips() {
        let pool = Pool::new(2);
        let store = ShardedStore::new(&pool, &cycles(2), 2).unwrap();
        store.apply(&[EdgeUpdate::Insert(0, 5)]).unwrap();
        assert!(store.answer(&Query::Connected(0, 7)).unwrap().as_bool());
        // Removing the link splits them again — both components stay in
        // the merged shard (splits don't migrate back), and queries
        // remain correct.
        store.apply(&[EdgeUpdate::Remove(0, 5)]).unwrap();
        assert!(!store.answer(&Query::Connected(0, 7)).unwrap().as_bool());
        assert!(store.answer(&Query::Connected(5, 7)).unwrap().as_bool());
        assert_eq!(store.shard_of(0), store.shard_of(5));
    }

    #[test]
    fn matches_unsharded_oracle_through_random_churn() {
        let pool = Pool::new(2);
        let g = cycles(6);
        let store = ShardedStore::new(&pool, &g, 3).unwrap();
        let oracle = IndexStore::new(pool.clone(), g).unwrap();
        let mut state = 0x5eed_u64;
        let mut lcg = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let n = 30u64;
        for round in 0..40 {
            let (a, b) = ((lcg() % n) as u32, (lcg() % n) as u32);
            let up = if round % 3 == 0 {
                EdgeUpdate::Remove(a, b)
            } else {
                EdgeUpdate::Insert(a, b)
            };
            store.apply(&[up]).unwrap();
            let mut txn = oracle.begin();
            txn.push(up);
            txn.commit().unwrap();

            let snap = oracle.load();
            for _ in 0..8 {
                let (u, v, x) = ((lcg() % n) as u32, (lcg() % n) as u32, (lcg() % n) as u32);
                for q in [
                    Query::Connected(u, v),
                    Query::SameBlock(u, v),
                    Query::IsArticulation(x),
                    Query::IsBridge(u, v),
                    Query::VertexCutBetween(u, v),
                    Query::SurvivesFailure(u, v, Failure::Vertex(x)),
                ] {
                    assert_eq!(
                        store.answer(&q).unwrap(),
                        snap.index.answer(&q),
                        "round {round}: {q:?} diverged from unsharded oracle"
                    );
                }
            }
        }
    }

    #[test]
    fn out_of_range_vertices_are_rejected() {
        let pool = Pool::new(1);
        let store = ShardedStore::new(&pool, &cycles(1), 1).unwrap();
        assert!(matches!(
            store.apply(&[EdgeUpdate::Insert(0, 99)]),
            Err(ServeError::VertexOutOfRange { vertex: 99, n: 5 })
        ));
        assert!(store.answer(&Query::Connected(0, 99)).is_err());
        assert!(store
            .answer(&Query::SurvivesFailure(0, 1, Failure::Vertex(99)))
            .is_err());
    }
}

//! The TCP front-end: the daemon behind a real socket.
//!
//! std-only networking (no async runtime, no extra crates): an
//! acceptor thread polls a non-blocking `TcpListener`; each accepted
//! connection gets a thread that reads [`wire`](crate::wire) frames
//! and feeds the daemon's MPMC queues through the same typed
//! [`Request`] surface in-process callers use.
//!
//! * **Queries** are submitted with a *reply sink*: the daemon's
//!   reader thread that answers the query writes the response frame
//!   itself (the per-connection write half sits behind a mutex, so
//!   frames never interleave). A query refused at admission is
//!   answered synchronously with a typed [`Response::Rejected`].
//! * **Updates** are acknowledged synchronously — `Accepted` when
//!   admitted to a writer queue, `Rejected` (queue-full, overloaded,
//!   shutting-down, invalid) otherwise. Every request gets exactly
//!   one response, which is what lets an open-loop client measure an
//!   honest round-trip tail: nothing is silently dropped, so nothing
//!   is silently missing from the histogram.
//! * **Submission never blocks a socket thread**: the front-end uses
//!   the daemon's non-blocking path, converting a saturated queue
//!   into a `QueueFull` rejection the client can see and retry.
//!
//! [`run_net_workload`] is the socket twin of
//! [`run_workload`](crate::run_workload): same deterministic
//! generator, same profiles and open/closed disciplines, but driving
//! a [`NetClient`] so the measured path includes framing, the kernel
//! socket buffers, and the loopback (or real) network.

use crate::api::{RejectReason, Request, Response};
use crate::daemon::{Daemon, ServeReport};
use crate::hist::LatencyHistogram;
use crate::wire::{self, WireError};
use crate::workload::{Mode, Op, OpGen, WorkloadConfig};
use bcc_query::EdgeUpdate;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a connection read waits before re-checking the shutdown
/// flag (only between frames; mid-frame reads keep waiting so a slow
/// peer cannot desynchronize the stream).
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Encodes `resp` as one `[len][payload]` buffer and writes it in a
/// single `write_all` under the connection's write lock.
fn send_response(stream: &Mutex<TcpStream>, resp: &Response) {
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(&[0u8; 4]);
    wire::encode_response(resp, &mut buf);
    let len = (buf.len() - 4) as u32;
    buf[..4].copy_from_slice(&len.to_le_bytes());
    let mut s = stream.lock().unwrap();
    // A dead peer surfaces as a failed write; the connection's read
    // side will observe the hangup and the thread exits — nothing to
    // do here but not panic.
    let _ = s.write_all(&buf);
}

/// A serving daemon listening on a TCP socket (see the
/// [module docs](self)).
pub struct NetFrontend {
    daemon: Arc<Daemon>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl NetFrontend {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections that drive `daemon`.
    pub fn spawn(daemon: Daemon, addr: impl ToSocketAddrs) -> io::Result<NetFrontend> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let daemon = Arc::new(daemon);
        let stop = Arc::new(AtomicBool::new(false));
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let acceptor = {
            let daemon = Arc::clone(&daemon);
            let stop = Arc::clone(&stop);
            let connections = Arc::clone(&connections);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let daemon = Arc::clone(&daemon);
                            let stop = Arc::clone(&stop);
                            let handle =
                                std::thread::spawn(move || connection_loop(stream, &daemon, &stop));
                            connections.lock().unwrap().push(handle);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })
        };

        Ok(NetFrontend {
            daemon,
            addr,
            stop,
            acceptor: Some(acceptor),
            connections,
        })
    }

    /// The bound address (useful with an ephemeral `:0` bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon behind the socket.
    pub fn daemon(&self) -> &Daemon {
        &self.daemon
    }

    /// Stops accepting, drains every connection, shuts the daemon
    /// down, and returns its merged report.
    pub fn shutdown(mut self) -> ServeReport {
        self.stop.store(true, Ordering::Release);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for handle in self.connections.lock().unwrap().drain(..) {
            let _ = handle.join();
        }
        let daemon = Arc::try_unwrap(self.daemon)
            .unwrap_or_else(|_| panic!("connection thread leaked a daemon handle"));
        daemon.shutdown()
    }
}

/// One connection: decode request frames, submit, arrange responses.
fn connection_loop(stream: TcpStream, daemon: &Daemon, stop: &AtomicBool) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let write_half = match stream.try_clone() {
        Ok(s) => Arc::new(Mutex::new(s)),
        Err(_) => return,
    };
    let mut read_half = stream;

    loop {
        let payload = match read_frame_polling(&mut read_half, || stop.load(Ordering::Acquire)) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean EOF or shutdown between frames
            Err(_) => return,   // truncated / oversized / io: drop the peer
        };
        match wire::decode_request(&payload) {
            Err(_) => {
                // A malformed frame is a protocol violation: answer
                // with a typed rejection (id 0 — the frame's id is
                // unreadable) and hang up rather than guess at the
                // stream's framing from here on.
                send_response(
                    &write_half,
                    &Response::Rejected {
                        id: 0,
                        reason: RejectReason::Invalid,
                    },
                );
                return;
            }
            Ok(req @ Request::Query { id, .. }) => {
                let out = Arc::clone(&write_half);
                let sink = Box::new(move |resp: Response| send_response(&out, &resp));
                if let Err(e) = daemon.submit_with_reply(req, sink) {
                    // The job (and its sink) never queued; reject
                    // synchronously so every request keeps exactly
                    // one response.
                    send_response(
                        &write_half,
                        &Response::Rejected {
                            id,
                            reason: e.reason(),
                        },
                    );
                }
            }
            Ok(req @ Request::Update { id, .. }) => {
                let resp = match daemon.try_submit(req) {
                    Ok(()) => Response::Accepted { id },
                    Err(e) => Response::Rejected {
                        id,
                        reason: e.reason(),
                    },
                };
                send_response(&write_half, &resp);
            }
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// [`wire::read_frame`] adapted to a read-timeout socket: between
/// frames a timeout re-checks `stop`; *inside* a frame timeouts keep
/// waiting (abandoning a half-read frame would desynchronize the
/// stream).
fn read_frame_polling(
    r: &mut TcpStream,
    stop: impl Fn() -> bool,
) -> Result<Option<Vec<u8>>, WireError> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut header[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(None)
                } else {
                    Err(WireError::TruncatedFrame)
                }
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                if filled == 0 && stop() {
                    return Ok(None);
                }
            }
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(header);
    if len as usize > wire::MAX_FRAME {
        return Err(WireError::Oversized { len });
    }
    let mut payload = vec![0u8; len as usize];
    let mut filled = 0;
    while filled < payload.len() {
        match r.read(&mut payload[filled..]) {
            Ok(0) => return Err(WireError::TruncatedFrame),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted || is_timeout(&e) => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(Some(payload))
}

/// A blocking client connection speaking the daemon's wire protocol.
pub struct NetClient {
    stream: TcpStream,
}

impl NetClient {
    /// Connects and disables Nagle (the protocol is request/response;
    /// latency beats batching).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(NetClient { stream })
    }

    /// Sends one request frame.
    pub fn send(&mut self, req: &Request) -> Result<(), WireError> {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&[0u8; 4]);
        wire::encode_request(req, &mut buf);
        let len = (buf.len() - 4) as u32;
        buf[..4].copy_from_slice(&len.to_le_bytes());
        self.stream.write_all(&buf)?;
        Ok(())
    }

    /// Receives one response frame (`None` on server hangup).
    pub fn recv(&mut self) -> Result<Option<Response>, WireError> {
        wire::read_response(&mut self.stream)
    }

    /// Synchronous round trip: send, then block for the response.
    pub fn call(&mut self, req: &Request) -> Result<Response, WireError> {
        self.send(req)?;
        self.recv()?.ok_or(WireError::TruncatedFrame)
    }

    /// An independent handle onto the same connection (so a sender
    /// and a receiver thread can pipeline).
    pub fn try_clone(&self) -> io::Result<NetClient> {
        Ok(NetClient {
            stream: self.stream.try_clone()?,
        })
    }
}

/// What a socket-driven workload run produced. The latency histogram
/// is *round-trip* from each request's scheduled arrival to its
/// response frame — framing, kernel buffers, queueing, and the answer
/// itself all included.
#[derive(Debug)]
pub struct NetWorkloadReport {
    /// First submit to last response.
    pub wall: Duration,
    /// Queries sent.
    pub offered_queries: u64,
    /// Updates sent.
    pub offered_updates: u64,
    /// `Answer` responses received.
    pub answered: u64,
    /// `Accepted` acks received.
    pub accepted: u64,
    /// `Rejected(Overloaded)` responses — admission-control sheds.
    pub shed: u64,
    /// Other rejections (queue-full, invalid, shutting-down).
    pub rejected_other: u64,
    /// Round-trip latency (ns) from scheduled arrival to response.
    pub latency: LatencyHistogram,
}

impl NetWorkloadReport {
    /// Responses of any kind per second of wall time.
    pub fn responses_per_sec(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        (self.answered + self.accepted + self.shed + self.rejected_other) as f64
            / self.wall.as_secs_f64()
    }
}

/// Drives a [`NetFrontend`] at `addr` with the same deterministic
/// workload [`run_workload`](crate::run_workload) uses in-process.
/// `n` is the served graph's vertex count (the generator needs the
/// component layout). Closed-loop runs one synchronous round trip at
/// a time; open-loop pipelines a sender thread on the arrival
/// schedule against a receiver thread correlating responses by id.
pub fn run_net_workload(
    addr: impl ToSocketAddrs,
    cfg: &WorkloadConfig,
    n: u32,
) -> io::Result<NetWorkloadReport> {
    let client = NetClient::connect(addr)?;
    let mut gen = OpGen::new(n, cfg.parts, cfg.profile, cfg.seed);
    let start = Instant::now();
    let deadline = start + cfg.duration;

    let mut report = NetWorkloadReport {
        wall: Duration::ZERO,
        offered_queries: 0,
        offered_updates: 0,
        answered: 0,
        accepted: 0,
        shed: 0,
        rejected_other: 0,
        latency: LatencyHistogram::new(),
    };

    let classify = |report: &mut NetWorkloadReport, resp: &Response| match resp {
        Response::Answer { .. } => report.answered += 1,
        Response::Accepted { .. } => report.accepted += 1,
        Response::Rejected { reason, .. } => {
            if *reason == RejectReason::Overloaded {
                report.shed += 1;
            } else {
                report.rejected_other += 1;
            }
        }
    };

    match cfg.mode {
        Mode::Closed => {
            let mut client = client;
            let mut id = 0u64;
            while Instant::now() < deadline {
                let req = to_request(id, gen.next(), &mut report);
                id += 1;
                let t0 = Instant::now();
                let resp = client
                    .call(&req)
                    .map_err(|e| io::Error::other(e.to_string()))?;
                report.latency.record_duration(t0.elapsed());
                classify(&mut report, &resp);
            }
        }
        Mode::Open { rate } => {
            assert!(rate > 0.0, "open-loop rate must be positive");
            // Scheduled arrival per id; the sender pushes before it
            // sends, so the receiver can always resolve an id.
            let scheduled: Arc<Mutex<Vec<Instant>>> = Arc::new(Mutex::new(Vec::new()));
            let sent = Arc::new(AtomicU64::new(0));
            let done = Arc::new(AtomicBool::new(false));

            // The receiver must never block indefinitely: it could
            // consume the final response and re-enter a blocking read
            // *before* the sender flips `done` (a read timeout set
            // afterwards does not wake an already-blocked read). Poll
            // between frames instead, exactly like the server side.
            let mut recv_stream = client.stream.try_clone()?;
            recv_stream.set_read_timeout(Some(POLL_INTERVAL))?;
            let receiver = {
                let scheduled = Arc::clone(&scheduled);
                let sent = Arc::clone(&sent);
                let done = Arc::clone(&done);
                std::thread::spawn(move || -> (NetWorkloadReport, u64) {
                    let mut r = NetWorkloadReport {
                        wall: Duration::ZERO,
                        offered_queries: 0,
                        offered_updates: 0,
                        answered: 0,
                        accepted: 0,
                        shed: 0,
                        rejected_other: 0,
                        latency: LatencyHistogram::new(),
                    };
                    let mut received = 0u64;
                    loop {
                        let drained = || {
                            done.load(Ordering::Acquire) && received >= sent.load(Ordering::Acquire)
                        };
                        let payload = match read_frame_polling(&mut recv_stream, drained) {
                            Ok(Some(p)) => p,
                            Ok(None) | Err(_) => break, // drained or server went away
                        };
                        let resp = match wire::decode_response(&payload) {
                            Ok(resp) => resp,
                            Err(_) => break,
                        };
                        let at = scheduled.lock().unwrap()[resp.id() as usize];
                        r.latency.record_duration(at.elapsed());
                        classify(&mut r, &resp);
                        received += 1;
                    }
                    (r, received)
                })
            };

            let mut send_client = client;
            let tick = Duration::from_secs_f64(1.0 / rate);
            let mut k = 0u64;
            loop {
                let at = start + tick * k as u32;
                if at >= deadline {
                    break;
                }
                let now = Instant::now();
                if at > now {
                    std::thread::sleep(at - now);
                }
                let req = to_request(k, gen.next(), &mut report);
                scheduled.lock().unwrap().push(at);
                sent.fetch_add(1, Ordering::Release);
                if send_client.send(&req).is_err() {
                    break;
                }
                k += 1;
            }
            done.store(true, Ordering::Release);
            drop(send_client);
            let (r, _received) = receiver.join().expect("net receiver panicked");
            report.answered = r.answered;
            report.accepted = r.accepted;
            report.shed = r.shed;
            report.rejected_other = r.rejected_other;
            report.latency = r.latency;
        }
    }

    report.wall = start.elapsed();
    Ok(report)
}

fn to_request(id: u64, op: Op, report: &mut NetWorkloadReport) -> Request {
    match op {
        Op::Query(query) => {
            report.offered_queries += 1;
            Request::Query { id, query }
        }
        Op::Update(update) => {
            report.offered_updates += 1;
            Request::Update { id, update }
        }
    }
}

/// The no-op update used by probes/tests to exercise the update path
/// without changing any answer (removing a nonexistent edge).
pub fn probe_update(id: u64) -> Request {
    Request::Update {
        id,
        update: EdgeUpdate::Remove(0, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{component_grid, Profile};
    use crate::{Admission, ServeConfig, ShardedStore};
    use bcc_query::{Answer, Query};
    use bcc_smp::Pool;

    fn serve_grid(shards: usize) -> NetFrontend {
        let pool = Pool::new(2);
        let g = component_grid(120, 4, 42);
        let store = Arc::new(ShardedStore::new(&pool, &g, shards).unwrap());
        let daemon = Daemon::spawn(store, ServeConfig::default());
        NetFrontend::spawn(daemon, "127.0.0.1:0").unwrap()
    }

    #[test]
    fn round_trips_queries_and_updates_over_tcp() {
        let frontend = serve_grid(2);
        let mut client = NetClient::connect(frontend.local_addr()).unwrap();
        // 0 and 1 share a ring; 0 and 119 sit in different parts.
        let resp = client
            .call(&Request::Query {
                id: 1,
                query: Query::Connected(0, 1),
            })
            .unwrap();
        assert_eq!(
            resp,
            Response::Answer {
                id: 1,
                answer: Answer::Bool(true)
            }
        );
        let resp = client.call(&probe_update(2)).unwrap();
        assert_eq!(resp, Response::Accepted { id: 2 });
        // Out-of-range: typed rejection, not a dead writer.
        let resp = client
            .call(&Request::Update {
                id: 3,
                update: EdgeUpdate::Insert(0, 10_000),
            })
            .unwrap();
        assert_eq!(
            resp,
            Response::Rejected {
                id: 3,
                reason: RejectReason::Invalid
            }
        );
        let resp = client
            .call(&Request::Query {
                id: 4,
                query: Query::Connected(0, 10_000),
            })
            .unwrap();
        assert_eq!(
            resp,
            Response::Rejected {
                id: 4,
                reason: RejectReason::Invalid
            }
        );
        drop(client);
        let report = frontend.shutdown();
        assert_eq!(report.answered, 1);
        assert_eq!(report.query_errors, 1);
        assert_eq!(report.updates_applied, 1);
    }

    #[test]
    fn malformed_frame_gets_rejected_and_disconnected() {
        let frontend = serve_grid(1);
        let mut stream = TcpStream::connect(frontend.local_addr()).unwrap();
        // A frame whose payload is one unknown tag byte.
        stream.write_all(&1u32.to_le_bytes()).unwrap();
        stream.write_all(&[0x7F]).unwrap();
        let resp = wire::read_response(&mut stream).unwrap().unwrap();
        assert_eq!(
            resp,
            Response::Rejected {
                id: 0,
                reason: RejectReason::Invalid
            }
        );
        // The server hangs up after a protocol violation.
        assert_eq!(wire::read_response(&mut stream).unwrap(), None);
        frontend.shutdown();
    }

    #[test]
    fn open_loop_workload_runs_over_loopback() {
        let frontend = serve_grid(2);
        let report = run_net_workload(
            frontend.local_addr(),
            &WorkloadConfig {
                profile: Profile::ChurnHeavy,
                mode: Mode::Open { rate: 2_000.0 },
                duration: Duration::from_millis(150),
                parts: 4,
                seed: 5,
            },
            120,
        )
        .unwrap();
        let offered = report.offered_queries + report.offered_updates;
        assert!(offered >= 200, "only {offered} scheduled ops ran");
        // Every request got exactly one response.
        assert_eq!(
            report.answered + report.accepted + report.shed + report.rejected_other,
            offered
        );
        assert!(report.answered > 0);
        assert!(report.accepted > 0);
        let serve = frontend.shutdown();
        assert_eq!(serve.answered, report.answered);
        assert_eq!(serve.updates_applied, report.accepted);
    }

    #[test]
    fn overload_sheds_with_typed_rejections_over_tcp() {
        let pool = Pool::new(1);
        let g = component_grid(120, 4, 42);
        let store = Arc::new(ShardedStore::new(&pool, &g, 2).unwrap());
        // A backlog watermark of 0 sheds every update: the degenerate
        // overload that makes the contract observable deterministically.
        let daemon = Daemon::spawn(
            store,
            ServeConfig::builder()
                .admission(Admission {
                    shed_queue_depth: None,
                    shed_backlog: Some(0),
                })
                .build(),
        );
        let frontend = NetFrontend::spawn(daemon, "127.0.0.1:0").unwrap();
        let mut client = NetClient::connect(frontend.local_addr()).unwrap();
        let resp = client.call(&probe_update(1)).unwrap();
        assert_eq!(
            resp,
            Response::Rejected {
                id: 1,
                reason: RejectReason::Overloaded
            }
        );
        // Reads still work while updates shed.
        let resp = client
            .call(&Request::Query {
                id: 2,
                query: Query::Connected(0, 1),
            })
            .unwrap();
        assert!(matches!(resp, Response::Answer { id: 2, .. }));
        drop(client);
        let report = frontend.shutdown();
        assert_eq!(report.shed_updates, 1);
        assert_eq!(report.updates_applied, 0);
    }
}

//! The serving daemon: reader threads over an MPMC query queue,
//! per-shard writer threads (or one group-commit writer) over the
//! update stream, and watermark-based admission control in front of
//! both.
//!
//! ```text
//!                       ┌────────────┐   answer from routed shard's
//!  submit(Query) ───▶   │ query MPMC │ ──▶ reader 0..R ── snapshot
//!  (drivers, TCP)       └────────────┘      │ latency + lag hists
//!                                           ▼ reply sink (TCP path)
//!                 route   ┌─────────────┐
//!  submit(Update) ──┬──▶  │ shard 0 MPMC│ ──▶ writer 0 ─commit─▶ shard 0
//!    │ admission    ├──▶  │ shard 1 MPMC│ ──▶ writer 1 ─commit─▶ shard 1
//!    │ watermarks   ⋮     └─────────────┘         ⋮ (writer lock +
//!    ▼ shed ⇒ Rejected    ┌─────────────┐           routing re-check)
//!  (typed, counted)       │ coordinator │ ──▶ cross-shard migrations
//!                         └─────────────┘     (both locks, in order)
//! ```
//!
//! * **Readers** pull [`QueryJob`]s and answer each against the
//!   current snapshot of the shard the query routes to — never
//!   blocking on commits. Each reader owns its latency/lag histograms;
//!   they merge into one [`ServeReport`] at shutdown.
//! * **Writers** ([`Writers::PerShard`], the default): one thread per
//!   shard drains that shard's queue with group-commit batching
//!   ([`ServeConfig::batch_max`] / [`ServeConfig::flush_interval`])
//!   and commits under the shard's writer lock via
//!   [`ShardedStore::commit_shard`] — shards have dedicated SPMD
//!   pools, so commits on different shards genuinely overlap. Inserts
//!   that span shards go to a **coordinator** thread which runs the
//!   lock-ordered migration path ([`ShardedStore::migrate`]).
//!   [`Writers::Single`] keeps PR 6's one-writer loop for the
//!   `writers=1` ablation.
//! * **Admission control** ([`Admission`]): updates are *shed* — with
//!   a typed [`SubmitError::Overloaded`], never a silent drop — when
//!   the owning shard's queue is deeper than
//!   [`Admission::shed_queue_depth`] or the daemon-wide count of
//!   admitted-but-uncommitted updates exceeds
//!   [`Admission::shed_backlog`] (the staleness watermark: that
//!   backlog is exactly how far snapshots trail the offered stream).
//!   Sheds count into [`ServeReport::shed_updates`] and the
//!   [`Telemetry`] sink. Queries are never shed; protecting the read
//!   tail is the point of shedding writes.
//! * **Shutdown** closes the query queue first (readers drain and
//!   exit), then the shard queues (writers flush their last batches,
//!   re-dispatching strays), then the coordinator queue — so nothing
//!   submitted before [`Daemon::shutdown`] is lost.

use crate::api::{RejectReason, Request, Response, SubmitError};
use crate::hist::LatencyHistogram;
use crate::shard::{ApplySummary, ServeError, ShardedStore};
use bcc_query::{Answer, EdgeUpdate, Query};
use bcc_smp::{MpmcQueue, PopResult, Telemetry, TryPushError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Writer topology: the `writers=1` vs `writers=per-shard` ablation
/// knob.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Writers {
    /// One group-commit writer thread funnels every update through
    /// [`ShardedStore::apply`] (PR 6's topology).
    Single,
    /// One writer thread per shard plus a migration coordinator; the
    /// default. Commits on different shards proceed in parallel.
    PerShard,
}

impl Writers {
    /// Stable name used in benchmark cell keys (`w1` / `wps`).
    pub fn name(self) -> &'static str {
        match self {
            Writers::Single => "w1",
            Writers::PerShard => "wps",
        }
    }
}

/// Load-shedding watermarks. `None` disables a watermark; with both
/// disabled the daemon never sheds (full queues still refuse with
/// [`SubmitError::QueueFull`] on the non-blocking path).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Admission {
    /// Shed an update when its target queue already holds at least
    /// this many items.
    pub shed_queue_depth: Option<usize>,
    /// Shed an update when the daemon-wide count of admitted-but-not-
    /// yet-committed updates reaches this. This is the staleness
    /// watermark: snapshots trail the offered stream by exactly this
    /// backlog, so bounding it bounds how stale answers can get under
    /// overload.
    pub shed_backlog: Option<usize>,
}

/// Tuning for a [`Daemon`]. Build one with
/// [`ServeConfig::builder`]; the fields stay public for
/// struct-update syntax but new code should prefer the builder.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Reader threads pulling from the query queue.
    pub readers: usize,
    /// Query-queue capacity: the closed-loop outstanding-request bound.
    pub queue_capacity: usize,
    /// Capacity of each update queue (one total for
    /// [`Writers::Single`]; one per shard plus the coordinator's for
    /// [`Writers::PerShard`]).
    pub update_capacity: usize,
    /// A writer commits as soon as this many updates are staged…
    pub batch_max: usize,
    /// …or as soon as the oldest staged update is this old.
    pub flush_interval: Duration,
    /// Writer topology (default [`Writers::PerShard`]).
    pub writers: Writers,
    /// Load-shedding watermarks (default: disabled).
    pub admission: Admission,
    /// Optional sink receiving per-answer snapshot-lag observations
    /// and shed counts (the same channel `PhaseReport` reads), so a
    /// daemon run and a pipeline run report staleness uniformly.
    pub telemetry: Option<Arc<Telemetry>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            readers: 1,
            queue_capacity: 1024,
            update_capacity: 1024,
            batch_max: 64,
            flush_interval: Duration::from_millis(2),
            writers: Writers::PerShard,
            admission: Admission::default(),
            telemetry: None,
        }
    }
}

impl ServeConfig {
    /// Starts configuring a daemon (mirrors `BccConfig`'s builder
    /// style).
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            config: ServeConfig::default(),
        }
    }
}

/// Builder for [`ServeConfig`] — see [`ServeConfig::builder`].
#[derive(Clone, Debug)]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

impl ServeConfigBuilder {
    /// Reader threads pulling from the query queue (default 1).
    pub fn readers(mut self, readers: usize) -> Self {
        self.config.readers = readers;
        self
    }

    /// Query-queue capacity (default 1024).
    pub fn queue_capacity(mut self, cap: usize) -> Self {
        self.config.queue_capacity = cap;
        self
    }

    /// Per-writer update-queue capacity (default 1024).
    pub fn update_capacity(mut self, cap: usize) -> Self {
        self.config.update_capacity = cap;
        self
    }

    /// Group-commit batch bound (default 64).
    pub fn batch_max(mut self, batch_max: usize) -> Self {
        self.config.batch_max = batch_max;
        self
    }

    /// Group-commit staleness bound (default 2 ms).
    pub fn flush_interval(mut self, interval: Duration) -> Self {
        self.config.flush_interval = interval;
        self
    }

    /// Writer topology (default [`Writers::PerShard`]).
    pub fn writers(mut self, writers: Writers) -> Self {
        self.config.writers = writers;
        self
    }

    /// Load-shedding watermarks (default disabled).
    pub fn admission(mut self, admission: Admission) -> Self {
        self.config.admission = admission;
        self
    }

    /// Telemetry sink for snapshot-lag and shed observations.
    pub fn telemetry(mut self, sink: Arc<Telemetry>) -> Self {
        self.config.telemetry = Some(sink);
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> ServeConfig {
        self.config
    }
}

/// A query's answer (or rejection) delivered asynchronously — the TCP
/// front-end hands one per connection-submitted query so the reader
/// thread can write the response frame.
pub type ReplySink = Box<dyn FnOnce(Response) + Send>;

/// One queued query: what to ask and when it (nominally) arrived.
/// Open-loop drivers stamp the *scheduled* arrival time, so queueing
/// delay counts against latency (no coordinated omission).
pub struct QueryJob {
    /// The query to answer.
    pub query: Query,
    /// Arrival instant that latency is measured from.
    pub issued: Instant,
    /// Correlation id echoed into the reply (0 when uncorrelated).
    id: u64,
    /// Where to deliver the [`Response`], if anywhere.
    reply: Option<ReplySink>,
}

impl std::fmt::Debug for QueryJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryJob")
            .field("query", &self.query)
            .field("issued", &self.issued)
            .field("id", &self.id)
            .field("reply", &self.reply.is_some())
            .finish()
    }
}

/// What one reader accumulated.
struct ReaderReport {
    answered: u64,
    errors: u64,
    /// Answers that came back `true`/non-empty — a cheap checksum so
    /// the benchmark work cannot be optimized away and profiles can
    /// sanity-check their query mix.
    positive: u64,
    latency: LatencyHistogram,
    lag_commits: LatencyHistogram,
    lag_wall: LatencyHistogram,
}

/// What one writer (or the coordinator) accumulated.
struct WriterReport {
    updates_applied: u64,
    commits: u64,
    migrations: u64,
    commit_latency: LatencyHistogram,
    /// Commit wall time per shard (from `CommitStats::seconds`).
    shard_commit_latency: Vec<LatencyHistogram>,
    error: Option<ServeError>,
}

impl WriterReport {
    fn new(num_shards: usize) -> Self {
        WriterReport {
            updates_applied: 0,
            commits: 0,
            migrations: 0,
            commit_latency: LatencyHistogram::new(),
            shard_commit_latency: (0..num_shards).map(|_| LatencyHistogram::new()).collect(),
            error: None,
        }
    }

    /// Folds one commit's `(shard, stats)` attribution in.
    fn record_stats(&mut self, stats: &[(usize, bcc_query::CommitStats)]) {
        for &(s, st) in stats {
            self.commits += 1;
            self.shard_commit_latency[s].record_duration(Duration::from_secs_f64(st.seconds));
        }
    }
}

/// Merged end-of-run statistics for one daemon lifetime.
#[derive(Debug)]
pub struct ServeReport {
    /// Queries answered across all readers.
    pub answered: u64,
    /// Queries rejected (out-of-range vertices).
    pub query_errors: u64,
    /// Answers that were `true` / non-empty (see `ReaderReport`).
    pub positive: u64,
    /// Per-answer latency (ns), from `QueryJob::issued` to answered.
    pub latency: LatencyHistogram,
    /// Per-answer snapshot lag in commits behind the shard's latest
    /// epoch (histogram over answers; values are commit counts).
    pub lag_commits: LatencyHistogram,
    /// Per-answer snapshot age in nanoseconds.
    pub lag_wall: LatencyHistogram,
    /// Updates the writers applied.
    pub updates_applied: u64,
    /// Updates shed by admission control (each one was answered with a
    /// typed `Overloaded` rejection — nothing is dropped silently).
    pub shed_updates: u64,
    /// Shard commits the writers issued.
    pub commits: u64,
    /// Cross-shard migrations performed.
    pub migrations: u64,
    /// Writer threads that served the update stream (1 for
    /// [`Writers::Single`], shard count for [`Writers::PerShard`];
    /// excludes the migration coordinator).
    pub writer_threads: usize,
    /// Per-commit-batch apply latency (ns), queue-side: what one
    /// writer's flush cost end to end.
    pub commit_latency: LatencyHistogram,
    /// Per-shard commit wall time (ns, from `CommitStats::seconds`) —
    /// index `s` is shard `s`. The `writers=1` vs `writers=per-shard`
    /// ablation reads these to show where commit time concentrated.
    pub shard_commit_latency: Vec<LatencyHistogram>,
    /// First writer error, if any (that writer stops on one).
    pub writer_error: Option<ServeError>,
}

/// A running serving instance (see the [module docs](self)).
pub struct Daemon {
    store: Arc<ShardedStore>,
    queries: Arc<MpmcQueue<QueryJob>>,
    /// One queue for [`Writers::Single`], one per shard otherwise.
    update_queues: Vec<Arc<MpmcQueue<EdgeUpdate>>>,
    /// Cross-shard inserts ([`Writers::PerShard`] only).
    coordinator: Option<Arc<MpmcQueue<EdgeUpdate>>>,
    admission: Admission,
    /// Updates admitted but not yet committed (the staleness backlog).
    backlog: Arc<AtomicU64>,
    shed: AtomicU64,
    telemetry: Option<Arc<Telemetry>>,
    readers: Vec<JoinHandle<ReaderReport>>,
    writers: Vec<JoinHandle<WriterReport>>,
    coordinator_thread: Option<JoinHandle<WriterReport>>,
    writer_threads: usize,
}

impl Daemon {
    /// Spawns the reader pool and the writer topology over `store`.
    pub fn spawn(store: Arc<ShardedStore>, config: ServeConfig) -> Daemon {
        assert!(config.readers >= 1, "need at least one reader");
        assert!(config.batch_max >= 1, "writer batches need at least 1");
        let queries = Arc::new(MpmcQueue::new(config.queue_capacity));
        let backlog = Arc::new(AtomicU64::new(0));

        let readers = (0..config.readers)
            .map(|_| {
                let store = Arc::clone(&store);
                let queries = Arc::clone(&queries);
                let telemetry = config.telemetry.clone();
                std::thread::spawn(move || reader_loop(&store, &queries, telemetry.as_deref()))
            })
            .collect();

        let num_shards = store.num_shards();
        let (update_queues, coordinator, writers, coordinator_thread, writer_threads) =
            match config.writers {
                Writers::Single => {
                    let q = Arc::new(MpmcQueue::new(config.update_capacity));
                    let writer = {
                        let store = Arc::clone(&store);
                        let q = Arc::clone(&q);
                        let backlog = Arc::clone(&backlog);
                        let (batch_max, flush) = (config.batch_max, config.flush_interval);
                        std::thread::spawn(move || {
                            single_writer_loop(&store, &q, &backlog, batch_max, flush)
                        })
                    };
                    (vec![q], None, vec![writer], None, 1)
                }
                Writers::PerShard => {
                    let shard_queues: Vec<_> = (0..num_shards)
                        .map(|_| Arc::new(MpmcQueue::new(config.update_capacity)))
                        .collect();
                    let coord = Arc::new(MpmcQueue::new(config.update_capacity));
                    let writers = (0..num_shards)
                        .map(|s| {
                            let store = Arc::clone(&store);
                            let q = Arc::clone(&shard_queues[s]);
                            let coord = Arc::clone(&coord);
                            let backlog = Arc::clone(&backlog);
                            let (batch_max, flush) = (config.batch_max, config.flush_interval);
                            std::thread::spawn(move || {
                                shard_writer_loop(&store, s, &q, &coord, &backlog, batch_max, flush)
                            })
                        })
                        .collect();
                    let coordinator_thread = {
                        let store = Arc::clone(&store);
                        let coord = Arc::clone(&coord);
                        let backlog = Arc::clone(&backlog);
                        std::thread::spawn(move || coordinator_loop(&store, &coord, &backlog))
                    };
                    (
                        shard_queues,
                        Some(coord),
                        writers,
                        Some(coordinator_thread),
                        num_shards,
                    )
                }
            };

        Daemon {
            store,
            queries,
            update_queues,
            coordinator,
            admission: config.admission,
            backlog,
            shed: AtomicU64::new(0),
            telemetry: config.telemetry,
            readers,
            writers,
            coordinator_thread,
            writer_threads,
        }
    }

    /// The store this daemon serves.
    pub fn store(&self) -> &Arc<ShardedStore> {
        &self.store
    }

    /// Submits one [`Request`] arriving *now*, blocking while the
    /// target queue is full (closed-loop backpressure). Admission
    /// control may still shed an update *before* blocking — see
    /// [`SubmitError`] for the full refusal contract.
    pub fn submit(&self, request: Request) -> Result<(), SubmitError> {
        self.submit_at(request, Instant::now())
    }

    /// [`submit`](Self::submit) with an explicit arrival stamp
    /// (open-loop drivers pass the *scheduled* arrival, so time spent
    /// waiting for queue room is charged to latency).
    pub fn submit_at(&self, request: Request, issued: Instant) -> Result<(), SubmitError> {
        self.submit_inner(request, issued, None, true)
    }

    /// Non-blocking [`submit`](Self::submit): a full queue returns
    /// [`SubmitError::QueueFull`] immediately instead of waiting. The
    /// TCP front-end uses this so a socket thread never stalls on a
    /// saturated daemon.
    pub fn try_submit(&self, request: Request) -> Result<(), SubmitError> {
        self.submit_inner(request, Instant::now(), None, false)
    }

    /// Non-blocking submit attaching a reply sink to a query (the
    /// answer or rejection is delivered on the reader thread). For an
    /// update request the sink is invoked synchronously with the
    /// acceptance/rejection before this returns.
    pub fn submit_with_reply(&self, request: Request, reply: ReplySink) -> Result<(), SubmitError> {
        self.submit_inner(request, Instant::now(), Some(reply), false)
    }

    fn submit_inner(
        &self,
        request: Request,
        issued: Instant,
        reply: Option<ReplySink>,
        blocking: bool,
    ) -> Result<(), SubmitError> {
        match request {
            Request::Query { id, query } => {
                let job = QueryJob {
                    query,
                    issued,
                    id,
                    reply,
                };
                if blocking {
                    self.queries
                        .push(job)
                        .map_err(|_| SubmitError::ShuttingDown(request))
                } else {
                    self.queries.try_push(job).map_err(|e| match e {
                        TryPushError::Full(_) => SubmitError::QueueFull(request),
                        TryPushError::Closed(_) => SubmitError::ShuttingDown(request),
                    })
                }
            }
            Request::Update { id, update } => {
                let result = self.submit_update_inner(request, update, blocking);
                if let Some(reply) = reply {
                    reply(match &result {
                        Ok(()) => Response::Accepted { id },
                        Err(e) => Response::Rejected {
                            id,
                            reason: e.reason(),
                        },
                    });
                }
                result
            }
        }
    }

    fn submit_update_inner(
        &self,
        request: Request,
        update: EdgeUpdate,
        blocking: bool,
    ) -> Result<(), SubmitError> {
        let (u, v) = match update {
            EdgeUpdate::Insert(u, v) | EdgeUpdate::Remove(u, v) => (u, v),
        };
        let n = self.store.n();
        if u >= n || v >= n {
            return Err(SubmitError::Invalid(request));
        }
        // Route: anything whose endpoints currently live in different
        // shards goes to the coordinator (when it exists), everything
        // else to the owning shard's writer. Removes ride the
        // coordinator too — not because a cross-shard remove does
        // anything (it is a no-op by definition), but because an
        // insert/remove pair for the same edge must stay FIFO, and
        // while the insert is still pending the remove reads the same
        // cross-shard routing and must land in the same queue behind
        // it. The routing read here is advisory — writers re-check
        // under their locks — so a stale read only costs a
        // re-dispatch.
        let queue = match &self.coordinator {
            Some(coord) if self.store.shard_of(u) != self.store.shard_of(v) => coord,
            _ => {
                let s = self.store.shard_of(u);
                &self.update_queues[s.min(self.update_queues.len() - 1)]
            }
        };

        // Admission watermarks, checked before any queueing so a shed
        // never occupies queue room.
        let overloaded = self
            .admission
            .shed_queue_depth
            .is_some_and(|wm| queue.len() >= wm)
            || self
                .admission
                .shed_backlog
                .is_some_and(|wm| self.backlog.load(Ordering::Relaxed) >= wm as u64);
        if overloaded {
            self.shed.fetch_add(1, Ordering::Relaxed);
            if let Some(t) = &self.telemetry {
                t.record_shed(1);
            }
            return Err(SubmitError::Overloaded(request));
        }

        self.backlog.fetch_add(1, Ordering::Relaxed);
        let pushed = if blocking {
            queue.push(update).map_err(|_| TryPushError::Closed(update))
        } else {
            queue.try_push(update)
        };
        pushed.map_err(|e| {
            self.backlog.fetch_sub(1, Ordering::Relaxed);
            match e {
                TryPushError::Full(_) => SubmitError::QueueFull(request),
                TryPushError::Closed(_) => SubmitError::ShuttingDown(request),
            }
        })
    }

    /// Enqueues a query arriving *now*; blocks while the query queue
    /// is full. `Err` after shutdown began.
    #[deprecated(note = "use Daemon::submit(Request::Query { .. })")]
    pub fn submit_query(&self, query: Query) -> Result<(), Query> {
        self.submit(Request::Query { id: 0, query })
            .map_err(|_| query)
    }

    /// Enqueues a query with an explicit arrival stamp.
    #[deprecated(note = "use Daemon::submit_at(Request::Query { .. }, issued)")]
    pub fn submit_query_at(&self, query: Query, issued: Instant) -> Result<(), Query> {
        self.submit_at(Request::Query { id: 0, query }, issued)
            .map_err(|_| query)
    }

    /// Enqueues an edge update for the writers; blocks while the
    /// target queue is full. `Err` after shutdown began.
    #[deprecated(note = "use Daemon::submit(Request::Update { .. })")]
    pub fn submit_update(&self, update: EdgeUpdate) -> Result<(), EdgeUpdate> {
        self.submit(Request::Update { id: 0, update })
            .map_err(|_| update)
    }

    /// Queries waiting in the queue right now.
    pub fn queued_queries(&self) -> usize {
        self.queries.len()
    }

    /// Updates admitted but not yet committed (queued plus staged).
    pub fn update_backlog(&self) -> u64 {
        self.backlog.load(Ordering::Relaxed)
    }

    /// Updates shed by admission control so far.
    pub fn shed_updates(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Drains the queues, stops every thread, and merges their
    /// statistics. Everything *admitted* before this call is answered
    /// or applied (shed updates were refused at the door, visibly).
    pub fn shutdown(mut self) -> ServeReport {
        self.queries.close();
        let num_shards = self.store.num_shards();
        let mut report = ServeReport {
            answered: 0,
            query_errors: 0,
            positive: 0,
            latency: LatencyHistogram::new(),
            lag_commits: LatencyHistogram::new(),
            lag_wall: LatencyHistogram::new(),
            updates_applied: 0,
            shed_updates: 0,
            commits: 0,
            migrations: 0,
            writer_threads: self.writer_threads,
            commit_latency: LatencyHistogram::new(),
            shard_commit_latency: (0..num_shards).map(|_| LatencyHistogram::new()).collect(),
            writer_error: None,
        };
        for r in self.readers.drain(..) {
            let rr = r.join().expect("reader thread panicked");
            report.answered += rr.answered;
            report.query_errors += rr.errors;
            report.positive += rr.positive;
            report.latency.merge(&rr.latency);
            report.lag_commits.merge(&rr.lag_commits);
            report.lag_wall.merge(&rr.lag_wall);
        }
        // Shard writers first (they may still push migrations to the
        // coordinator while draining), coordinator last.
        for q in &self.update_queues {
            q.close();
        }
        let merge_writer = |report: &mut ServeReport, wr: WriterReport| {
            report.updates_applied += wr.updates_applied;
            report.commits += wr.commits;
            report.migrations += wr.migrations;
            report.commit_latency.merge(&wr.commit_latency);
            for (dst, src) in report
                .shard_commit_latency
                .iter_mut()
                .zip(&wr.shard_commit_latency)
            {
                dst.merge(src);
            }
            if report.writer_error.is_none() {
                report.writer_error = wr.error;
            }
        };
        for w in self.writers.drain(..) {
            let wr = w.join().expect("writer thread panicked");
            merge_writer(&mut report, wr);
        }
        if let Some(c) = &self.coordinator {
            c.close();
        }
        if let Some(t) = self.coordinator_thread.take() {
            let wr = t.join().expect("coordinator thread panicked");
            merge_writer(&mut report, wr);
        }
        report.shed_updates = self.shed.load(Ordering::Relaxed);
        report
    }
}

fn reader_loop(
    store: &ShardedStore,
    queries: &MpmcQueue<QueryJob>,
    telemetry: Option<&Telemetry>,
) -> ReaderReport {
    let mut rr = ReaderReport {
        answered: 0,
        errors: 0,
        positive: 0,
        latency: LatencyHistogram::new(),
        lag_commits: LatencyHistogram::new(),
        lag_wall: LatencyHistogram::new(),
    };
    while let Some(job) = queries.pop() {
        match store.answer_with_lag(&job.query) {
            Err(_) => {
                rr.errors += 1;
                if let Some(reply) = job.reply {
                    reply(Response::Rejected {
                        id: job.id,
                        reason: RejectReason::Invalid,
                    });
                }
            }
            Ok(lagged) => {
                rr.latency.record_duration(job.issued.elapsed());
                rr.lag_commits.record(lagged.lag_commits);
                rr.lag_wall.record_duration(lagged.lag_wall);
                if let Some(t) = telemetry {
                    t.record_snapshot_lag(lagged.lag_commits, lagged.lag_wall);
                }
                rr.answered += 1;
                rr.positive += match &lagged.answer {
                    Answer::Bool(b) => *b as u64,
                    Answer::Vertices(v) => (!v.is_empty()) as u64,
                };
                if let Some(reply) = job.reply {
                    reply(Response::Answer {
                        id: job.id,
                        answer: lagged.answer,
                    });
                }
            }
        }
    }
    rr
}

fn single_writer_loop(
    store: &ShardedStore,
    updates: &MpmcQueue<EdgeUpdate>,
    backlog: &AtomicU64,
    batch_max: usize,
    flush_interval: Duration,
) -> WriterReport {
    let mut wr = WriterReport::new(store.num_shards());
    let mut staged: Vec<EdgeUpdate> = Vec::with_capacity(batch_max);
    let mut deadline: Option<Instant> = None;

    let flush = |staged: &mut Vec<EdgeUpdate>, wr: &mut WriterReport| -> bool {
        if staged.is_empty() {
            return true;
        }
        let t0 = Instant::now();
        match store.apply(staged) {
            Ok(ApplySummary {
                migrations, stats, ..
            }) => {
                wr.commit_latency.record_duration(t0.elapsed());
                wr.updates_applied += staged.len() as u64;
                backlog.fetch_sub(staged.len() as u64, Ordering::Relaxed);
                wr.migrations += migrations as u64;
                wr.record_stats(&stats);
                staged.clear();
                true
            }
            Err(e) => {
                wr.error = Some(e);
                false
            }
        }
    };

    loop {
        let wait = match deadline {
            Some(d) => d.saturating_duration_since(Instant::now()),
            None => Duration::from_millis(50),
        };
        match updates.pop_timeout(wait) {
            PopResult::Item(u) => {
                if staged.is_empty() {
                    deadline = Some(Instant::now() + flush_interval);
                }
                staged.push(u);
                if staged.len() >= batch_max {
                    if !flush(&mut staged, &mut wr) {
                        // Fail fast: close the intake so producers
                        // get an error instead of a full-queue stall.
                        updates.close();
                        break;
                    }
                    deadline = None;
                }
            }
            PopResult::TimedOut => {
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    if !flush(&mut staged, &mut wr) {
                        updates.close();
                        break;
                    }
                    deadline = None;
                }
            }
            PopResult::Closed => {
                flush(&mut staged, &mut wr);
                break;
            }
        }
    }
    wr
}

/// One shard's writer: group-commits its queue into the shard via
/// [`ShardedStore::commit_shard`], re-dispatching what no longer
/// belongs here (strays to their shard, cross-shard inserts to the
/// coordinator).
fn shard_writer_loop(
    store: &ShardedStore,
    shard: usize,
    updates: &MpmcQueue<EdgeUpdate>,
    coordinator: &MpmcQueue<EdgeUpdate>,
    backlog: &AtomicU64,
    batch_max: usize,
    flush_interval: Duration,
) -> WriterReport {
    let mut wr = WriterReport::new(store.num_shards());
    let mut staged: Vec<EdgeUpdate> = Vec::with_capacity(batch_max);
    let mut deadline: Option<Instant> = None;

    let flush = |staged: &mut Vec<EdgeUpdate>, wr: &mut WriterReport| -> bool {
        if staged.is_empty() {
            return true;
        }
        let t0 = Instant::now();
        let out = match store.commit_shard(shard, staged) {
            Ok(out) => out,
            Err(e) => {
                wr.error = Some(e);
                return false;
            }
        };
        wr.commit_latency.record_duration(t0.elapsed());
        wr.updates_applied += out.applied as u64;
        backlog.fetch_sub(out.applied as u64, Ordering::Relaxed);
        if let Some(st) = out.stats {
            wr.record_stats(&[(shard, st)]);
        }
        staged.clear();
        // Re-dispatch what moved out from under us. Cross-shard
        // inserts go to the coordinator (blocking is fine: the
        // coordinator drains independently and we hold no locks);
        // strays commit directly into their new shard — they are rare
        // (only produced by a racing migration), so the extra small
        // commit beats queue-juggling.
        for up in out.cross_shard {
            if coordinator.push(up).is_err() {
                // Coordinator already closed (shutdown tail): migrate
                // inline so the admitted update is not lost.
                if !resolve_inline(store, up, wr, backlog) {
                    return false;
                }
            }
        }
        for up in out.strays {
            if !resolve_stray(store, coordinator, up, wr, backlog) {
                return false;
            }
        }
        true
    };

    loop {
        let wait = match deadline {
            Some(d) => d.saturating_duration_since(Instant::now()),
            None => Duration::from_millis(50),
        };
        match updates.pop_timeout(wait) {
            PopResult::Item(u) => {
                if staged.is_empty() {
                    deadline = Some(Instant::now() + flush_interval);
                }
                staged.push(u);
                if staged.len() >= batch_max {
                    if !flush(&mut staged, &mut wr) {
                        updates.close();
                        break;
                    }
                    deadline = None;
                }
            }
            PopResult::TimedOut => {
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    if !flush(&mut staged, &mut wr) {
                        updates.close();
                        break;
                    }
                    deadline = None;
                }
            }
            PopResult::Closed => {
                flush(&mut staged, &mut wr);
                break;
            }
        }
    }
    wr
}

/// Re-resolves a stray update against current routing: same-shard ones
/// commit into their new shard, cross-shard inserts go to the
/// coordinator (or migrate inline if it already closed). Returns
/// `false` on a store error (recorded in `wr`).
fn resolve_stray(
    store: &ShardedStore,
    coordinator: &MpmcQueue<EdgeUpdate>,
    up: EdgeUpdate,
    wr: &mut WriterReport,
    backlog: &AtomicU64,
) -> bool {
    let mut pending = vec![up];
    while let Some(up) = pending.pop() {
        let (u, v) = match up {
            EdgeUpdate::Insert(u, v) | EdgeUpdate::Remove(u, v) => (u, v),
        };
        let (su, sv) = (store.shard_of(u), store.shard_of(v));
        if su != sv {
            match up {
                EdgeUpdate::Remove(..) => {
                    wr.updates_applied += 1;
                    backlog.fetch_sub(1, Ordering::Relaxed);
                }
                EdgeUpdate::Insert(..) => {
                    if coordinator.push(up).is_err() && !resolve_inline(store, up, wr, backlog) {
                        return false;
                    }
                }
            }
            continue;
        }
        match store.commit_shard(su, &[up]) {
            Ok(out) => {
                wr.updates_applied += out.applied as u64;
                backlog.fetch_sub(out.applied as u64, Ordering::Relaxed);
                if let Some(st) = out.stats {
                    wr.record_stats(&[(su, st)]);
                }
                pending.extend(out.strays);
                pending.extend(out.cross_shard);
            }
            Err(e) => {
                wr.error = Some(e);
                return false;
            }
        }
    }
    true
}

/// Resolves one coordinator-routed update inline: inserts migrate
/// (locking both shards in index order), removes commit into their
/// shard — or resolve as no-ops when the endpoints really are in
/// different shards, where no edge can exist.
fn resolve_inline(
    store: &ShardedStore,
    up: EdgeUpdate,
    wr: &mut WriterReport,
    backlog: &AtomicU64,
) -> bool {
    match up {
        EdgeUpdate::Insert(u, v) => match store.migrate(u, v) {
            Ok(out) => {
                wr.updates_applied += 1;
                backlog.fetch_sub(1, Ordering::Relaxed);
                wr.migrations += out.migrated as u64;
                wr.record_stats(&out.stats);
                true
            }
            Err(e) => {
                wr.error = Some(e);
                false
            }
        },
        EdgeUpdate::Remove(u, v) => loop {
            let (su, sv) = (store.shard_of(u), store.shard_of(v));
            if su != sv {
                // Different shards ⇒ different components ⇒ the edge
                // does not exist; the remove is a committed no-op.
                wr.updates_applied += 1;
                backlog.fetch_sub(1, Ordering::Relaxed);
                return true;
            }
            match store.commit_shard(su, &[up]) {
                Ok(out) => {
                    wr.updates_applied += out.applied as u64;
                    backlog.fetch_sub(out.applied as u64, Ordering::Relaxed);
                    if let Some(st) = out.stats {
                        wr.record_stats(&[(su, st)]);
                    }
                    if out.strays.is_empty() {
                        return true;
                    }
                    // Routing moved underneath the commit; re-read and
                    // retry (the only possible stray is `up` itself).
                }
                Err(e) => {
                    wr.error = Some(e);
                    return false;
                }
            }
        },
    }
}

/// The migration coordinator: serially resolves updates whose
/// endpoints routed to different shards at submit time — inserts by
/// migrating (both writer locks, index order; see
/// `ShardedStore::migrate`), removes by committing wherever the
/// endpoints now live. Serializing these through one thread is what
/// keeps an insert/remove pair for the same edge FIFO while its
/// routing is in flux.
fn coordinator_loop(
    store: &ShardedStore,
    queue: &MpmcQueue<EdgeUpdate>,
    backlog: &AtomicU64,
) -> WriterReport {
    let mut wr = WriterReport::new(store.num_shards());
    while let Some(up) = queue.pop() {
        if !resolve_inline(store, up, &mut wr, backlog) {
            queue.close();
            break;
        }
    }
    wr
}

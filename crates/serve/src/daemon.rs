//! The serving daemon: reader threads over an MPMC query queue, one
//! batching writer over the update stream.
//!
//! ```text
//!                    ┌────────────┐   answer from routed shard's
//!  submit_query ──▶  │ query MPMC │ ──▶ reader 0..R  ── snapshot
//!  (closed/open      └────────────┘       │  per-answer latency +
//!   drivers)                              ▼  snapshot-lag histograms
//!                    ┌────────────┐
//!  submit_update ──▶ │ update MPMC│ ──▶ writer (single) ──▶ staged
//!                    └────────────┘   batch ─commit─▶ touched shard
//! ```
//!
//! * **Readers** pull [`QueryJob`]s and answer each against the
//!   current snapshot of the shard the query routes to — never
//!   blocking on commits (the store's publication ring guarantees
//!   that). Each reader owns its latency/lag histograms; they merge
//!   into one [`ServeReport`] at shutdown.
//! * **The writer** drains [`EdgeUpdate`]s into a staged batch and
//!   commits when the batch reaches [`ServeConfig::batch_max`] *or*
//!   the oldest staged update has waited
//!   [`ServeConfig::flush_interval`] — the classic group-commit
//!   policy: batching amortizes rebuild cost, the interval bounds
//!   staleness.
//! * **Shutdown** closes the query queue first (readers drain and
//!   exit), then the update queue (the writer flushes its last batch),
//!   so nothing submitted before [`Daemon::shutdown`] is lost.

use crate::hist::LatencyHistogram;
use crate::shard::{ApplySummary, ServeError, ShardedStore};
use bcc_query::{Answer, EdgeUpdate, Query};
use bcc_smp::{MpmcQueue, PopResult, Telemetry};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for a [`Daemon`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Reader threads pulling from the query queue.
    pub readers: usize,
    /// Query-queue capacity: the closed-loop outstanding-request bound.
    pub queue_capacity: usize,
    /// Update-queue capacity.
    pub update_capacity: usize,
    /// The writer commits as soon as this many updates are staged.
    pub batch_max: usize,
    /// …or as soon as the oldest staged update is this old.
    pub flush_interval: Duration,
    /// Optional sink receiving per-answer snapshot-lag observations
    /// (the same channel `PhaseReport` reads), so a daemon run and a
    /// pipeline run report staleness uniformly.
    pub telemetry: Option<Arc<Telemetry>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            readers: 1,
            queue_capacity: 1024,
            update_capacity: 1024,
            batch_max: 64,
            flush_interval: Duration::from_millis(2),
            telemetry: None,
        }
    }
}

/// One queued query: what to ask and when it (nominally) arrived.
/// Open-loop drivers stamp the *scheduled* arrival time, so queueing
/// delay counts against latency (no coordinated omission).
#[derive(Clone, Debug)]
pub struct QueryJob {
    /// The query to answer.
    pub query: Query,
    /// Arrival instant that latency is measured from.
    pub issued: Instant,
}

/// What one reader accumulated.
struct ReaderReport {
    answered: u64,
    errors: u64,
    /// Answers that came back `true`/non-empty — a cheap checksum so
    /// the benchmark work cannot be optimized away and profiles can
    /// sanity-check their query mix.
    positive: u64,
    latency: LatencyHistogram,
    lag_commits: LatencyHistogram,
    lag_wall: LatencyHistogram,
}

/// What the writer accumulated.
struct WriterReport {
    updates_applied: u64,
    commits: u64,
    migrations: u64,
    commit_latency: LatencyHistogram,
    error: Option<ServeError>,
}

/// Merged end-of-run statistics for one daemon lifetime.
#[derive(Debug)]
pub struct ServeReport {
    /// Queries answered across all readers.
    pub answered: u64,
    /// Queries rejected (out-of-range vertices).
    pub query_errors: u64,
    /// Answers that were `true` / non-empty (see `ReaderReport`).
    pub positive: u64,
    /// Per-answer latency (ns), from `QueryJob::issued` to answered.
    pub latency: LatencyHistogram,
    /// Per-answer snapshot lag in commits behind the shard's latest
    /// epoch (histogram over answers; values are commit counts).
    pub lag_commits: LatencyHistogram,
    /// Per-answer snapshot age in nanoseconds.
    pub lag_wall: LatencyHistogram,
    /// Updates the writer applied.
    pub updates_applied: u64,
    /// Shard commits the writer issued.
    pub commits: u64,
    /// Cross-shard migrations performed.
    pub migrations: u64,
    /// Per-commit-batch apply latency (ns).
    pub commit_latency: LatencyHistogram,
    /// First writer error, if any (the writer stops on one).
    pub writer_error: Option<ServeError>,
}

/// A running serving instance (see the [module docs](self)).
pub struct Daemon {
    store: Arc<ShardedStore>,
    queries: Arc<MpmcQueue<QueryJob>>,
    updates: Arc<MpmcQueue<EdgeUpdate>>,
    readers: Vec<JoinHandle<ReaderReport>>,
    writer: Option<JoinHandle<WriterReport>>,
}

impl Daemon {
    /// Spawns the reader pool and the writer thread over `store`.
    pub fn spawn(store: Arc<ShardedStore>, config: ServeConfig) -> Daemon {
        assert!(config.readers >= 1, "need at least one reader");
        assert!(config.batch_max >= 1, "writer batches need at least 1");
        let queries = Arc::new(MpmcQueue::new(config.queue_capacity));
        let updates = Arc::new(MpmcQueue::new(config.update_capacity));

        let readers = (0..config.readers)
            .map(|_| {
                let store = Arc::clone(&store);
                let queries = Arc::clone(&queries);
                let telemetry = config.telemetry.clone();
                std::thread::spawn(move || reader_loop(&store, &queries, telemetry.as_deref()))
            })
            .collect();

        let writer = {
            let store = Arc::clone(&store);
            let updates = Arc::clone(&updates);
            let batch_max = config.batch_max;
            let flush_interval = config.flush_interval;
            std::thread::spawn(move || writer_loop(&store, &updates, batch_max, flush_interval))
        };

        Daemon {
            store,
            queries,
            updates,
            readers,
            writer: Some(writer),
        }
    }

    /// The store this daemon serves.
    pub fn store(&self) -> &Arc<ShardedStore> {
        &self.store
    }

    /// Enqueues a query arriving *now*; blocks while the query queue
    /// is full (closed-loop backpressure). `Err` after shutdown began.
    pub fn submit_query(&self, query: Query) -> Result<(), Query> {
        self.submit_query_at(query, Instant::now())
    }

    /// Enqueues a query with an explicit arrival stamp (open-loop
    /// drivers pass the *scheduled* arrival, so time spent waiting for
    /// queue room is charged to latency).
    pub fn submit_query_at(&self, query: Query, issued: Instant) -> Result<(), Query> {
        self.queries
            .push(QueryJob { query, issued })
            .map_err(|job| job.query)
    }

    /// Enqueues an edge update for the writer; blocks while the update
    /// queue is full. `Err` after shutdown began.
    pub fn submit_update(&self, update: EdgeUpdate) -> Result<(), EdgeUpdate> {
        self.updates.push(update)
    }

    /// Queries waiting in the queue right now.
    pub fn queued_queries(&self) -> usize {
        self.queries.len()
    }

    /// Drains both queues, stops every thread, and merges their
    /// statistics. Everything submitted before this call is answered
    /// or applied.
    pub fn shutdown(mut self) -> ServeReport {
        self.queries.close();
        let mut report = ServeReport {
            answered: 0,
            query_errors: 0,
            positive: 0,
            latency: LatencyHistogram::new(),
            lag_commits: LatencyHistogram::new(),
            lag_wall: LatencyHistogram::new(),
            updates_applied: 0,
            commits: 0,
            migrations: 0,
            commit_latency: LatencyHistogram::new(),
            writer_error: None,
        };
        for r in self.readers.drain(..) {
            let rr = r.join().expect("reader thread panicked");
            report.answered += rr.answered;
            report.query_errors += rr.errors;
            report.positive += rr.positive;
            report.latency.merge(&rr.latency);
            report.lag_commits.merge(&rr.lag_commits);
            report.lag_wall.merge(&rr.lag_wall);
        }
        self.updates.close();
        if let Some(w) = self.writer.take() {
            let wr = w.join().expect("writer thread panicked");
            report.updates_applied = wr.updates_applied;
            report.commits = wr.commits;
            report.migrations = wr.migrations;
            report.commit_latency = wr.commit_latency;
            report.writer_error = wr.error;
        }
        report
    }
}

fn reader_loop(
    store: &ShardedStore,
    queries: &MpmcQueue<QueryJob>,
    telemetry: Option<&Telemetry>,
) -> ReaderReport {
    let mut rr = ReaderReport {
        answered: 0,
        errors: 0,
        positive: 0,
        latency: LatencyHistogram::new(),
        lag_commits: LatencyHistogram::new(),
        lag_wall: LatencyHistogram::new(),
    };
    while let Some(job) = queries.pop() {
        match store.answer_with_lag(&job.query) {
            Err(_) => rr.errors += 1,
            Ok(lagged) => {
                rr.latency.record_duration(job.issued.elapsed());
                rr.lag_commits.record(lagged.lag_commits);
                rr.lag_wall.record_duration(lagged.lag_wall);
                if let Some(t) = telemetry {
                    t.record_snapshot_lag(lagged.lag_commits, lagged.lag_wall);
                }
                rr.answered += 1;
                rr.positive += match &lagged.answer {
                    Answer::Bool(b) => *b as u64,
                    Answer::Vertices(v) => (!v.is_empty()) as u64,
                };
            }
        }
    }
    rr
}

fn writer_loop(
    store: &ShardedStore,
    updates: &MpmcQueue<EdgeUpdate>,
    batch_max: usize,
    flush_interval: Duration,
) -> WriterReport {
    let mut wr = WriterReport {
        updates_applied: 0,
        commits: 0,
        migrations: 0,
        commit_latency: LatencyHistogram::new(),
        error: None,
    };
    let mut staged: Vec<EdgeUpdate> = Vec::with_capacity(batch_max);
    let mut deadline: Option<Instant> = None;

    let flush = |staged: &mut Vec<EdgeUpdate>, wr: &mut WriterReport| -> bool {
        if staged.is_empty() {
            return true;
        }
        let t0 = Instant::now();
        match store.apply(staged) {
            Ok(ApplySummary {
                commits,
                migrations,
                ..
            }) => {
                wr.commit_latency.record_duration(t0.elapsed());
                wr.updates_applied += staged.len() as u64;
                wr.commits += commits as u64;
                wr.migrations += migrations as u64;
                staged.clear();
                true
            }
            Err(e) => {
                wr.error = Some(e);
                false
            }
        }
    };

    loop {
        let wait = match deadline {
            Some(d) => d.saturating_duration_since(Instant::now()),
            None => Duration::from_millis(50),
        };
        match updates.pop_timeout(wait) {
            PopResult::Item(u) => {
                if staged.is_empty() {
                    deadline = Some(Instant::now() + flush_interval);
                }
                staged.push(u);
                if staged.len() >= batch_max {
                    if !flush(&mut staged, &mut wr) {
                        // Fail fast: close the intake so producers
                        // get an error instead of a full-queue stall.
                        updates.close();
                        break;
                    }
                    deadline = None;
                }
            }
            PopResult::TimedOut => {
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    if !flush(&mut staged, &mut wr) {
                        updates.close();
                        break;
                    }
                    deadline = None;
                }
            }
            PopResult::Closed => {
                flush(&mut staged, &mut wr);
                break;
            }
        }
    }
    wr
}

//! HDR-style log-linear latency histogram.
//!
//! Serving SLOs are tail statements — "p999 under a millisecond" — so
//! the recorder must hold the full distribution cheaply and without
//! locks on the read path (each reader thread owns one histogram and
//! they are merged at shutdown). [`LatencyHistogram`] is the standard
//! log-linear construction: values below 32 get exact unit buckets;
//! above that, each power of two splits into 32 linear sub-buckets, so
//! any reported quantile is within `1/32` (≈3.2%) of the true value
//! while the whole table stays under 16 KiB. Recording is one
//! leading-zeros instruction and one array increment — no allocation,
//! no floating point.

use std::time::Duration;

/// Sub-bucket resolution: 2^5 = 32 linear sub-buckets per power of
/// two, bounding relative quantile error at 1/32.
const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS;
/// Bucket count for the full `u64` range (see `bucket_of`).
const BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as u64; // >= SUB_BITS here
    let group = msb - SUB_BITS as u64;
    let sub = (v >> group) as usize - SUB;
    SUB + group as usize * SUB + sub
}

/// Largest value that maps to `bucket` (its representative: quantiles
/// report "≤ this", which keeps SLO statements conservative).
#[inline]
fn bucket_top(bucket: usize) -> u64 {
    if bucket < SUB {
        return bucket as u64;
    }
    let group = (bucket / SUB - 1) as u32;
    let sub = (bucket % SUB) as u128;
    // u128 arithmetic: the topmost bucket's bound is exactly 2^64.
    let top = ((SUB as u128 + sub + 1) << group) - 1;
    top.min(u64::MAX as u128) as u64
}

/// Fixed-footprint log-linear histogram over `u64` values (nanoseconds
/// by convention; see the [module docs](self)).
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records a duration as nanoseconds.
    #[inline]
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Folds `other` into `self` (shutdown-time merge of per-thread
    /// recorders).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded values (exact, from the running sum).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// The `q`-quantile (`0.0..=1.0`) of the recorded values, within
    /// 1/32 relative error, clamped to the exact observed `[min, max]`.
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_top(b).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// [`quantile`](Self::quantile) as a `Duration` (value taken as
    /// nanoseconds).
    pub fn quantile_duration(&self, q: f64) -> Duration {
        Duration::from_nanos(self.quantile(q))
    }

    /// Mean as a `Duration` (value taken as nanoseconds).
    pub fn mean_duration(&self) -> Duration {
        Duration::from_nanos(self.mean() as u64)
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("p50", &self.quantile(0.50))
            .field("p99", &self.quantile(0.99))
            .field("p999", &self.quantile(0.999))
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_range_in_order() {
        // Bucket index is monotone and bucket_top inverts it.
        let mut prev = 0;
        for v in [
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            100,
            1_000,
            1_000_000,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let b = bucket_of(v);
            assert!(b >= prev, "bucket order broke at {v}");
            assert!(bucket_top(b) >= v);
            assert!(b < BUCKETS);
            prev = b;
        }
        // Small values are exact.
        for v in 0..32u64 {
            assert_eq!(bucket_top(bucket_of(v)), v);
        }
    }

    #[test]
    fn exact_for_small_values() {
        let mut h = LatencyHistogram::new();
        for v in [3u64, 3, 7, 31] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 3);
        assert_eq!(h.max(), 31);
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(1.0), 31);
        assert!((h.mean() - 11.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_within_relative_error() {
        let mut h = LatencyHistogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (q, want) in [(0.5, 50_000.0), (0.99, 99_000.0), (0.999, 99_900.0)] {
            let got = h.quantile(q) as f64;
            let err = (got - want).abs() / want;
            assert!(err <= 1.0 / 32.0 + 1e-6, "q={q}: got {got}, want {want}");
        }
        assert_eq!(h.quantile(1.0), 100_000);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(10);
        b.record(1_000);
        b.record_duration(Duration::from_micros(5));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 5_000);
        assert_eq!(a.quantile_duration(1.0), Duration::from_micros(5));
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}

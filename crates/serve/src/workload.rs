//! Workload profiles and drivers for the daemon's SLO benchmarks.
//!
//! Two driver disciplines, because they answer different questions:
//!
//! * **Closed-loop** ([`Mode::Closed`]): the driver submits as fast as
//!   the bounded query queue accepts — classic saturation testing.
//!   Latency here measures the system at its own maximum throughput
//!   (queueing included), and `queries_per_sec` is the capacity.
//! * **Open-loop** ([`Mode::Open`]): arrivals follow a fixed schedule
//!   (`rate` per second) regardless of how the system is doing, and
//!   every job is stamped with its *scheduled* arrival time. If the
//!   daemon falls behind, the backlog shows up as latency on the jobs
//!   that waited — the driver never politely slows down, so there is
//!   no coordinated omission and the tail is honest.
//!
//! Four mixes: read-heavy (99/1), churn-heavy (90/10), an adversarial
//! hot-component variant of the 99/1 mix where every operation targets
//! one component — all commits land on one shard and every reader
//! routes into it, so snapshot lag concentrates where the queries
//! are — and an update-storm inversion (10/90) that drowns the write
//! path: the overload cells drive it above commit capacity to prove
//! admission control sheds with typed rejections instead of letting
//! the read tail collapse.

use crate::api::Request;
use crate::daemon::Daemon;
use crate::ServeReport;
use bcc_graph::{Graph, GraphBuilder};
use bcc_query::{EdgeUpdate, Failure, Query};
use std::time::{Duration, Instant};

/// Read/write mix of a workload.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Profile {
    /// 99% queries, 1% updates, spread over all components.
    ReadHeavy,
    /// 90% queries, 10% updates, spread over all components.
    ChurnHeavy,
    /// 99/1 mix with **every** operation aimed at component 0: the
    /// adversarial case where commits and queries contend on one
    /// shard.
    HotComponent,
    /// 10% queries, 90% updates, spread over all components: the
    /// write-path stress mix the admission-control overload cells
    /// drive past commit capacity.
    UpdateStorm,
}

impl Profile {
    /// All profiles, in benchmark order.
    pub const ALL: [Profile; 4] = [
        Profile::ReadHeavy,
        Profile::ChurnHeavy,
        Profile::HotComponent,
        Profile::UpdateStorm,
    ];

    /// Stable name used in benchmark cell keys.
    pub fn name(self) -> &'static str {
        match self {
            Profile::ReadHeavy => "read-heavy",
            Profile::ChurnHeavy => "churn-heavy",
            Profile::HotComponent => "hot-component",
            Profile::UpdateStorm => "update-storm",
        }
    }

    /// Fraction of operations that are queries.
    pub fn read_fraction(self) -> f64 {
        match self {
            Profile::ReadHeavy | Profile::HotComponent => 0.99,
            Profile::ChurnHeavy => 0.90,
            Profile::UpdateStorm => 0.10,
        }
    }

    fn hot(self) -> bool {
        self == Profile::HotComponent
    }
}

/// Driver discipline (see the [module docs](self)).
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum Mode {
    /// Submit as fast as the bounded queue accepts.
    Closed,
    /// Fixed arrival schedule at `rate` operations per second.
    Open {
        /// Scheduled arrivals per second (queries + updates).
        rate: f64,
    },
}

impl Mode {
    /// Stable name used in benchmark cell keys.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Closed => "closed",
            Mode::Open { .. } => "open",
        }
    }
}

/// One workload run's shape.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Read/write mix.
    pub profile: Profile,
    /// Driver discipline.
    pub mode: Mode,
    /// How long to keep submitting.
    pub duration: Duration,
    /// Component count of the instance graph (operations stay inside
    /// one component, so the generator needs the layout).
    pub parts: u32,
    /// Generator seed.
    pub seed: u64,
}

/// What a workload run produced.
#[derive(Debug)]
pub struct WorkloadReport {
    /// Submission window plus drain: from first submit to the last
    /// answer (shutdown completes the drain, so every offered
    /// operation is accounted).
    pub wall: Duration,
    /// Queries submitted.
    pub offered_queries: u64,
    /// Updates submitted.
    pub offered_updates: u64,
    /// The daemon's merged statistics.
    pub serve: ServeReport,
}

impl WorkloadReport {
    /// Answered queries per second of wall time.
    pub fn queries_per_sec(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.serve.answered as f64 / self.wall.as_secs_f64()
    }
}

/// The benchmark instance: `parts` disjoint random connected
/// components on contiguous id ranges (component `c` owns
/// `[c·n/parts, (c+1)·n/parts)`), each a ring plus `len/4` random
/// chords — 2-edge-connected in the main, with enough redundancy that
/// resilience queries have non-trivial answers. Deterministic in
/// `seed`.
pub fn component_grid(n: u32, parts: u32, seed: u64) -> Graph {
    assert!(parts >= 1 && n >= 3 * parts, "need ≥3 vertices per part");
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let part_n = n / parts;
    for c in 0..parts {
        let lo = c * part_n;
        let len = if c + 1 == parts { n - lo } else { part_n };
        for i in 0..len {
            edges.push((lo + i, lo + (i + 1) % len));
        }
        for _ in 0..len / 4 {
            let a = lo + (lcg(&mut state) % len as u64) as u32;
            let b = lo + (lcg(&mut state) % len as u64) as u32;
            if a != b {
                edges.push((a, b));
            }
        }
    }
    GraphBuilder::new(n).edges(edges).build().unwrap()
}

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

pub(crate) enum Op {
    Query(Query),
    Update(EdgeUpdate),
}

/// Deterministic operation stream over a [`component_grid`] instance.
pub(crate) struct OpGen {
    n: u32,
    parts: u32,
    part_n: u32,
    hot: bool,
    /// Query threshold out of 10_000 (read_fraction × 10_000).
    read_per_myriad: u64,
    state: u64,
    /// Per-part chords currently toggled *on* by this generator.
    toggles: Vec<Vec<(u32, u32)>>,
}

impl OpGen {
    pub(crate) fn new(n: u32, parts: u32, profile: Profile, seed: u64) -> Self {
        OpGen {
            n,
            parts,
            part_n: n / parts,
            hot: profile.hot(),
            read_per_myriad: (profile.read_fraction() * 10_000.0) as u64,
            state: seed ^ 0xd1b5_4a32_d192_ed03,
            toggles: vec![Vec::new(); parts as usize],
        }
    }

    fn pick_part(&mut self) -> u32 {
        if self.hot {
            0
        } else {
            (lcg(&mut self.state) % self.parts as u64) as u32
        }
    }

    /// A vertex inside part `c`.
    fn vert(&mut self, c: u32) -> u32 {
        let lo = c * self.part_n;
        let len = if c + 1 == self.parts {
            self.n - lo
        } else {
            self.part_n
        };
        lo + (lcg(&mut self.state) % len as u64) as u32
    }

    pub(crate) fn next(&mut self) -> Op {
        let c = self.pick_part();
        if lcg(&mut self.state) % 10_000 < self.read_per_myriad {
            let u = self.vert(c);
            let v = self.vert(c);
            let x = self.vert(c);
            let q = match lcg(&mut self.state) % 100 {
                0..=24 => Query::Connected(u, v),
                25..=54 => Query::SameBlock(u, v),
                55..=69 => Query::IsArticulation(x),
                70..=79 => Query::IsBridge(u, v),
                80..=94 => Query::SurvivesFailure(u, v, Failure::Vertex(x)),
                _ => Query::VertexCutBetween(u, v),
            };
            Op::Query(q)
        } else {
            let toggled = self.toggles[c as usize].len();
            if toggled > 0 && lcg(&mut self.state).is_multiple_of(2) {
                let i = (lcg(&mut self.state) % toggled as u64) as usize;
                let (u, v) = self.toggles[c as usize].swap_remove(i);
                Op::Update(EdgeUpdate::Remove(u, v))
            } else {
                let u = self.vert(c);
                let v = self.vert(c);
                if u == v {
                    return self.next(); // reroll the rare self pair
                }
                self.toggles[c as usize].push((u, v));
                Op::Update(EdgeUpdate::Insert(u, v))
            }
        }
    }
}

/// Drives `daemon` with the configured workload, shuts it down, and
/// returns the merged report. Operations stay inside single components
/// of the [`component_grid`] layout, so updates exercise shard-scoped
/// commits without unbounded cross-shard merging.
pub fn run_workload(daemon: Daemon, cfg: &WorkloadConfig) -> WorkloadReport {
    let n = daemon.store().n();
    let mut gen = OpGen::new(n, cfg.parts, cfg.profile, cfg.seed);
    let start = Instant::now();
    let deadline = start + cfg.duration;
    let mut offered_queries = 0u64;
    let mut offered_updates = 0u64;

    let mut submit = |daemon: &Daemon, op: Op, issued: Instant| {
        match op {
            Op::Query(q) => {
                let req = Request::Query { id: 0, query: q };
                if daemon.submit_at(req, issued).is_ok() {
                    offered_queries += 1;
                }
            }
            Op::Update(u) => {
                let req = Request::Update { id: 0, update: u };
                // A shed comes back as a typed `Overloaded` rejection;
                // the daemon counts it into `ServeReport::shed_updates`
                // so the driver only tracks what was admitted.
                if daemon.submit_at(req, issued).is_ok() {
                    offered_updates += 1;
                }
            }
        };
    };

    match cfg.mode {
        Mode::Closed => {
            while Instant::now() < deadline {
                submit(&daemon, gen.next(), Instant::now());
            }
        }
        Mode::Open { rate } => {
            assert!(rate > 0.0, "open-loop rate must be positive");
            let tick = Duration::from_secs_f64(1.0 / rate);
            let mut k = 0u64;
            loop {
                let scheduled = start + tick * k as u32;
                if scheduled >= deadline {
                    break;
                }
                let now = Instant::now();
                if scheduled > now {
                    std::thread::sleep(scheduled - now);
                }
                // Emit every arrival whose schedule has passed,
                // stamped with its *scheduled* instant (not `now`):
                // backlog counts against latency.
                submit(&daemon, gen.next(), scheduled);
                k += 1;
            }
        }
    }

    let serve = daemon.shutdown();
    WorkloadReport {
        wall: start.elapsed(),
        offered_queries,
        offered_updates,
        serve,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Daemon, ServeConfig, ShardedStore};
    use bcc_smp::Pool;
    use std::sync::Arc;

    #[test]
    fn component_grid_is_deterministic_and_partitioned() {
        let a = component_grid(120, 4, 7);
        let b = component_grid(120, 4, 7);
        assert_eq!(a.n(), 120);
        assert_eq!(a.m(), b.m());
        // No edge crosses a part boundary.
        for e in a.edges() {
            assert_eq!(e.u / 30, e.v / 30, "edge {e:?} crosses parts");
        }
    }

    #[test]
    fn opgen_respects_profile_mix_and_layout() {
        let mut gen = OpGen::new(300, 3, Profile::ChurnHeavy, 42);
        let (mut q, mut u) = (0u64, 0u64);
        for _ in 0..5_000 {
            match gen.next() {
                Op::Query(_) => q += 1,
                Op::Update(EdgeUpdate::Insert(a, b) | EdgeUpdate::Remove(a, b)) => {
                    u += 1;
                    assert_eq!(a / 100, b / 100, "update crossed a part");
                }
            }
        }
        let frac = q as f64 / (q + u) as f64;
        assert!((frac - 0.90).abs() < 0.03, "query fraction {frac}");

        // Hot profile: everything in part 0.
        let mut gen = OpGen::new(300, 3, Profile::HotComponent, 42);
        for _ in 0..2_000 {
            match gen.next() {
                Op::Query(Query::Connected(a, _) | Query::IsArticulation(a)) => {
                    assert!(a < 100)
                }
                Op::Query(_) => {}
                Op::Update(EdgeUpdate::Insert(a, b) | EdgeUpdate::Remove(a, b)) => {
                    assert!(a < 100 && b < 100)
                }
            }
        }
    }

    #[test]
    fn closed_loop_smoke_run_answers_and_commits() {
        let pool = Pool::new(2);
        let g = component_grid(240, 4, 1);
        let store = Arc::new(ShardedStore::new(&pool, &g, 2).unwrap());
        let daemon = Daemon::spawn(
            Arc::clone(&store),
            ServeConfig::builder()
                .readers(2)
                .batch_max(8)
                .flush_interval(Duration::from_millis(1))
                .build(),
        );
        let report = run_workload(
            daemon,
            &WorkloadConfig {
                profile: Profile::ChurnHeavy,
                mode: Mode::Closed,
                duration: Duration::from_millis(120),
                parts: 4,
                seed: 3,
            },
        );
        assert!(report.serve.writer_error.is_none());
        assert_eq!(report.serve.answered, report.offered_queries);
        assert_eq!(report.serve.updates_applied, report.offered_updates);
        assert!(report.serve.answered > 0);
        assert!(report.serve.updates_applied > 0);
        assert!(report.serve.commits > 0);
        assert!(report.queries_per_sec() > 0.0);
        assert!(report.serve.latency.count() == report.serve.answered);
        assert_eq!(report.serve.lag_commits.count(), report.serve.answered);
    }

    #[test]
    fn open_loop_hits_its_schedule_and_reports_lag() {
        let pool = Pool::new(1);
        let g = component_grid(120, 4, 2);
        let store = Arc::new(ShardedStore::new(&pool, &g, 2).unwrap());
        let daemon = Daemon::spawn(Arc::clone(&store), ServeConfig::default());
        let report = run_workload(
            daemon,
            &WorkloadConfig {
                profile: Profile::ReadHeavy,
                mode: Mode::Open { rate: 2_000.0 },
                duration: Duration::from_millis(200),
                parts: 4,
                seed: 9,
            },
        );
        assert!(report.serve.writer_error.is_none());
        let offered = report.offered_queries + report.offered_updates;
        // The schedule calls for rate × duration arrivals; allow slack
        // for coarse sleeps on a loaded box, but the driver must not
        // silently drop scheduled work.
        assert!(offered >= 300, "only {offered} of ~400 scheduled ops ran");
        assert_eq!(report.serve.answered, report.offered_queries);
        // p999 ≥ p99 ≥ p50 structurally.
        let h = &report.serve.latency;
        assert!(h.quantile(0.999) >= h.quantile(0.99));
        assert!(h.quantile(0.99) >= h.quantile(0.5));
    }
}

//! The daemon's typed request surface — and the wire format's data
//! model.
//!
//! PR 6 grew the daemon three loose entry points (`submit_query`,
//! `submit_query_at`, `submit_update`) whose error channel was "here
//! is your value back", indistinguishable between a full queue and a
//! daemon mid-shutdown. This module replaces that surface with one
//! enum pair:
//!
//! * [`Request`] — everything a client can ask, tagged with a caller
//!   chosen correlation id. The same type is submitted in-process
//!   ([`Daemon::submit`](crate::Daemon::submit)) and encoded on the
//!   TCP socket ([`wire`](crate::wire)) — there is exactly one request
//!   vocabulary, so the network path cannot drift from the in-process
//!   path.
//! * [`Response`] — what comes back: an [`Answer`], an acceptance ack
//!   for an update, or a typed [`RejectReason`]. Rejections are
//!   first-class data, never silent drops: admission control *sheds*
//!   by answering [`RejectReason::Overloaded`].
//! * [`SubmitError`] — the in-process flavour of a rejection, carrying
//!   the request back by value so a driver can retry, reroute, or
//!   count the shed.

use bcc_query::{Answer, EdgeUpdate, Query};

/// One operation a client asks of the daemon, with a caller-chosen
/// correlation `id` (echoed verbatim in the [`Response`]; in-process
/// callers that do not correlate may pass 0).
///
/// This type is *also* the wire format's data model: every variant has
/// a stable binary encoding in [`wire`](crate::wire).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Answer a biconnectivity query from the routed shard's current
    /// snapshot.
    Query {
        /// Correlation id, echoed in the response.
        id: u64,
        /// The query to answer.
        query: Query,
    },
    /// Apply an edge update through the (per-shard) writer path.
    Update {
        /// Correlation id, echoed in the acceptance or rejection.
        id: u64,
        /// The update to apply.
        update: EdgeUpdate,
    },
}

impl Request {
    /// The correlation id of either variant.
    pub fn id(&self) -> u64 {
        match *self {
            Request::Query { id, .. } | Request::Update { id, .. } => id,
        }
    }
}

/// What the daemon says back for one [`Request`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// A query's answer, served from an epoch snapshot.
    Answer {
        /// The request's correlation id.
        id: u64,
        /// The answer.
        answer: Answer,
    },
    /// An update was admitted to its writer queue. (Commit durability
    /// is batched: acceptance means the update *will* be applied by
    /// the group-commit writer unless the daemon dies first.)
    Accepted {
        /// The request's correlation id.
        id: u64,
    },
    /// The request was refused — see the reason. Rejections replace
    /// silent dropping everywhere in the serving layer.
    Rejected {
        /// The request's correlation id.
        id: u64,
        /// Why it was refused.
        reason: RejectReason,
    },
}

impl Response {
    /// The correlation id of any variant.
    pub fn id(&self) -> u64 {
        match *self {
            Response::Answer { id, .. }
            | Response::Accepted { id }
            | Response::Rejected { id, .. } => id,
        }
    }
}

/// Why a request was refused. Ordered roughly by "how transient":
/// a full queue clears in microseconds, overload clears when the
/// writer catches up, shutdown never clears, and an invalid request
/// never becomes valid.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The target bounded queue was at capacity right now. Retry, or
    /// block on the deprecated closed-loop path.
    QueueFull,
    /// Admission control shed this update: a watermark (queue depth or
    /// uncommitted-update backlog) says the writers are behind and
    /// accepting more would blow the read tail. Sheds are counted in
    /// `ServeReport::shed_updates` and the telemetry sink.
    Overloaded,
    /// The daemon began shutdown; no submission will ever succeed.
    ShuttingDown,
    /// The request names a vertex outside the store's fixed universe
    /// (or arrived malformed on the wire).
    Invalid,
}

impl RejectReason {
    /// Stable display name (also used in logs and the client driver).
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue-full",
            RejectReason::Overloaded => "overloaded",
            RejectReason::ShuttingDown => "shutting-down",
            RejectReason::Invalid => "invalid",
        }
    }
}

/// Why [`Daemon::submit`](crate::Daemon::submit) refused a request,
/// carrying the request back by value (mirroring
/// [`TryPushError`](bcc_smp::TryPushError)) so the caller can retry
/// without cloning.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The target queue was full (transient — retry).
    QueueFull(Request),
    /// Admission control shed the update (writers behind — back off).
    Overloaded(Request),
    /// The daemon is shutting down (final — give up).
    ShuttingDown(Request),
    /// An update names a vertex outside the store's universe (final —
    /// it can never be routed). Queries are *not* range-checked at
    /// submit; the reader answers them with a
    /// [`RejectReason::Invalid`] response instead.
    Invalid(Request),
}

impl SubmitError {
    /// The refused request, whichever way it was refused.
    pub fn into_request(self) -> Request {
        match self {
            SubmitError::QueueFull(r)
            | SubmitError::Overloaded(r)
            | SubmitError::ShuttingDown(r)
            | SubmitError::Invalid(r) => r,
        }
    }

    /// The wire-level reason this refusal maps to.
    pub fn reason(&self) -> RejectReason {
        match self {
            SubmitError::QueueFull(_) => RejectReason::QueueFull,
            SubmitError::Overloaded(_) => RejectReason::Overloaded,
            SubmitError::ShuttingDown(_) => RejectReason::ShuttingDown,
            SubmitError::Invalid(_) => RejectReason::Invalid,
        }
    }
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "request refused: {}", self.reason().name())
    }
}

impl std::error::Error for SubmitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_echo_through_both_enums() {
        let q = Request::Query {
            id: 7,
            query: Query::Connected(1, 2),
        };
        let u = Request::Update {
            id: 9,
            update: EdgeUpdate::Insert(3, 4),
        };
        assert_eq!(q.id(), 7);
        assert_eq!(u.id(), 9);
        assert_eq!(
            Response::Answer {
                id: 7,
                answer: Answer::Bool(true)
            }
            .id(),
            7
        );
        assert_eq!(Response::Accepted { id: 9 }.id(), 9);
        assert_eq!(
            Response::Rejected {
                id: 9,
                reason: RejectReason::Overloaded
            }
            .id(),
            9
        );
    }

    #[test]
    fn submit_error_round_trips_the_request() {
        let r = Request::Update {
            id: 1,
            update: EdgeUpdate::Remove(0, 1),
        };
        let e = SubmitError::Overloaded(r);
        assert_eq!(e.reason(), RejectReason::Overloaded);
        assert_eq!(e.to_string(), "request refused: overloaded");
        assert_eq!(e.into_request(), r);
    }
}

//! Property tests (satellite of the query-engine PR): on random graphs
//! from `bcc_graph::gen`, sampled `(u, v, f)` triples must answer
//! `survives_failure` exactly like a naive BFS on the graph with `f`
//! removed, `vertex_cut_between` must match recomputed articulation
//! points, and every other point query must match its naive
//! recomputation.

use bcc_graph::gen;
use bcc_query::{naive, BiconnectivityIndex, Failure, Query};
use bcc_smp::Pool;
use proptest::prelude::*;

/// Strategy: a connected random graph plus a sampled query triple.
fn graph_and_triple() -> impl Strategy<Value = (bcc_graph::Graph, u32, u32, u32)> {
    (8u32..60, 0usize..120, any::<u64>()).prop_flat_map(|(n, extra, seed)| {
        let m = ((n as usize - 1) + extra).min(gen::max_edges(n));
        let g = gen::random_connected(n, m, seed);
        (Just(g), 0..n, 0..n, 0..n)
    })
}

/// Strategy: a sparse (often disconnected) graph plus a triple.
fn sparse_graph_and_triple() -> impl Strategy<Value = (bcc_graph::Graph, u32, u32, u32)> {
    (8u32..50, 0usize..40, any::<u64>()).prop_flat_map(|(n, m, seed)| {
        let g = gen::random_gnm(n, m.min(gen::max_edges(n)), seed);
        (Just(g), 0..n, 0..n, 0..n)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn survives_vertex_failure_matches_bfs((g, u, v, x) in graph_and_triple()) {
        let pool = Pool::new(2);
        let idx = BiconnectivityIndex::from_graph(&pool, &g).unwrap();
        let f = Failure::Vertex(x);
        prop_assert_eq!(
            idx.survives_failure(u, v, f),
            naive::survives_failure_bfs(&g, u, v, f),
            "u={} v={} x={}", u, v, x
        );
    }

    #[test]
    fn survives_edge_failure_matches_bfs((g, u, v, x) in graph_and_triple()) {
        let pool = Pool::new(2);
        let idx = BiconnectivityIndex::from_graph(&pool, &g).unwrap();
        // Test both a real edge (when x indexes one) and a random pair.
        let e = g.edges()[x as usize % g.m()];
        for f in [Failure::Edge(e.u, e.v), Failure::Edge(u, x)] {
            prop_assert_eq!(
                idx.survives_failure(u, v, f),
                naive::survives_failure_bfs(&g, u, v, f),
                "u={} v={} f={:?}", u, v, f
            );
        }
    }

    #[test]
    fn vertex_cut_matches_recomputed_articulation_points((g, u, v, _x) in graph_and_triple()) {
        let pool = Pool::new(2);
        let idx = BiconnectivityIndex::from_graph(&pool, &g).unwrap();
        // The naive answer *is* a recomputation per candidate vertex;
        // additionally every reported vertex must be an articulation
        // point of the graph.
        let cut = idx.vertex_cut_between(u, v);
        prop_assert_eq!(&cut, &naive::vertex_cut_between_bfs(&g, u, v), "u={} v={}", u, v);
        let arts = bcc_core::verify::articulation_points_oracle(&g);
        for w in &cut {
            prop_assert!(arts.binary_search(w).is_ok(), "{} not an articulation point", w);
        }
    }

    #[test]
    fn point_queries_match_naive_even_disconnected((g, u, v, x) in sparse_graph_and_triple()) {
        let pool = Pool::new(2);
        let idx = BiconnectivityIndex::from_graph(&pool, &g).unwrap();
        prop_assert_eq!(idx.connected(u, v), naive::connected_bfs(&g, u, v));
        prop_assert_eq!(idx.same_block(u, v), naive::same_block_bfs(&g, u, v));
        prop_assert_eq!(idx.is_bridge(u, v), naive::is_bridge_bfs(&g, u, v));
        let arts = bcc_core::verify::articulation_points_oracle(&g);
        prop_assert_eq!(idx.is_articulation(x), arts.binary_search(&x).is_ok());
        let f = Failure::Vertex(x);
        prop_assert_eq!(
            idx.survives_failure(u, v, f),
            naive::survives_failure_bfs(&g, u, v, f)
        );
    }

    #[test]
    fn batch_path_is_bit_identical_to_point_path((g, u, v, x) in graph_and_triple()) {
        let pool = Pool::new(3);
        let idx = BiconnectivityIndex::from_graph(&pool, &g).unwrap();
        let queries = vec![
            Query::Connected(u, v),
            Query::SameBlock(u, v),
            Query::IsArticulation(x),
            Query::IsBridge(u, v),
            Query::VertexCutBetween(u, v),
            Query::SurvivesFailure(u, v, Failure::Vertex(x)),
            Query::SurvivesFailure(u, v, Failure::Edge(u, x)),
        ];
        let point: Vec<_> = queries.iter().map(|q| idx.answer(q)).collect();
        prop_assert_eq!(bcc_query::run_batch(&pool, &idx, &queries), point);
    }
}

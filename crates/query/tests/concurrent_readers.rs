//! Multi-thread stress test for the reader hand-off (satellite of the
//! bcc-serve PR): while a writer thread commits continuously, reader
//! threads must
//!
//! 1. always observe a **fully consistent** snapshot — every answer
//!    from a loaded snapshot matches a naive BFS oracle evaluated on
//!    that epoch's graph (a torn snapshot, where the index and graph
//!    mix two epochs, would diverge from the oracle), and
//! 2. keep making progress through `load()` **during** commits — the
//!    publication ring never parks a reader behind the writer's
//!    multi-millisecond rebuild.
//!
//! The writer toggles the store between two known graph states, so
//! every published epoch's answers are known in advance from the
//! epoch's parity: even epochs are a 2-cycle-covered ring, odd epochs
//! are the ring cut open in two places. Each reader checks the loaded
//! snapshot's answers against the precomputed oracle for its parity.

use bcc_query::{naive, Failure, IndexStore, Query, Snapshot};
use bcc_smp::Pool;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Ring size: big enough that a commit (one whole-component rebuild)
/// takes real time on any machine, so readers demonstrably overlap it.
const N: u32 = 2_000;
const COMMITS: u64 = 30;

/// The even-epoch graph: a ring 0–1–…–(N−1)–0.
fn ring() -> bcc_graph::Graph {
    bcc_graph::gen::cycle(N)
}

/// The two edges the writer toggles: removing both cuts the ring into
/// two paths; re-inserting restores it.
const CUTS: [(u32, u32); 2] = [(0, 1), (N / 2, N / 2 + 1)];

/// The probe queries every reader re-asks on every loaded snapshot.
fn probes() -> Vec<Query> {
    vec![
        Query::Connected(0, N / 2),
        Query::Connected(1, N / 2),
        Query::SameBlock(0, N / 2),
        Query::IsArticulation(N / 4),
        Query::IsBridge(N / 4, N / 4 + 1),
        Query::SurvivesFailure(2, N / 4, Failure::Vertex(3)),
        Query::SurvivesFailure(2, N / 4, Failure::Edge(10, 11)),
        Query::VertexCutBetween(2, N / 4),
    ]
}

/// Naive BFS answers for one graph state, computed edge-list-up —
/// entirely independent of the index under test.
fn oracle(g: &bcc_graph::Graph) -> Vec<bcc_query::Answer> {
    use bcc_query::Answer;
    probes()
        .iter()
        .map(|q| match *q {
            Query::Connected(u, v) => Answer::Bool(naive::connected_bfs(g, u, v)),
            Query::SameBlock(u, v) => Answer::Bool(naive::same_block_bfs(g, u, v)),
            Query::IsArticulation(v) => {
                // The probe vertices keep both ring neighbours in both
                // graph states: v cuts iff it separates them.
                Answer::Bool(naive::vertex_cut_between_bfs(g, v - 1, v + 1).contains(&v))
            }
            Query::IsBridge(u, v) => Answer::Bool(naive::is_bridge_bfs(g, u, v)),
            Query::SurvivesFailure(u, v, f) => {
                Answer::Bool(naive::survives_failure_bfs(g, u, v, f))
            }
            Query::VertexCutBetween(u, v) => {
                Answer::Vertices(naive::vertex_cut_between_bfs(g, u, v))
            }
        })
        .collect()
}

fn check_snapshot(snap: &Snapshot, even: &[bcc_query::Answer], odd: &[bcc_query::Answer]) {
    let expected = if snap.epoch.is_multiple_of(2) {
        even
    } else {
        odd
    };
    for (q, want) in probes().iter().zip(expected) {
        let got = snap.index.answer(q);
        assert_eq!(
            &got, want,
            "epoch {} answered {q:?} inconsistently with its oracle",
            snap.epoch
        );
    }
}

#[test]
fn readers_stay_consistent_and_unblocked_under_commit_storm() {
    let even_graph = ring();
    let odd_graph = {
        let edges: Vec<(u32, u32)> = even_graph
            .edges()
            .iter()
            .map(|e| (e.u, e.v))
            .filter(|&(u, v)| !CUTS.contains(&(u.min(v), u.max(v))))
            .collect();
        bcc_graph::GraphBuilder::new(N)
            .edges(edges)
            .build()
            .unwrap()
    };
    let even_oracle = oracle(&even_graph);
    let odd_oracle = oracle(&odd_graph);
    // Sanity: the two states must actually disagree somewhere.
    assert_ne!(even_oracle, odd_oracle);

    let store = Arc::new(IndexStore::new(Pool::new(2), ring()).unwrap());
    let committing = Arc::new(AtomicBool::new(false));
    let done = Arc::new(AtomicBool::new(false));
    let overlapped = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        for _ in 0..2 {
            let store = Arc::clone(&store);
            let committing = Arc::clone(&committing);
            let done = Arc::clone(&done);
            let overlapped = Arc::clone(&overlapped);
            let (even_oracle, odd_oracle) = (even_oracle.clone(), odd_oracle.clone());
            s.spawn(move || {
                let mut loads = 0u64;
                let mut max_epoch = 0u64;
                while !done.load(Ordering::Acquire) {
                    let during_before = committing.load(Ordering::Acquire);
                    let snap = store.load();
                    let during_after = committing.load(Ordering::Acquire);
                    if during_before && during_after {
                        // This load started and finished inside a
                        // commit window: the reader made progress
                        // while the writer was rebuilding.
                        overlapped.fetch_add(1, Ordering::Relaxed);
                    }
                    // Epochs never run backwards from a reader's view
                    // of its own load sequence... within one thread.
                    assert!(snap.epoch >= max_epoch, "epochs ran backwards");
                    max_epoch = snap.epoch;
                    // Lag is bounded by what was published.
                    assert!(store.lag_of(&snap) <= store.latest_epoch());
                    check_snapshot(&snap, &even_oracle, &odd_oracle);
                    loads += 1;
                }
                loads
            });
        }

        let writer = {
            let store = Arc::clone(&store);
            let committing = Arc::clone(&committing);
            let done = Arc::clone(&done);
            s.spawn(move || {
                let t0 = Instant::now();
                for round in 0..COMMITS {
                    let mut txn = store.begin();
                    for &(u, v) in &CUTS {
                        if round % 2 == 0 {
                            txn.remove(u, v);
                        } else {
                            txn.insert(u, v);
                        }
                    }
                    committing.store(true, Ordering::Release);
                    let snap = txn.commit().unwrap();
                    committing.store(false, Ordering::Release);
                    assert_eq!(snap.epoch, round + 1);
                }
                done.store(true, Ordering::Release);
                t0.elapsed()
            })
        };
        writer.join().unwrap();
    });

    assert_eq!(store.load().epoch, COMMITS);
    assert_eq!(store.latest_epoch(), COMMITS);
    // Readers completed loads strictly inside commit windows — i.e.
    // load() did not serialize behind the writer's rebuild. Commit
    // windows dominate the writer's wall time (each one rebuilds a
    // 1000+-vertex component), so seeing zero overlapped loads across
    // 30 commits would mean readers were blocked.
    assert!(
        overlapped.load(Ordering::Relaxed) > 0,
        "no read ever completed during a commit window"
    );
}

//! Property tests (satellite of the incremental-commit PR): random
//! update batches — inserts, removals, merges, splits, self loops,
//! duplicates, brand-new vertices — pushed through `Txn::commit` must
//! publish snapshots whose query answers are *identical* to an index
//! rebuilt from scratch over the same graph. This is the oracle that
//! keeps the component-scoped commit honest: any stale slot, wrong
//! region, or missed merge shows up as a divergent answer.

use bcc_query::{BiconnectivityIndex, EdgeUpdate, Failure, IndexStore};
use bcc_smp::Pool;
use proptest::prelude::*;

/// Deterministic pseudo-random stream for shaping update batches.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// One random update against the current graph: biased toward
/// structure-changing operations (removing *present* edges splits
/// components; inserting across components merges them), with self
/// loops, duplicates, absent removals, and new vertices mixed in.
fn random_update(g: &bcc_graph::Graph, state: &mut u64) -> EdgeUpdate {
    let n = g.n();
    let roll = lcg(state) % 10;
    if roll < 4 && g.m() > 0 {
        // Remove an edge that actually exists.
        let e = g.edges()[lcg(state) as usize % g.m()];
        EdgeUpdate::Remove(e.u, e.v)
    } else {
        // Endpoints may coincide (self loop), repeat an existing edge
        // (duplicate), or run past n (vertex growth).
        let a = (lcg(state) % (n as u64 + 3)) as u32;
        let b = (lcg(state) % (n as u64 + 3)) as u32;
        if roll < 8 {
            EdgeUpdate::Insert(a, b)
        } else {
            EdgeUpdate::Remove(a, b)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The incremental store against the from-scratch oracle, over a
    // whole trajectory of commits.
    #[test]
    fn incremental_commits_match_from_scratch_rebuild(
        (n, m, seed) in (6u32..28, 0usize..40, any::<u64>())
    ) {
        let g = bcc_graph::gen::random_gnm(n, m.min(bcc_graph::gen::max_edges(n)), seed);
        let pool = Pool::new(2);
        let store = IndexStore::new(Pool::new(2), g).unwrap();
        let mut state = seed ^ 0x9e3779b97f4a7c15;

        for batch_no in 0..3u64 {
            let prev = store.load();
            let batch_len = 1 + (lcg(&mut state) % 8) as usize;
            let mut txn = store.begin();
            for _ in 0..batch_len {
                txn.push(random_update(&prev.graph, &mut state));
            }
            let snap = txn.commit().unwrap();
            prop_assert_eq!(snap.epoch, batch_no + 1);

            // Oracle: the same graph, indexed from scratch.
            let full = BiconnectivityIndex::from_graph(&pool, &snap.graph).unwrap();
            let inc = &snap.index;
            prop_assert_eq!(inc.articulation_points(), full.articulation_points());
            prop_assert_eq!(inc.num_blocks(), full.num_blocks());
            prop_assert_eq!(inc.num_bridges(), full.num_bridges());
            prop_assert_eq!(inc.num_components(), full.num_components());

            let nn = snap.graph.n();
            for u in 0..nn {
                prop_assert_eq!(inc.is_articulation(u), full.is_articulation(u));
                for v in 0..nn {
                    prop_assert_eq!(inc.connected(u, v), full.connected(u, v));
                    prop_assert_eq!(inc.same_block(u, v), full.same_block(u, v));
                }
            }
            // Sampled deep queries (all-pairs × all-failures is cubic).
            for _ in 0..16 {
                let u = (lcg(&mut state) % nn as u64) as u32;
                let v = (lcg(&mut state) % nn as u64) as u32;
                let x = (lcg(&mut state) % nn as u64) as u32;
                prop_assert_eq!(inc.vertex_cut_between(u, v), full.vertex_cut_between(u, v));
                prop_assert_eq!(inc.is_bridge(u, v), full.is_bridge(u, v));
                prop_assert_eq!(
                    inc.survives_failure(u, v, Failure::Vertex(x)),
                    full.survives_failure(u, v, Failure::Vertex(x))
                );
                prop_assert_eq!(
                    inc.survives_failure(u, v, Failure::Edge(u, x)),
                    full.survives_failure(u, v, Failure::Edge(u, x))
                );
            }

            // Stats bookkeeping must be internally consistent.
            let s = &snap.stats;
            prop_assert!(!s.full_rebuild);
            prop_assert_eq!(s.batch, batch_len);
            prop_assert_eq!(
                s.components_rebuilt + s.components_reused,
                inc.num_components()
            );
            prop_assert!(s.vertices_rebuilt <= nn);
            prop_assert!((0.0..=1.0).contains(&s.reused_fraction));
        }
    }

    // `commit_full` and `commit` publish equivalent answers for the
    // same batch.
    #[test]
    fn full_and_incremental_commits_agree(
        (n, m, seed) in (6u32..24, 0usize..30, any::<u64>())
    ) {
        let g = bcc_graph::gen::random_gnm(n, m.min(bcc_graph::gen::max_edges(n)), seed);
        let store_inc = IndexStore::new(Pool::new(2), g.clone()).unwrap();
        let store_full = IndexStore::new(Pool::new(2), g.clone()).unwrap();
        let mut state = seed ^ 0xd1b54a32d192ed03;
        let batch: Vec<EdgeUpdate> = (0..6).map(|_| random_update(&g, &mut state)).collect();

        let mut txn = store_inc.begin();
        txn.extend(batch.iter().copied());
        let inc = txn.commit().unwrap();

        let mut txn = store_full.begin();
        txn.extend(batch.iter().copied());
        let full = txn.commit_full().unwrap();

        prop_assert!(full.stats.full_rebuild && !inc.stats.full_rebuild);
        prop_assert_eq!(inc.stats.inserts, full.stats.inserts);
        prop_assert_eq!(inc.stats.removes, full.stats.removes);
        prop_assert_eq!(inc.graph.n(), full.graph.n());
        prop_assert_eq!(inc.graph.m(), full.graph.m());
        prop_assert_eq!(
            inc.index.articulation_points(),
            full.index.articulation_points()
        );
        prop_assert_eq!(inc.index.num_blocks(), full.index.num_blocks());
        for u in 0..inc.graph.n() {
            for v in 0..inc.graph.n() {
                prop_assert_eq!(inc.index.same_block(u, v), full.index.same_block(u, v));
            }
        }
    }
}

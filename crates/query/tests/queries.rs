//! Randomized cross-checks of every indexed query against the naive
//! BFS oracle, plus the batch-equals-point guarantee. Deterministic
//! (seeded LCG for query sampling) so failures reproduce.

use bcc_graph::{gen, Graph};
use bcc_query::{naive, run_batch, Answer, BiconnectivityIndex, Failure, Query, QueryBatch};
use bcc_smp::Pool;

/// Minimal splitmix-style generator for sampling query arguments.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn below(&mut self, bound: u32) -> u32 {
        (self.next() % bound as u64) as u32
    }
}

fn check_against_naive(g: &Graph, pool: &Pool, seed: u64, samples: usize) {
    let idx = BiconnectivityIndex::from_graph(pool, g).unwrap();
    let n = g.n();
    let mut rng = Lcg(seed.wrapping_mul(2654435761).wrapping_add(99991));
    for _ in 0..samples {
        let (u, v, x) = (rng.below(n), rng.below(n), rng.below(n));
        // Edge failures: half the time a real edge, half a random pair.
        let (a, b) = if g.m() > 0 && rng.next().is_multiple_of(2) {
            let e = g.edges()[rng.next() as usize % g.m()];
            (e.u, e.v)
        } else {
            (rng.below(n), rng.below(n))
        };

        assert_eq!(
            idx.connected(u, v),
            naive::connected_bfs(g, u, v),
            "connected({u},{v})"
        );
        assert_eq!(
            idx.same_block(u, v),
            naive::same_block_bfs(g, u, v),
            "same_block({u},{v})"
        );
        assert_eq!(
            idx.is_bridge(a, b),
            naive::is_bridge_bfs(g, a, b),
            "is_bridge({a},{b})"
        );
        assert_eq!(
            idx.vertex_cut_between(u, v),
            naive::vertex_cut_between_bfs(g, u, v),
            "vertex_cut_between({u},{v})"
        );
        assert_eq!(
            idx.survives_failure(u, v, Failure::Vertex(x)),
            naive::survives_failure_bfs(g, u, v, Failure::Vertex(x)),
            "survives_failure({u},{v},Vertex({x}))"
        );
        assert_eq!(
            idx.survives_failure(u, v, Failure::Edge(a, b)),
            naive::survives_failure_bfs(g, u, v, Failure::Edge(a, b)),
            "survives_failure({u},{v},Edge({a},{b}))"
        );
    }
    // is_articulation against the removal oracle, exhaustively.
    let arts = bcc_core::verify::articulation_points_oracle(g);
    for v in 0..n {
        assert_eq!(
            idx.is_articulation(v),
            arts.binary_search(&v).is_ok(),
            "is_articulation({v})"
        );
    }
}

#[test]
fn indexed_queries_match_naive_on_random_connected_graphs() {
    for seed in 0..6u64 {
        let g = gen::random_connected(60, 60 + (seed as usize) * 25, seed);
        for p in [1, 3] {
            check_against_naive(&g, &Pool::new(p), seed, 150);
        }
    }
}

#[test]
fn indexed_queries_match_naive_on_disconnected_graphs() {
    for seed in 0..6u64 {
        // G(n, m) with few edges: several components, isolated
        // vertices, trees, and small cycles.
        let g = gen::random_gnm(50, 35, seed);
        check_against_naive(&g, &Pool::new(2), seed, 150);
    }
}

#[test]
fn indexed_queries_match_naive_on_structured_graphs() {
    let pool = Pool::new(3);
    for (i, g) in [
        gen::path(12),
        gen::cycle(9),
        gen::star(10),
        gen::cycle_chain(4, 5, 0),
        gen::barbell(4, 3),
        gen::two_cliques_sharing_vertex(5),
        gen::binary_tree(31),
    ]
    .iter()
    .enumerate()
    {
        check_against_naive(g, &pool, i as u64, 200);
    }
}

#[test]
fn batch_answers_are_bit_identical_to_point_answers() {
    let g = gen::random_connected(120, 260, 11);
    let pool = Pool::new(4);
    let idx = BiconnectivityIndex::from_graph(&pool, &g).unwrap();
    let mut rng = Lcg(0xB1C0);
    let n = g.n();
    let mut batch = QueryBatch::new();
    for _ in 0..500 {
        let (u, v, x) = (rng.below(n), rng.below(n), rng.below(n));
        batch.extend([
            Query::Connected(u, v),
            Query::SameBlock(u, v),
            Query::IsArticulation(x),
            Query::IsBridge(u, v),
            Query::VertexCutBetween(u, v),
            Query::SurvivesFailure(u, v, Failure::Vertex(x)),
            Query::SurvivesFailure(u, v, Failure::Edge(u, x)),
        ]);
    }
    let point: Vec<Answer> = batch.queries().iter().map(|q| idx.answer(q)).collect();
    for p in [1, 2, 4] {
        let par_pool = Pool::new(p);
        assert_eq!(batch.run(&par_pool, &idx), point, "p={p}");
        assert_eq!(run_batch(&par_pool, &idx, batch.queries()), point, "p={p}");
    }
}

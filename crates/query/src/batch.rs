//! Pool-parallel batch execution.
//!
//! A serving system sees queries in bursts, not one at a time. A
//! [`QueryBatch`] fans a slice of [`Query`] values across the SPMD
//! pool with static block partitioning ([`bcc_smp::Pool::par_map`]):
//! each thread answers a contiguous block, results come back in input
//! order, and every answer is produced by the *same* point-query code —
//! batch answers are bit-identical to calling the index directly.

use crate::index::{BiconnectivityIndex, Failure};
use bcc_smp::Pool;

/// One point query against a [`BiconnectivityIndex`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Query {
    /// Are `u` and `v` in the same connected component?
    Connected(u32, u32),
    /// Do `u` and `v` share a biconnected component?
    SameBlock(u32, u32),
    /// Is `v` an articulation point?
    IsArticulation(u32),
    /// Is the edge `{u, v}` a bridge?
    IsBridge(u32, u32),
    /// Which articulation points separate `u` from `v`?
    VertexCutBetween(u32, u32),
    /// Are `u` and `v` still connected after the failure?
    SurvivesFailure(u32, u32, Failure),
}

/// The answer to a [`Query`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Answer {
    /// Answer to the boolean queries.
    Bool(bool),
    /// Answer to [`Query::VertexCutBetween`]: the separating
    /// articulation points, ascending.
    Vertices(Vec<u32>),
}

impl Answer {
    /// The boolean payload; panics on a [`Answer::Vertices`] answer.
    pub fn as_bool(&self) -> bool {
        match self {
            Answer::Bool(b) => *b,
            Answer::Vertices(_) => panic!("answer is a vertex list, not a bool"),
        }
    }

    /// The vertex-list payload; panics on a boolean answer.
    pub fn as_vertices(&self) -> &[u32] {
        match self {
            Answer::Vertices(v) => v,
            Answer::Bool(_) => panic!("answer is a bool, not a vertex list"),
        }
    }
}

impl BiconnectivityIndex {
    /// Answers one query — the single dispatch point both the point
    /// path and the batch path go through.
    pub fn answer(&self, q: &Query) -> Answer {
        match *q {
            Query::Connected(u, v) => Answer::Bool(self.connected(u, v)),
            Query::SameBlock(u, v) => Answer::Bool(self.same_block(u, v)),
            Query::IsArticulation(v) => Answer::Bool(self.is_articulation(v)),
            Query::IsBridge(u, v) => Answer::Bool(self.is_bridge(u, v)),
            Query::VertexCutBetween(u, v) => Answer::Vertices(self.vertex_cut_between(u, v)),
            Query::SurvivesFailure(u, v, f) => Answer::Bool(self.survives_failure(u, v, f)),
        }
    }
}

/// Runs a slice of queries across the pool; answers in input order.
pub fn run_batch(pool: &Pool, index: &BiconnectivityIndex, queries: &[Query]) -> Vec<Answer> {
    pool.par_map(queries, |_, q| index.answer(q))
}

/// A reusable batch of queries (a builder over [`run_batch`]).
///
/// ```
/// use bcc_query::{BiconnectivityIndex, Query, QueryBatch};
/// use bcc_graph::gen;
/// use bcc_smp::Pool;
///
/// let pool = Pool::new(2);
/// let idx = BiconnectivityIndex::from_graph(&pool, &gen::cycle(8)).unwrap();
/// let mut batch = QueryBatch::new();
/// batch.push(Query::SameBlock(0, 4));
/// batch.push(Query::IsArticulation(3));
/// let answers = batch.run(&pool, &idx);
/// assert!(answers[0].as_bool());
/// assert!(!answers[1].as_bool());
/// ```
#[derive(Clone, Debug, Default)]
pub struct QueryBatch {
    queries: Vec<Query>,
}

impl QueryBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one query; returns its position in the answer vector.
    pub fn push(&mut self, q: Query) -> usize {
        self.queries.push(q);
        self.queries.len() - 1
    }

    /// Adds many queries at once.
    pub fn extend(&mut self, qs: impl IntoIterator<Item = Query>) {
        self.queries.extend(qs);
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True if no queries were pushed.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The queries, in push order.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// Executes the batch on the pool. Answers are indexed by push
    /// position and identical to running each query individually.
    pub fn run(&self, pool: &Pool, index: &BiconnectivityIndex) -> Vec<Answer> {
        run_batch(pool, index, &self.queries)
    }
}

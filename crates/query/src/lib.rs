#![warn(missing_docs)]
//! # bcc-query — a concurrent biconnectivity query engine
//!
//! The pipelines in `bcc-core` stop at labels: a per-edge component
//! array and a [`BlockCutTree`]. The paper's motivating application —
//! "which single failures disconnect whom" in a fault-tolerant network
//! — is a *query* workload: build the structure once, then answer
//! millions of point questions about it. This crate is that serving
//! layer:
//!
//! * [`BiconnectivityIndex`] — an immutable, `Sync` index built from a
//!   graph's BCC labels and block-cut tree. Point queries run in
//!   O(log n): [`same_block`](BiconnectivityIndex::same_block),
//!   [`is_articulation`](BiconnectivityIndex::is_articulation),
//!   [`is_bridge`](BiconnectivityIndex::is_bridge),
//!   [`survives_failure`](BiconnectivityIndex::survives_failure), and
//!   the output-sensitive
//!   [`vertex_cut_between`](BiconnectivityIndex::vertex_cut_between).
//! * [`QueryBatch`] / [`run_batch`] — fans a slice of [`Query`] values
//!   across a [`Pool`](bcc_smp::Pool) with block partitioning; answers
//!   are bit-identical to the point-query path.
//! * [`IndexStore`] — an epoch-based snapshot store: readers grab an
//!   `Arc` snapshot and are never blocked; writers stage edge updates
//!   on a [`Txn`] and commit them as one new epoch, rebuilding only
//!   the connected components the batch touches (untouched components
//!   ride over by `Arc`; each snapshot's [`CommitStats`] says how much
//!   was reused).
//! * [`naive`] — BFS reference implementations the property tests
//!   check every query against.
//!
//! ```
//! use bcc_query::BiconnectivityIndex;
//! use bcc_graph::gen;
//! use bcc_smp::Pool;
//!
//! // Two 4-cliques sharing vertex 3: one cut vertex, two blocks.
//! let g = gen::two_cliques_sharing_vertex(4);
//! let pool = Pool::new(2);
//! let idx = BiconnectivityIndex::from_graph(&pool, &g).unwrap();
//! assert!(idx.is_articulation(3));
//! assert!(!idx.same_block(0, 5));
//! assert_eq!(idx.vertex_cut_between(0, 5), vec![3]);
//! assert!(!idx.survives_failure(0, 5, bcc_query::Failure::Vertex(3)));
//! ```

pub mod batch;
mod build;
pub mod index;
pub mod naive;
pub mod store;

pub use batch::{run_batch, Answer, Query, QueryBatch};
pub use index::{BiconnectivityIndex, ComponentIndex, Failure};
pub use store::{CommitStats, EdgeUpdate, IndexStore, Snapshot, Txn};

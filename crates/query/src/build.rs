//! Index construction: vertex→node mapping, forest rooting, lifting
//! table, bridge table.
//!
//! The expensive, size-`O(n + m)` passes (connectivity labels, home
//! blocks, block sizes, the lifting levels) run on the pool; the
//! rooting DFS is sequential over the block-cut forest, which has at
//! most `2n` nodes and `n` edges regardless of how dense the graph is.

use crate::index::BiconnectivityIndex;
use bcc_connectivity::sv::{connected_components, normalize_labels};
use bcc_core::{Algorithm, BccConfig, BccError, BccResult, BlockCutTree};
use bcc_euler::LcaIndex;
use bcc_graph::Graph;
use bcc_smp::atomic::as_atomic_u32;
use bcc_smp::{BccWorkspace, Pool, NIL};
use std::sync::atomic::Ordering;
use std::sync::Arc;

impl BiconnectivityIndex {
    /// Builds the index from a graph, its (canonical) BCC labeling, and
    /// the block-cut tree derived from it. Works for disconnected
    /// inputs (the block-cut structure is a forest, and every query
    /// checks component membership first).
    pub fn build(pool: &Pool, g: &Graph, r: &BccResult, t: &BlockCutTree) -> Self {
        let n = g.n();
        let m = g.m();
        let num_blocks = t.num_blocks;
        let nodes = t.num_nodes() as usize;

        // Connected-component labels (cross-component queries short out
        // before touching the forest).
        let mut cc = connected_components(pool, n, g.edges()).label;
        normalize_labels(pool, &mut cc);

        // Vertex → forest node. Cut vertices own their cut node; every
        // other vertex maps to its home block, found by one parallel
        // sweep over the edges. All edges of a non-cut vertex carry the
        // same block label, so racing stores write the same value —
        // they go through atomics to keep the benign race defined.
        let mut node = vec![NIL; n as usize];
        for (i, &v) in t.articulation.iter().enumerate() {
            node[v as usize] = num_blocks + i as u32;
        }
        {
            let node_a = as_atomic_u32(&mut node);
            let edges = g.edges();
            let cut_index = &t.cut_index;
            pool.run(|ctx| {
                for i in ctx.block_range(m) {
                    let b = r.edge_comp[i];
                    let e = edges[i];
                    for v in [e.u, e.v] {
                        if cut_index[v as usize] == NIL {
                            node_a[v as usize].store(b, Ordering::Relaxed);
                        }
                    }
                }
            });
        }

        // Root every tree of the forest: parent/depth by DFS, preorder
        // assigned at visit time (subtree intervals are contiguous),
        // sizes by a reverse-preorder accumulation.
        let csr = t.adjacency();
        let mut parent = vec![NIL; nodes];
        let mut depth = vec![0u32; nodes];
        let mut pre = vec![0u32; nodes];
        let mut order = Vec::with_capacity(nodes);
        let mut next_pre = 0u32;
        let mut stack = Vec::new();
        for root in 0..nodes as u32 {
            if parent[root as usize] != NIL {
                continue;
            }
            parent[root as usize] = root;
            stack.push(root);
            while let Some(x) = stack.pop() {
                pre[x as usize] = next_pre;
                next_pre += 1;
                order.push(x);
                for &y in csr.neighbors(x) {
                    if parent[y as usize] == NIL {
                        parent[y as usize] = x;
                        depth[y as usize] = depth[x as usize] + 1;
                        stack.push(y);
                    }
                }
            }
        }
        let mut size = vec![1u32; nodes];
        for &x in order.iter().rev() {
            let p = parent[x as usize];
            if p != x {
                size[p as usize] += size[x as usize];
            }
        }

        // Binary-lifting ancestor table, level-parallel on the pool.
        let lca = LcaIndex::from_forest(pool, &parent, &depth);

        // Bridge table: blocks of exactly one edge, keyed for binary
        // search. Counting is a parallel atomic histogram.
        let mut block_size = vec![0u32; num_blocks as usize];
        {
            let size_a = as_atomic_u32(&mut block_size);
            pool.run(|ctx| {
                for i in ctx.block_range(m) {
                    size_a[r.edge_comp[i] as usize].fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        let mut bridges: Vec<(u64, u32)> = g
            .edges()
            .iter()
            .enumerate()
            .filter(|(i, _)| block_size[r.edge_comp[*i] as usize] == 1)
            .map(|(i, e)| (e.key(), r.edge_comp[i]))
            .collect();
        bridges.sort_unstable();
        let (bridge_keys, bridge_block) = bridges.into_iter().unzip();

        BiconnectivityIndex {
            n,
            num_blocks,
            cc,
            articulation: t.articulation.clone(),
            cut_index: t.cut_index.clone(),
            node,
            lca,
            pre,
            size,
            bridge_keys,
            bridge_block,
        }
    }

    /// One-call build: runs the cheapest pipeline (TV-filter, falling
    /// back per component for disconnected inputs), derives the
    /// block-cut tree, and indexes it. Propagates the pipeline's
    /// [`BccError`] rather than second-guessing it here; the
    /// per-component driver satisfies the connectivity precondition by
    /// construction, so today's error set is empty, but the signature
    /// is ready for fallible pipelines.
    pub fn from_graph(pool: &Pool, g: &Graph) -> Result<Self, BccError> {
        let run = BccConfig::new(Algorithm::TvFilter).run_any(pool, g)?;
        let t = BlockCutTree::build(g, &run.result);
        Ok(Self::build(pool, g, &run.result, &t))
    }

    /// [`from_graph`](Self::from_graph) drawing the pipeline's scratch
    /// from `ws`. Long-lived callers that rebuild repeatedly (the
    /// epoch store) pass one workspace across rebuilds so steady-state
    /// reconstruction performs near-zero heap allocation.
    pub fn from_graph_ws(pool: &Pool, g: &Graph, ws: &Arc<BccWorkspace>) -> Result<Self, BccError> {
        let run = BccConfig::new(Algorithm::TvFilter)
            .workspace(Arc::clone(ws))
            .run_any(pool, g)?;
        let t = BlockCutTree::build(g, &run.result);
        Ok(Self::build(pool, g, &run.result, &t))
    }
}

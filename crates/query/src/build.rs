//! Index construction: one block-cut tree per connected component.
//!
//! A from-scratch build labels connected components, splits the graph
//! with [`Graph::split_by_labels`], and runs each part through the
//! single-component pipeline unit ([`bcc_core::component_pipeline`]) —
//! the same granule the incremental `IndexStore` commits use, so a
//! full build and a commit that happens to touch every component do
//! identical work. Per part, the expensive `O(n + m)` passes (home
//! blocks, the lifting levels) run on the pool; the rooting DFS is
//! sequential over the block-cut tree, which has at most `2n` nodes
//! and `n` edges regardless of how dense the component is.

use crate::index::{BiconnectivityIndex, ComponentIndex};
use bcc_connectivity::sv::{connected_components_with_ws, normalize_labels_ws};
use bcc_connectivity::SvVariant;
use bcc_core::{component_pipeline, Algorithm, BccConfig, BccError, BccResult, BlockCutTree};
use bcc_euler::LcaIndex;
use bcc_graph::{Edge, Graph, SplitPart};
use bcc_smp::atomic::as_atomic_u32;
use bcc_smp::{BccWorkspace, Pool, NIL};
use std::sync::atomic::Ordering;
use std::sync::Arc;

impl ComponentIndex {
    /// Builds one component's index from its relabeled subgraph `sub`,
    /// the local→graph vertex map `verts`, the subgraph's (canonical)
    /// BCC labeling, and the block-cut tree derived from it.
    pub(crate) fn build(
        pool: &Pool,
        sub: &Graph,
        verts: &[u32],
        r: &BccResult,
        t: &BlockCutTree,
    ) -> Self {
        let n = sub.n() as usize;
        let m = sub.m();
        let num_blocks = t.num_blocks;
        let nodes = t.num_nodes() as usize;

        // Vertex → tree node. Cut vertices own their cut node; every
        // other vertex maps to its home block, found by one parallel
        // sweep over the edges. All edges of a non-cut vertex carry the
        // same block label, so racing stores write the same value —
        // they go through atomics to keep the benign race defined.
        let mut node = vec![NIL; n];
        for (i, &v) in t.articulation.iter().enumerate() {
            node[v as usize] = num_blocks + i as u32;
        }
        {
            let node_a = as_atomic_u32(&mut node);
            let edges = sub.edges();
            let cut_index = &t.cut_index;
            pool.run(|ctx| {
                for i in ctx.block_range(m) {
                    let b = r.edge_comp[i];
                    let e = edges[i];
                    for v in [e.u, e.v] {
                        if cut_index[v as usize] == NIL {
                            node_a[v as usize].store(b, Ordering::Relaxed);
                        }
                    }
                }
            });
        }

        // Root the tree: parent/depth by DFS, preorder assigned at
        // visit time (subtree intervals are contiguous), sizes by a
        // reverse-preorder accumulation.
        let csr = t.adjacency();
        let mut parent = vec![NIL; nodes];
        let mut depth = vec![0u32; nodes];
        let mut pre = vec![0u32; nodes];
        let mut order = Vec::with_capacity(nodes);
        let mut next_pre = 0u32;
        let mut stack = Vec::new();
        for root in 0..nodes as u32 {
            if parent[root as usize] != NIL {
                continue;
            }
            parent[root as usize] = root;
            stack.push(root);
            while let Some(x) = stack.pop() {
                pre[x as usize] = next_pre;
                next_pre += 1;
                order.push(x);
                for &y in csr.neighbors(x) {
                    if parent[y as usize] == NIL {
                        parent[y as usize] = x;
                        depth[y as usize] = depth[x as usize] + 1;
                        stack.push(y);
                    }
                }
            }
        }
        let mut size = vec![1u32; nodes];
        for &x in order.iter().rev() {
            let p = parent[x as usize];
            if p != x {
                size[p as usize] += size[x as usize];
            }
        }

        // Binary-lifting ancestor table, level-parallel on the pool.
        let lca = LcaIndex::from_forest(pool, &parent, &depth);

        // Bridge table: blocks of exactly one edge, keyed in *graph*
        // ids for binary search straight off a query's endpoints.
        let mut block_size = vec![0u32; num_blocks as usize];
        for i in 0..m {
            block_size[r.edge_comp[i] as usize] += 1;
        }
        let mut bridges: Vec<(u64, u32)> = sub
            .edges()
            .iter()
            .enumerate()
            .filter(|(i, _)| block_size[r.edge_comp[*i] as usize] == 1)
            .map(|(i, e)| {
                let key = Edge::new(verts[e.u as usize], verts[e.v as usize]).key();
                (key, r.edge_comp[i])
            })
            .collect();
        bridges.sort_unstable();
        let (bridge_keys, bridge_block) = bridges.into_iter().unzip();

        ComponentIndex {
            verts: verts.to_vec(),
            num_blocks,
            articulation: t.articulation.clone(),
            cut_index: t.cut_index.clone(),
            node,
            lca,
            pre,
            size,
            bridge_keys,
            bridge_block,
        }
    }
}

impl BiconnectivityIndex {
    /// Builds one split part's index, or `None` for an edgeless part
    /// (an isolated vertex, which owns no block-cut structure).
    /// `verts` is the part's local→graph map — `part.verts` for a
    /// from-scratch build, or the composition through the commit
    /// region for an incremental one.
    pub(crate) fn build_component(
        pool: &Pool,
        part: &SplitPart,
        verts: &[u32],
        config: &BccConfig,
    ) -> Result<Option<Arc<ComponentIndex>>, BccError> {
        if part.graph.m() == 0 {
            return Ok(None);
        }
        let (run, tree) = component_pipeline(pool, &part.graph, config)?;
        Ok(Some(Arc::new(ComponentIndex::build(
            pool,
            &part.graph,
            verts,
            &run.result,
            &tree,
        ))))
    }

    /// Assembles the composite from the routing arrays and the
    /// per-component indices, deriving the global summaries
    /// (articulation list, block/bridge totals, component count).
    pub(crate) fn assemble(
        n: u32,
        slot: Vec<u32>,
        local: Vec<u32>,
        comps: Vec<Option<Arc<ComponentIndex>>>,
    ) -> Self {
        let mut articulation: Vec<u32> = comps
            .iter()
            .flatten()
            .flat_map(|c| c.articulation.iter().map(|&lv| c.verts[lv as usize]))
            .collect();
        articulation.sort_unstable();
        let num_blocks = comps.iter().flatten().map(|c| c.num_blocks).sum();
        let num_bridges = comps.iter().flatten().map(|c| c.bridge_keys.len()).sum();
        let mut seen = vec![false; comps.len()];
        let mut num_components = 0u32;
        for &s in &slot {
            if !seen[s as usize] {
                seen[s as usize] = true;
                num_components += 1;
            }
        }
        BiconnectivityIndex {
            n,
            slot,
            local,
            comps,
            articulation,
            num_blocks,
            num_bridges,
            num_components,
        }
    }

    /// One-call build: labels connected components, splits the graph,
    /// and pushes each component through the cheapest pipeline
    /// (TV-filter) into its own [`ComponentIndex`]. Works for any
    /// input — disconnected graphs and isolated vertices included.
    pub fn from_graph(pool: &Pool, g: &Graph) -> Result<Self, BccError> {
        Self::from_graph_ws(pool, g, &Arc::new(BccWorkspace::new()))
    }

    /// [`from_graph`](Self::from_graph) drawing the pipeline's scratch
    /// from `ws`. Long-lived callers that rebuild repeatedly (the
    /// epoch store) pass one workspace across rebuilds so steady-state
    /// reconstruction performs near-zero heap allocation.
    pub fn from_graph_ws(pool: &Pool, g: &Graph, ws: &Arc<BccWorkspace>) -> Result<Self, BccError> {
        Self::from_graph_with(pool, g, Algorithm::TvFilter, ws)
    }

    /// [`from_graph_ws`](Self::from_graph_ws) with an explicit labeling
    /// [`Algorithm`] for the per-component pipelines (all algorithms
    /// produce identical canonical labels; they differ in speed and
    /// auxiliary space — [`Algorithm::FastBcc`] keeps the build's
    /// footprint O(n) beyond the input and the index itself).
    pub fn from_graph_with(
        pool: &Pool,
        g: &Graph,
        alg: Algorithm,
        ws: &Arc<BccWorkspace>,
    ) -> Result<Self, BccError> {
        let cc = connected_components_with_ws(pool, g.n(), g.edges(), SvVariant::FastSv, ws);
        let mut labels = cc.label;
        ws.give(cc.tree_edges);
        let k = normalize_labels_ws(pool, &mut labels, ws);
        let split = g.split_by_labels(&labels, k);
        let config = BccConfig::new(alg).workspace(Arc::clone(ws));
        let mut comps = Vec::with_capacity(k as usize);
        for part in &split.parts {
            comps.push(Self::build_component(pool, part, &part.verts, &config)?);
        }
        // `labels` doubles as the slot array: normalized component
        // labels are exactly the part indices.
        Ok(Self::assemble(g.n(), labels, split.local, comps))
    }
}

//! Naive BFS reference implementations of every query.
//!
//! These recompute each answer from the raw graph in O(n + m) (or
//! O(n·(n + m)) for [`vertex_cut_between_bfs`]) per call — useless for
//! serving, indispensable for testing: the property tests check the
//! indexed answers against these on random graphs. Semantics match
//! [`crate::BiconnectivityIndex`] exactly, including the edge cases
//! (`u == v`, disconnected pairs, failures naming `u`/`v`, absent
//! edges). Inputs are assumed to be simple graphs (no duplicate
//! edges), which everything in this workspace produces.

use crate::index::Failure;
use bcc_graph::{Csr, Edge, Graph};

/// BFS reachability from `u` to `v`, skipping `skip_vertex` entirely
/// and every edge whose normalized key equals `skip_edge`.
fn reachable(g: &Graph, u: u32, v: u32, skip_vertex: Option<u32>, skip_edge: Option<u64>) -> bool {
    if Some(u) == skip_vertex || Some(v) == skip_vertex {
        return false;
    }
    if u == v {
        return true;
    }
    let csr = Csr::build(g);
    let mut seen = vec![false; g.n() as usize];
    let mut queue = std::collections::VecDeque::new();
    seen[u as usize] = true;
    queue.push_back(u);
    while let Some(x) = queue.pop_front() {
        for &y in csr.neighbors(x) {
            if Some(y) == skip_vertex || seen[y as usize] {
                continue;
            }
            if Some(Edge::new(x, y).key()) == skip_edge {
                continue;
            }
            if y == v {
                return true;
            }
            seen[y as usize] = true;
            queue.push_back(y);
        }
    }
    false
}

/// Are `u` and `v` connected? (Plain BFS.)
pub fn connected_bfs(g: &Graph, u: u32, v: u32) -> bool {
    reachable(g, u, v, None, None)
}

/// Are `u` and `v` still connected after failure `f`? (BFS on the
/// graph with the failed vertex or edge removed.)
pub fn survives_failure_bfs(g: &Graph, u: u32, v: u32, f: Failure) -> bool {
    match f {
        Failure::Vertex(x) => {
            if u == v {
                return x != u;
            }
            reachable(g, u, v, Some(x), None)
        }
        Failure::Edge(x, y) => {
            if u == v {
                return true;
            }
            reachable(g, u, v, None, Some(Edge::new(x, y).key()))
        }
    }
}

/// Every vertex `w ∉ {u, v}` whose removal disconnects `u` from `v`.
/// Empty when `u == v` or when they are not connected. Ascending.
pub fn vertex_cut_between_bfs(g: &Graph, u: u32, v: u32) -> Vec<u32> {
    if u == v || !connected_bfs(g, u, v) {
        return Vec::new();
    }
    (0..g.n())
        .filter(|&w| w != u && w != v && !reachable(g, u, v, Some(w), None))
        .collect()
}

/// Do `u` and `v` share a biconnected component? A pair of distinct
/// vertices does iff they are connected and no third vertex separates
/// them (Menger); `u == v` is true by convention.
pub fn same_block_bfs(g: &Graph, u: u32, v: u32) -> bool {
    if u == v {
        return true;
    }
    connected_bfs(g, u, v) && vertex_cut_between_bfs(g, u, v).is_empty()
}

/// Is `{u, v}` an existing edge whose removal disconnects its
/// endpoints?
pub fn is_bridge_bfs(g: &Graph, u: u32, v: u32) -> bool {
    let key = Edge::new(u, v).key();
    g.edges().iter().any(|e| e.key() == key) && !reachable(g, u, v, None, Some(key))
}

//! Epoch-based snapshot store: serve queries while rebuilding.
//!
//! The store keeps the current [`Snapshot`] behind an `Arc`. Readers
//! call [`IndexStore::load`] and query the snapshot they got — they
//! hold it for as long as they like and are never blocked, even while
//! a writer rebuilds (the classic read-copy-update discipline: old
//! epochs stay alive until the last reader drops its `Arc`). Writers
//! journal edge updates with [`IndexStore::enqueue`] and publish a new
//! epoch with [`IndexStore::commit`]: the graph is edited, the index
//! rebuilt from scratch through the cheapest pipeline (TV-filter, per
//! component), and the snapshot pointer swapped at the very end — one
//! short write-lock acquisition, independent of graph size.
//!
//! Rebuild-from-scratch is the right trade here: the paper's pipelines
//! make construction cheap (millions of edges per second), while
//! dynamic biconnectivity structures with comparable query times are
//! far more complex than this whole workspace.

use crate::index::BiconnectivityIndex;
use bcc_core::BccError;
use bcc_graph::{Edge, Graph};
use bcc_smp::{BccWorkspace, Pool};
use std::sync::{Arc, Mutex, RwLock};

/// One journal entry: an edge appears or disappears.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EdgeUpdate {
    /// Add the edge `{u, v}` (grows the vertex set if needed; self
    /// loops and duplicates are ignored).
    Insert(u32, u32),
    /// Remove the edge `{u, v}` (a no-op if absent; vertices remain).
    Remove(u32, u32),
}

/// An immutable published epoch: the graph as of the last commit and
/// the index serving it.
pub struct Snapshot {
    /// Monotonic epoch counter, 0 for the initial build.
    pub epoch: u64,
    /// The graph this epoch was built from.
    pub graph: Graph,
    /// The query index over `graph`.
    pub index: BiconnectivityIndex,
}

/// A long-lived store publishing [`Snapshot`]s of a mutating graph.
pub struct IndexStore {
    pool: Pool,
    current: RwLock<Arc<Snapshot>>,
    journal: Mutex<Vec<EdgeUpdate>>,
    /// Serializes commits so concurrent writers cannot lose each
    /// other's updates; readers never take this.
    commit_lock: Mutex<()>,
    /// One pipeline scratch arena shared across every rebuild: after
    /// the first commit, reconstruction runs in its zero-allocation
    /// steady state (commits are serialized by `commit_lock`, so the
    /// arena never sees two rebuilds at once).
    workspace: Arc<BccWorkspace>,
}

impl IndexStore {
    /// Builds epoch 0 from `g` and takes ownership of the pool used
    /// for every rebuild. Fails if the initial index build does.
    pub fn new(pool: Pool, g: Graph) -> Result<Self, BccError> {
        let workspace = Arc::new(BccWorkspace::new());
        let index = BiconnectivityIndex::from_graph_ws(&pool, &g, &workspace)?;
        Ok(IndexStore {
            pool,
            current: RwLock::new(Arc::new(Snapshot {
                epoch: 0,
                graph: g,
                index,
            })),
            journal: Mutex::new(Vec::new()),
            commit_lock: Mutex::new(()),
            workspace,
        })
    }

    /// Cumulative hit/miss counters of the rebuild arena (for tests
    /// and telemetry).
    pub fn workspace_stats(&self) -> bcc_smp::WorkspaceStats {
        self.workspace.stats()
    }

    /// The current snapshot. Cheap (one `Arc` clone under a read
    /// lock); hold the result as long as needed.
    pub fn load(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.read().unwrap())
    }

    /// Appends an update to the journal without rebuilding.
    pub fn enqueue(&self, update: EdgeUpdate) {
        self.journal.lock().unwrap().push(update);
    }

    /// Number of journaled updates not yet committed.
    pub fn pending(&self) -> usize {
        self.journal.lock().unwrap().len()
    }

    /// Drains the journal, applies it to the current graph, rebuilds,
    /// and publishes the next epoch; returns the new snapshot. With an
    /// empty journal this is a no-op returning the current snapshot.
    /// On a rebuild error the previous epoch stays published and the
    /// journal is restored, so a failed commit loses nothing.
    pub fn commit(&self) -> Result<Arc<Snapshot>, BccError> {
        let _serial = self.commit_lock.lock().unwrap();
        let updates: Vec<EdgeUpdate> = std::mem::take(&mut *self.journal.lock().unwrap());
        if updates.is_empty() {
            return Ok(self.load());
        }
        let prev = self.load();
        let graph = apply_updates(&prev.graph, &updates);
        let index = match BiconnectivityIndex::from_graph_ws(&self.pool, &graph, &self.workspace) {
            Ok(index) => index,
            Err(e) => {
                // Put the drained updates back in front of anything
                // enqueued while we were rebuilding.
                let mut journal = self.journal.lock().unwrap();
                let newer = std::mem::replace(&mut *journal, updates);
                journal.extend(newer);
                return Err(e);
            }
        };
        let next = Arc::new(Snapshot {
            epoch: prev.epoch + 1,
            graph,
            index,
        });
        *self.current.write().unwrap() = Arc::clone(&next);
        Ok(next)
    }

    /// Convenience: enqueue a whole journal and commit it.
    pub fn apply(&self, updates: &[EdgeUpdate]) -> Result<Arc<Snapshot>, BccError> {
        {
            let mut journal = self.journal.lock().unwrap();
            journal.extend_from_slice(updates);
        }
        self.commit()
    }
}

/// The edited graph: the old edge set as normalized keys, plus inserts,
/// minus removals. Insertions may grow the vertex set; removals never
/// shrink it (orphaned vertices become isolated, which the index
/// handles).
fn apply_updates(g: &Graph, updates: &[EdgeUpdate]) -> Graph {
    let mut keys: std::collections::BTreeSet<u64> = g.edges().iter().map(|e| e.key()).collect();
    let mut n = g.n();
    for &u in updates {
        match u {
            EdgeUpdate::Insert(a, b) => {
                if a != b {
                    n = n.max(a.max(b) + 1);
                    keys.insert(Edge::new(a, b).key());
                }
            }
            EdgeUpdate::Remove(a, b) => {
                keys.remove(&Edge::new(a, b).key());
            }
        }
    }
    Graph::new(
        n,
        keys.into_iter()
            .map(|k| Edge::new((k >> 32) as u32, k as u32))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::Failure;
    use bcc_graph::gen;

    #[test]
    fn epochs_advance_and_old_snapshots_survive() {
        let store = IndexStore::new(Pool::new(2), gen::cycle(6)).unwrap();
        let before = store.load();
        assert_eq!(before.epoch, 0);
        assert!(before.index.articulation_points().is_empty());

        // Cut the cycle open: edge (0,1) gone, the rest becomes a path.
        store.enqueue(EdgeUpdate::Remove(0, 1));
        assert_eq!(store.pending(), 1);
        let after = store.commit().unwrap();
        assert_eq!(after.epoch, 1);
        assert_eq!(store.pending(), 0);
        assert_eq!(after.index.articulation_points(), &[2, 3, 4, 5]);
        assert!(after.index.is_bridge(1, 2));

        // The pre-update snapshot still answers from its own epoch. On
        // the new path 1-2-3-4-5-0, vertex 1 is a leaf (harmless) but
        // vertex 5 now separates 0 from 3.
        assert!(before.index.same_block(0, 3));
        assert!(before.index.survives_failure(0, 3, Failure::Vertex(5)));
        assert!(after.index.survives_failure(0, 3, Failure::Vertex(1)));
        assert!(!after.index.survives_failure(0, 3, Failure::Vertex(5)));
    }

    #[test]
    fn empty_commit_is_a_no_op() {
        let store = IndexStore::new(Pool::new(1), gen::cycle(4)).unwrap();
        let a = store.commit().unwrap();
        assert_eq!(a.epoch, 0);
        assert!(Arc::ptr_eq(&a, &store.load()));
    }

    #[test]
    fn inserts_grow_the_vertex_set_and_heal_cuts() {
        let store = IndexStore::new(Pool::new(2), gen::path(4)).unwrap();
        // Close the path into a cycle, and hang a brand-new vertex 4.
        let snap = store
            .apply(&[
                EdgeUpdate::Insert(3, 0),
                EdgeUpdate::Insert(0, 4),
                EdgeUpdate::Insert(0, 0), // self loop: ignored
                EdgeUpdate::Insert(0, 1), // duplicate: ignored
            ])
            .unwrap();
        assert_eq!(snap.epoch, 1);
        assert_eq!(snap.graph.n(), 5);
        assert_eq!(snap.graph.m(), 5); // 4 path/cycle edges + pendant
        assert_eq!(snap.index.articulation_points(), &[0]);
        assert!(snap.index.same_block(1, 3)); // now on a cycle
        assert!(snap.index.survives_failure(1, 3, Failure::Vertex(2)));
    }

    #[test]
    fn removal_can_disconnect() {
        let store = IndexStore::new(Pool::new(2), gen::cycle_chain(2, 4, 0)).unwrap();
        let snap = store.apply(&[EdgeUpdate::Remove(3, 4)]).unwrap(); // the bridge
        assert!(!snap.index.connected(0, 5));
        assert!(!snap.index.survives_failure(0, 5, Failure::Vertex(2)));
        // Removing an absent edge is a no-op but still bumps the epoch.
        let snap2 = store.apply(&[EdgeUpdate::Remove(0, 5)]).unwrap();
        assert_eq!(snap2.epoch, 2);
        assert_eq!(snap2.graph.m(), snap.graph.m());
    }

    #[test]
    fn readers_keep_serving_across_concurrent_commits() {
        let store = IndexStore::new(Pool::new(2), gen::cycle(8)).unwrap();
        std::thread::scope(|s| {
            let reader = s.spawn(|| {
                let mut answered = 0u64;
                for _ in 0..200 {
                    let snap = store.load();
                    // Within one snapshot, answers are consistent no
                    // matter what writers publish meanwhile.
                    if snap.index.connected(0, 4) {
                        assert!(snap.index.same_block(0, 4));
                        assert!(!snap.index.survives_failure(0, 4, Failure::Vertex(0)));
                    }
                    answered += 1;
                }
                answered
            });
            let writer = s.spawn(|| {
                for round in 0..20 {
                    if round % 2 == 0 {
                        store
                            .apply(&[EdgeUpdate::Remove(0, 1), EdgeUpdate::Remove(4, 5)])
                            .unwrap();
                    } else {
                        store
                            .apply(&[EdgeUpdate::Insert(0, 1), EdgeUpdate::Insert(4, 5)])
                            .unwrap();
                    }
                }
            });
            assert_eq!(reader.join().unwrap(), 200);
            writer.join().unwrap();
        });
        assert_eq!(store.load().epoch, 20);
    }
}
